// Package repro is a from-scratch Go reproduction of "Revisiting Lower
// Bounds for Two-Step Consensus" (Ryabinin, Gotsman, Sutra; PODC 2025).
//
// The library lives under internal/: the paper's protocol (internal/core),
// the Paxos / Fast Paxos / EPaxos-style baselines, a deterministic
// discrete-event simulator for the paper's partial-synchrony model, the
// executable Appendix-B lower-bound constructions, real transports and an
// SMR key-value store, and the benchmark harness that regenerates every
// table and figure of the reproduction (see DESIGN.md and EXPERIMENTS.md).
//
// Entry points: cmd/bench (regenerate the evaluation), cmd/simrun (explore
// single scenarios), cmd/twostep (live TCP cluster), and the runnable
// walkthroughs under examples/.
package repro
