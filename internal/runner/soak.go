package runner

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SoakOptions configures randomized partial-synchrony safety/liveness runs.
type SoakOptions struct {
	// Runs is the number of seeded executions.
	Runs int
	// MaxCrashes bounds the number of crash-injected processes per run
	// (clamped to f).
	MaxCrashes int
	// Object selects object-mode workloads: a random non-empty subset of
	// processes proposes, at random times. Task mode gives every process
	// an input at time 0.
	Object bool
	// GSTMaxRounds bounds the random GST, in rounds.
	GSTMaxRounds int
	// HorizonRounds bounds each run, in rounds after GST.
	HorizonRounds int
	// DuplicateProb, in [0,1), injects at-least-once delivery: each
	// message has this probability of being delivered twice (the copy is
	// independently delayed). Protocols must be idempotent.
	DuplicateProb float64
}

// SoakResult aggregates the outcome of a soak campaign.
type SoakResult struct {
	Runs       int
	Violations int      // safety (validity/agreement/linearizability) failures
	Undecided  int      // liveness failures (horizon hit before termination)
	Failures   []string // capped detail
	// TotalDecisions counts processes that decided across all runs.
	TotalDecisions int
}

// OK reports whether the campaign saw no violations and no liveness misses.
func (r SoakResult) OK() bool { return r.Violations == 0 && r.Undecided == 0 }

// String implements fmt.Stringer.
func (r SoakResult) String() string {
	return fmt.Sprintf("runs=%d violations=%d undecided=%d decisions=%d",
		r.Runs, r.Violations, r.Undecided, r.TotalDecisions)
}

// Soak executes randomized partially synchronous runs with crash injection
// and checks every trace against the consensus specification.
func Soak(fac Factory, sc Scenario, opts SoakOptions) SoakResult {
	if opts.Runs == 0 {
		opts.Runs = 100
	}
	if opts.GSTMaxRounds == 0 {
		opts.GSTMaxRounds = 10
	}
	if opts.HorizonRounds == 0 {
		opts.HorizonRounds = 400
	}
	if opts.MaxCrashes > sc.F {
		opts.MaxCrashes = sc.F
	}
	var result SoakResult
	for run := 0; run < opts.Runs; run++ {
		result.Runs++
		tr, err := soakOnce(fac, sc, opts, sc.Seed+int64(run)*7919)
		if err != nil {
			// Termination misses are liveness (undecided); everything
			// else is a safety violation.
			if errors.Is(err, trace.ErrTermination) {
				result.Undecided++
			} else {
				result.Violations++
			}
			if len(result.Failures) < maxFailures {
				result.Failures = append(result.Failures, fmt.Sprintf("run %d: %v", run, err))
			}
			continue
		}
		result.TotalDecisions += len(tr.Decisions)
	}
	return result
}

func soakOnce(fac Factory, sc Scenario, opts SoakOptions, seed int64) (*trace.Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	gst := consensus.Time(rng.Int63n(int64(opts.GSTMaxRounds)+1)) * consensus.Time(sc.Delta)
	horizon := gst + consensus.Time(opts.HorizonRounds)*consensus.Time(sc.Delta)
	policy := sim.NewPartialSync(sc.Delta, gst, 6*sc.Delta, seed+1)

	var duplicator func(sim.Envelope) int
	if opts.DuplicateProb > 0 {
		dupRng := rand.New(rand.NewSource(seed + 2))
		p := opts.DuplicateProb
		duplicator = func(sim.Envelope) int {
			if dupRng.Float64() < p {
				return 1
			}
			return 0
		}
	}
	cl, err := sim.New(sim.Options{
		N:          sc.N,
		Delta:      sc.Delta,
		Policy:     policy,
		Horizon:    horizon,
		Duplicator: duplicator,
	})
	if err != nil {
		return nil, err
	}
	oracle := cl.Oracle()
	for i := 0; i < sc.N; i++ {
		p := consensus.ProcessID(i)
		cl.SetNode(p, fac(sc.Config(p), oracle))
	}

	// Crash injection: up to MaxCrashes distinct processes at random
	// times in [0, GST + 5Δ].
	nCrashes := 0
	if opts.MaxCrashes > 0 {
		nCrashes = rng.Intn(opts.MaxCrashes + 1)
	}
	crashed := make(map[consensus.ProcessID]struct{}, nCrashes)
	for len(crashed) < nCrashes {
		p := consensus.ProcessID(rng.Intn(sc.N))
		if _, dup := crashed[p]; dup {
			continue
		}
		crashed[p] = struct{}{}
		at := consensus.Time(rng.Int63n(int64(gst) + 5*int64(sc.Delta) + 1))
		cl.ScheduleCrash(p, at)
	}

	// Workload.
	proposers := make([]consensus.ProcessID, 0, sc.N)
	if opts.Object {
		for i := 0; i < sc.N; i++ {
			if rng.Intn(2) == 0 {
				proposers = append(proposers, consensus.ProcessID(i))
			}
		}
		if len(proposers) == 0 {
			proposers = append(proposers, consensus.ProcessID(rng.Intn(sc.N)))
		}
		for _, p := range proposers {
			at := consensus.Time(rng.Int63n(2*int64(sc.Delta) + 1))
			cl.SchedulePropose(p, at, consensus.IntValue(1+rng.Int63n(int64(sc.N))))
		}
	} else {
		for i := 0; i < sc.N; i++ {
			cl.SchedulePropose(consensus.ProcessID(i), 0, consensus.IntValue(1+rng.Int63n(int64(sc.N))))
		}
	}

	tr := cl.Run(func(c *sim.Cluster) bool { return c.AllDecided() })

	if opts.Object {
		if err := tr.CheckObjectSpec(); err != nil {
			return tr, err
		}
	} else if err := tr.CheckTaskSpec(); err != nil {
		return tr, err
	}
	return tr, nil
}
