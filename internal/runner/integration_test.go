package runner_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

func TestEFaultySyncRecordsDiagramMessages(t *testing.T) {
	sc := runner.Scenario{N: 3, F: 1, E: 1, Delta: 10}
	inputs := map[consensus.ProcessID]consensus.Value{
		0: consensus.IntValue(1),
		1: consensus.IntValue(5),
		2: consensus.IntValue(3),
	}
	tr, err := runner.EFaultySync(protocols.CoreTaskFactory, sc, runner.SyncRun{
		Inputs:       inputs,
		Prefer:       1,
		KeepMessages: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Messages) == 0 {
		t.Fatal("KeepMessages retained nothing")
	}
	// All deliveries in a synchronous run land exactly on round
	// boundaries.
	for _, m := range tr.Messages {
		if m.At%consensus.Time(sc.Delta) != 0 {
			t.Fatalf("delivery at %d is off the round grid", m.At)
		}
	}
}

// TestTwoStepCoverageIsLivenessNotSafety documents a subtle point the
// reproduction surfaces: the e-two-step property (Definition 4) is about the
// EXISTENCE of fast runs, and the fast path can assemble its n−e quorum at
// any n — coverage passes even below the bound. What breaks below the bound
// is SAFETY, exhibited by the Appendix-B constructions (internal/lowerbound
// and the T4 experiment), never by the coverage check.
func TestTwoStepCoverageIsLivenessNotSafety(t *testing.T) {
	f, e := 2, 2
	n := quorum.TaskMinProcesses(f, e) - 1
	sc := runner.Scenario{N: n, F: f, E: e, Delta: 10, Seed: 3}
	report := runner.TaskTwoStep(protocols.CoreTaskFactory, sc)
	if !report.OK() {
		t.Fatalf("coverage unexpectedly failed below the bound: %s\n%v\n%v",
			report, report.Item1.Failures, report.Item2.Failures)
	}
	if report.String() == "" {
		t.Fatal("empty report string")
	}
}

// TestTwoStepCoverageFailureReporting exercises the failure paths with the
// Paxos negative control (never two-step under a crashed initial leader).
func TestTwoStepCoverageFailureReporting(t *testing.T) {
	sc := runner.Scenario{N: 3, F: 1, E: 1, Delta: 10, Seed: 3}
	report := runner.TaskTwoStep(protocols.PaxosFactory, sc)
	if report.OK() {
		t.Fatal("paxos passed two-step coverage")
	}
	if len(report.Item1.Failures)+len(report.Item2.Failures) == 0 {
		t.Fatal("no failure details recorded")
	}
}

func TestObjectTwoStepAtBoundInPackage(t *testing.T) {
	f, e := 2, 2
	n := quorum.ObjectMinProcesses(f, e)
	report := runner.ObjectTwoStep(protocols.CoreObjectFactory,
		runner.Scenario{N: n, F: f, E: e, Delta: 10, Seed: 3})
	if !report.OK() {
		t.Fatalf("object coverage failed at the bound: %s", report)
	}
}

func TestSoakWithDuplicates(t *testing.T) {
	sc := runner.Scenario{N: 5, F: 2, E: 1, Delta: 10, Seed: 21}
	res := runner.Soak(protocols.CoreTaskFactory, sc, runner.SoakOptions{
		Runs:          40,
		MaxCrashes:    2,
		DuplicateProb: 0.3,
	})
	if !res.OK() {
		t.Fatalf("soak with duplicate delivery: %s\n%v", res, res.Failures)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestSoakObjectMode(t *testing.T) {
	sc := runner.Scenario{N: 5, F: 2, E: 2, Delta: 10, Seed: 22}
	res := runner.Soak(protocols.CoreObjectFactory, sc, runner.SoakOptions{
		Runs:       40,
		MaxCrashes: 2,
		Object:     true,
	})
	if !res.OK() {
		t.Fatalf("object soak: %s\n%v", res, res.Failures)
	}
}

// muteProtocol never decides — a deterministic negative control proving the
// soak campaign reports liveness misses instead of silently passing.
type muteProtocol struct{ id consensus.ProcessID }

func (m *muteProtocol) ID() consensus.ProcessID                                           { return m.id }
func (m *muteProtocol) Start() []consensus.Effect                                         { return nil }
func (m *muteProtocol) Propose(consensus.Value) []consensus.Effect                        { return nil }
func (m *muteProtocol) Deliver(consensus.ProcessID, consensus.Message) []consensus.Effect { return nil }
func (m *muteProtocol) Tick(consensus.TimerID) []consensus.Effect                         { return nil }
func (m *muteProtocol) Decision() (consensus.Value, bool)                                 { return consensus.None, false }

func TestSoakDetectsLivenessMiss(t *testing.T) {
	fac := func(cfg consensus.Config, _ consensus.LeaderOracle) consensus.Protocol {
		return &muteProtocol{id: cfg.ID}
	}
	sc := runner.Scenario{N: 3, F: 1, E: 1, Delta: 10, Seed: 23}
	res := runner.Soak(fac, sc, runner.SoakOptions{Runs: 5, HorizonRounds: 20})
	if res.OK() || res.Undecided != 5 {
		t.Fatalf("mute protocol not reported as undecided: %s", res)
	}
}
