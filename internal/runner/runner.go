// Package runner turns the paper's definitions into executable, checkable
// scenarios on top of the simulator:
//
//   - E-faulty synchronous runs (Definition 2): all processes in E crash at
//     the beginning of round 1, every message is delivered exactly at the
//     next round boundary, local computation is instantaneous.
//   - The e-two-step predicates for tasks (Definition 4) and objects
//     (Definition A.1). Both definitions quantify existentially over runs
//     ("there exists an E-faulty synchronous run …"); the runner realizes
//     the existential by steering same-round delivery order so that a chosen
//     process's Propose is handled first everywhere, and by searching over
//     the choice when necessary.
//   - Randomized partial-synchrony soak runs with crash injection, used to
//     check Validity/Agreement/Termination over many seeds.
package runner

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Factory builds a protocol instance for one process of a deployment.
// Implementations are provided by the protocol packages' test/bench glue.
type Factory func(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol

// Scenario fixes the deployment parameters for a family of runs.
type Scenario struct {
	N, F, E int
	Delta   consensus.Duration
	Seed    int64
}

// Config returns the consensus.Config for process p in this scenario.
func (s Scenario) Config(p consensus.ProcessID) consensus.Config {
	return consensus.Config{ID: p, N: s.N, F: s.F, E: s.E, Delta: s.Delta}
}

// SyncRun describes one E-faulty synchronous run to execute.
type SyncRun struct {
	// Faulty is the crash set E; its members crash at time 0.
	Faulty []consensus.ProcessID
	// Inputs maps processes to the value they propose at time 0.
	// Processes absent from the map propose nothing (object mode).
	Inputs map[consensus.ProcessID]consensus.Value
	// Prefer, if valid, makes every process handle messages from Prefer
	// before same-tick messages from anyone else.
	Prefer consensus.ProcessID
	// Horizon stops the run; zero means 2Δ (just the fast path).
	Horizon consensus.Time
	// KeepMessages retains every delivery in the trace, enabling
	// trace.WriteFlow diagrams.
	KeepMessages bool
}

// EFaultySync executes one E-faulty synchronous run and returns its trace.
func EFaultySync(fac Factory, sc Scenario, run SyncRun) (*trace.Trace, error) {
	horizon := run.Horizon
	if horizon == 0 {
		horizon = consensus.Time(2 * sc.Delta)
	}
	cl, err := sim.New(sim.Options{
		N:            sc.N,
		Delta:        sc.Delta,
		Policy:       sim.Synchronous{Delta: sc.Delta},
		Horizon:      horizon,
		KeepMessages: run.KeepMessages,
		PriorityFn: func(env sim.Envelope) int {
			if env.From == run.Prefer {
				return 0
			}
			return 1 + int(env.From)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}
	oracle := cl.Oracle()
	for i := 0; i < sc.N; i++ {
		p := consensus.ProcessID(i)
		cl.SetNode(p, fac(sc.Config(p), oracle))
	}
	for _, p := range run.Faulty {
		cl.ScheduleCrash(p, 0)
	}
	for i := 0; i < sc.N; i++ {
		p := consensus.ProcessID(i)
		if v, ok := run.Inputs[p]; ok {
			cl.SchedulePropose(p, 0, v)
		}
	}
	return cl.Run(nil), nil
}

// Combinations enumerates all k-subsets of {0,…,n−1} in lexicographic order.
func Combinations(n, k int) [][]consensus.ProcessID {
	if k < 0 || k > n {
		return nil
	}
	var out [][]consensus.ProcessID
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		set := make([]consensus.ProcessID, k)
		for i, v := range idx {
			set[i] = consensus.ProcessID(v)
		}
		out = append(out, set)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// contains reports whether p is in set.
func contains(set []consensus.ProcessID, p consensus.ProcessID) bool {
	for _, q := range set {
		if q == p {
			return true
		}
	}
	return false
}

// correctOf returns Π∖faulty in ascending order.
func correctOf(n int, faulty []consensus.ProcessID) []consensus.ProcessID {
	out := make([]consensus.ProcessID, 0, n-len(faulty))
	for i := 0; i < n; i++ {
		if p := consensus.ProcessID(i); !contains(faulty, p) {
			out = append(out, p)
		}
	}
	return out
}
