package runner

import (
	"fmt"
	"math/rand"

	"repro/internal/consensus"
)

// Verdict is the outcome of checking one item of a two-step definition
// across all its quantified instances.
type Verdict struct {
	OK       bool
	Runs     int
	Failures []string // capped at maxFailures
}

const maxFailures = 10

func (v *Verdict) fail(format string, args ...any) {
	v.OK = false
	if len(v.Failures) < maxFailures {
		v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
	}
}

// TwoStepReport is the outcome of checking Definition 4 (task) or
// Definition A.1 (object) for one scenario.
type TwoStepReport struct {
	Scenario Scenario
	Item1    Verdict
	Item2    Verdict
}

// OK reports whether both items held for every quantified instance.
func (r TwoStepReport) OK() bool { return r.Item1.OK && r.Item2.OK }

// String implements fmt.Stringer.
func (r TwoStepReport) String() string {
	return fmt.Sprintf("n=%d f=%d e=%d item1=%v item2=%v (runs=%d+%d)",
		r.Scenario.N, r.Scenario.F, r.Scenario.E, r.Item1.OK, r.Item2.OK, r.Item1.Runs, r.Item2.Runs)
}

// TaskTwoStep checks Definition 4 for a consensus-task protocol: for every
// crash set E of size e,
//
//	(1) for every initial configuration (sampled from a structured family),
//	    some E-faulty synchronous run is two-step for some process;
//	(2) for every configuration where all correct processes propose the
//	    same value, for each correct p some run is two-step for p.
//
// The existential over runs is realized by preferring the natural witness
// (the correct process with the greatest input for item 1; p itself for
// item 2) and falling back to an exhaustive search over preferred processes.
func TaskTwoStep(fac Factory, sc Scenario) TwoStepReport {
	report := TwoStepReport{Scenario: sc, Item1: Verdict{OK: true}, Item2: Verdict{OK: true}}
	subsets := Combinations(sc.N, sc.E)

	// Item 1: arbitrary initial configurations.
	for _, faulty := range subsets {
		for fi, inputs := range taskInputFamilies(sc) {
			correct := correctOf(sc.N, faulty)
			if ok := existsTwoStepForSomeone(fac, sc, faulty, inputs, correct, &report.Item1); !ok {
				report.Item1.fail("E=%v family=%d: no E-faulty synchronous run is two-step for anyone", faulty, fi)
			}
		}
	}

	// Item 2: all correct processes propose the same value.
	for _, faulty := range subsets {
		inputs := make(map[consensus.ProcessID]consensus.Value, sc.N)
		for i := 0; i < sc.N; i++ {
			p := consensus.ProcessID(i)
			if contains(faulty, p) {
				// Faulty inputs are arbitrary; choose a greater
				// value to be adversarial (they crash before
				// sending, so a correct protocol is unaffected).
				inputs[p] = consensus.IntValue(100)
			} else {
				inputs[p] = consensus.IntValue(7)
			}
		}
		for _, p := range correctOf(sc.N, faulty) {
			report.Item2.Runs++
			tr, err := EFaultySync(fac, sc, SyncRun{Faulty: faulty, Inputs: inputs, Prefer: p})
			if err != nil {
				report.Item2.fail("E=%v p=%s: %v", faulty, p, err)
				continue
			}
			if !tr.TwoStepFor(p, sc.Delta) {
				report.Item2.fail("E=%v: no run is two-step for %s", faulty, p)
			}
		}
	}
	return report
}

// ObjectTwoStep checks Definition A.1 for a consensus-object protocol:
//
//	(1) for every E and every correct p, some E-faulty synchronous run in
//	    which only p proposes is two-step for p;
//	(2) for every E and every correct p, some run in which all correct
//	    processes propose the same value is two-step for p.
func ObjectTwoStep(fac Factory, sc Scenario) TwoStepReport {
	report := TwoStepReport{Scenario: sc, Item1: Verdict{OK: true}, Item2: Verdict{OK: true}}
	subsets := Combinations(sc.N, sc.E)

	// Definition A.1 quantifies over every value v; values are symmetric
	// up to the protocol's total order, so a small and a large key sample
	// both ends of it.
	values := []consensus.Value{consensus.IntValue(1), consensus.IntValue(1 << 40)}

	for _, faulty := range subsets {
		correct := correctOf(sc.N, faulty)

		// Item 1: a lone proposer decides in two steps.
		for _, p := range correct {
			for _, v := range values {
				report.Item1.Runs++
				inputs := map[consensus.ProcessID]consensus.Value{p: v}
				tr, err := EFaultySync(fac, sc, SyncRun{Faulty: faulty, Inputs: inputs, Prefer: p})
				if err != nil {
					report.Item1.fail("E=%v p=%s v=%s: %v", faulty, p, v, err)
					continue
				}
				if !tr.TwoStepFor(p, sc.Delta) {
					report.Item1.fail("E=%v: lone proposer %s of %s not two-step", faulty, p, v)
				}
			}
		}

		// Item 2: unanimous proposals.
		for _, v := range values {
			inputs := make(map[consensus.ProcessID]consensus.Value, len(correct))
			for _, p := range correct {
				inputs[p] = v
			}
			for _, p := range correct {
				report.Item2.Runs++
				tr, err := EFaultySync(fac, sc, SyncRun{Faulty: faulty, Inputs: inputs, Prefer: p})
				if err != nil {
					report.Item2.fail("E=%v p=%s v=%s: %v", faulty, p, v, err)
					continue
				}
				if !tr.TwoStepFor(p, sc.Delta) {
					report.Item2.fail("E=%v: unanimous run of %s not two-step for %s", faulty, v, p)
				}
			}
		}
	}
	return report
}

// existsTwoStepForSomeone tries the natural witness schedule (prefer the
// correct process with the greatest input), then every other correct
// process, and reports whether any schedule was two-step for some process.
func existsTwoStepForSomeone(
	fac Factory,
	sc Scenario,
	faulty []consensus.ProcessID,
	inputs map[consensus.ProcessID]consensus.Value,
	correct []consensus.ProcessID,
	v *Verdict,
) bool {
	order := make([]consensus.ProcessID, 0, len(correct))
	if best, ok := maxInputProcess(inputs, correct); ok {
		order = append(order, best)
	}
	for _, p := range correct {
		if len(order) == 0 || p != order[0] {
			order = append(order, p)
		}
	}
	for _, prefer := range order {
		v.Runs++
		tr, err := EFaultySync(fac, sc, SyncRun{Faulty: faulty, Inputs: inputs, Prefer: prefer})
		if err != nil {
			continue
		}
		if len(tr.TwoStepProcesses(sc.Delta)) > 0 {
			return true
		}
	}
	return false
}

// maxInputProcess returns the correct process with the greatest input,
// breaking ties by lowest id.
func maxInputProcess(
	inputs map[consensus.ProcessID]consensus.Value,
	correct []consensus.ProcessID,
) (consensus.ProcessID, bool) {
	best := consensus.NoProcess
	bestVal := consensus.None
	for _, p := range correct {
		val, ok := inputs[p]
		if !ok {
			continue
		}
		if best == consensus.NoProcess || bestVal.Less(val) {
			best, bestVal = p, val
		}
	}
	return best, best != consensus.NoProcess
}

// taskInputFamilies generates the structured family of initial
// configurations used to sample the universal quantifier of Definition 4
// item 1: ascending and descending assignments (the maximum sits at either
// end), a lone-maximum assignment, a two-block split, and two seeded random
// assignments.
func taskInputFamilies(sc Scenario) []map[consensus.ProcessID]consensus.Value {
	n := sc.N
	mk := func(f func(i int) int64) map[consensus.ProcessID]consensus.Value {
		m := make(map[consensus.ProcessID]consensus.Value, n)
		for i := 0; i < n; i++ {
			m[consensus.ProcessID(i)] = consensus.IntValue(f(i))
		}
		return m
	}
	fams := []map[consensus.ProcessID]consensus.Value{
		mk(func(i int) int64 { return int64(i + 1) }),     // ascending
		mk(func(i int) int64 { return int64(n - i) }),     // descending
		mk(func(i int) int64 { return 1 }),                // unanimous low
		mk(func(i int) int64 { return int64(1 + i%2) }),   // alternating
		mk(func(i int) int64 { return int64(1 + i/2*2) }), // pairs
	}
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	for k := 0; k < 2; k++ {
		fams = append(fams, mk(func(i int) int64 { return 1 + rng.Int63n(int64(n)) }))
	}
	return fams
}
