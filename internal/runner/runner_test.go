package runner

import (
	"testing"

	"repro/internal/consensus"
)

func TestCombinationsCountAndOrder(t *testing.T) {
	// C(5,2) = 10, lexicographic.
	got := Combinations(5, 2)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 1 {
		t.Fatalf("first = %v", got[0])
	}
	if got[9][0] != 3 || got[9][1] != 4 {
		t.Fatalf("last = %v", got[9])
	}
	seen := make(map[string]struct{})
	for _, set := range got {
		key := ""
		prev := consensus.ProcessID(-1)
		for _, p := range set {
			if p <= prev {
				t.Fatalf("set not strictly increasing: %v", set)
			}
			prev = p
			key += p.String() + ","
		}
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate set %v", set)
		}
		seen[key] = struct{}{}
	}
}

func TestCombinationsEdgeCases(t *testing.T) {
	if got := Combinations(4, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("C(4,0) = %v", got)
	}
	if got := Combinations(3, 3); len(got) != 1 {
		t.Errorf("C(3,3) = %v", got)
	}
	if got := Combinations(3, 4); got != nil {
		t.Errorf("C(3,4) = %v, want nil", got)
	}
	if got := Combinations(6, 3); len(got) != 20 {
		t.Errorf("C(6,3) = %d sets, want 20", len(got))
	}
}

func TestCorrectOf(t *testing.T) {
	got := correctOf(5, []consensus.ProcessID{1, 3})
	want := []consensus.ProcessID{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("correctOf = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("correctOf = %v, want %v", got, want)
		}
	}
}

func TestTaskInputFamiliesDeterministic(t *testing.T) {
	sc := Scenario{N: 5, F: 2, E: 1, Delta: 10, Seed: 9}
	a := taskInputFamilies(sc)
	b := taskInputFamilies(sc)
	if len(a) != len(b) || len(a) < 5 {
		t.Fatalf("family counts differ or too few: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for p, v := range a[i] {
			if b[i][p] != v {
				t.Fatalf("family %d not deterministic at %s: %v vs %v", i, p, v, b[i][p])
			}
		}
	}
	// Ascending family puts the maximum at the last process.
	if a[0][consensus.ProcessID(4)] != consensus.IntValue(5) {
		t.Fatalf("ascending family wrong: %v", a[0])
	}
	// Descending family puts it at the first.
	if a[1][consensus.ProcessID(0)] != consensus.IntValue(5) {
		t.Fatalf("descending family wrong: %v", a[1])
	}
}

func TestMaxInputProcess(t *testing.T) {
	inputs := map[consensus.ProcessID]consensus.Value{
		0: consensus.IntValue(3),
		1: consensus.IntValue(9),
		2: consensus.IntValue(9),
	}
	p, ok := maxInputProcess(inputs, []consensus.ProcessID{0, 1, 2})
	if !ok || p != 1 {
		t.Fatalf("maxInputProcess = %v ok=%v, want p1 (lowest id among ties)", p, ok)
	}
	// Restricting to correct processes matters.
	p, ok = maxInputProcess(inputs, []consensus.ProcessID{0})
	if !ok || p != 0 {
		t.Fatalf("maxInputProcess = %v ok=%v", p, ok)
	}
	if _, ok := maxInputProcess(inputs, nil); ok {
		t.Fatal("maxInputProcess found someone with no correct processes")
	}
}
