package planner_test

import (
	"errors"
	"testing"

	"repro/internal/consensus"
	"repro/internal/planner"
	"repro/internal/quorum"
)

// triangle builds a tiny 4-site matrix: a, b, c close together, d far away.
func triangle() ([]string, [][]consensus.Duration) {
	sites := []string{"a", "b", "c", "d"}
	rtt := [][]consensus.Duration{
		{0, 10, 20, 200},
		{10, 0, 10, 200},
		{20, 10, 0, 200},
		{200, 200, 200, 0},
	}
	return sites, rtt
}

func TestSolvePicksCloseCluster(t *testing.T) {
	sites, rtt := triangle()
	plan, err := planner.Solve(planner.Request{
		Mode:  quorum.Object,
		F:     1,
		E:     1,
		Sites: sites,
		RTT:   rtt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != quorum.ObjectMinProcesses(1, 1) {
		t.Fatalf("N = %d", plan.N)
	}
	// The 3 close sites must be chosen over anything involving d.
	for _, r := range plan.Replicas {
		if sites[r] == "d" {
			t.Fatalf("placement includes the far site: %v", plan.Replicas)
		}
	}
	// Proxy at a co-located site needs the 2nd closest replica (n−e = 2).
	if got := plan.ProxyLatency[0]; got != 10 {
		t.Fatalf("proxy a latency = %d, want 10", got)
	}
	// Proxy at d pays the distance to the cluster.
	if got := plan.ProxyLatency[3]; got != 200 {
		t.Fatalf("proxy d latency = %d, want 200", got)
	}
}

func TestSolveObjectiveMax(t *testing.T) {
	sites, rtt := triangle()
	req := planner.Request{
		Mode: quorum.Object, F: 1, E: 1,
		Sites: sites, RTT: rtt,
		ProxySites: []int{3}, // only the far region hosts clients
		Objective:  planner.MinimizeMax,
	}
	plan, err := planner.Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	// With clients only at d, a placement containing d wins: the proxy's
	// closest replica is co-located (0) and the 2nd closest is 200, equal
	// to the all-close placement... so just assert the objective value is
	// minimal over placements: 200.
	if plan.MaxLatency != 200 {
		t.Fatalf("max latency = %d, want 200", plan.MaxLatency)
	}
}

func TestSolveErrors(t *testing.T) {
	sites, rtt := triangle()
	if _, err := planner.Solve(planner.Request{Mode: quorum.Object, F: 3, E: 1, Sites: sites, RTT: rtt}); !errors.Is(err, planner.ErrNoPlacement) {
		t.Fatalf("want ErrNoPlacement, got %v", err)
	}
	if _, err := planner.Solve(planner.Request{Mode: quorum.Object, F: 1, E: 2, Sites: sites, RTT: rtt}); err == nil {
		t.Fatal("accepted e > f")
	}
	if _, err := planner.Solve(planner.Request{Mode: quorum.Object, F: 1, E: 1, Sites: sites, RTT: rtt[:2]}); err == nil {
		t.Fatal("accepted malformed RTT")
	}
}

func TestCompareShowsTheHeadline(t *testing.T) {
	// 7 sites so every formulation fits for f=2, e=2.
	sites := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6"}
	rtt := make([][]consensus.Duration, 7)
	for i := range rtt {
		rtt[i] = make([]consensus.Duration, 7)
		for j := range rtt[i] {
			if i != j {
				d := 10 * consensus.Duration(1+abs(i-j))
				rtt[i][j] = d
			}
		}
	}
	plans, err := planner.Compare(planner.Request{F: 2, E: 2, Sites: sites, RTT: rtt})
	if err != nil {
		t.Fatal(err)
	}
	obj, task, lam := plans[quorum.Object], plans[quorum.Task], plans[quorum.Lamport]
	if !(obj.N < task.N && task.N < lam.N) {
		t.Fatalf("replica counts not strictly increasing: %d %d %d", obj.N, task.N, lam.N)
	}
	// Fewer replicas can never hurt: the object plan's mean latency must
	// be at most the Lamport plan's (same fast quorum distance order, a
	// superset of placements effectively).
	if obj.MeanLatency > lam.MeanLatency {
		t.Fatalf("object mean %.0f > lamport mean %.0f", obj.MeanLatency, lam.MeanLatency)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
