// Package planner turns the paper's bounds into deployment advice: given a
// desired crash tolerance f, a fast-path tolerance e, a consensus
// formulation, and a latency matrix between candidate sites, it computes
// how many replicas are needed, which sites to place them at, and what
// fast-path commit latency each client region can expect.
//
// The latency model matches the protocols' fast path: a proxy at site s
// commits after one message delay to the replicas and one back, gated by
// the (n−e)-th closest replica (counting a co-located replica as distance
// zero). The planner searches placements exhaustively (candidate counts in
// the tens — realistic for cloud regions), optimizing the mean or the
// maximum proxy latency.
package planner

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/consensus"
	"repro/internal/quorum"
)

// ErrNoPlacement is returned when the candidate set is smaller than the
// required replica count.
var ErrNoPlacement = errors.New("planner: not enough candidate sites")

// Objective selects what a placement search minimizes.
type Objective int

const (
	// MinimizeMean minimizes the mean commit latency over proxy sites.
	MinimizeMean Objective = iota + 1
	// MinimizeMax minimizes the worst proxy site's commit latency.
	MinimizeMax
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MinimizeMean:
		return "mean"
	case MinimizeMax:
		return "max"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Request describes a deployment problem.
type Request struct {
	// Mode is the consensus formulation (task/object/lamport).
	Mode quorum.Mode
	// F and E are the resilience and fast-path thresholds.
	F, E int
	// Sites names the candidate sites; RTT[i][j] is the round-trip time
	// between sites i and j (RTT[i][i] = 0).
	Sites []string
	RTT   [][]consensus.Duration
	// ProxySites are indices of sites that host client proxies; empty
	// means every candidate site.
	ProxySites []int
	// Objective defaults to MinimizeMean.
	Objective Objective
}

// Plan is the planner's answer.
type Plan struct {
	// N is the required replica count for (Mode, F, E).
	N int
	// Replicas are the chosen site indices, ascending.
	Replicas []int
	// ProxyLatency maps each proxy site index to its expected fast-path
	// commit latency.
	ProxyLatency map[int]consensus.Duration
	// MeanLatency and MaxLatency summarize ProxyLatency.
	MeanLatency float64
	MaxLatency  consensus.Duration
}

// Describe renders the plan against the request's site names.
func (p Plan) Describe(req Request) string {
	names := make([]string, len(p.Replicas))
	for i, s := range p.Replicas {
		names[i] = req.Sites[s]
	}
	return fmt.Sprintf("n=%d at %v; mean proxy commit %.0f, worst %d", p.N, names, p.MeanLatency, p.MaxLatency)
}

// Solve finds the optimal placement for the request.
func Solve(req Request) (Plan, error) {
	if req.F < 0 || req.E < 0 || req.E > req.F {
		return Plan{}, fmt.Errorf("planner: need 0 ≤ e ≤ f, got f=%d e=%d", req.F, req.E)
	}
	if len(req.Sites) == 0 || len(req.RTT) != len(req.Sites) {
		return Plan{}, fmt.Errorf("planner: sites/RTT shape mismatch")
	}
	for i, row := range req.RTT {
		if len(row) != len(req.Sites) {
			return Plan{}, fmt.Errorf("planner: RTT row %d has %d entries, want %d", i, len(row), len(req.Sites))
		}
	}
	n := quorum.MinProcesses(req.Mode, req.F, req.E)
	if n > len(req.Sites) {
		return Plan{}, fmt.Errorf("planner: %s f=%d e=%d needs %d sites, have %d: %w",
			req.Mode, req.F, req.E, n, len(req.Sites), ErrNoPlacement)
	}
	proxies := req.ProxySites
	if len(proxies) == 0 {
		proxies = make([]int, len(req.Sites))
		for i := range proxies {
			proxies[i] = i
		}
	}
	objective := req.Objective
	if objective == 0 {
		objective = MinimizeMean
	}

	best := Plan{}
	bestScore := -1.0
	forEachSubset(len(req.Sites), n, func(subset []int) {
		plan := evaluate(req, subset, proxies, n)
		var score float64
		if objective == MinimizeMax {
			score = float64(plan.MaxLatency)
		} else {
			score = plan.MeanLatency
		}
		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = plan
		}
	})
	return best, nil
}

// evaluate computes the plan metrics for one placement.
func evaluate(req Request, subset, proxies []int, n int) Plan {
	replicas := make([]int, len(subset))
	copy(replicas, subset)
	plan := Plan{
		N:            n,
		Replicas:     replicas,
		ProxyLatency: make(map[int]consensus.Duration, len(proxies)),
	}
	fastQuorum := n - req.E
	total := 0.0
	for _, proxy := range proxies {
		lat := proxyCommitLatency(req.RTT, replicas, proxy, fastQuorum)
		plan.ProxyLatency[proxy] = lat
		total += float64(lat)
		if lat > plan.MaxLatency {
			plan.MaxLatency = lat
		}
	}
	if len(proxies) > 0 {
		plan.MeanLatency = total / float64(len(proxies))
	}
	return plan
}

// proxyCommitLatency is the fast-path commit latency for a proxy at site
// `proxy`: the RTT to the fastQuorum-th closest replica (a co-located
// replica counts at distance zero; the proxy itself fills one quorum slot
// only if a replica lives at its site).
func proxyCommitLatency(rtt [][]consensus.Duration, replicas []int, proxy, fastQuorum int) consensus.Duration {
	dists := make([]consensus.Duration, 0, len(replicas))
	for _, r := range replicas {
		dists = append(dists, rtt[proxy][r])
	}
	sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })
	if fastQuorum < 1 {
		fastQuorum = 1
	}
	if fastQuorum > len(dists) {
		fastQuorum = len(dists)
	}
	return dists[fastQuorum-1]
}

// forEachSubset enumerates all k-subsets of {0..n-1}.
func forEachSubset(n, k int, visit func([]int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		visit(idx)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Compare solves the same request under every formulation and returns the
// plans keyed by mode — the planner's version of the paper's headline: the
// object formulation needs the fewest sites and commits fastest.
func Compare(req Request) (map[quorum.Mode]Plan, error) {
	out := make(map[quorum.Mode]Plan, 3)
	for _, mode := range []quorum.Mode{quorum.Object, quorum.Task, quorum.Lamport} {
		r := req
		r.Mode = mode
		plan, err := Solve(r)
		if err != nil {
			if errors.Is(err, ErrNoPlacement) {
				continue // a formulation may simply not fit
			}
			return nil, err
		}
		out[mode] = plan
	}
	if len(out) == 0 {
		return nil, ErrNoPlacement
	}
	return out, nil
}
