package planner_test

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/planner"
	"repro/internal/quorum"
)

// Example plans a three-site deployment of the object protocol: the two
// close sites plus one of the pair's neighbours win, and the co-located
// proxy commits at the RTT of its second-closest replica (fast quorum
// n−e = 2).
func Example() {
	sites := []string{"paris", "frankfurt", "tokyo"}
	rtt := [][]consensus.Duration{
		{0, 15, 250},
		{15, 0, 240},
		{250, 240, 0},
	}
	plan, err := planner.Solve(planner.Request{
		Mode:  quorum.Object,
		F:     1,
		E:     1,
		Sites: sites,
		RTT:   rtt,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("replicas needed: %d\n", plan.N)
	fmt.Printf("paris proxy commits in %d ms\n", plan.ProxyLatency[0])
	// Output:
	// replicas needed: 3
	// paris proxy commits in 15 ms
}
