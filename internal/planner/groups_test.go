package planner_test

import (
	"fmt"
	"testing"

	"repro/internal/planner"
	"repro/internal/shard"
)

// TestPlanGroupsFeedsRangeRouter is the integration contract: PlanGroups
// output must construct a shard.RangeRouter of exactly n groups, with
// every sampled key landing in a valid group and the population split
// roughly evenly.
func TestPlanGroupsFeedsRangeRouter(t *testing.T) {
	sample := make([]string, 0, 1000)
	for i := 0; i < 1000; i++ {
		sample = append(sample, fmt.Sprintf("user:%04d", i))
	}
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		bounds, err := planner.PlanGroups(sample, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r, err := shard.NewRangeRouter(bounds)
		if err != nil {
			t.Fatalf("n=%d: bounds rejected by router: %v", n, err)
		}
		if r.Groups() != n {
			t.Fatalf("n=%d: router spans %d groups", n, r.Groups())
		}
		counts := make([]int, n)
		for _, k := range sample {
			counts[r.Group(k)]++
		}
		want := len(sample) / n
		for g, c := range counts {
			if c < want/2 || c > want*2 {
				t.Errorf("n=%d: group %d holds %d keys, want ~%d", n, g, c, want)
			}
		}
	}
}

// TestPlanGroupsLocality checks the point of range planning: keys sharing
// a prefix cluster into few groups instead of scattering across all.
func TestPlanGroupsLocality(t *testing.T) {
	var sample []string
	for tenant := 0; tenant < 8; tenant++ {
		for i := 0; i < 100; i++ {
			sample = append(sample, fmt.Sprintf("t%d/obj%03d", tenant, i))
		}
	}
	bounds, err := planner.PlanGroups(sample, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.NewRangeRouter(bounds)
	if err != nil {
		t.Fatal(err)
	}
	for tenant := 0; tenant < 8; tenant++ {
		groups := map[int]bool{}
		for i := 0; i < 100; i++ {
			groups[r.Group(fmt.Sprintf("t%d/obj%03d", tenant, i))] = true
		}
		if len(groups) > 2 {
			t.Errorf("tenant %d scattered across %d groups, want <= 2 (range locality)", tenant, len(groups))
		}
	}
}

func TestPlanGroupsDegenerate(t *testing.T) {
	if _, err := planner.PlanGroups([]string{"a", "b"}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	bounds, err := planner.PlanGroups(nil, 1)
	if err != nil || len(bounds) != 0 {
		t.Errorf("n=1 = (%v, %v), want empty bounds", bounds, err)
	}
	if _, err := planner.PlanGroups([]string{"a", "a", "a"}, 2); err == nil {
		t.Error("1 distinct key accepted for 2 groups")
	}
	// Duplicates in the sample must not produce duplicate bounds.
	sample := []string{"a", "a", "b", "b", "c", "c", "d", "d"}
	bounds, err = planner.PlanGroups(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.NewRangeRouter(bounds); err != nil {
		t.Fatalf("bounds %v rejected: %v", bounds, err)
	}
}
