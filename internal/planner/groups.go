package planner

import (
	"fmt"
	"sort"
)

// PlanGroups turns a sample of the keyspace into range bounds for n
// consensus groups: it sorts the sample, cuts it into n equal-population
// slices, and returns the n-1 cut keys — strictly ascending, ready for
// shard.NewRangeRouter (group i serves keys in [bounds[i-1], bounds[i])).
// A hash router balances uniformly but scatters key locality; a range
// router planned from observed keys keeps prefixes together (one tenant,
// one group) while still splitting the population evenly — the same
// even-share objective Solve applies to sites, applied to the keyspace.
//
// The sample needs at least n distinct keys to define n non-empty ranges;
// fewer is an error (fall back to a hash router when the keyspace is
// unknown or tiny).
func PlanGroups(sample []string, n int) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("planner: group count must be >= 1, got %d", n)
	}
	if n == 1 {
		return []string{}, nil
	}
	distinct := make([]string, len(sample))
	copy(distinct, sample)
	sort.Strings(distinct)
	w := 0
	for i, k := range distinct {
		if i == 0 || k != distinct[w-1] {
			distinct[w] = k
			w++
		}
	}
	distinct = distinct[:w]
	if len(distinct) < n {
		return nil, fmt.Errorf("planner: %d distinct sample keys cannot seed %d groups", len(distinct), n)
	}
	bounds := make([]string, 0, n-1)
	for g := 1; g < n; g++ {
		// The g-th cut sits at the g/n quantile of the distinct population.
		bounds = append(bounds, distinct[g*len(distinct)/n])
	}
	// Distinctness of the sample makes quantile indexes strictly increasing,
	// so the bounds are strictly ascending by construction.
	return bounds, nil
}
