package bench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/consensus"
)

// Sample accumulates scalar observations (latencies in ticks, counts, …).
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddTicks appends a tick-valued observation.
func (s *Sample) AddTicks(t consensus.Time) { s.Add(float64(t)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (NaN when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-th percentile with nearest-rank semantics
// (NaN when empty). p is in [0, 100].
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(s.xs))
	copy(sorted, s.xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Max returns the maximum (NaN when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// InDelta formats the mean as a multiple of Δ, e.g. "2.0Δ".
func (s *Sample) InDelta(delta consensus.Duration) string {
	if s.N() == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1fΔ", s.Mean()/float64(delta))
}

// Fmt formats the mean with one decimal, or an em-dash when empty.
func (s *Sample) Fmt() string {
	if s.N() == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f", s.Mean())
}
