package bench

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
	"repro/internal/sim"
)

// WAN regenerates F3: commit latency of a lone proposer (the client's
// proxy) in a geo-replicated deployment, per proxy region and protocol, in
// milliseconds. Each protocol deploys on the first n regions of the shared
// placement for f=2, e=2:
//
//	core-object  n = 2e+f−1 = 5
//	epaxos       n = 2f+1  = 5 (e = ⌈(f+1)/2⌉ = 2)
//	paxos        n = 2f+1  = 5 (leader in region 0)
//	fastpaxos    n = 2e+f+1 = 7 (two extra regions)
//
// This is the paper's C5 claim made concrete: Fast Paxos must both run two
// more replicas and collect n−e votes out of the larger, farther-flung
// cluster, so every proxy pays for the extra regions' distance.
func WAN() *Result {
	const f, e = 2, 2
	nObject := quorum.ObjectMinProcesses(f, e) // 5
	nFast := quorum.LamportMinProcesses(f, e)  // 7
	nPlain := quorum.PlainMinProcesses(f)      // 5
	eEp := quorum.EPaxosFastThreshold(f)       // 2

	r := &Result{
		ID:    "F3",
		Title: fmt.Sprintf("WAN commit latency at the proxy, ms (f=%d, e=%d; regions in deployment order)", f, e),
		Header: []string{
			"proxy region",
			fmt.Sprintf("core-object (n=%d)", nObject),
			fmt.Sprintf("epaxos (n=%d)", nPlain),
			fmt.Sprintf("fastpaxos (n=%d)", nFast),
			fmt.Sprintf("paxos (n=%d, leader %s)", nPlain, wanRegions[0].Name),
		},
	}
	for proxy := 0; proxy < nObject; proxy++ {
		p := consensus.ProcessID(proxy)
		r.AddRow(
			wanRegions[proxy].Name,
			wanLatency(protocols.CoreObjectFactory, nObject, f, e, p),
			wanLatency(protocols.EPaxosFactory(p), nPlain, f, eEp, p),
			wanLatency(protocols.FastPaxosFactory, nFast, f, e, p),
			wanLatency(protocols.PaxosFactory, nPlain, f, e, p),
		)
	}
	r.AddNote(fmt.Sprintf("Deployment order: %s | extra fastpaxos regions: %s, %s.",
		regionNames(nObject), wanRegions[nObject].Name, wanRegions[nObject+1].Name))
	r.AddNote("Fast path latency = RTT to the (n−e)-th closest replica of the protocol's own cluster; the two extra Fast Paxos replicas push that quorum farther for every proxy.")
	r.AddNote("Paxos pays proxy→leader forwarding plus the leader's quorum round trip, except when the proxy is the leader region itself.")
	return r
}

func regionNames(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += ", "
		}
		s += wanRegions[i].Name
	}
	return s
}

// wanLatency runs one lone-proposal WAN run and returns the proxy's commit
// latency formatted in ms.
func wanLatency(fac runner.Factory, n, f, e int, proxy consensus.ProcessID) string {
	// Δ must upper-bound the one-way delay for the fast path's timers not
	// to fire mid-flight: use half the max RTT of the submatrix plus
	// slack.
	matrix := wanMatrix(n)
	policy := sim.NewWAN(matrix, 0, 1)
	delta := policy.MaxRTT()/2 + 10

	cl, err := sim.New(sim.Options{
		N:       n,
		Delta:   delta,
		Policy:  policy,
		Horizon: consensus.Time(400 * delta),
	})
	if err != nil {
		return "err"
	}
	oracle := cl.Oracle()
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		cl.SetNode(p, fac(consensus.Config{ID: p, N: n, F: f, E: e, Delta: delta}, oracle))
	}
	cl.SchedulePropose(proxy, 0, consensus.IntValue(7))
	tr := cl.Run(func(c *sim.Cluster) bool {
		_, ok := c.Trace().DecisionOf(proxy)
		return ok
	})
	d, ok := tr.DecisionOf(proxy)
	if !ok {
		return "∞"
	}
	return fmt.Sprintf("%d ms", d.At)
}
