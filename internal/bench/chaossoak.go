package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

// ChaosSoak regenerates T7: a handful of small whole-stack chaos scenarios
// (live durable cluster + nemesis + linearizability check) so the report
// exercises the end-to-end harness, not just the simulator. The full-size
// campaign lives in `make chaos`; these rows are sized for report latency.
func ChaosSoak() *Result {
	r := &Result{
		ID:     "T7",
		Title:  "whole-stack chaos soak (live durable cluster, nemesis, linearizability check)",
		Header: []string{"seed", "clients", "ops", "ambiguous", "fault drops", "converge", "check", "linearizable"},
	}
	o := chaos.DefaultOptions()
	o.OpsPerClient = 25
	o.Steps = 3
	o.Scale = 100 * time.Millisecond
	for seed := int64(1); seed <= 3; seed++ {
		dir, err := os.MkdirTemp("", "chaossoak")
		if err != nil {
			r.AddNote("seed %d: tempdir: %v", seed, err)
			continue
		}
		res, err := chaos.RunScenario(dir, seed, o)
		os.RemoveAll(dir)
		if err != nil {
			r.AddRow(seed, o.Clients, "-", "-", "-", "-", "-", fmt.Sprintf("harness error: %v", err))
			continue
		}
		r.AddRow(seed, o.Clients, res.Ops, res.Ambiguous, res.FaultDrops,
			res.Converge.Round(time.Millisecond), res.CheckDuration.Round(time.Microsecond),
			verdict(res.Check.Ok && !res.Check.TimedOut, true))
	}
	r.AddNote("Each seed boots a real 3-replica durable cluster (fsync=always), runs %d clients × %d ops through partitions, a crash-restart, and message loss, then checks the merged history for linearizability. Reproduce any seed with: go test -tags chaos ./internal/chaos -run TestChaosFull -chaos.seed=N -chaos.seeds=1", o.Clients, o.OpsPerClient)
	return r
}
