package bench

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// DurableRecovery regenerates T3b: the durability subsystem's operational
// costs, complementing T3's protocol-level recovery correctness. For each
// fsync policy it measures the append-path latency, then simulates a crash
// (a torn write injected through the WAL failpoint), restarts, and reports
// how much the replay recovered and how long it took — the crash-restart
// column. A final column shows the replay cost after a snapshot has
// truncated the log behind it.
func DurableRecovery() *Result {
	r := &Result{
		ID:    "T3b",
		Title: "durability: fsync-policy append latency and crash-restart recovery",
		Header: []string{
			"fsync", "appends", "append µs/op",
			"crash: recovered", "torn tail", "recovery ms",
			"after snapshot cut",
		},
	}
	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		c, err := durableRecoveryCase(pol)
		if err != nil {
			r.AddRow(pol.String(), "—", "—", "—", "—", "—", fmt.Sprintf("error: %v", err))
			continue
		}
		r.AddRow(
			pol.String(), c.appends, fmt.Sprintf("%.1f", c.appendUS),
			fmt.Sprintf("%d/%d", c.recovered, c.appends), verdict(c.torn, true),
			fmt.Sprintf("%.2f", c.recoveryMS),
			fmt.Sprintf("%d recs in %d seg(s)", c.afterCut, c.cutSegments),
		)
	}
	r.AddNote("append µs/op includes the per-record fsync under `always` and a host-driven Sync every %d appends under `interval`; `never` defers everything to the OS.", syncEveryAppends)
	r.AddNote("crash: recovered counts records surviving an injected torn write (the record being written when the crash hit is cut mid-frame and must be truncated away on restart, hence n/n+1).")
	r.AddNote("after snapshot cut: a snapshot is saved at the midpoint, the WAL truncated behind it, and the tail replayed — the steady-state restart path of a snapshotting replica.")
	return r
}

const (
	benchAppends     = 512
	benchPayloadLen  = 128
	syncEveryAppends = 32
)

type durableRecoveryResult struct {
	appends     int
	appendUS    float64
	recovered   int
	torn        bool
	recoveryMS  float64
	afterCut    int
	cutSegments int
}

func durableRecoveryCase(pol wal.SyncPolicy) (durableRecoveryResult, error) {
	var res durableRecoveryResult
	dir, err := os.MkdirTemp("", "bench-wal-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	// Phase 1: timed append workload under the policy, small segments so the
	// run spans several rotations.
	opts := wal.Options{Policy: pol, SegmentBytes: 16 << 10}
	w, _, err := wal.Open(dir, opts)
	if err != nil {
		return res, err
	}
	payload := bytes.Repeat([]byte{0xAB}, benchPayloadLen)
	start := time.Now()
	for i := 0; i < benchAppends; i++ {
		if _, err := w.Append(payload); err != nil {
			return res, err
		}
		if pol == wal.SyncInterval && (i+1)%syncEveryAppends == 0 {
			if err := w.Sync(); err != nil {
				return res, err
			}
		}
	}
	res.appendUS = float64(time.Since(start).Microseconds()) / benchAppends
	if err := w.Close(); err != nil {
		return res, err
	}

	// Phase 2: crash. Reopen with a failpoint sized to tear the second
	// append mid-frame, exactly as a power loss would.
	frame := int64(16 + benchPayloadLen)
	crashed, _, err := wal.Open(dir, wal.Options{Policy: pol, FailpointLimit: frame + frame/2})
	if err != nil {
		return res, err
	}
	extra := 0
	for {
		if _, err := crashed.Append(payload); err != nil {
			break
		}
		extra++
	}
	crashed.Close() // poisoned: closes the fd without masking the torn tail
	res.appends = benchAppends + extra

	// Phase 3: restart — the crash-restart column.
	t0 := time.Now()
	w2, info, err := wal.Open(dir, wal.Options{Policy: pol})
	if err != nil {
		return res, err
	}
	rep, err := w2.Replay(0, func(uint64, []byte) error { return nil })
	if err != nil {
		w2.Close()
		return res, err
	}
	res.recoveryMS = float64(time.Since(t0).Microseconds()) / 1000
	res.recovered = rep.Records
	res.torn = info.TornTail || rep.TornTail

	// Phase 4: snapshot at the midpoint, truncate the log behind it, replay
	// the tail — a snapshotting replica's steady-state restart.
	cut := uint64(benchAppends / 2)
	if err := storage.Save(dir, cut, payload); err != nil {
		w2.Close()
		return res, err
	}
	if _, err := w2.TruncateBefore(cut); err != nil {
		w2.Close()
		return res, err
	}
	tail := 0
	if _, err := w2.Replay(cut, func(uint64, []byte) error { tail++; return nil }); err != nil {
		w2.Close()
		return res, err
	}
	res.afterCut = tail
	res.cutSegments = w2.Stats().Segments
	return res, w2.Close()
}
