package bench

import (
	"repro/internal/lowerbound"
	"repro/internal/protocols"
	"repro/internal/quorum"
)

// LowerBounds regenerates T4: executed Appendix-B constructions below and at
// the tight bounds. Below the bound the construction must force an
// agreement violation against the paper's own protocol; at the bound the
// identical schedule must be repaired by the recovery rule.
func LowerBounds() *Result {
	r := &Result{
		ID:    "T4",
		Title: "executed lower-bound constructions (Theorems 5 & 6, 'only if')",
		Header: []string{
			"construction", "protocol", "f", "e", "n", "vs bound",
			"fast decided", "violation", "expected",
		},
	}
	taskCases := []struct{ f, e int }{{2, 2}, {3, 2}, {3, 3}, {4, 3}, {4, 4}}
	for _, c := range taskCases {
		bound := quorum.TaskMinProcesses(c.f, c.e)
		for _, n := range []int{quorum.TaskFastSide(c.f, c.e) - 1, bound} {
			w, err := lowerbound.TaskWitness(protocols.CoreTaskFactory, n, c.f, c.e, benchDelta)
			if err != nil {
				continue
			}
			expectViolation := n < bound
			r.AddRow("B.1 (task)", "core-task", c.f, c.e, n, rel(n, bound),
				mark(w.FastDecided), mark(w.Violated), verdict(w.Violated, expectViolation))
		}
	}
	objCases := []struct{ f, e int }{{3, 3}, {4, 4}, {5, 4}, {5, 5}}
	for _, c := range objCases {
		bound := quorum.ObjectMinProcesses(c.f, c.e)
		for _, n := range []int{quorum.ObjectFastSide(c.f, c.e) - 1, bound} {
			w, err := lowerbound.ObjectWitness(protocols.CoreObjectFactory, n, c.f, c.e, benchDelta)
			if err != nil {
				continue
			}
			expectViolation := n < bound
			r.AddRow("B.2 (object)", "core-object", c.f, c.e, n, rel(n, bound),
				mark(w.FastDecided), mark(w.Violated), verdict(w.Violated, expectViolation))
		}
	}
	// Fast Paxos one below Lamport's bound, at the paper's task bound.
	for _, c := range taskCases {
		n := quorum.LamportFastSide(c.f, c.e) - 1
		w, err := lowerbound.TaskWitnessVariant(protocols.FastPaxosFactory, n, c.f, c.e, benchDelta, lowerbound.TaskLowFast)
		if err != nil {
			continue
		}
		r.AddRow("B.1 low-fast", "fastpaxos", c.f, c.e, n, "lamport-1",
			mark(w.FastDecided), mark(w.Violated), verdict(w.Violated, true))
		// Same schedule, same n, against the paper's protocol: safe.
		w2, err := lowerbound.TaskWitnessVariant(protocols.CoreTaskFactory, n, c.f, c.e, benchDelta, lowerbound.TaskLowFast)
		if err != nil {
			continue
		}
		r.AddRow("B.1 low-fast", "core-task", c.f, c.e, n, "at bound",
			mark(w2.FastDecided), mark(w2.Violated), verdict(w2.Violated, false))
	}
	r.AddNote("'expected' is ✓ when the observed violation flag matches the theory: violations strictly below each protocol's bound, none at it.")
	r.AddNote("The low-fast rows show Fast Paxos and the paper's task protocol on the SAME schedule at n = 2e+f: Fast Paxos fast-decides the low value and is betrayed by its recovery; the value-ordered fast path refuses that fast decision and stays safe.")
	return r
}

func rel(n, bound int) string {
	switch {
	case n < bound:
		return "below"
	case n == bound:
		return "at bound"
	default:
		return "above"
	}
}
