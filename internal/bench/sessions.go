package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/linear"
	"repro/internal/smr"
	"repro/internal/transport"
)

// SessionRow is one F7 configuration's measurements: aggregate client-side
// throughput through the real TCP wire, for the one-at-a-time legacy client
// versus the pipelined session client at a given in-flight depth.
type SessionRow struct {
	Mode      string  `json:"mode"`    // legacy | session
	Clients   int     `json:"clients"` // concurrent client goroutines
	Depth     int     `json:"depth"`   // per-client in-flight window (1 = serial)
	Ops       int     `json:"ops"`     // committed Puts
	OpsPerSec float64 `json:"opsPerSec"`
	P50Micros float64 `json:"p50Micros"` // issue→completion latency percentiles
	P95Micros float64 `json:"p95Micros"`
}

// SessionLinearRun records F7's correctness leg: a large shared-session
// client population whose full history is checked for linearizability.
type SessionLinearRun struct {
	Clients  int  `json:"clients"`  // logical clients (goroutines)
	Sessions int  `json:"sessions"` // TCP connections they multiplex over
	Ops      int  `json:"ops"`      // recorded operations
	Ok       bool `json:"ok"`       // history linearizable
}

// SessionsReport is the machine-readable form of F7 (BENCH_F7.json).
type SessionsReport struct {
	ID           string           `json:"id"`
	Title        string           `json:"title"`
	N            int              `json:"n"`
	F            int              `json:"f"`
	E            int              `json:"e"`
	OpsPerClient int              `json:"opsPerClient"`
	Rows         []SessionRow     `json:"rows"`
	Linear       SessionLinearRun `json:"linear"`
}

// SessionsF7 regenerates F7 for the Experiments registry.
func SessionsF7() *Result {
	r, _ := Sessions(0)
	return r
}

// Sessions regenerates F7: aggregate throughput of the replicated KV store
// through its real TCP client wire, comparing the legacy one-line-at-a-time
// client against the multiplexed session client across client counts and
// pipelining depths — plus a 256-client run, multiplexed over a handful of
// shared connections, whose recorded history is checked for linearizability
// (out-of-order tagged completion must not be observable). depth overrides
// the window used for the deep rows (0 = the default 16, the acceptance
// floor's setting).
func Sessions(depth int) (*Result, *SessionsReport) {
	const n, f, e = 3, 1, 1
	if depth <= 0 {
		depth = 16
	}
	rep := &SessionsReport{
		ID:    "F7",
		Title: fmt.Sprintf("pipelined sessions: client-wire throughput, legacy vs multiplexed (n=%d, f=%d, e=%d, TCP)", n, f, e),
		N:     n, F: f, E: e,
		OpsPerClient: 50,
	}
	res := &Result{
		ID:     "F7",
		Title:  rep.Title,
		Header: []string{"mode", "clients", "depth", "ops", "ops/sec", "p50 µs", "p95 µs"},
	}

	type config struct {
		mode    string
		clients int
		depth   int
	}
	grid := []config{
		{"legacy", 1, 1},
		{"legacy", 8, 1},
		{"legacy", 64, 1},
		{"legacy", 256, 1},
		{"session", 1, depth},
		{"session", 8, 1},
		{"session", 8, depth},
		{"session", 8, 2 * depth},
		{"session", 64, depth},
		{"session", 256, depth},
	}

	var legacy8, session8 float64
	for _, c := range grid {
		row, err := sessionRun(n, f, e, c.mode, c.clients, c.depth, rep.OpsPerClient)
		if err != nil {
			res.AddRow(c.mode, c.clients, c.depth, "—", "err: "+err.Error(), "—", "—")
			continue
		}
		rep.Rows = append(rep.Rows, row)
		res.AddRow(row.Mode, row.Clients, row.Depth, row.Ops,
			fmt.Sprintf("%.0f", row.OpsPerSec),
			fmt.Sprintf("%.0f", row.P50Micros), fmt.Sprintf("%.0f", row.P95Micros))
		if c.clients == 8 {
			if c.mode == "legacy" {
				legacy8 = row.OpsPerSec
			} else if c.depth == depth {
				session8 = row.OpsPerSec
			}
		}
	}
	if legacy8 > 0 && session8 > 0 {
		res.AddNote("8-client speedup, session depth %d vs legacy: %.1fx (pipelined frames amortize the per-op wire round trip; acceptance floor 2x).", depth, session8/legacy8)
	}

	lin, err := sessionLinearRun(n, f, e)
	if err != nil {
		res.AddNote("linearizability leg failed to run: %v", err)
	} else {
		rep.Linear = lin
		res.AddNote("%d logical clients multiplexed over %d shared session connections (%d recorded ops, out-of-order completion): linearizable = %v.",
			lin.Clients, lin.Sessions, lin.Ops, lin.Ok)
	}
	res.AddNote("Every row goes through the real TCP client protocol (HELLO/OHAI negotiation, tagged frames for `session`, bare lines for `legacy`); consensus runs on the in-memory fabric with adaptive batching so the client wire is the variable under test.")
	res.AddNote("depth is the per-client in-flight window: `session` rows issue PutAsync up to depth outstanding futures; p50/p95 measure issue→completion, so deep windows trade per-op latency for aggregate throughput.")
	return res, rep
}

// sessionCluster boots n replicas on the in-memory fabric with a
// client-facing TCP server each, returning the server addresses.
func sessionCluster(n, f, e int) (addrs []string, cleanup func(), err error) {
	mesh := transport.NewMesh(n)
	replicas := make([]*smr.Replica, 0, n)
	servers := make([]*smr.Server, 0, n)
	cleanup = func() {
		for _, s := range servers {
			s.Close()
		}
		for _, r := range replicas {
			r.Close()
		}
		mesh.Close()
	}
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		rep, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		tr, err := mesh.Endpoint(cfg.ID, rep.Handle)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		rep.BindTransport(tr)
		rep.EnableAdaptiveBatching(0)
		rep.Start()
		replicas = append(replicas, rep)
		srv, err := smr.NewServer(rep, "127.0.0.1:0", 30*time.Second)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, cleanup, nil
}

// sessionRun measures one F7 row: clients goroutines hammering the cluster
// through the requested client generation, each with a depth-deep window.
func sessionRun(n, f, e int, mode string, clients, depth, opsPerClient int) (SessionRow, error) {
	row := SessionRow{Mode: mode, Clients: clients, Depth: depth}
	addrs, cleanup, err := sessionCluster(n, f, e)
	if err != nil {
		return row, err
	}
	defer cleanup()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	lats := make([][]float64, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			addr := addrs[c%len(addrs)]
			switch mode {
			case "legacy":
				cl, err := smr.NewClient([]string{addr}, 30*time.Second)
				if err != nil {
					errCh <- err
					return
				}
				defer cl.Close()
				for j := 0; j < opsPerClient; j++ {
					t0 := time.Now()
					if err := cl.Put(fmt.Sprintf("c%d-k%d", c, j), "v"); err != nil {
						errCh <- err
						return
					}
					lats[c] = append(lats[c], float64(time.Since(t0).Microseconds()))
				}
			default:
				sc, err := smr.NewSessionClient([]string{addr}, smr.SessionOptions{
					Timeout: 30 * time.Second,
					Depth:   depth,
				})
				if err != nil {
					errCh <- err
					return
				}
				defer sc.Close()
				// A sliding window of depth outstanding futures: reap the
				// oldest when full, so issue→completion latency includes the
				// queueing the window buys throughput with.
				type inflight struct {
					fut *smr.Future
					t0  time.Time
				}
				window := make([]inflight, 0, depth)
				reap := func(w inflight) error {
					if err := w.fut.Err(); err != nil {
						return err
					}
					lats[c] = append(lats[c], float64(time.Since(w.t0).Microseconds()))
					return nil
				}
				for j := 0; j < opsPerClient; j++ {
					window = append(window, inflight{sc.PutAsync(fmt.Sprintf("c%d-k%d", c, j), "v"), time.Now()})
					if len(window) == depth {
						if err := reap(window[0]); err != nil {
							errCh <- err
							return
						}
						window = window[1:]
					}
				}
				for _, w := range window {
					if err := reap(w); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return row, err
	}

	var lat Sample
	for _, ls := range lats {
		for _, x := range ls {
			lat.Add(x)
		}
	}
	row.Ops = clients * opsPerClient
	row.OpsPerSec = float64(row.Ops) / elapsed.Seconds()
	row.P50Micros = lat.Percentile(50)
	row.P95Micros = lat.Percentile(95)
	return row, nil
}

// sessionLinearRun is F7's correctness leg: 256 logical clients multiplex
// over a small pool of shared session connections (many tags in flight per
// connection, replies completing out of order) and the recorded history
// must check linearizable.
func sessionLinearRun(n, f, e int) (SessionLinearRun, error) {
	const (
		clients      = 256
		sessions     = 16
		opsPerClient = 10
		keys         = 128
	)
	run := SessionLinearRun{Clients: clients, Sessions: sessions}
	addrs, cleanup, err := sessionCluster(n, f, e)
	if err != nil {
		return run, err
	}
	defer cleanup()

	pool := make([]*smr.SessionClient, sessions)
	for i := range pool {
		sc, err := smr.NewSessionClient([]string{addrs[i%len(addrs)]}, smr.SessionOptions{
			Timeout: 30 * time.Second,
			Depth:   64,
		})
		if err != nil {
			return run, err
		}
		defer sc.Close()
		pool[i] = sc
	}

	rec := linear.NewRecorder()
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		id := id
		sc := pool[id%sessions]
		rng := rand.New(rand.NewSource(int64(9000 + id)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsPerClient; j++ {
				key := fmt.Sprintf("k%d", rng.Intn(keys))
				switch rng.Intn(10) {
				case 0, 1: // delete
					p := rec.Invoke(id, linear.KindDelete, key, "")
					if err := sc.Delete(key); err != nil {
						p.Ambiguous()
					} else {
						p.OK()
					}
				case 2, 3, 4: // linearizable read
					p := rec.Invoke(id, linear.KindGet, key, "")
					v, err := sc.GetLinearizable(key)
					switch {
					case err == nil:
						p.Observed(v, true)
					case errors.Is(err, smr.ErrNotFound):
						p.Observed("", false)
					default:
						p.Ambiguous()
					}
				default: // write
					val := fmt.Sprintf("c%d-%d", id, j)
					p := rec.Invoke(id, linear.KindPut, key, val)
					if err := sc.Put(key, val); err != nil {
						p.Ambiguous()
					} else {
						p.OK()
					}
				}
			}
		}()
	}
	wg.Wait()
	run.Ops = rec.Len()
	run.Ok = linear.CheckTimeout(rec.History(), 60*time.Second).Ok
	return run, nil
}
