package bench

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ReadsRow is one F9 configuration: a read-mixed workload against a fresh
// durable 3-process cluster, with linearizable reads served by one of the
// three read paths under test.
type ReadsRow struct {
	Groups  int    `json:"groups"`
	Mode    string `json:"mode"`    // noop | coalesce | lease
	ReadPct int    `json:"readPct"` // GETL share of the mixed phase
	Ops     int    `json:"ops"`     // mixed-phase operations (reads+writes)
	Reads   int    `json:"reads"`   // GETLs among them
	// Mixed-phase aggregate throughput and GETL latency percentiles.
	OpsPerSec float64 `json:"opsPerSec"`
	GetlP50Ms float64 `json:"getlP50Ms"`
	GetlP99Ms float64 `json:"getlP99Ms"`
	// FsyncsPerRead is measured over a separate pure-read phase: cluster
	// fsync delta per GETL. The lease path must not touch the WAL at all
	// (the row errors if it does); the barrier paths pay only no-op vote
	// records, which group-commit across readers.
	FsyncsPerRead float64 `json:"fsyncsPerRead"`
	// SpeedupVsNoop is mixed-phase OpsPerSec against the per-read-no-op
	// row with the same groups and read share.
	SpeedupVsNoop float64 `json:"speedupVsNoop"`
}

// ReadsSpeedup is the F9 headline: lease-path gain at a given read share.
type ReadsSpeedup struct {
	Groups  int     `json:"groups"`
	ReadPct int     `json:"readPct"`
	// LeaseVsCoalesce compares the lease rows to leases-off with read
	// coalescing (the default fallback); LeaseVsNoop to the legacy
	// round-per-read baseline.
	LeaseVsCoalesce float64 `json:"leaseVsCoalesce"`
	LeaseVsNoop     float64 `json:"leaseVsNoop"`
}

// ReadsReport is the machine-readable form of F9 (BENCH_F9.json).
type ReadsReport struct {
	ID           string         `json:"id"`
	Title        string         `json:"title"`
	N            int            `json:"n"`
	F            int            `json:"f"`
	E            int            `json:"e"`
	Clients      int            `json:"clients"`
	OpsPerClient int            `json:"opsPerClient"`
	Rows         []ReadsRow     `json:"rows"`
	Speedups     []ReadsSpeedup `json:"speedups"`
}

// ReadsF9 regenerates F9 for the Experiments registry.
func ReadsF9() *Result {
	r, _ := ReadMix()
	return r
}

// ReadMix regenerates F9: GETL latency and mixed throughput across read
// ratios for the three linearizable-read paths — one no-op round per read
// (legacy), coalesced read-index batching (default with leases off), and
// lease-based local reads — at 1 and 4 groups per process. Every row boots
// a real durable 3-process TCP cluster (fsync=always).
func ReadMix() (*Result, *ReadsReport) {
	const n, f, e = 3, 1, 1
	rep := &ReadsReport{
		ID:    "F9",
		Title: fmt.Sprintf("read paths: GETL latency and mixed throughput vs read ratio — per-read no-op vs coalesced barrier vs lease (n=%d, f=%d, e=%d, TCP, fsync=always)", n, f, e),
		N:     n, F: f, E: e,
		Clients:      8,
		OpsPerClient: 150,
	}
	res := &Result{
		ID:     "F9",
		Title:  rep.Title,
		Header: []string{"groups", "mode", "read%", "ops", "ops/sec", "GETL p50 (ms)", "GETL p99 (ms)", "fsyncs/read (pure)", "speedup vs noop"},
	}

	baseline := map[string]float64{} // "groups/readPct" -> noop ops/sec
	key := func(groups, pct int) string { return fmt.Sprintf("%d/%d", groups, pct) }
	for _, groups := range []int{1, 4} {
		for _, mode := range []string{"noop", "coalesce", "lease"} {
			for _, pct := range []int{50, 90, 99} {
				row, err := readsRun(n, f, e, groups, mode, pct, rep.Clients, rep.OpsPerClient)
				if err != nil {
					res.AddRow(groups, mode, pct, "—", "err: "+err.Error(), "—", "—", "—", "—")
					continue
				}
				if mode == "noop" {
					baseline[key(groups, pct)] = row.OpsPerSec
				}
				if base := baseline[key(groups, pct)]; base > 0 {
					row.SpeedupVsNoop = row.OpsPerSec / base
				}
				rep.Rows = append(rep.Rows, row)
				res.AddRow(row.Groups, row.Mode, row.ReadPct, row.Ops,
					fmt.Sprintf("%.0f", row.OpsPerSec),
					fmt.Sprintf("%.2f", row.GetlP50Ms),
					fmt.Sprintf("%.2f", row.GetlP99Ms),
					fmt.Sprintf("%.3f", row.FsyncsPerRead),
					fmt.Sprintf("%.2fx", row.SpeedupVsNoop))
			}
		}
	}

	for _, groups := range []int{1, 4} {
		sp := ReadsSpeedup{Groups: groups, ReadPct: 90}
		var lease, coalesce, noop float64
		for _, row := range rep.Rows {
			if row.Groups != groups || row.ReadPct != 90 {
				continue
			}
			switch row.Mode {
			case "lease":
				lease = row.OpsPerSec
			case "coalesce":
				coalesce = row.OpsPerSec
			case "noop":
				noop = row.OpsPerSec
			}
		}
		if lease > 0 && coalesce > 0 {
			sp.LeaseVsCoalesce = lease / coalesce
		}
		if lease > 0 && noop > 0 {
			sp.LeaseVsNoop = lease / noop
		}
		rep.Speedups = append(rep.Speedups, sp)
		res.AddNote("At 90%% reads, %d group(s): lease %.2fx vs coalesced barrier, %.2fx vs per-read no-op.",
			groups, sp.LeaseVsCoalesce, sp.LeaseVsNoop)
	}

	res.AddNote("Each row is a fresh durable 3-process cluster; %d session clients run a %d%%/%d%%-style read/write mix of synchronous GETLs and Puts over 32 shared hash-routed keys. `noop` pins one consensus no-op round per GETL (SetPerReadNoop), `coalesce` lets concurrent GETLs share rounds through the read gate, `lease` adds auto-granted leader leases so the holder answers from local applied state.", rep.Clients, 90, 10)
	res.AddNote("fsyncs/read comes from a pure-GETL phase after the mix: cluster WAL fsync delta per read. Lease reads must measure 0.000 (the row fails otherwise) — that is the tentpole claim, a linearizable read with no network round and no WAL touch. Barrier reads pay no-op vote records only (the decide record is skipped for read-only no-ops), group-committed across concurrent readers.")
	res.AddNote("In lease mode every client follows the lease-held redirect to the holder, so one process serves all traffic: the win is round-trip elimination, not load spreading. Read-heavy mixes gain the most; write-heavy mixes still pay consensus per Put.")
	return res, rep
}

// readsCluster boots the F9 cluster: n sharded processes, durable at
// fsync=always, leases enabled when mode is "lease", per-read no-ops forced
// when mode is "noop".
func readsCluster(n, f, e, groups int, mode string) (addrs []string, runtimes []*shard.Runtime, cleanup func(), syncs func() uint64, err error) {
	mesh := transport.NewMesh(n)
	var servers []*smr.Server
	var dirs []string
	cleanup = func() {
		for _, s := range servers {
			s.Close()
		}
		for _, rt := range runtimes {
			rt.Close()
		}
		mesh.Close()
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	var leases *smr.LeaseOptions
	if mode == "lease" {
		leases = &smr.LeaseOptions{
			Duration:  2 * time.Second,
			Epsilon:   50 * time.Millisecond,
			AutoGrant: true,
		}
	}
	for i := 0; i < n; i++ {
		dir, derr := os.MkdirTemp("", "bench-f9-")
		if derr != nil {
			cleanup()
			return nil, nil, nil, nil, derr
		}
		dirs = append(dirs, dir)
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		rt, rerr := shard.New(shard.Options{
			Groups:        groups,
			Config:        cfg,
			Tick:          time.Millisecond,
			Leases:        leases,
			Durability:    &shard.Durability{Dir: dir, Policy: wal.SyncAlways},
			AdaptiveBatch: true,
		})
		if rerr != nil {
			cleanup()
			return nil, nil, nil, nil, rerr
		}
		if mode == "noop" {
			for g := 0; g < groups; g++ {
				rt.Group(g).SetPerReadNoop(true)
			}
		}
		tr, terr := mesh.Endpoint(cfg.ID, rt.Handler())
		if terr != nil {
			rt.Close()
			cleanup()
			return nil, nil, nil, nil, terr
		}
		rt.BindTransport(tr)
		rt.Start()
		runtimes = append(runtimes, rt)
		srv, serr := smr.NewBackendServer(rt, "127.0.0.1:0", 30*time.Second)
		if serr != nil {
			cleanup()
			return nil, nil, nil, nil, serr
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	syncs = func() uint64 {
		var total uint64
		for _, rt := range runtimes {
			if st, ok := rt.WalStats(); ok {
				total += st.Syncs
			}
		}
		return total
	}
	return addrs, runtimes, cleanup, syncs, nil
}

// readsRun measures one F9 row.
func readsRun(n, f, e, groups int, mode string, readPct, clients, opsPerClient int) (ReadsRow, error) {
	row := ReadsRow{Groups: groups, Mode: mode, ReadPct: readPct}
	addrs, runtimes, cleanup, syncs, err := readsCluster(n, f, e, groups, mode)
	if err != nil {
		return row, err
	}
	defer cleanup()

	const keySpace = 32
	keys := make([]string, keySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("f9-k%d", i)
	}

	newClient := func(c int) (*smr.SessionClient, error) {
		if mode == "lease" {
			// Everyone follows the lease-held redirect to the holder.
			return smr.NewSessionClient(addrs, smr.SessionOptions{
				Timeout: 30 * time.Second, Depth: 8, PreferLeader: true,
			})
		}
		return smr.NewSessionClient([]string{addrs[c%len(addrs)]}, smr.SessionOptions{
			Timeout: 30 * time.Second, Depth: 8,
		})
	}

	if mode == "lease" {
		// Wait for the auto-grant timer to take every group's lease, so
		// the measured phase runs against the steady state (holder valid,
		// renewed ahead of expiry) rather than the bootstrap.
		deadline := time.Now().Add(15 * time.Second)
		for held := 0; held < groups; {
			held = 0
			for g := 0; g < groups; g++ {
				for _, rt := range runtimes {
					if rt.Group(g).HoldsLease() {
						held++
						break
					}
				}
			}
			if time.Now().After(deadline) {
				return row, fmt.Errorf("auto-grant never covered all %d groups", groups)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Seed the key space (and warm the batchers / redirect stickiness).
	seed, err := newClient(0)
	if err != nil {
		return row, err
	}
	for _, k := range keys {
		if err := seed.Put(k, "v0"); err != nil {
			seed.Close()
			return row, fmt.Errorf("seed %s: %w", k, err)
		}
	}
	seed.Close()

	// mixed runs the read/write mix and returns per-GETL latencies.
	mixed := func(ops int, pct int) ([]time.Duration, error) {
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		lats := make([][]time.Duration, clients)
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc, err := newClient(c)
				if err != nil {
					errCh <- err
					return
				}
				defer sc.Close()
				rng := rand.New(rand.NewSource(int64(9000 + c)))
				for j := 0; j < ops; j++ {
					k := keys[rng.Intn(keySpace)]
					if rng.Intn(100) < pct {
						t0 := time.Now()
						if _, err := sc.GetLinearizable(k); err != nil {
							errCh <- fmt.Errorf("getl: %w", err)
							return
						}
						lats[c] = append(lats[c], time.Since(t0))
					} else if err := sc.Put(k, fmt.Sprintf("v%d-%d", c, j)); err != nil {
						errCh <- fmt.Errorf("put: %w", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return nil, err
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		return all, nil
	}

	if _, err := mixed(opsPerClient/4, readPct); err != nil { // warm pass
		return row, err
	}
	start := time.Now()
	lats, err := mixed(opsPerClient, readPct)
	if err != nil {
		return row, err
	}
	elapsed := time.Since(start)

	row.Ops = clients * opsPerClient
	row.Reads = len(lats)
	row.OpsPerSec = float64(row.Ops) / elapsed.Seconds()
	row.GetlP50Ms = percentileMs(lats, 0.50)
	row.GetlP99Ms = percentileMs(lats, 0.99)

	// Pure-read phase: fsyncs per GETL with no writes in flight. The lease
	// path's tentpole claim is exactly zero here.
	const pureReads = 50
	syncs0 := syncs()
	if _, err := mixed(pureReads, 100); err != nil {
		return row, err
	}
	row.FsyncsPerRead = float64(syncs()-syncs0) / float64(clients*pureReads)
	if mode == "lease" && row.FsyncsPerRead != 0 {
		return row, fmt.Errorf("lease reads performed %.3f fsyncs/read, want exactly 0", row.FsyncsPerRead)
	}
	return row, nil
}

// percentileMs returns the q-quantile of the samples in milliseconds.
func percentileMs(d []time.Duration, q float64) float64 {
	if len(d) == 0 {
		return 0
	}
	s := make([]time.Duration, len(d))
	copy(s, d)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return float64(s[i]) / float64(time.Millisecond)
}
