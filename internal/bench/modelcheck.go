package bench

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/epaxos"
	"repro/internal/fastpaxos"
	"repro/internal/mc"
	"repro/internal/paxos"
)

// ModelCheck regenerates T6: bounded exhaustive model checking of the
// implementation. Every interleaving of deliveries (plus, per row, timer
// firings or crashes) is explored for small configurations; Agreement and
// Validity must hold in every reachable state. The final row seeds a
// deliberately infeasible configuration (n below the bound) to demonstrate
// the checker finds real violations.
func ModelCheck() *Result {
	r := &Result{
		ID:    "T6",
		Title: "bounded exhaustive model checking (all interleavings, small configs)",
		Header: []string{
			"config", "inputs", "adversary", "states", "deepest", "complete", "violation", "expected",
		},
	}
	taskFac := func(cfg consensus.Config) consensus.Protocol {
		return core.NewUnchecked(cfg, core.ModeTask, core.DefaultOptions(), consensus.FixedLeader(0))
	}
	objFac := func(cfg consensus.Config) consensus.Protocol {
		return core.NewUnchecked(cfg, core.ModeObject, core.DefaultOptions(), consensus.FixedLeader(0))
	}
	fpFac := func(cfg consensus.Config) consensus.Protocol {
		return fastpaxos.NewUnchecked(cfg, consensus.FixedLeader(0))
	}
	pxFac := func(cfg consensus.Config) consensus.Protocol {
		return paxos.NewUnchecked(cfg, consensus.FixedLeader(0))
	}
	epFac := func(cfg consensus.Config) consensus.Protocol {
		return epaxos.NewUnchecked(cfg, 0, consensus.FixedLeader(1))
	}
	in := func(vals ...int64) map[consensus.ProcessID]consensus.Value {
		m := make(map[consensus.ProcessID]consensus.Value)
		for i, v := range vals {
			if v != 0 {
				m[consensus.ProcessID(i)] = consensus.IntValue(v)
			}
		}
		return m
	}

	rows := []struct {
		name      string
		fac       mc.Factory
		opts      mc.Options
		adversary string
		expectBad bool
	}{
		{
			name: "task n=3 f=1 e=1", fac: taskFac,
			opts:      mc.Options{N: 3, F: 1, E: 1, Inputs: in(1, 2, 2)},
			adversary: "deliveries",
		},
		{
			name: "task n=3 f=1 e=1", fac: taskFac,
			opts:      mc.Options{N: 3, F: 1, E: 1, Inputs: in(3, 1, 2)},
			adversary: "deliveries",
		},
		{
			name: "object n=3 f=1 e=1", fac: objFac,
			opts:      mc.Options{N: 3, F: 1, E: 1, Inputs: in(2, 1, 0)},
			adversary: "deliveries",
		},
		{
			name: "task n=3 f=1 e=1", fac: taskFac,
			opts:      mc.Options{N: 3, F: 1, E: 1, Inputs: in(1, 2, 2), Crashes: 1},
			adversary: "deliveries + 1 crash",
		},
		{
			name: "task n=3 f=1 e=1", fac: taskFac,
			opts: mc.Options{
				N: 3, F: 1, E: 1, Inputs: in(1, 2, 2),
				TicksPerProcess: 1, MaxStates: 60_000, MaxDepth: 36,
			},
			adversary: "deliveries + timers",
		},
		{
			name: "fastpaxos n=4 f=1 e=1 (Lamport bound)", fac: fpFac,
			opts: mc.Options{
				N: 4, F: 1, E: 1, Inputs: in(1, 2, 0, 0),
				MaxStates: 40_000, MaxDepth: 30,
			},
			adversary: "deliveries",
		},
		{
			name: "paxos n=3 f=1", fac: pxFac,
			opts:      mc.Options{N: 3, F: 1, E: 0, Inputs: in(5, 3, 0)},
			adversary: "deliveries",
		},
		{
			name: "epaxos n=3 f=1 e=1", fac: epFac,
			opts: mc.Options{
				N: 3, F: 1, E: 1, Inputs: in(7),
				TicksPerProcess: 1, MaxStates: 40_000, MaxDepth: 30,
				AllowedExtra: []consensus.Value{epaxos.Noop},
			},
			adversary: "deliveries + timers",
		},
		{
			name: "task n=4 f=1 e=2 (below bound 5)", fac: taskFac,
			opts: mc.Options{
				N: 4, F: 1, E: 2, Inputs: in(1, 2, 3, 0),
				MaxStates: 300_000, MaxDepth: 10,
			},
			adversary: "deliveries",
			expectBad: true,
		},
	}
	for _, row := range rows {
		res, err := mc.Check(row.fac, row.opts)
		if err != nil {
			r.AddRow(row.name, "—", row.adversary, "—", "—", "—", "err", err.Error())
			continue
		}
		inputsCell := fmt.Sprintf("%d proposals", len(row.opts.Inputs))
		r.AddRow(row.name, inputsCell, row.adversary,
			res.States, res.Deepest, mark(!res.Truncated),
			mark(res.Violation != nil), verdict(res.Violation != nil, row.expectBad))
	}
	r.AddNote("complete ✓: the full reachable state space was exhausted (no truncation by the state/depth bounds).")
	r.AddNote("The last row runs the protocol one process below its bound with an extra silent process: the checker exhibits the agreement violation, demonstrating it detects real bugs.")
	return r
}
