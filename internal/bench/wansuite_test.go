package bench

import (
	"strings"
	"testing"

	"repro/internal/protocols"
)

// TestWANSuiteShortShape runs the CI-sized F10 sweep (Mesh fabric,
// compressed delays) and checks that every cell produced per-region
// statistics, nothing errored, and the measured latencies respect the
// analytical quorum floor.
func TestWANSuiteShortShape(t *testing.T) {
	if testing.Short() {
		t.Skip("F10 short still sleeps real scaled WAN delays")
	}
	opts := ShortWANSuiteOptions()
	res, report := WANSuite(opts)
	if len(report.Rows) != len(opts.Topologies)*len(opts.Sweeps)*len(opts.Protocols) {
		t.Fatalf("rows = %d, want %d", len(report.Rows),
			len(opts.Topologies)*len(opts.Sweeps)*len(opts.Protocols))
	}
	for _, row := range report.Rows {
		if row.Err != "" {
			t.Errorf("%s/%s: %s", row.Topology, row.Protocol, row.Err)
			continue
		}
		if row.Skip != "" {
			t.Errorf("%s/%s unexpectedly skipped: %s", row.Topology, row.Protocol, row.Skip)
			continue
		}
		if len(row.Regions) == 0 {
			t.Errorf("%s/%s: no regions measured", row.Topology, row.Protocol)
		}
		for _, reg := range row.Regions {
			if reg.Samples != opts.Samples {
				t.Errorf("%s/%s/%s: %d samples, want %d",
					row.Topology, row.Protocol, reg.Region, reg.Samples, opts.Samples)
			}
			// The measured median cannot beat the injected quorum floor
			// (floorMs is unscaled; the run compresses delays by Scale).
			if floor := float64(reg.FloorMs) * opts.Scale; reg.P50Ms < floor {
				t.Errorf("%s/%s/%s: p50 %.1fms below scaled floor %.1fms",
					row.Topology, row.Protocol, reg.Region, reg.P50Ms, floor)
			}
			if reg.SlowPathRate != 0 {
				t.Errorf("%s/%s/%s: slow-path rate %.2f in a healthy run",
					row.Topology, row.Protocol, reg.Region, reg.SlowPathRate)
			}
		}
	}
	// The short sweep pairs core-object against fastpaxos on spread7: the
	// C5 ordering must hold per proxy region shared by both deployments.
	byProto := map[string]WANSuiteRow{}
	for _, row := range report.Rows {
		byProto[row.Protocol] = row
	}
	obj, fp := byProto[protocols.CoreObject], byProto[protocols.FastPaxos]
	fpByRegion := map[string]WANRegionStat{}
	for _, reg := range fp.Regions {
		fpByRegion[reg.Region] = reg
	}
	compared := 0
	for _, reg := range obj.Regions {
		fpReg, ok := fpByRegion[reg.Region]
		if !ok {
			continue
		}
		compared++
		if reg.P50Ms >= fpReg.P50Ms {
			t.Errorf("C5 violated at %s: object p50 %.1fms ≥ fastpaxos p50 %.1fms",
				reg.Region, reg.P50Ms, fpReg.P50Ms)
		}
	}
	if compared == 0 {
		t.Error("no shared proxy regions to compare")
	}
	// The rendered table mentions the fabric and carries one line per
	// (cell, region).
	if !strings.Contains(res.Title, "mesh") {
		t.Errorf("title %q does not name the fabric", res.Title)
	}
}
