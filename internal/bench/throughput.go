package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
)

// Throughput regenerates F4: replicated key-value store throughput on the
// in-process transport as the number of concurrent client proxies grows.
// Clients are spread round-robin over the replicas; each performs opsPerClient
// Put operations.
func Throughput() *Result {
	const n, f, e = 5, 2, 2
	r := &Result{
		ID:     "F4",
		Title:  fmt.Sprintf("replicated KV throughput, in-process transport (n=%d, f=%d, e=%d)", n, f, e),
		Header: []string{"clients", "batching", "ops", "elapsed", "ops/sec", "msgs", "drops"},
	}
	for _, clients := range []int{1, 2, 4, 8} {
		for _, batching := range []bool{false, true} {
			ops, elapsed, st, err := throughputRun(n, f, e, clients, 30, batching)
			label := "off"
			if batching {
				label = "2ms window"
			}
			if err != nil {
				r.AddRow(clients, label, "—", "—", "err: "+err.Error(), "—", "—")
				continue
			}
			r.AddRow(clients, label, ops, elapsed.Round(time.Millisecond),
				fmt.Sprintf("%.0f", float64(ops)/elapsed.Seconds()),
				st.Sends, st.Drops)
		}
	}
	r.AddNote("Without batching every Put is one consensus instance; contention between proxies exercises the slow path and slot retries. With batching each proxy groups concurrent Puts into one instance.")
	r.AddNote("msgs/drops are the transport fabric's counters (transport.Stats) for the whole run: messages delivered into replica inboxes and messages dropped on full inboxes — nonzero drops mean the run leaned on protocol-timer retransmission.")
	return r
}

// throughputRun boots an SMR cluster and hammers it with clients×opsPerClient
// Puts, returning total ops, elapsed time, and the transport fabric's
// counters for the run.
func throughputRun(n, f, e, clients, opsPerClient int, batching bool) (int, time.Duration, transport.Stats, error) {
	mesh := transport.NewMesh(n)
	defer mesh.Close()
	replicas := make([]*smr.Replica, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		rep, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			return 0, 0, transport.Stats{}, err
		}
		tr, err := mesh.Endpoint(cfg.ID, rep.Handle)
		if err != nil {
			return 0, 0, transport.Stats{}, err
		}
		rep.BindTransport(tr)
		replicas[i] = rep
	}
	for _, rep := range replicas {
		if batching {
			rep.EnableBatching(2*time.Millisecond, 0)
		}
		rep.Start()
		defer rep.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			kv := smr.NewKV(replicas[c%n])
			for j := 0; j < opsPerClient; j++ {
				key := fmt.Sprintf("c%d-k%d", c, j)
				if err := kv.Put(ctx, key, "v"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return 0, 0, transport.Stats{}, err
	}
	return clients * opsPerClient, elapsed, mesh.Stats(), nil
}
