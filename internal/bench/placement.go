package bench

import (
	"fmt"
	"strings"

	"repro/internal/planner"
	"repro/internal/quorum"
)

// Placement regenerates F5: optimal replica placement per consensus
// formulation on the built-in 8-region WAN matrix, for f=2, e=2. It is the
// planning view of the paper's C5 claim: the object formulation needs fewer
// sites and its optimal placement commits faster from every client region.
func Placement() *Result {
	const f, e = 2, 2
	r := &Result{
		ID:    "F5",
		Title: fmt.Sprintf("optimal placements on the 8-region matrix (f=%d, e=%d, objective: mean proxy latency)", f, e),
		Header: []string{
			"formulation", "n", "replica sites", "mean proxy ms", "worst proxy ms",
		},
	}
	sites := make([]string, len(wanRegions))
	for i, reg := range wanRegions {
		sites[i] = reg.Name
	}
	req := planner.Request{
		F: f, E: e,
		Sites:     sites,
		RTT:       wanRTT,
		Objective: planner.MinimizeMean,
	}
	plans, err := planner.Compare(req)
	if err != nil {
		r.AddNote("planner error: %v", err)
		return r
	}
	for _, mode := range []quorum.Mode{quorum.Object, quorum.Task, quorum.Lamport} {
		plan, ok := plans[mode]
		if !ok {
			r.AddRow(mode.String(), "—", "does not fit", "—", "—")
			continue
		}
		names := make([]string, len(plan.Replicas))
		for i, s := range plan.Replicas {
			names[i] = sites[s]
		}
		r.AddRow(mode.String(), plan.N, strings.Join(names, ", "),
			fmt.Sprintf("%.0f", plan.MeanLatency), fmt.Sprintf("%d", plan.MaxLatency))
	}
	r.AddNote("Latency model: fast-path commit = RTT to the (n−e)-th closest replica; proxies at all 8 regions; placements searched exhaustively.")
	r.AddNote("Fewer required replicas translate directly into a closer fast quorum for every client region — the planner quantifies the paper's wide-area motivation.")
	return r
}
