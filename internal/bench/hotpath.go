package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// HotPathRow is one F4b configuration's measurements, JSON-ready so the
// report can be committed as a machine-readable perf baseline.
type HotPathRow struct {
	Transport   string  `json:"transport"` // mem | tcp
	Clients     int     `json:"clients"`   // concurrent proxies
	Batching    string  `json:"batching"`  // none | adaptive | fixed-2ms
	Path        string  `json:"path"`      // new | legacy
	Ops         int     `json:"ops"`       // committed Puts
	OpsPerSec   float64 `json:"opsPerSec"`
	P50Micros   float64 `json:"p50Micros"` // per-Put latency percentiles
	P95Micros   float64 `json:"p95Micros"`
	AllocsPerOp float64 `json:"allocsPerOp"` // process-wide heap allocations / op
	FsyncsPerOp float64 `json:"fsyncsPerOp"` // cluster-wide WAL fsyncs / op
	Sends       uint64  `json:"sends"`       // fabric-wide messages delivered
	Drops       uint64  `json:"drops"`       // fabric-wide messages dropped
}

// HotPathReport is the machine-readable form of F4b (BENCH_F4.json).
type HotPathReport struct {
	ID           string       `json:"id"`
	Title        string       `json:"title"`
	N            int          `json:"n"`
	F            int          `json:"f"`
	E            int          `json:"e"`
	FsyncPolicy  string       `json:"fsyncPolicy"`
	OpsPerClient int          `json:"opsPerClient"`
	Rows         []HotPathRow `json:"rows"`
}

// HotPathF4b regenerates F4b for the Experiments registry.
func HotPathF4b() *Result {
	r, _ := HotPath()
	return r
}

// HotPath regenerates F4b: hot-path throughput and latency of the durable
// (fsync-always) replicated KV store across client counts, batching modes,
// and transports — with the pre-overhaul code path ("legacy": in-lock fsync
// and sends, no group commit) measured in the same run for an honest
// baseline. Returns both the rendered table and the raw report.
func HotPath() (*Result, *HotPathReport) {
	const n, f, e = 5, 2, 2
	rep := &HotPathReport{
		ID:    "F4b",
		Title: fmt.Sprintf("durable hot path: ops/s, latency, allocs, fsyncs (n=%d, f=%d, e=%d, fsync=always)", n, f, e),
		N:     n, F: f, E: e,
		FsyncPolicy:  wal.SyncAlways.String(),
		OpsPerClient: 100,
	}
	res := &Result{
		ID:     "F4b",
		Title:  rep.Title,
		Header: []string{"transport", "clients", "batching", "path", "ops", "ops/sec", "p50 µs", "p95 µs", "allocs/op", "fsyncs/op"},
	}

	type config struct {
		transport string
		clients   int
		batching  string
		path      string
		ops       int
	}
	var grid []config
	for _, clients := range []int{1, 2, 4, 8} {
		for _, batching := range []string{"none", "adaptive", "fixed-2ms"} {
			grid = append(grid, config{"mem", clients, batching, "new", rep.OpsPerClient})
		}
		// The legacy path only supports unbatched submission comparisons —
		// batching changes what one "op" costs and would blur the toggle.
		grid = append(grid, config{"mem", clients, "none", "legacy", rep.OpsPerClient})
	}
	// TCP is the expensive fabric: a reduced grid keeps F4b's runtime sane.
	for _, clients := range []int{1, 8} {
		for _, batching := range []string{"none", "adaptive"} {
			grid = append(grid, config{"tcp", clients, batching, "new", 30})
		}
	}

	var legacy8, new8 float64
	for _, c := range grid {
		row, err := hotPathRun(n, f, e, c.transport, c.clients, c.batching, c.path, c.ops)
		if err != nil {
			res.AddRow(c.transport, c.clients, c.batching, c.path, "—", "err: "+err.Error(), "—", "—", "—", "—")
			continue
		}
		rep.Rows = append(rep.Rows, row)
		res.AddRow(row.Transport, row.Clients, row.Batching, row.Path, row.Ops,
			fmt.Sprintf("%.0f", row.OpsPerSec),
			fmt.Sprintf("%.0f", row.P50Micros), fmt.Sprintf("%.0f", row.P95Micros),
			fmt.Sprintf("%.0f", row.AllocsPerOp), fmt.Sprintf("%.2f", row.FsyncsPerOp))
		if c.transport == "mem" && c.clients == 8 && c.batching == "none" {
			switch c.path {
			case "legacy":
				legacy8 = row.OpsPerSec
			case "new":
				new8 = row.OpsPerSec
			}
		}
	}
	if legacy8 > 0 && new8 > 0 {
		res.AddNote("8-client unbatched speedup, new vs legacy path: %.1fx (group commit + out-of-lock I/O; acceptance floor 2x).", new8/legacy8)
	}
	res.AddNote("Every row runs full durability with fsync `always`; fsyncs/op is the cluster-wide WAL sync count over committed Puts — below 1 means group commit amortized a disk flush across concurrent operations.")
	res.AddNote("`legacy` re-enables the pre-overhaul hot path (fsync and sends inside the replica lock, no group commit, no outbox) on the same binary via SetLegacyPath.")
	res.AddNote("allocs/op is process-wide (all five replicas plus clients), measured with runtime.MemStats deltas.")
	return res, rep
}

// hotPathRun boots one durable cluster on the requested fabric and hammers
// it, returning the measured row.
func hotPathRun(n, f, e int, fabric string, clients int, batching, path string, opsPerClient int) (HotPathRow, error) {
	row := HotPathRow{Transport: fabric, Clients: clients, Batching: batching, Path: path}
	dir, err := os.MkdirTemp("", "bench-f4b-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	replicas := make([]*smr.Replica, n)
	var mesh *transport.Mesh
	var tcps []*transport.TCP
	if fabric == "mem" {
		mesh = transport.NewMesh(n)
		defer mesh.Close()
	}
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		rep, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			return row, err
		}
		if _, err := rep.EnableDurability(smr.DurabilityOptions{
			Dir:           fmt.Sprintf("%s/r%d", dir, i),
			Policy:        wal.SyncAlways,
			SnapshotEvery: -1, // keep the run free of snapshot interference
		}); err != nil {
			return row, err
		}
		var tr transport.Transport
		if fabric == "mem" {
			tr, err = mesh.Endpoint(cfg.ID, rep.Handle)
		} else {
			codec := consensus.NewCodec()
			smr.RegisterMessages(codec)
			addrs := make(map[consensus.ProcessID]string, n)
			for p := 0; p < n; p++ {
				addrs[consensus.ProcessID(p)] = "127.0.0.1:0"
			}
			var t *transport.TCP
			t, err = transport.NewTCP(cfg.ID, addrs, codec, rep.Handle)
			tcps = append(tcps, t)
			tr = t
		}
		if err != nil {
			return row, err
		}
		rep.BindTransport(tr)
		replicas[i] = rep
	}
	if fabric == "tcp" {
		for i, t := range tcps {
			defer t.Close()
			for j, o := range tcps {
				if i != j {
					t.SetPeerAddr(consensus.ProcessID(j), o.Addr())
				}
			}
		}
	}
	for _, rep := range replicas {
		switch batching {
		case "adaptive":
			rep.EnableAdaptiveBatching(0)
		case "fixed-2ms":
			rep.EnableBatching(2*time.Millisecond, 0)
		}
		rep.SetLegacyPath(path == "legacy")
		rep.Start()
		defer rep.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	syncsBefore := clusterSyncs(replicas)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	lats := make([][]float64, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// All clients drive one proposer (the classic SMR deployment):
			// that is what lets the batcher and the WAL group commit see
			// concurrent commands at a single replica. F4 keeps the
			// round-robin variant for the conflict-heavy view.
			kv := smr.NewKV(replicas[0])
			for j := 0; j < opsPerClient; j++ {
				t0 := time.Now()
				if err := kv.Put(ctx, fmt.Sprintf("c%d-k%d", c, j), "v"); err != nil {
					errCh <- err
					return
				}
				lats[c] = append(lats[c], float64(time.Since(t0).Microseconds()))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	close(errCh)
	if err := <-errCh; err != nil {
		return row, err
	}

	var lat Sample
	for _, ls := range lats {
		for _, x := range ls {
			lat.Add(x)
		}
	}
	var st transport.Stats
	if mesh != nil {
		st = mesh.Stats()
	} else {
		for _, t := range tcps {
			st = st.Merge(t.Stats())
		}
	}
	row.Sends = st.Sends
	row.Drops = st.Drops

	ops := clients * opsPerClient
	row.Ops = ops
	row.OpsPerSec = float64(ops) / elapsed.Seconds()
	row.P50Micros = lat.Percentile(50)
	row.P95Micros = lat.Percentile(95)
	row.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
	row.FsyncsPerOp = float64(clusterSyncs(replicas)-syncsBefore) / float64(ops)
	return row, nil
}

// clusterSyncs sums the WAL fsync counters across replicas.
func clusterSyncs(replicas []*smr.Replica) uint64 {
	var total uint64
	for _, r := range replicas {
		total += r.Info().WalSyncs
	}
	return total
}
