// Package bench is the evaluation harness: it regenerates every table and
// figure in DESIGN.md §4 from the simulator, the scenario runner, and the
// lower-bound constructions. Each experiment returns a Result that renders
// as an aligned ASCII table; cmd/bench runs them all and writes
// EXPERIMENTS.md.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "T1", "F3").
	ID string
	// Title is a one-line description.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows.
	Rows [][]string
	// Notes are free-form observations appended under the table.
	Notes []string
}

// AddRow appends a data row built from the stringified args.
func (r *Result) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	r.Rows = append(r.Rows, row)
}

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the result as an aligned text table.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)

	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = displayWidth(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && displayWidth(cell) > widths[i] {
				widths[i] = displayWidth(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - displayWidth(cell)
			}
			fmt.Fprintf(&b, " %s%s |", cell, strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	writeRow(r.Header)
	b.WriteString("|")
	for _, w := range widths {
		fmt.Fprintf(&b, "%s|", strings.Repeat("-", w+2))
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&b, "\n> %s\n", note)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSV renders the result as RFC-4180 CSV (header row first), for
// feeding plots or spreadsheets.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// displayWidth approximates the printed width (runes, not bytes), so tables
// with ✓/✗ and Greek letters stay aligned.
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// mark renders a boolean as a check or cross.
func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// verdict renders expected-vs-got semantics: ✓ when got == want.
func verdict(got, want bool) string {
	if got == want {
		return mark(true)
	}
	return mark(false) + "?!"
}
