package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Experiments maps experiment IDs to their drivers. SoakRuns parameterizes
// T5 (0 = default).
func Experiments(soakRuns int) map[string]func() *Result {
	return map[string]func() *Result{
		"T1":  Frontier,
		"T2":  Coverage,
		"T3":  Recovery,
		"T3b": DurableRecovery,
		"T4":  LowerBounds,
		"T5":  func() *Result { return SoakTable(soakRuns) },
		"T6":  ModelCheck,
		"T7":  ChaosSoak,
		"F1":  LatencyVsCrashes,
		"F2":  LatencyVsConflicts,
		"F3":  WAN,
		"F4":  Throughput,
		"F4b": HotPathF4b,
		"F5":  Placement,
		"F7":  SessionsF7,
		"F8":  GroupsF8,
		"F9":  ReadsF9,
		"F10": WANSuiteF10,
		"A1":  Ablation,
	}
}

// ExperimentIDs returns the experiment identifiers in canonical order.
func ExperimentIDs() []string {
	ids := make([]string, 0, 12)
	for id := range Experiments(0) {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Tables first (T*), then figures (F*), then ablations (A*).
		rank := func(s string) int {
			switch s[0] {
			case 'T':
				return 0
			case 'F':
				return 1
			default:
				return 2
			}
		}
		if rank(ids[i]) != rank(ids[j]) {
			return rank(ids[i]) < rank(ids[j])
		}
		// Numeric-aware within a rank so F10 sorts after F9, not after F1.
		ni, nj := idNum(ids[i]), idNum(ids[j])
		if ni != nj {
			return ni < nj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// idNum extracts the numeric part of an experiment ID ("F10" → 10,
// "T3b" → 3) for canonical ordering.
func idNum(id string) int {
	n := 0
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// RunAll executes every experiment in canonical order, writing each table
// to w as it completes, and returns the results.
func RunAll(w io.Writer, soakRuns int) []*Result {
	exps := Experiments(soakRuns)
	results := make([]*Result, 0, len(exps))
	for _, id := range ExperimentIDs() {
		start := time.Now()
		res := exps[id]()
		results = append(results, res)
		if w != nil {
			if _, err := res.WriteTo(w); err != nil {
				fmt.Fprintf(w, "(write %s: %v)\n", id, err)
			}
			fmt.Fprintf(w, "_%s completed in %s_\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return results
}
