package bench

import "repro/internal/consensus"

// Region is a named deployment site for the WAN experiment.
type Region struct {
	Name string
}

// Regions used by the F3 WAN experiment, in deployment order: a protocol
// that needs n processes occupies the first n entries.
var wanRegions = []Region{
	{Name: "eu-west"},  // proxy focus: Dublin
	{Name: "eu-cent"},  // Frankfurt
	{Name: "us-east"},  // Virginia
	{Name: "us-west"},  // Oregon
	{Name: "ap-se"},    // Singapore
	{Name: "sa-east"},  // São Paulo
	{Name: "ap-ne"},    // Tokyo
	{Name: "ap-south"}, // Mumbai
}

// wanRTT holds approximate public-cloud inter-region round-trip times in
// milliseconds (symmetric). Indexed like wanRegions. Values are in the
// ballpark of published cloud latency matrices; the experiment's conclusions
// depend only on their relative order.
var wanRTT = [][]consensus.Duration{
	//            euW  euC  usE  usW  apSE saE  apNE apS
	{0, 25, 75, 130, 180, 185, 210, 125},   // eu-west
	{25, 0, 90, 145, 160, 200, 225, 110},   // eu-cent
	{75, 90, 0, 65, 215, 115, 145, 185},    // us-east
	{130, 145, 65, 0, 165, 175, 100, 220},  // us-west
	{180, 160, 215, 165, 0, 320, 70, 60},   // ap-se
	{185, 200, 115, 175, 320, 0, 255, 300}, // sa-east
	{210, 225, 145, 100, 70, 255, 0, 120},  // ap-ne
	{125, 110, 185, 220, 60, 300, 120, 0},  // ap-south
}

// BuiltinWANMatrix exposes the full 8-region site list and RTT matrix for
// tools that plan placements (cmd/plan). The returned slices are copies.
func BuiltinWANMatrix() ([]string, [][]consensus.Duration) {
	sites := make([]string, len(wanRegions))
	for i, r := range wanRegions {
		sites[i] = r.Name
	}
	rtt := make([][]consensus.Duration, len(wanRTT))
	for i, row := range wanRTT {
		rtt[i] = make([]consensus.Duration, len(row))
		copy(rtt[i], row)
	}
	return sites, rtt
}

// wanMatrix returns the n×n RTT submatrix for the first n regions.
func wanMatrix(n int) [][]consensus.Duration {
	m := make([][]consensus.Duration, n)
	for i := 0; i < n; i++ {
		m[i] = make([]consensus.Duration, n)
		copy(m[i], wanRTT[i][:n])
	}
	return m
}
