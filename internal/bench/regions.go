package bench

import (
	"repro/internal/consensus"
	"repro/internal/wan"
)

// Region is a named deployment site for the WAN experiment.
type Region struct {
	Name string
}

// Regions and RTT matrix used by the F3 WAN experiment, in deployment
// order: a protocol that needs n processes occupies the first n entries.
// The canonical data lives in internal/wan (shared with the F10 suite and
// cmd/plan); this is a typed view of it.
var wanRegions, wanRTT = builtinWAN()

func builtinWAN() ([]Region, [][]consensus.Duration) {
	names, rtt := wan.Sites()
	regions := make([]Region, len(names))
	for i, n := range names {
		regions[i] = Region{Name: n}
	}
	return regions, rtt
}

// BuiltinWANMatrix exposes the full 8-region site list and RTT matrix for
// tools that plan placements (cmd/plan). The returned slices are copies.
func BuiltinWANMatrix() ([]string, [][]consensus.Duration) {
	return wan.Sites()
}

// wanMatrix returns the n×n RTT submatrix for the first n regions.
func wanMatrix(n int) [][]consensus.Duration {
	m := make([][]consensus.Duration, n)
	for i := 0; i < n; i++ {
		m[i] = make([]consensus.Duration, n)
		copy(m[i], wanRTT[i][:n])
	}
	return m
}
