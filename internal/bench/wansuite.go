package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/epaxos"
	"repro/internal/fastpaxos"
	"repro/internal/node"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/wan"
)

// F10 — the WAN scenario suite. Where F3 computes geo latency analytically
// on the simulator, F10 measures it end-to-end: real protocol stacks on
// node.Host over a real fabric (TCP with a per-peer one-way delay shim, or
// Mesh with a deterministic delay injector for the CI short mode), with
// durability on (an fsync per protocol step) when requested. Each cell of
// the sweep deploys a protocol on the first n slots of a wan.Topology
// preset and, for every distinct region, measures propose→decide latency at
// a proxy in that region plus the slow-path rate via
// consensus.FastPathReporter. The per-region tables are the paper's C5
// claim made empirical: the task/object protocols assemble their smaller
// fast quorums region-hops earlier than Fast Paxos on spread placements.

// WANEPaxos names the EPaxos baseline in the F10 sweep. It is not in the
// protocols registry (instances are owner-specific), so the suite wires it
// through protocols.EPaxosFactory with the proxy as owner.
const WANEPaxos = "epaxos"

// WANSweep is one (f, e) resilience point of the F10 sweep.
type WANSweep struct {
	F int `json:"f"`
	E int `json:"e"`
}

// WANSuiteOptions parameterizes the F10 suite.
type WANSuiteOptions struct {
	// Topologies are wan.Preset names.
	Topologies []string
	// Sweeps are the (f, e) points. EPaxos substitutes its own conflict
	// threshold e = ⌈(f+1)⁄2⌉ (the protocol fixes it; the row records it).
	Sweeps []WANSweep
	// Protocols are protocol names (registry names plus WANEPaxos).
	Protocols []string
	// Samples per (cell, proxy region), after one discarded warm-up.
	Samples int
	// Scale multiplies every one-way delay (1.0 = real milliseconds).
	Scale float64
	// UseTCP selects the real TCP fabric with the writer-side delay shim;
	// false runs on Mesh with the deterministic delay injector.
	UseTCP bool
	// Fsync installs a durability hook: every protocol step appends a
	// record to a per-process log and fsyncs before any send.
	Fsync bool
}

// DefaultWANSuiteOptions is the full F10 sweep: real TCP, fsync on, real
// geo milliseconds, both sweep points on a spread and a co-located layout.
func DefaultWANSuiteOptions() WANSuiteOptions {
	return WANSuiteOptions{
		Topologies: []string{"spread7", "geo5x7"},
		Sweeps:     []WANSweep{{F: 1, E: 1}, {F: 2, E: 2}},
		Protocols: []string{
			protocols.CoreTask, protocols.CoreObject,
			protocols.FastPaxos, protocols.FastPaxosFlex, WANEPaxos,
		},
		Samples: 8,
		Scale:   1.0,
		UseTCP:  true,
		Fsync:   true,
	}
}

// ShortWANSuiteOptions is the CI-sized sweep (make bench-wan-short): Mesh
// fabric, two sweep cells, delays compressed 20×, no fsync.
func ShortWANSuiteOptions() WANSuiteOptions {
	return WANSuiteOptions{
		Topologies: []string{"spread7"},
		Sweeps:     []WANSweep{{F: 2, E: 2}},
		Protocols:  []string{protocols.CoreObject, protocols.FastPaxos},
		Samples:    3,
		Scale:      0.05,
		UseTCP:     false,
		Fsync:      false,
	}
}

// WANRegionStat is the measured latency profile for one proxy region.
type WANRegionStat struct {
	Region  string `json:"region"`
	Samples int    `json:"samples"`
	// FloorMs is the analytical floor: the RTT to the fast quorum's
	// farthest member from this proxy (wan.Topology.QuorumRTT), unscaled
	// by Scale so it is comparable across runs.
	FloorMs int     `json:"floorMs"`
	P50Ms   float64 `json:"p50Ms"`
	P99Ms   float64 `json:"p99Ms"`
	MaxMs   float64 `json:"maxMs"`
	// SlowPathRate is the fraction of samples that did NOT decide on the
	// protocol's fast path (consensus.FastPathReporter at the proxy).
	SlowPathRate float64 `json:"slowPathRate"`
}

// WANSuiteRow is one cell of the sweep.
type WANSuiteRow struct {
	Topology  string          `json:"topology"`
	Protocol  string          `json:"protocol"`
	N         int             `json:"n"`
	F         int             `json:"f"`
	E         int             `json:"e"`
	Flex      bool            `json:"flex"`
	FastQ     int             `json:"fastQuorum"`
	RecoveryQ int             `json:"recoveryQuorum"`
	Regions   []WANRegionStat `json:"regions,omitempty"`
	Skip      string          `json:"skip,omitempty"`
	Err       string          `json:"err,omitempty"`
}

// WANSuiteReport is the machine-readable F10 report (BENCH_F10.json).
type WANSuiteReport struct {
	ID        string        `json:"id"`
	Title     string        `json:"title"`
	Transport string        `json:"transport"`
	Scale     float64       `json:"scale"`
	Samples   int           `json:"samples"`
	Fsync     bool          `json:"fsync"`
	Rows      []WANSuiteRow `json:"rows"`
}

// WANSuiteF10 runs the full suite for the experiment registry.
func WANSuiteF10() *Result {
	r, _ := WANSuite(DefaultWANSuiteOptions())
	return r
}

// WANSuiteShortF10 runs the CI-sized suite (make bench-wan-short).
func WANSuiteShortF10() *Result {
	r, _ := WANSuite(ShortWANSuiteOptions())
	return r
}

// wanValueSeq makes proposal values globally unique across cells and
// samples, so a stale decide from a previous sample can never be mistaken
// for the current instance's value.
var wanValueSeq atomic.Int64

// WANSuite runs the sweep and returns both the rendered table and the raw
// report.
func WANSuite(opts WANSuiteOptions) (*Result, *WANSuiteReport) {
	fabric := "mesh"
	if opts.UseTCP {
		fabric = "tcp"
	}
	report := &WANSuiteReport{
		ID:        "F10",
		Title:     "WAN suite",
		Transport: fabric,
		Scale:     opts.Scale,
		Samples:   opts.Samples,
		Fsync:     opts.Fsync,
	}

	type cellSpec struct {
		topoName string
		proto    string
		sweep    WANSweep
	}
	var cells []cellSpec
	for _, topoName := range opts.Topologies {
		for _, sweep := range opts.Sweeps {
			for _, proto := range opts.Protocols {
				cells = append(cells, cellSpec{topoName, proto, sweep})
			}
		}
	}

	rows := make([]WANSuiteRow, len(cells))
	// Cells are independent clusters on loopback; a small worker pool
	// bounds CPU contention so sleeps (the injected delays) stay the
	// dominant term of every measured latency.
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cellSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i] = runWANCell(c.topoName, c.proto, c.sweep, opts)
		}(i, c)
	}
	wg.Wait()
	report.Rows = rows

	res := &Result{
		ID: "F10",
		Title: fmt.Sprintf("WAN suite: measured commit latency at the proxy, ms (%s fabric, scale %g, fsync %v)",
			fabric, opts.Scale, opts.Fsync),
		Header: []string{"topology", "protocol", "n", "f", "e", "fastQ", "region",
			"floor ms", "p50 ms", "p99 ms", "slow-path"},
	}
	for _, row := range rows {
		if row.Skip != "" {
			res.AddRow(row.Topology, row.Protocol, row.N, row.F, row.E, "—", "—", "—", "—", "—", row.Skip)
			continue
		}
		if row.Err != "" {
			res.AddRow(row.Topology, row.Protocol, row.N, row.F, row.E, row.FastQ, "—", "—", "—", "—", "error: "+row.Err)
			continue
		}
		for _, reg := range row.Regions {
			res.AddRow(row.Topology, row.Protocol, row.N, row.F, row.E, row.FastQ, reg.Region,
				reg.FloorMs, fmt.Sprintf("%.1f", reg.P50Ms), fmt.Sprintf("%.1f", reg.P99Ms),
				fmt.Sprintf("%.0f%%", reg.SlowPathRate*100))
		}
	}
	res.AddNote("Measured end-to-end on node.Host: propose at a proxy in each distinct region, wait for its decision. floor ms = analytical RTT to the fast quorum's farthest member (unscaled); measured columns include the Scale factor, codec, loopback, and (when on) an fsync per protocol step.")
	res.AddNote(fmt.Sprintf("p50 is the sample median; with %d samples per region p99 coincides with the maximum — it bounds, not estimates, the tail.", opts.Samples))
	res.AddNote("fastpaxos-flex runs the bare-majority fast quorum (quorum.SmallestFastFlex): lower latency than classical Fast Paxos at the same n, paid for with an n-all-but-(n−fast) recovery quorum.")
	return res, report
}

// runWANCell measures one (topology, protocol, sweep) cell.
func runWANCell(topoName, proto string, sweep WANSweep, opts WANSuiteOptions) WANSuiteRow {
	row := WANSuiteRow{Topology: topoName, Protocol: proto, F: sweep.F, E: sweep.E}
	topo, err := wan.Preset(topoName)
	if err != nil {
		row.Err = err.Error()
		return row
	}

	// Resolve the cell's deployment size and quorum shape.
	n, e := 0, sweep.E
	switch proto {
	case WANEPaxos:
		n = quorum.PlainMinProcesses(sweep.F)
		e = quorum.EPaxosFastThreshold(sweep.F)
		row.FastQ = quorum.EPaxosFastQuorum(sweep.F)
		row.RecoveryQ = n - sweep.F
	case protocols.FastPaxosFlex:
		n = quorum.LamportMinProcesses(sweep.F, sweep.E)
		fl, ferr := quorum.SmallestFastFlex(n, sweep.F, sweep.E)
		if ferr != nil {
			row.N = n
			row.Skip = "no sound flex quorum: " + ferr.Error()
			return row
		}
		row.Flex = true
		row.FastQ = fl.Fast
		row.RecoveryQ = fl.Recovery
	default:
		n, err = protocols.MinProcesses(proto, sweep.F, sweep.E)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		row.FastQ = n - e
		row.RecoveryQ = n - sweep.F
	}
	row.N, row.E = n, e
	if n > topo.N() {
		row.Skip = fmt.Sprintf("needs %d slots, topology has %d", n, topo.N())
		return row
	}
	prefix, err := topo.Prefix(n)
	if err != nil {
		row.Err = err.Error()
		return row
	}

	// Timer budget: Δ must dominate the scaled max RTT so no protocol
	// timer (and hence no recovery ballot) fires during a healthy sample.
	maxOneWay := time.Duration(0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := prefix.OneWayDelay(i, j, opts.Scale); d > maxOneWay {
				maxOneWay = d
			}
		}
	}
	tick := time.Millisecond
	delta := consensus.Duration(3*(2*maxOneWay/time.Millisecond) + 100)
	drain := maxOneWay + 20*time.Millisecond

	fab, err := newWANFabric(prefix, n, opts)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	defer fab.close()

	seen := map[string]bool{}
	for slot := 0; slot < n; slot++ {
		region := prefix.Region(slot)
		if seen[region] {
			continue
		}
		seen[region] = true
		stat, err := runWANProxy(prefix, fab, proto, n, sweep.F, e, delta, tick, drain,
			consensus.ProcessID(slot), opts)
		if err != nil {
			row.Err = fmt.Sprintf("proxy %s: %v", region, err)
			return row
		}
		stat.Region = region
		stat.FloorMs = int(prefix.QuorumRTT(slot, row.FastQ))
		row.Regions = append(row.Regions, stat)
	}
	return row
}

// runWANProxy measures opts.Samples one-shot instances (plus a discarded
// warm-up) with the proxy at the given slot. Each sample boots fresh hosts
// on the cell's shared fabric; between samples the fabric drains for the
// max one-way delay so no stale frame leaks into the next instance.
func runWANProxy(prefix wan.Topology, fab *wanFabric, proto string, n, f, e int,
	delta consensus.Duration, tick, drain time.Duration,
	proxy consensus.ProcessID, opts WANSuiteOptions) (WANRegionStat, error) {

	var stat WANRegionStat
	lats := &Sample{}
	slow := 0
	for s := 0; s <= opts.Samples; s++ {
		lat, fast, err := runWANSample(fab, proto, n, f, e, delta, tick, proxy, opts)
		time.Sleep(drain)
		if err != nil {
			return stat, err
		}
		if s == 0 {
			continue // warm-up: includes TCP dials and page-cache warmth
		}
		lats.Add(float64(lat) / float64(time.Millisecond))
		if !fast {
			slow++
		}
	}
	stat.Samples = lats.N()
	stat.P50Ms = lats.Percentile(50)
	stat.P99Ms = lats.Percentile(99)
	stat.MaxMs = lats.Max()
	stat.SlowPathRate = float64(slow) / float64(lats.N())
	return stat, nil
}

// runWANSample boots one fresh cluster on the fabric, proposes at the
// proxy, and returns its commit latency and whether it decided on the fast
// path. It waits for every host to decide before tearing down, so the only
// frames left in flight are bounded by one one-way delay.
func runWANSample(fab *wanFabric, proto string, n, f, e int,
	delta consensus.Duration, tick time.Duration,
	proxy consensus.ProcessID, opts WANSuiteOptions) (time.Duration, bool, error) {

	oracle := consensus.FixedLeader(proxy)
	hosts := make([]*node.Host, n)
	nodes := make([]consensus.Protocol, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: delta}
		p, err := buildWANProto(proto, cfg, proxy, oracle)
		if err != nil {
			return 0, false, err
		}
		h := node.New(n, fab.trs[i], tick, p)
		if fab.persist != nil {
			h.SetPersist(fab.persist[i], nil)
		}
		hosts[i] = h
		nodes[i] = p
		fab.rebinds[i].set(h.Handle)
	}
	defer func() {
		for i := range hosts {
			fab.rebinds[i].set(nil)
			hosts[i].Close()
		}
	}()
	for _, h := range hosts {
		h.Start()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	hosts[proxy].Propose(consensus.IntValue(wanValueSeq.Add(1)))
	if _, err := hosts[proxy].WaitDecision(ctx); err != nil {
		return 0, false, fmt.Errorf("proxy decision: %w", err)
	}
	lat := time.Since(start)
	for i, h := range hosts {
		if _, err := h.WaitDecision(ctx); err != nil {
			return 0, false, fmt.Errorf("process %d decision: %w", i, err)
		}
	}
	fast := false
	if rep, ok := nodes[proxy].(consensus.FastPathReporter); ok {
		fp, decided := rep.DecidedFast()
		fast = fp && decided
	}
	return lat, fast, nil
}

// buildWANProto constructs the protocol instance for one slot of a sample.
func buildWANProto(proto string, cfg consensus.Config, proxy consensus.ProcessID,
	oracle consensus.LeaderOracle) (consensus.Protocol, error) {
	if proto == WANEPaxos {
		return protocols.EPaxosFactory(proxy)(cfg, oracle), nil
	}
	fac, err := protocols.ByName(proto)
	if err != nil {
		return nil, err
	}
	return fac(cfg, oracle), nil
}

// wanRebind is a swappable transport handler: the fabric outlives the
// per-sample hosts, so each slot's endpoint delivers into whatever host is
// current (or drops when none is).
type wanRebind struct {
	mu sync.Mutex
	h  transport.Handler
}

func (r *wanRebind) set(h transport.Handler) {
	r.mu.Lock()
	r.h = h
	r.mu.Unlock()
}

func (r *wanRebind) handle(from consensus.ProcessID, msg consensus.Message) {
	r.mu.Lock()
	h := r.h
	r.mu.Unlock()
	if h != nil {
		h(from, msg)
	}
}

// wanKeepOpen lets per-sample hosts Close without tearing down the cell's
// shared transport.
type wanKeepOpen struct{ transport.Transport }

func (wanKeepOpen) Close() error { return nil }

// wanFabric is one cell's shared delivery fabric: per-slot endpoints with
// the topology's delays installed, swappable handlers, and (with Fsync) a
// per-slot durability hook.
type wanFabric struct {
	trs     []transport.Transport
	rebinds []*wanRebind
	persist []func() error
	close   func()
}

func newWANFabric(prefix wan.Topology, n int, opts WANSuiteOptions) (*wanFabric, error) {
	fab := &wanFabric{
		trs:     make([]transport.Transport, n),
		rebinds: make([]*wanRebind, n),
	}
	for i := range fab.rebinds {
		fab.rebinds[i] = &wanRebind{}
	}

	var closers []func()
	fab.close = func() {
		for _, c := range closers {
			c()
		}
	}
	fail := func(err error) (*wanFabric, error) {
		fab.close()
		return nil, err
	}

	if opts.Fsync {
		fab.persist = make([]func() error, n)
		for i := 0; i < n; i++ {
			f, err := os.CreateTemp("", "bench-f10-wal-*.log")
			if err != nil {
				return fail(err)
			}
			name := f.Name()
			closers = append(closers, func() {
				f.Close()
				os.Remove(name)
			})
			rec := []byte("step\n")
			fab.persist[i] = func() error {
				if _, err := f.Write(rec); err != nil {
					return err
				}
				return f.Sync()
			}
		}
	}

	if !opts.UseTCP {
		mesh := transport.NewMeshWithDepth(n, 4096)
		closers = append(closers, mesh.Close)
		mesh.SetFault(prefix.MeshFault(opts.Scale))
		for i := 0; i < n; i++ {
			ep, err := mesh.Endpoint(consensus.ProcessID(i), fab.rebinds[i].handle)
			if err != nil {
				return fail(err)
			}
			fab.trs[i] = ep // mesh endpoints' Close is already a no-op
		}
		return fab, nil
	}

	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	fastpaxos.RegisterMessages(codec)
	epaxos.RegisterMessages(codec)
	addrs := make(map[consensus.ProcessID]string, n)
	for i := 0; i < n; i++ {
		addrs[consensus.ProcessID(i)] = "127.0.0.1:0"
	}
	tcps := make([]*transport.TCP, n)
	for i := 0; i < n; i++ {
		tr, err := transport.NewTCPWithOptions(consensus.ProcessID(i), addrs, codec,
			fab.rebinds[i].handle, transport.TCPOptions{
				LinkDelay: prefix.TCPLinkDelay(consensus.ProcessID(i), opts.Scale),
			})
		if err != nil {
			return fail(err)
		}
		tcps[i] = tr
		closers = append(closers, func() { tr.Close() })
		fab.trs[i] = wanKeepOpen{tr}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				tcps[i].SetPeerAddr(consensus.ProcessID(j), tcps[j].Addr())
			}
		}
	}
	return fab, nil
}
