package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// GroupsRow is one F8 configuration: aggregate throughput of a 3-process
// cluster hosting the given number of consensus groups per process, with
// the offered load scaled to the group count (scale-out framing: each
// group adds both capacity and clients).
type GroupsRow struct {
	Groups    int     `json:"groups"`
	Clients   int     `json:"clients"` // concurrent session clients
	Ops       int     `json:"ops"`     // committed Puts
	OpsPerSec float64 `json:"opsPerSec"`
	// ClusterFsyncsPerOp sums each process's WAL fsync delta and divides
	// by committed ops: the shared group-commit stream's coalescing
	// across groups (< 1 means one fdatasync covered several acked writes
	// cluster-wide, at fsync=always).
	ClusterFsyncsPerOp float64 `json:"clusterFsyncsPerOp"`
	// SpeedupVs1 is OpsPerSec relative to the 1-group row.
	SpeedupVs1 float64 `json:"speedupVs1"`
}

// GroupsReport is the machine-readable form of F8 (BENCH_F8.json).
type GroupsReport struct {
	ID              string      `json:"id"`
	Title           string      `json:"title"`
	N               int         `json:"n"`
	F               int         `json:"f"`
	E               int         `json:"e"`
	Depth           int         `json:"depth"`
	ClientsPerGroup int         `json:"clientsPerGroup"`
	OpsPerClient    int         `json:"opsPerClient"`
	Rows            []GroupsRow `json:"rows"`
}

// GroupsF8 regenerates F8 for the Experiments registry.
func GroupsF8() *Result {
	r, _ := GroupScaling()
	return r
}

// GroupScaling regenerates F8: aggregate throughput of the sharded
// multi-group runtime versus group count. Every row boots a real durable
// 3-process cluster (fsync=always, one shared WAL and one fsync scheduler
// per process), fronts it with the TCP client servers, and sprays
// hash-routed keys from pipelined session clients — clientsPerGroup
// clients per hosted group, so the load grows with the capacity under
// test. The second metric is cluster fsyncs per committed op: with N
// groups sharing one group-commit stream the fsyncs of independent groups
// coalesce, which is the reason to multiplex groups into one process
// instead of running N processes.
func GroupScaling() (*Result, *GroupsReport) {
	const n, f, e = 3, 1, 1
	rep := &GroupsReport{
		ID:    "F8",
		Title: fmt.Sprintf("multi-group scale-out: aggregate throughput and fsync coalescing vs groups per process (n=%d, f=%d, e=%d, TCP, fsync=always)", n, f, e),
		N:     n, F: f, E: e,
		Depth:           16,
		ClientsPerGroup: 4,
		OpsPerClient:    150,
	}
	res := &Result{
		ID:     "F8",
		Title:  rep.Title,
		Header: []string{"groups", "clients", "ops", "ops/sec", "cluster fsyncs/op", "speedup vs 1"},
	}

	var base float64
	for _, groups := range []int{1, 2, 4, 8, 16} {
		row, err := groupsRun(n, f, e, groups, rep.ClientsPerGroup*groups, rep.Depth, rep.OpsPerClient)
		if err != nil {
			res.AddRow(groups, "—", "—", "err: "+err.Error(), "—", "—")
			continue
		}
		if groups == 1 {
			base = row.OpsPerSec
		}
		if base > 0 {
			row.SpeedupVs1 = row.OpsPerSec / base
		}
		rep.Rows = append(rep.Rows, row)
		res.AddRow(row.Groups, row.Clients, row.Ops,
			fmt.Sprintf("%.0f", row.OpsPerSec),
			fmt.Sprintf("%.3f", row.ClusterFsyncsPerOp),
			fmt.Sprintf("%.2fx", row.SpeedupVs1))
	}

	res.AddNote("Each row is a fresh durable 3-process cluster: every process hosts `groups` consensus groups over one transport, one WAL, and one fsync scheduler; %d session clients per group (depth %d) push hash-routed Puts through the real TCP wire.", rep.ClientsPerGroup, rep.Depth)
	res.AddNote("cluster fsyncs/op = Σ over processes of the WAL fsync-count delta, divided by committed ops. Groups share one group-commit stream, so independent groups' fsyncs coalesce — the per-op fsync cost falls as groups (and load) grow, while N separate processes would pay it N times.")
	res.AddNote("speedup is aggregate ops/sec vs the 1-group row under proportionally scaled load; each group is a full replica (own Ω, slot space, snapshots), so added groups contend only on the shared transport/WAL/scheduler — and on the host's cores. On a multi-core host the 1-group row is slot-pipeline-bound and groups scale throughput; on a single-core runner one warmed group already saturates the CPU, the curve is flat at the compute ceiling, and the sharding payoff is the falling fsyncs/op column (16 groups in one process keep one fsync stream; 16 single-group processes would pay ~16x the fsyncs).")
	return res, rep
}

// groupsCluster boots n sharded processes (groups each) on the in-memory
// fabric, durable at fsync=always, with a client-facing TCP server per
// process.
func groupsCluster(n, f, e, groups int) (addrs []string, cleanup func(), syncs func() uint64, err error) {
	mesh := transport.NewMesh(n)
	runtimes := make([]*shard.Runtime, 0, n)
	servers := make([]*smr.Server, 0, n)
	dirs := make([]string, 0, n)
	cleanup = func() {
		for _, s := range servers {
			s.Close()
		}
		for _, rt := range runtimes {
			rt.Close()
		}
		mesh.Close()
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "bench-f8-")
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		dirs = append(dirs, dir)
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		rt, err := shard.New(shard.Options{
			Groups:        groups,
			Config:        cfg,
			Tick:          time.Millisecond,
			Durability:    &shard.Durability{Dir: dir, Policy: wal.SyncAlways},
			AdaptiveBatch: true,
		})
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		tr, err := mesh.Endpoint(cfg.ID, rt.Handler())
		if err != nil {
			rt.Close()
			cleanup()
			return nil, nil, nil, err
		}
		rt.BindTransport(tr)
		rt.Start()
		runtimes = append(runtimes, rt)
		srv, err := smr.NewBackendServer(rt, "127.0.0.1:0", 30*time.Second)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	syncs = func() uint64 {
		var total uint64
		for _, rt := range runtimes {
			if st, ok := rt.WalStats(); ok {
				total += st.Syncs
			}
		}
		return total
	}
	return addrs, cleanup, syncs, nil
}

// groupsRun measures one F8 row.
func groupsRun(n, f, e, groups, clients, depth, opsPerClient int) (GroupsRow, error) {
	row := GroupsRow{Groups: groups, Clients: clients}
	addrs, cleanup, syncs, err := groupsCluster(n, f, e, groups)
	if err != nil {
		return row, err
	}
	defer cleanup()

	// One pass to warm the adaptive batchers and the Ω fast path, then the
	// timed pass (fsync counting starts with the clock).
	pass := func(prefix string, ops int) error {
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc, err := smr.NewSessionClient([]string{addrs[c%len(addrs)]}, smr.SessionOptions{
					Timeout: 30 * time.Second,
					Depth:   depth,
				})
				if err != nil {
					errCh <- err
					return
				}
				defer sc.Close()
				// Sliding window of depth outstanding futures; distinct keys
				// per client hash-route across all groups.
				window := make([]*smr.Future, 0, depth)
				for j := 0; j < ops; j++ {
					window = append(window, sc.PutAsync(fmt.Sprintf("%s-c%d-k%d", prefix, c, j), "v"))
					if len(window) == depth {
						if err := window[0].Err(); err != nil {
							errCh <- err
							return
						}
						window = window[1:]
					}
				}
				for _, fut := range window {
					if err := fut.Err(); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errCh)
		return <-errCh
	}
	if err := pass("w", opsPerClient/4); err != nil {
		return row, err
	}
	syncs0 := syncs()
	start := time.Now()
	if err := pass("t", opsPerClient); err != nil {
		return row, err
	}
	elapsed := time.Since(start)

	row.Ops = clients * opsPerClient
	row.OpsPerSec = float64(row.Ops) / elapsed.Seconds()
	row.ClusterFsyncsPerOp = float64(syncs()-syncs0) / float64(row.Ops)
	return row, nil
}
