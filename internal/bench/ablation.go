package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// Ablation regenerates the DESIGN.md §5 study: disable each of the
// protocol's load-bearing rules in turn and show which guarantee dies.
//
//	value ordering      → two-step coverage collapses (and the low-fast
//	                      schedule forces an agreement violation at the
//	                      bound, like Fast Paxos)
//	proposer exclusion  → the insider-proposer schedule forces an
//	                      agreement violation at the bound
//	equality branch     → recovery loses fast decisions whose votes meet
//	                      the 1B quorum in exactly n−f−e processes
func Ablation() *Result {
	const f, e = 2, 2
	n := quorum.TaskMinProcesses(f, e)
	r := &Result{
		ID:    "A1",
		Title: fmt.Sprintf("ablation of the protocol's design choices (task mode, f=%d, e=%d, n=%d)", f, e, n),
		Header: []string{
			"variant", "two-step coverage",
			"low-fast schedule", "insider schedule", "tight-quorum recovery",
		},
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full protocol", core.DefaultOptions()},
		{"no value ordering", func() core.Options { o := core.DefaultOptions(); o.ValueOrdering = false; return o }()},
		{"no proposer exclusion (R)", func() core.Options { o := core.DefaultOptions(); o.ExcludeProposers = false; return o }()},
		{"no equality branch", func() core.Options { o := core.DefaultOptions(); o.EqualityBranch = false; return o }()},
	}
	for _, v := range variants {
		fac := protocols.CoreAblatedFactory(core.ModeTask, v.opts)
		sc := runner.Scenario{N: n, F: f, E: e, Delta: benchDelta, Seed: 11}

		coverage := mark(runner.TaskTwoStep(fac, sc).OK())

		lowFast := "—"
		if w, err := lowerbound.TaskWitnessVariant(fac, n, f, e, benchDelta, lowerbound.TaskLowFast); err == nil {
			lowFast = violationCell(w)
		}
		insider := "—"
		if w, err := lowerbound.TaskWitnessVariant(fac, n, f, e, benchDelta, lowerbound.TaskInsiderProposer); err == nil {
			insider = violationCell(w)
		}
		trials, ok := tightQuorumTrials(v.opts, f, e, 2000, 31)
		recovery := fmt.Sprintf("%d/%d ok", ok, trials)

		r.AddRow(v.name, coverage, lowFast, insider, recovery)
	}
	r.AddNote("two-step coverage: Definition 4 checked over all crash sets; only the full protocol and the equality/exclusion ablations pass (those rules matter for recovery, not the fast path).")
	r.AddNote("schedules: 'safe' = no agreement violation; 'VIOLATED' = the adversary forced conflicting decisions at the tight bound.")
	r.AddNote("tight-quorum recovery: random post-fast-decision states whose 1B quorum sees exactly n−f−e surviving votes; the equality branch (with its max tie-break) is what recovers them.")
	return r
}

func violationCell(w lowerbound.Witness) string {
	if w.Violated {
		return "VIOLATED"
	}
	return "safe"
}

// tightQuorumTrials draws random post-fast-decision states in which the 1B
// quorum contains exactly n−f−e fast-value voters (the equality branch's
// territory) plus, half the time, an insider competitor co-proposed inside
// the quorum (the exclusion rule's territory), and counts how often the
// recovery rule returns the fast value.
func tightQuorumTrials(opts core.Options, f, e, trials int, seed int64) (int, int) {
	rng := rand.New(rand.NewSource(seed))
	n := quorum.TaskMinProcesses(f, e)
	ok := 0
	for i := 0; i < trials; i++ {
		if tightQuorumTrialOnce(opts, n, f, e, rng) {
			ok++
		}
	}
	return trials, ok
}

func tightQuorumTrialOnce(opts core.Options, n, f, e int, rng *rand.Rand) bool {
	fastValue := consensus.IntValue(int64(100 + rng.Intn(10)))
	proposer := consensus.ProcessID(n - 1) // kept outside Q

	threshold := n - f - e
	// Q = threshold fast voters + the e non-voters.
	reports := make(map[consensus.ProcessID]core.OneB, n-f)
	for i := 0; i < threshold; i++ {
		reports[consensus.ProcessID(i)] = core.OneB{
			Ballot: 1, Val: fastValue, Proposer: proposer, Decided: consensus.None,
		}
	}
	// Non-voters: either idle, or an insider group that co-proposed a
	// competing (greater) value among themselves.
	insider := rng.Intn(2) == 0 && e >= 2
	comp := consensus.IntValue(int64(200 + rng.Intn(10)))
	for i := 0; i < e; i++ {
		p := consensus.ProcessID(threshold + i)
		rep := core.OneB{Ballot: 1, Val: consensus.None, Proposer: consensus.NoProcess, Decided: consensus.None}
		if insider {
			// Co-proposers: each voted comp with the other as its
			// vote's proposer; both are inside Q.
			other := consensus.ProcessID(threshold + (i+1)%e)
			rep = core.OneB{Ballot: 1, Val: comp, Proposer: other, Decided: consensus.None}
		}
		reports[p] = rep
	}
	cfg := consensus.Config{ID: 0, N: n, F: f, E: e, Delta: benchDelta}
	node := core.NewUnchecked(cfg, core.ModeTask, opts, consensus.FixedLeader(0))
	node.Propose(consensus.IntValue(int64(1 + rng.Intn(50)))) // leader's own value feeds rule 4
	return node.ComputeRecovery(reports) == fastValue
}
