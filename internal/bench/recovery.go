package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/protocols"
	"repro/internal/quorum"
)

// Recovery regenerates T3: fast-path recovery correctness (Lemmas 3 and 7).
// Two complementary checks:
//
//   - executed adversarial schedules: the at-bound Appendix-B schedule makes
//     a process fast-decide and crash silently together with f−1 others; the
//     survivors' recovery must re-select the fast value;
//   - randomized state-space trials: thousands of synthetic post-fast-
//     decision 1B report sets drawn at the bound; the recovery rule must
//     select the fast value in every one.
func Recovery() *Result {
	r := &Result{
		ID:    "T3",
		Title: "fast-path recovery correctness at the bound (Lemmas 3 & 7)",
		Header: []string{
			"mode", "f", "e", "n",
			"schedule: fast decided", "schedule: recovered ok",
			"random trials", "recovered ok",
		},
	}
	cases := []struct{ f, e int }{{2, 2}, {3, 2}, {3, 3}, {4, 3}, {4, 4}}
	for _, c := range cases {
		nT := quorum.TaskMinProcesses(c.f, c.e)
		w, err := lowerbound.TaskWitness(protocols.CoreTaskFactory, nT, c.f, c.e, benchDelta)
		schedFast, schedOK := "—", "—"
		if err == nil {
			schedFast = verdict(w.FastDecided, true)
			schedOK = verdict(!w.Violated && w.SurvivorValue == w.FastValue || !w.FastDecided, true)
		}
		trials, ok := recoveryTrials(core.ModeTask, c.f, c.e, core.DefaultOptions(), 2000, 101)
		r.AddRow("task", c.f, c.e, nT, schedFast, schedOK,
			trials, fmt.Sprintf("%s (%d/%d)", verdict(ok == trialCount(trials), true), ok, trialCount(trials)))

		nO := quorum.ObjectMinProcesses(c.f, c.e)
		schedFast, schedOK = "—", "—"
		if c.f >= 2 && c.e >= 2 {
			wo, err := lowerbound.ObjectWitness(protocols.CoreObjectFactory, nO, c.f, c.e, benchDelta)
			if err == nil {
				schedFast = verdict(wo.FastDecided, true)
				schedOK = verdict(!wo.Violated && wo.SurvivorValue == wo.FastValue || !wo.FastDecided, true)
			}
		}
		trialsO, okO := recoveryTrials(core.ModeObject, c.f, c.e, core.DefaultOptions(), 2000, 103)
		r.AddRow("object", c.f, c.e, nO, schedFast, schedOK,
			trialsO, fmt.Sprintf("%s (%d/%d)", verdict(okO == trialCount(trialsO), true), okO, trialCount(trialsO)))
	}
	r.AddNote("schedule: the at-bound Appendix-B schedule (fast decider crashes silently with f−1 bridge processes); recovered ok means the surviving quorum re-decided the fast value.")
	r.AddNote("random trials: synthetic 1B report sets consistent with a fast decision, drawn uniformly at the bound; the recovery rule must re-select the fast value in all of them.")
	return r
}

// trialCount parses no state — trials is the count we passed in; kept as a
// tiny helper so the call sites read clearly.
func trialCount(trials int) int { return trials }

// recoveryTrials draws `trials` random post-fast-decision report sets for
// the mode's tight bound and returns how many the recovery rule resolves to
// the fast value.
func recoveryTrials(mode core.Mode, f, e int, opts core.Options, trials int, seed int64) (int, int) {
	rng := rand.New(rand.NewSource(seed))
	ok := 0
	for i := 0; i < trials; i++ {
		if recoveryTrialOnce(mode, f, e, opts, rng) {
			ok++
		}
	}
	return trials, ok
}

// recoveryTrialOnce builds one random consistent global state in which a
// value was decided on the fast path, draws a random (n−f)-quorum of 1B
// reports from it, and checks the recovery rule returns the fast value.
func recoveryTrialOnce(mode core.Mode, f, e int, opts core.Options, rng *rand.Rand) bool {
	var n int
	if mode == core.ModeTask {
		n = quorum.TaskMinProcesses(f, e)
	} else {
		n = quorum.ObjectMinProcesses(f, e)
	}
	fastValue := consensus.IntValue(int64(100 + rng.Intn(10)))
	proposer := consensus.ProcessID(rng.Intn(n))

	type st struct {
		val     consensus.Value
		prop    consensus.ProcessID
		decided consensus.Value
	}
	states := make([]st, n)
	for i := range states {
		states[i] = st{val: consensus.None, prop: consensus.NoProcess, decided: consensus.None}
	}
	// n−e−1 explicit voters for the fast value (the proposer's support is
	// implicit), chosen randomly among the others.
	perm := rng.Perm(n)
	voters := 0
	var nonVoters []consensus.ProcessID
	for _, i := range perm {
		p := consensus.ProcessID(i)
		if p == proposer {
			continue
		}
		if voters < n-e-1 {
			states[i] = st{val: fastValue, prop: proposer, decided: consensus.None}
			voters++
		} else {
			nonVoters = append(nonVoters, p)
		}
	}
	// Optionally a lower competing value voted by some non-voters, with a
	// non-voter proposer (the only shape the fast-path preconditions
	// admit alongside a fast quorum for fastValue).
	if len(nonVoters) > 1 && rng.Intn(2) == 0 {
		comp := consensus.IntValue(int64(1 + rng.Intn(50)))
		compProp := nonVoters[rng.Intn(len(nonVoters))]
		for _, p := range nonVoters {
			if p != compProp && rng.Intn(2) == 0 {
				states[p] = st{val: comp, prop: compProp, decided: consensus.None}
			}
		}
	}

	// Random (n−f)-quorum; if it contains the proposer, the proposer must
	// have decided before joining (see core's recovery analysis).
	perm = rng.Perm(n)
	var q []consensus.ProcessID
	if rng.Intn(2) == 0 { // force the hard case (proposer outside Q) half the time
		for _, i := range perm {
			if p := consensus.ProcessID(i); p != proposer && len(q) < n-f {
				q = append(q, p)
			}
		}
	} else {
		for _, i := range perm {
			if len(q) < n-f {
				q = append(q, consensus.ProcessID(i))
			}
		}
	}
	reports := make(map[consensus.ProcessID]core.OneB, len(q))
	for _, p := range q {
		s := states[p]
		if p == proposer {
			s = st{val: fastValue, prop: consensus.NoProcess, decided: fastValue}
		}
		reports[p] = core.OneB{Ballot: 1, VBal: 0, Val: s.val, Proposer: s.prop, Decided: s.decided}
	}

	cfg := consensus.Config{ID: 0, N: n, F: f, E: e, Delta: benchDelta}
	node := core.NewUnchecked(cfg, mode, opts, consensus.FixedLeader(0))
	return node.ComputeRecovery(reports) == fastValue
}
