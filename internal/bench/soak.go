package bench

import (
	"fmt"

	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// SoakTable regenerates T5: randomized partial-synchrony safety and
// liveness campaigns. Every run draws a random GST, random pre-GST delays,
// random crash times (up to f crashes) and random proposals, then checks
// Validity, Agreement, Termination, and — for the object — linearizability.
func SoakTable(runs int) *Result {
	if runs <= 0 {
		runs = 150
	}
	r := &Result{
		ID:     "T5",
		Title:  fmt.Sprintf("randomized partial-synchrony soak (%d seeded runs per row, crashes ≤ f)", runs),
		Header: []string{"protocol", "f", "e", "n", "workload", "runs", "violations", "undecided", "ok"},
	}
	type row struct {
		name   string
		fac    runner.Factory
		f, e   int
		n      int
		object bool
		dup    float64
	}
	rows := []row{
		{"core-task", protocols.CoreTaskFactory, 2, 1, quorum.TaskMinProcesses(2, 1), false, 0},
		{"core-task", protocols.CoreTaskFactory, 2, 2, quorum.TaskMinProcesses(2, 2), false, 0},
		{"core-task", protocols.CoreTaskFactory, 3, 2, quorum.TaskMinProcesses(3, 2), false, 0},
		{"core-task", protocols.CoreTaskFactory, 2, 2, quorum.TaskMinProcesses(2, 2), false, 0.2},
		{"core-object", protocols.CoreObjectFactory, 2, 2, quorum.ObjectMinProcesses(2, 2), true, 0},
		{"core-object", protocols.CoreObjectFactory, 3, 3, quorum.ObjectMinProcesses(3, 3), true, 0},
		{"core-object", protocols.CoreObjectFactory, 2, 2, quorum.ObjectMinProcesses(2, 2), true, 0.2},
		{"fastpaxos", protocols.FastPaxosFactory, 2, 1, quorum.LamportMinProcesses(2, 1), false, 0},
		{"paxos", protocols.PaxosFactory, 2, 0, quorum.PlainMinProcesses(2), false, 0},
	}
	for i, rw := range rows {
		sc := runner.Scenario{N: rw.n, F: rw.f, E: rw.e, Delta: benchDelta, Seed: int64(1000 + i)}
		res := runner.Soak(rw.fac, sc, runner.SoakOptions{
			Runs:          runs,
			MaxCrashes:    rw.f,
			Object:        rw.object,
			DuplicateProb: rw.dup,
		})
		workload := "task: all propose"
		if rw.object {
			workload = "object: random proposers"
		}
		if rw.dup > 0 {
			workload += fmt.Sprintf(" + %.0f%% dup delivery", rw.dup*100)
		}
		r.AddRow(rw.name, rw.f, rw.e, rw.n, workload,
			res.Runs, res.Violations, res.Undecided, verdict(res.OK(), true))
	}
	r.AddNote("Duplicate-delivery rows inject at-least-once links (each message may be redelivered with an independent delay); the protocols must be idempotent.")
	return r
}
