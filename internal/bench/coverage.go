package bench

import (
	"fmt"

	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// Coverage regenerates T2: exhaustive two-step coverage at the bound. For
// each configuration it enumerates every crash set E of size e and checks
// both items of the relevant definition, counting the executed runs. Paxos
// appears as a negative control: item 1 must fail for any e > 0 (§2).
func Coverage() *Result {
	r := &Result{
		ID:     "T2",
		Title:  "two-step coverage at the tight bound (all crash sets, Definitions 4 & A.1)",
		Header: []string{"protocol", "f", "e", "n", "item1", "item2", "runs"},
	}
	cases := []struct{ f, e int }{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {3, 3}}
	for _, c := range cases {
		nT := quorum.TaskMinProcesses(c.f, c.e)
		rep := runner.TaskTwoStep(protocols.CoreTaskFactory,
			runner.Scenario{N: nT, F: c.f, E: c.e, Delta: benchDelta, Seed: 2})
		r.AddRow("core-task", c.f, c.e, nT,
			verdict(rep.Item1.OK, true), verdict(rep.Item2.OK, true),
			fmt.Sprintf("%d", rep.Item1.Runs+rep.Item2.Runs))

		nO := quorum.ObjectMinProcesses(c.f, c.e)
		repO := runner.ObjectTwoStep(protocols.CoreObjectFactory,
			runner.Scenario{N: nO, F: c.f, E: c.e, Delta: benchDelta, Seed: 2})
		r.AddRow("core-object", c.f, c.e, nO,
			verdict(repO.Item1.OK, true), verdict(repO.Item2.OK, true),
			fmt.Sprintf("%d", repO.Item1.Runs+repO.Item2.Runs))

		nL := quorum.LamportMinProcesses(c.f, c.e)
		repF := runner.TaskTwoStep(protocols.FastPaxosFactory,
			runner.Scenario{N: nL, F: c.f, E: c.e, Delta: benchDelta, Seed: 2})
		r.AddRow("fastpaxos", c.f, c.e, nL,
			verdict(repF.Item1.OK, true), verdict(repF.Item2.OK, true),
			fmt.Sprintf("%d", repF.Item1.Runs+repF.Item2.Runs))
	}
	// Negative control: Paxos cannot be e-two-step for e > 0.
	repP := runner.TaskTwoStep(protocols.PaxosFactory,
		runner.Scenario{N: 3, F: 1, E: 1, Delta: benchDelta, Seed: 2})
	r.AddRow("paxos (control)", 1, 1, 3,
		verdict(repP.Item1.OK, false), verdict(repP.Item2.OK, false), fmt.Sprintf("%d", repP.Item1.Runs+repP.Item2.Runs))
	r.AddNote("For the Paxos control ✓ means the expected FAILURE occurred: with the initial leader in E no process can decide by 2Δ.")
	return r
}
