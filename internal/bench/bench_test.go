package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFrontierVerdictsAllExpected asserts every empirical cell of T1 agrees
// with the theory (✓ or —, never ✗?!).
func TestFrontierVerdictsAllExpected(t *testing.T) {
	r := Frontier()
	assertNoUnexpected(t, r)
}

func TestCoverageAllExpected(t *testing.T) {
	assertNoUnexpected(t, Coverage())
}

func TestRecoveryAllExpected(t *testing.T) {
	assertNoUnexpected(t, Recovery())
}

func TestDurableRecoveryShape(t *testing.T) {
	r := DurableRecovery()
	assertNoUnexpected(t, r)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want one per fsync policy", len(r.Rows))
	}
	for _, row := range r.Rows {
		if strings.Contains(row[6], "error:") {
			t.Errorf("policy %s failed: %v", row[0], row)
			continue
		}
		// Every append that returned without error must be recovered, plus
		// nothing else: the torn record is truncated away, so the recovered
		// count equals the acknowledged count.
		if want := "513/513"; row[3] != want {
			t.Errorf("policy %s: crash recovery %q, want %q", row[0], row[3], want)
		}
		if row[4] != "✓" {
			t.Errorf("policy %s: torn tail not detected: %v", row[0], row)
		}
	}
}

func TestLowerBoundsAllExpected(t *testing.T) {
	assertNoUnexpected(t, LowerBounds())
}

func TestSoakSmallAllExpected(t *testing.T) {
	assertNoUnexpected(t, SoakTable(15))
}

func TestModelCheckAllExpected(t *testing.T) {
	if testing.Short() {
		t.Skip("T6 explores ~150k states")
	}
	assertNoUnexpected(t, ModelCheck())
}

func TestChaosSoakAllExpected(t *testing.T) {
	if testing.Short() {
		t.Skip("T7 boots three live durable clusters")
	}
	r := ChaosSoak()
	assertNoUnexpected(t, r)
	for _, row := range r.Rows {
		if strings.Contains(row[len(row)-1], "error") {
			t.Errorf("T7: harness error in row %v", row)
		}
	}
}

// assertNoUnexpected fails on any cell flagged "✗?!" (observed ≠ expected).
func assertNoUnexpected(t *testing.T, r *Result) {
	t.Helper()
	if len(r.Rows) == 0 {
		t.Fatalf("%s: empty result", r.ID)
	}
	for _, row := range r.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "?!") {
				t.Errorf("%s: unexpected verdict in row %v", r.ID, row)
			}
		}
	}
}

func TestLatencyVsCrashesShape(t *testing.T) {
	r := LatencyVsCrashes()
	if len(r.Rows) < 3 {
		t.Fatalf("too few rows: %v", r.Rows)
	}
	// Row 0 (no crashes): every protocol decides in 2.0Δ.
	for i, cell := range r.Rows[0][1:] {
		if cell != "2.0Δ" {
			t.Errorf("crash-free latency col %d = %q, want 2.0Δ", i, cell)
		}
	}
	// Row 1 (leader crashed): Paxos (last column) must be slower than 2Δ,
	// the fast protocols must not be.
	row := r.Rows[1]
	last := row[len(row)-1]
	if last == "2.0Δ" {
		t.Errorf("paxos with crashed leader still 2.0Δ")
	}
	for _, cell := range row[1 : len(row)-1] {
		if cell != "2.0Δ" {
			t.Errorf("fast protocol degraded under 1 ≤ e crashes: %q (row %v)", cell, row)
		}
	}
}

func TestWANShape(t *testing.T) {
	r := WAN()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// In every region, core-object (col 1) must beat fastpaxos (col 3):
	// the extra two replicas push the fast quorum farther for each proxy.
	for _, row := range r.Rows {
		coreMS := parseMS(t, row[1])
		fpMS := parseMS(t, row[3])
		if coreMS >= fpMS {
			t.Errorf("region %s: core-object %dms !< fastpaxos %dms", row[0], coreMS, fpMS)
		}
		// EPaxos matches core-object (same fast quorum geometry).
		if epMS := parseMS(t, row[2]); epMS != coreMS {
			t.Errorf("region %s: epaxos %dms != core-object %dms", row[0], epMS, coreMS)
		}
	}
}

func parseMS(t *testing.T, cell string) int {
	t.Helper()
	var v int
	if _, err := sscanf(cell, &v); err != nil {
		t.Fatalf("bad latency cell %q: %v", cell, err)
	}
	return v
}

func sscanf(cell string, v *int) (int, error) {
	cell = strings.TrimSuffix(cell, " ms")
	n := 0
	for _, r := range cell {
		if r < '0' || r > '9' {
			return 0, errBadCell(cell)
		}
		n = n*10 + int(r-'0')
	}
	*v = n
	return 1, nil
}

type errBadCell string

func (e errBadCell) Error() string { return "bad cell: " + string(e) }

func TestAblationShape(t *testing.T) {
	r := Ablation()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	full := r.Rows[0]
	if full[1] != "✓" || full[2] != "safe" || full[3] != "safe" || !strings.HasPrefix(full[4], "2000/2000") {
		t.Errorf("full protocol row unexpected: %v", full)
	}
	noOrder := r.Rows[1]
	if noOrder[2] != "VIOLATED" {
		t.Errorf("no-ordering must be violated on low-fast schedule: %v", noOrder)
	}
	noExcl := r.Rows[2]
	if noExcl[3] != "VIOLATED" {
		t.Errorf("no-exclusion must be violated on insider schedule: %v", noExcl)
	}
	noEq := r.Rows[3]
	if strings.HasPrefix(noEq[4], "2000/2000") {
		t.Errorf("no-equality must lose tight-quorum recoveries: %v", noEq)
	}
}

func TestRecoveryTrialsAblationsFail(t *testing.T) {
	// Sanity: the same trial generator that gives 100% for the full
	// protocol must not give 100% with EqualityBranch disabled when the
	// trials include exact-threshold states... the generic generator
	// rarely produces exact-threshold intersections, so use the tight
	// generator from the ablation experiment.
	opts := core.DefaultOptions()
	trials, ok := tightQuorumTrials(opts, 2, 2, 500, 5)
	if ok != trials {
		t.Fatalf("full protocol: %d/%d", ok, trials)
	}
	opts.EqualityBranch = false
	_, okNoEq := tightQuorumTrials(opts, 2, 2, 500, 5)
	if okNoEq == trials {
		t.Fatal("no-equality ablation lost nothing on tight quorums")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "X", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow(1, "✓")
	r.AddNote("note %d", 7)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## X — t", "| a | bb |", "| 1 | ✓  |", "> note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Fmt() != "—" || s.InDelta(10) != "—" {
		t.Fatal("empty sample formatting")
	}
	for _, x := range []float64{10, 20, 30, 40} {
		s.Add(x)
	}
	if s.Mean() != 25 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Percentile(50) != 20 {
		t.Fatalf("p50 = %v", s.Percentile(50))
	}
	if s.Percentile(100) != 40 || s.Max() != 40 {
		t.Fatalf("p100 = %v max = %v", s.Percentile(100), s.Max())
	}
	if got := s.InDelta(10); got != "2.5Δ" {
		t.Fatalf("InDelta = %q", got)
	}
}
