package bench

import (
	"repro/internal/consensus"
	"repro/internal/lowerbound"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// benchDelta is the round length used by simulator experiments.
const benchDelta = consensus.Duration(10)

// Frontier regenerates T1: the process-count frontier. For every (f, e) it
// reports each protocol's theoretical minimum n and verifies empirically
// that the paper's protocols are e-two-step at their bound and break (via
// the Appendix-B constructions) one process below it, while Fast Paxos
// breaks at the paper's task bound — two below its own.
func Frontier() *Result {
	r := &Result{
		ID:    "T1",
		Title: "process-count frontier: formula bounds and empirical verdicts",
		Header: []string{
			"f", "e",
			"n paxos", "n fastpaxos", "n task", "n object",
			"task 2step@n", "task break@n-1",
			"obj 2step@n", "obj break@n-1",
			"fp break@n-1",
		},
	}
	for f := 1; f <= 4; f++ {
		for e := 1; e <= f; e++ {
			nT := quorum.TaskMinProcesses(f, e)
			nO := quorum.ObjectMinProcesses(f, e)
			nL := quorum.LamportMinProcesses(f, e)

			taskOK := runner.TaskTwoStep(protocols.CoreTaskFactory,
				runner.Scenario{N: nT, F: f, E: e, Delta: benchDelta, Seed: 1}).OK()

			taskBreak := "—"
			if quorum.FastSideBinds(quorum.Task, f, e) { // n−1 = 2e+f−1
				w, err := lowerbound.TaskWitness(protocols.CoreTaskFactory, nT-1, f, e, benchDelta)
				if err == nil && w.FastDecided {
					taskBreak = verdict(w.Violated, true)
				}
			}

			objOK := runner.ObjectTwoStep(protocols.CoreObjectFactory,
				runner.Scenario{N: nO, F: f, E: e, Delta: benchDelta, Seed: 1}).OK()

			objBreak := "—"
			if quorum.FastSideBinds(quorum.Object, f, e) && f >= 2 && e >= 2 {
				w, err := lowerbound.ObjectWitness(protocols.CoreObjectFactory, nO-1, f, e, benchDelta)
				if err == nil && w.FastDecided {
					objBreak = verdict(w.Violated, true)
				}
			}

			fpBreak := "—"
			if quorum.FastSideBinds(quorum.Lamport, f, e) { // n−1 = 2e+f
				w, err := lowerbound.TaskWitnessVariant(protocols.FastPaxosFactory,
					nL-1, f, e, benchDelta, lowerbound.TaskLowFast)
				if err == nil && w.FastDecided {
					fpBreak = verdict(w.Violated, true)
				}
			}

			r.AddRow(f, e,
				quorum.PlainMinProcesses(f), nL, nT, nO,
				verdict(taskOK, true), taskBreak,
				verdict(objOK, true), objBreak,
				fpBreak)
		}
	}
	r.AddNote("2step@n: Definitions 4/A.1 verified over all crash sets at the tight bound.")
	r.AddNote("break@n-1: Appendix-B construction run one process below the bound — ✓ means the expected agreement violation occurred ('—' where the 2f+1 side binds and the construction does not apply).")
	r.AddNote("fp break@n-1: Fast Paxos run at n = 2e+f, one below Lamport's bound — exactly where the paper's task protocol is still safe.")
	return r
}
