package bench

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
	"repro/internal/sim"
)

// latencyProtocols enumerates the contenders for the latency figures, each
// at its own minimal process count for the shared (f, e).
type latencyProtocol struct {
	name string
	n    func(f, e int) int
	fac  func(owner consensus.ProcessID) runner.Factory
	// ownE overrides e (EPaxos fixes e = ⌈(f+1)/2⌉ on 2f+1 processes).
	ownE func(f, e int) int
}

func latencyContenders() []latencyProtocol {
	return []latencyProtocol{
		{
			name: "core-task",
			n:    quorum.TaskMinProcesses,
			fac:  func(consensus.ProcessID) runner.Factory { return protocols.CoreTaskFactory },
			ownE: func(_, e int) int { return e },
		},
		{
			name: "core-object",
			n:    quorum.ObjectMinProcesses,
			fac:  func(consensus.ProcessID) runner.Factory { return protocols.CoreObjectFactory },
			ownE: func(_, e int) int { return e },
		},
		{
			name: "fastpaxos",
			n:    quorum.LamportMinProcesses,
			fac:  func(consensus.ProcessID) runner.Factory { return protocols.FastPaxosFactory },
			ownE: func(_, e int) int { return e },
		},
		{
			name: "epaxos",
			n:    func(f, _ int) int { return quorum.PlainMinProcesses(f) },
			fac:  func(owner consensus.ProcessID) runner.Factory { return protocols.EPaxosFactory(owner) },
			ownE: func(f, _ int) int { return quorum.EPaxosFastThreshold(f) },
		},
		{
			name: "paxos",
			n:    func(f, _ int) int { return quorum.PlainMinProcesses(f) },
			fac:  func(consensus.ProcessID) runner.Factory { return protocols.PaxosFactory },
			ownE: func(_, e int) int { return e },
		},
	}
}

// LatencyVsCrashes regenerates F1: decision latency at the proxy (in Δ) as
// the number of initial crashes grows, crashing the lowest-id processes —
// which always include Paxos's initial leader. The proxy is the lowest
// surviving process and proposes alone; the fast protocols keep deciding in
// 2Δ up to their own e, while Paxos pays a leader change.
func LatencyVsCrashes() *Result {
	const f, e = 3, 2
	r := &Result{
		ID:     "F1",
		Title:  fmt.Sprintf("decision latency at the proxy vs initial crashes (f=%d, e=%d; crashes hit p0…)", f, e),
		Header: []string{"crashes"},
	}
	contenders := latencyContenders()
	for _, c := range contenders {
		r.Header = append(r.Header, fmt.Sprintf("%s (n=%d)", c.name, c.n(f, e)))
	}
	for crashes := 0; crashes <= e+1; crashes++ {
		row := []any{crashes}
		for _, c := range contenders {
			n := c.n(f, e)
			pe := c.ownE(f, e)
			if crashes > f {
				row = append(row, "—")
				continue
			}
			lat := proxyLatency(c.fac(consensus.ProcessID(crashes)), n, f, pe, crashes)
			row = append(row, lat)
		}
		r.AddRow(row...)
	}
	r.AddNote("Each protocol runs at its own minimal n for f=3, e=2 (EPaxos is pinned to n=2f+1 with its own e=⌈(f+1)/2⌉=2).")
	r.AddNote("Latency is the proxy's decision time in synchronous E-faulty runs, in units of Δ; the proxy is the lowest-id surviving process. Crashing p0 removes Paxos's prepared leader, forcing a timer wait plus a full slow ballot.")
	return r
}

// proxyLatency runs one E-faulty synchronous run with the lowest `crashes`
// ids crashed and the next process proposing alone, and returns the
// proposer's decision latency formatted in Δ.
func proxyLatency(fac runner.Factory, n, f, e, crashes int) string {
	sc := runner.Scenario{N: n, F: f, E: e, Delta: benchDelta}
	var faulty []consensus.ProcessID
	for i := 0; i < crashes; i++ {
		faulty = append(faulty, consensus.ProcessID(i))
	}
	proxy := consensus.ProcessID(crashes)
	tr, err := runner.EFaultySync(fac, sc, runner.SyncRun{
		Faulty:  faulty,
		Inputs:  map[consensus.ProcessID]consensus.Value{proxy: consensus.IntValue(7)},
		Prefer:  proxy,
		Horizon: consensus.Time(400 * sc.Delta),
	})
	if err != nil {
		return "err"
	}
	d, ok := tr.DecisionOf(proxy)
	if !ok {
		return "∞"
	}
	return fmt.Sprintf("%.1fΔ", float64(d.At)/float64(sc.Delta))
}

// LatencyVsConflicts regenerates F2: mean first-decision latency under k
// concurrent distinct proposals with randomized same-round delivery order
// (seeded), comparing the value-ordered fast path against Fast Paxos's
// first-come fast path and leader-driven Paxos.
func LatencyVsConflicts() *Result {
	const f, e, seeds = 2, 2, 60
	r := &Result{
		ID:    "F2",
		Title: fmt.Sprintf("mean first-decision latency vs concurrent proposers (f=%d, e=%d, %d seeds)", f, e, seeds),
		Header: []string{
			"proposers",
			fmt.Sprintf("core-task (n=%d)", quorum.TaskMinProcesses(f, e)),
			fmt.Sprintf("fastpaxos (n=%d)", quorum.LamportMinProcesses(f, e)),
			fmt.Sprintf("paxos (n=%d)", quorum.PlainMinProcesses(f)),
		},
	}
	type contender struct {
		fac runner.Factory
		n   int
	}
	contenders := []contender{
		{protocols.CoreTaskFactory, quorum.TaskMinProcesses(f, e)},
		{protocols.FastPaxosFactory, quorum.LamportMinProcesses(f, e)},
		{protocols.PaxosFactory, quorum.PlainMinProcesses(f)},
	}
	maxK := quorum.PlainMinProcesses(f)
	for k := 1; k <= maxK; k++ {
		row := []any{k}
		for _, c := range contenders {
			var lat Sample
			for seed := int64(0); seed < seeds; seed++ {
				t, ok := conflictRunLatency(c.fac, c.n, f, e, k, seed)
				if ok {
					lat.AddTicks(t)
				}
			}
			cell := lat.InDelta(benchDelta)
			if lat.N() > 0 {
				cell = fmt.Sprintf("%s (p95 %.1fΔ)", cell, lat.Percentile(95)/float64(benchDelta))
			}
			row = append(row, cell)
		}
		r.AddRow(row...)
	}
	r.AddNote("k proposers submit distinct values at t=0; message delays are random in [1,Δ] (GST=0), so same-round processing order — and hence which proposals collide — is random.")
	r.AddNote("The value-ordered fast path lets the greatest proposal sweep the cluster even under conflicts; first-come voting splits and falls back to recovery.")
	return r
}

// conflictRunLatency runs one randomized-order run with k proposers and
// returns the first decision time.
func conflictRunLatency(fac runner.Factory, n, f, e, k int, seed int64) (consensus.Time, bool) {
	cl, err := sim.New(sim.Options{
		N:       n,
		Delta:   benchDelta,
		Policy:  sim.NewPartialSync(benchDelta, 0, benchDelta, seed+77),
		Horizon: consensus.Time(400 * benchDelta),
	})
	if err != nil {
		return 0, false
	}
	oracle := cl.Oracle()
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		cl.SetNode(p, fac(consensus.Config{ID: p, N: n, F: f, E: e, Delta: benchDelta}, oracle))
	}
	for i := 0; i < k && i < n; i++ {
		cl.SchedulePropose(consensus.ProcessID(i), 0, consensus.IntValue(int64(i+1)))
	}
	tr := cl.Run(func(c *sim.Cluster) bool {
		_, ok := c.Trace().FirstDecision()
		return ok
	})
	d, ok := tr.FirstDecision()
	if !ok {
		return 0, false
	}
	return d.At, true
}
