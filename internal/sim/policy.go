// Package sim is a deterministic discrete-event simulator for the system
// model of the paper's §2: n crash-prone processes connected by reliable
// links in a partially synchronous network. Time is a logical tick counter;
// a round is Δ ticks. Delay policies implement the paper's synchronous-round
// model (Definition 2, items 3–4), the DLS partial-synchrony model with an
// unknown GST, and a WAN model driven by an RTT matrix.
//
// Everything is deterministic given the seed: the event queue breaks ties by
// (time, priority, sequence number), protocols are pure state machines, and
// randomness comes only from the policy's seeded generator. The delivery
// PriorityFn hook lets scenario drivers (internal/runner) steer which of
// several same-tick deliveries a process handles first — this is how the
// existentially quantified runs of Definitions 4 and A.1 ("there exists an
// E-faulty synchronous run …") are constructed.
package sim

import (
	"math/rand"

	"repro/internal/consensus"
)

// DelayPolicy decides when a message sent at sentAt from one process to
// another is delivered. Implementations may be stateful (seeded RNG); the
// simulator calls Delay exactly once per unicast message, in a deterministic
// order.
type DelayPolicy interface {
	// Delay returns the network delay for the message; the simulator
	// delivers at sentAt + Delay. Must be ≥ 0.
	Delay(sentAt consensus.Time, from, to consensus.ProcessID) consensus.Duration
}

// Synchronous delivers every message exactly at the beginning of the next
// round (Definition 2, item 3): a message sent during round k arrives at
// time (k+1)·Δ.
type Synchronous struct {
	// Delta is the round length Δ in ticks.
	Delta consensus.Duration
}

var _ DelayPolicy = Synchronous{}

// Delay implements DelayPolicy.
func (s Synchronous) Delay(sentAt consensus.Time, _, _ consensus.ProcessID) consensus.Duration {
	next := (sentAt/consensus.Time(s.Delta) + 1) * consensus.Time(s.Delta)
	return consensus.Duration(next - sentAt)
}

// PartialSync implements the DLS partial-synchrony model: messages sent
// before GST suffer arbitrary (bounded, seeded-random) delays but are
// delivered by GST+Δ at the latest; messages sent at or after GST take
// between 1 tick and Δ.
type PartialSync struct {
	delta     consensus.Duration
	gst       consensus.Time
	preGSTMax consensus.Duration
	rng       *rand.Rand
}

var _ DelayPolicy = (*PartialSync)(nil)

// NewPartialSync builds a partial-synchrony policy. preGSTMax bounds the
// extra delay adversarially injected before GST (values several times Δ
// exercise slow-path recovery); seed makes the run reproducible.
func NewPartialSync(delta consensus.Duration, gst consensus.Time, preGSTMax consensus.Duration, seed int64) *PartialSync {
	if preGSTMax < delta {
		preGSTMax = delta
	}
	return &PartialSync{
		delta:     delta,
		gst:       gst,
		preGSTMax: preGSTMax,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Delay implements DelayPolicy.
func (p *PartialSync) Delay(sentAt consensus.Time, _, _ consensus.ProcessID) consensus.Duration {
	if sentAt >= p.gst {
		return 1 + consensus.Duration(p.rng.Int63n(int64(p.delta)))
	}
	d := 1 + consensus.Duration(p.rng.Int63n(int64(p.preGSTMax)))
	// Reliable links: even pre-GST messages arrive by GST+Δ.
	if latest := p.gst + consensus.Time(p.delta); sentAt+consensus.Time(d) > latest {
		d = consensus.Duration(latest - sentAt)
	}
	return d
}

// WAN models a geo-replicated deployment: the one-way delay between two
// processes is half the configured RTT between their regions, plus seeded
// jitter. Local (same-process) traffic is instantaneous.
type WAN struct {
	// RTT[i][j] is the round-trip time in ticks between the regions of
	// processes i and j.
	rtt    [][]consensus.Duration
	jitter consensus.Duration
	rng    *rand.Rand
}

var _ DelayPolicy = (*WAN)(nil)

// NewWAN builds a WAN policy from a full n×n RTT matrix (ticks ≈ ms).
func NewWAN(rtt [][]consensus.Duration, jitter consensus.Duration, seed int64) *WAN {
	return &WAN{rtt: rtt, jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements DelayPolicy.
func (w *WAN) Delay(_ consensus.Time, from, to consensus.ProcessID) consensus.Duration {
	if from == to {
		return 0
	}
	d := w.rtt[from][to] / 2
	if w.jitter > 0 {
		d += consensus.Duration(w.rng.Int63n(int64(w.jitter) + 1))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// MaxRTT returns the largest entry of the matrix; useful for sizing Δ so
// that the WAN run is "synchronous enough" for the fast path.
func (w *WAN) MaxRTT() consensus.Duration {
	var m consensus.Duration
	for _, row := range w.rtt {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}
