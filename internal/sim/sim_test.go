package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/sim"
)

// echoProto is a minimal protocol for simulator tests: it broadcasts a ping
// at start, counts pongs, and decides when it has heard from everyone.
type echoProto struct {
	cfg    consensus.Config
	pongs  map[consensus.ProcessID]struct{}
	dec    consensus.Value
	ticks  int
	events []string
}

type ping struct{}
type pong struct{}

func (ping) Kind() string { return "test.ping" }
func (pong) Kind() string { return "test.pong" }

func newEcho(cfg consensus.Config) *echoProto {
	return &echoProto{cfg: cfg, pongs: make(map[consensus.ProcessID]struct{}), dec: consensus.None}
}

func (e *echoProto) ID() consensus.ProcessID { return e.cfg.ID }
func (e *echoProto) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.Broadcast{Msg: ping{}, Self: false},
		consensus.StartTimer{Timer: "echo", After: e.cfg.Delta},
	}
}
func (e *echoProto) Propose(consensus.Value) []consensus.Effect { return nil }
func (e *echoProto) Deliver(from consensus.ProcessID, m consensus.Message) []consensus.Effect {
	switch m.(type) {
	case ping:
		e.events = append(e.events, "ping:"+from.String())
		return []consensus.Effect{consensus.Send{To: from, Msg: pong{}}}
	case pong:
		e.events = append(e.events, "pong:"+from.String())
		e.pongs[from] = struct{}{}
		if len(e.pongs) == e.cfg.N-1 && e.dec.IsNone() {
			e.dec = consensus.IntValue(int64(len(e.pongs)))
			return []consensus.Effect{consensus.Decide{Value: e.dec}}
		}
	}
	return nil
}
func (e *echoProto) Tick(consensus.TimerID) []consensus.Effect {
	e.ticks++
	e.events = append(e.events, "tick")
	return nil
}
func (e *echoProto) Decision() (consensus.Value, bool) {
	return e.dec, !e.dec.IsNone()
}

func buildEcho(t *testing.T, n int, opts sim.Options) (*sim.Cluster, []*echoProto) {
	t.Helper()
	cl, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*echoProto, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: 1, E: 1, Delta: opts.Delta}
		protos[i] = newEcho(cfg)
		cl.SetNode(cfg.ID, protos[i])
	}
	return cl, protos
}

func TestSynchronousRoundDelivery(t *testing.T) {
	const n = 3
	delta := consensus.Duration(10)
	cl, protos := buildEcho(t, n, sim.Options{N: n, Delta: delta, Policy: sim.Synchronous{Delta: delta}})
	tr := cl.Run(nil)
	// Pings sent at t=0 arrive at Δ; pongs sent at Δ arrive at 2Δ; every
	// process decides at exactly 2Δ.
	for i := 0; i < n; i++ {
		d, ok := tr.DecisionOf(consensus.ProcessID(i))
		if !ok || d.At != consensus.Time(2*delta) {
			t.Fatalf("p%d decision: %v ok=%v, want at 2Δ", i, d, ok)
		}
	}
	_ = protos
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() []string {
		const n = 4
		delta := consensus.Duration(10)
		cl, protos := buildEcho(t, n, sim.Options{
			N: n, Delta: delta,
			Policy: sim.NewPartialSync(delta, 20, 60, 42),
		})
		cl.ScheduleCrash(2, 15)
		cl.Run(nil)
		var all []string
		for _, p := range protos {
			all = append(all, p.events...)
		}
		return all
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different event sequences:\n%v\n%v", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed int64) []string {
		const n = 4
		delta := consensus.Duration(10)
		cl, protos := buildEcho(t, n, sim.Options{
			N: n, Delta: delta,
			Policy: sim.NewPartialSync(delta, 20, 60, seed),
		})
		cl.Run(nil)
		var all []string
		for _, p := range protos {
			all = append(all, p.events...)
		}
		return all
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestCrashedProcessReceivesNothing(t *testing.T) {
	const n = 3
	delta := consensus.Duration(10)
	cl, protos := buildEcho(t, n, sim.Options{N: n, Delta: delta, Policy: sim.Synchronous{Delta: delta}})
	cl.ScheduleCrash(1, 0)
	tr := cl.Run(nil)
	if len(protos[1].events) != 0 {
		t.Fatalf("crashed process handled events: %v", protos[1].events)
	}
	if !tr.Crashed(1) {
		t.Fatal("crash not recorded")
	}
	// Survivors cannot decide (they wait for n−1 pongs) — p1 is silent.
	if _, ok := tr.DecisionOf(0); ok {
		t.Fatal("p0 decided despite missing pong")
	}
}

func TestPriorityFnOrdersSameTickDeliveries(t *testing.T) {
	const n = 3
	delta := consensus.Duration(10)
	cl, err := sim.New(sim.Options{
		N: n, Delta: delta,
		Policy: sim.Synchronous{Delta: delta},
		PriorityFn: func(env sim.Envelope) int {
			// Reverse: higher sender id first.
			return -int(env.From)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*echoProto, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: 1, E: 1, Delta: delta}
		protos[i] = newEcho(cfg)
		cl.SetNode(cfg.ID, protos[i])
	}
	cl.Run(nil)
	// p0's first two events are pings from p2 then p1.
	if len(protos[0].events) < 2 || protos[0].events[0] != "ping:p2" || protos[0].events[1] != "ping:p1" {
		t.Fatalf("priority ordering violated: %v", protos[0].events[:2])
	}
}

func TestSilenceFromSuppressesSends(t *testing.T) {
	const n = 3
	delta := consensus.Duration(10)
	cl, protos := buildEcho(t, n, sim.Options{N: n, Delta: delta, Policy: sim.Synchronous{Delta: delta}})
	// p0's sends are suppressed from t=0: nobody ever gets its ping, and
	// p0 itself still receives and replies... its pongs are suppressed
	// too, so nobody hears from p0 at all.
	cl.SilenceFrom(0, 0)
	tr := cl.Run(nil)
	for _, ev := range protos[1].events {
		if ev == "ping:p0" || ev == "pong:p0" {
			t.Fatalf("p1 heard from silenced p0: %v", protos[1].events)
		}
	}
	// p0 still processes inbound traffic.
	if len(protos[0].events) == 0 {
		t.Fatal("silenced p0 stopped receiving")
	}
	_ = tr
}

func TestTimerRearmReplacesPending(t *testing.T) {
	const n = 1
	delta := consensus.Duration(10)
	cl, err := sim.New(sim.Options{N: n, Delta: delta, Policy: sim.Synchronous{Delta: delta}, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	p := &rearmProto{}
	cl.SetNode(0, p)
	cl.Run(nil)
	// Start arms t1 at +10 and immediately re-arms it at +5: only the
	// re-armed instance fires, once (the stale instance is discarded by
	// its generation check when it pops at t=10).
	if p.fired != 1 {
		t.Fatalf("timer fired %d times, want 1", p.fired)
	}
}

type rearmProto struct {
	fired int
}

func (p *rearmProto) ID() consensus.ProcessID { return 0 }
func (p *rearmProto) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.StartTimer{Timer: "t1", After: 10},
		consensus.StartTimer{Timer: "t1", After: 5},
	}
}
func (p *rearmProto) Propose(consensus.Value) []consensus.Effect { return nil }
func (p *rearmProto) Deliver(consensus.ProcessID, consensus.Message) []consensus.Effect {
	return nil
}
func (p *rearmProto) Tick(consensus.TimerID) []consensus.Effect {
	p.fired++
	return nil
}
func (p *rearmProto) Decision() (consensus.Value, bool) { return consensus.None, false }

func TestStopTimerCancels(t *testing.T) {
	const n = 1
	delta := consensus.Duration(10)
	cl, err := sim.New(sim.Options{N: n, Delta: delta, Policy: sim.Synchronous{Delta: delta}, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	p := &stopProto{}
	cl.SetNode(0, p)
	cl.Run(nil)
	if p.fired != 0 {
		t.Fatalf("stopped timer fired %d times", p.fired)
	}
}

type stopProto struct{ fired int }

func (p *stopProto) ID() consensus.ProcessID { return 0 }
func (p *stopProto) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.StartTimer{Timer: "t", After: 10},
		consensus.StopTimer{Timer: "t"},
	}
}
func (p *stopProto) Propose(consensus.Value) []consensus.Effect { return nil }
func (p *stopProto) Deliver(consensus.ProcessID, consensus.Message) []consensus.Effect {
	return nil
}
func (p *stopProto) Tick(consensus.TimerID) []consensus.Effect {
	p.fired++
	return nil
}
func (p *stopProto) Decision() (consensus.Value, bool) { return consensus.None, false }

func TestDuplicatorRedeliversMessages(t *testing.T) {
	const n = 2
	delta := consensus.Duration(10)
	cl, err := sim.New(sim.Options{
		N: n, Delta: delta,
		Policy:     sim.Synchronous{Delta: delta},
		Duplicator: func(sim.Envelope) int { return 1 }, // every message twice
	})
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]*echoProto, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: 0, E: 0, Delta: delta}
		protos[i] = newEcho(cfg)
		cl.SetNode(cfg.ID, protos[i])
	}
	tr := cl.Run(nil)
	// One ping each way becomes two; pongs double too (pings processed
	// twice each produce a pong).
	pings := 0
	for _, ev := range protos[0].events {
		if ev == "ping:p1" {
			pings++
		}
	}
	if pings != 2 {
		t.Fatalf("p0 saw %d pings from p1, want 2", pings)
	}
	// The echo protocol is idempotent in its decision logic.
	if err := tr.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialSyncRespectsGSTBound(t *testing.T) {
	delta := consensus.Duration(10)
	gst := consensus.Time(50)
	p := sim.NewPartialSync(delta, gst, 200, 7)
	for sent := consensus.Time(0); sent < 100; sent += 3 {
		d := p.Delay(sent, 0, 1)
		if d < 1 {
			t.Fatalf("delay %d < 1", d)
		}
		arrival := sent + consensus.Time(d)
		if sent >= gst && d > consensus.Duration(delta) {
			t.Fatalf("post-GST delay %d > Δ", d)
		}
		if sent < gst && arrival > gst+consensus.Time(delta) {
			t.Fatalf("pre-GST message sent at %d arrives at %d > GST+Δ", sent, arrival)
		}
	}
}

func TestWANDelayHalvesRTT(t *testing.T) {
	rtt := [][]consensus.Duration{{0, 100}, {100, 0}}
	w := sim.NewWAN(rtt, 0, 1)
	if d := w.Delay(0, 0, 1); d != 50 {
		t.Fatalf("Delay = %d, want 50", d)
	}
	if d := w.Delay(0, 0, 0); d != 0 {
		t.Fatalf("self Delay = %d, want 0", d)
	}
	if w.MaxRTT() != 100 {
		t.Fatalf("MaxRTT = %d", w.MaxRTT())
	}
}
