package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/consensus"
	"repro/internal/trace"
)

// Options configures a simulated cluster.
type Options struct {
	// N is the number of processes.
	N int
	// Delta is the round length Δ in ticks.
	Delta consensus.Duration
	// Policy decides message delays. Required.
	Policy DelayPolicy
	// PriorityFn, if set, biases the processing order of deliveries that
	// land on the same tick: lower return values are handled first. This
	// is the hook scenario drivers use to construct the existentially
	// quantified runs of Definitions 4 and A.1.
	PriorityFn func(Envelope) int
	// Horizon is the hard stop time. Zero means 10000·Δ.
	Horizon consensus.Time
	// KeepMessages retains every delivery in the trace (expensive).
	KeepMessages bool
	// Duplicator, if set, returns how many extra copies of a message to
	// deliver (each re-delayed through the policy). Models at-least-once
	// links; protocols must be idempotent under it.
	Duplicator func(env Envelope) int
}

// Cluster is a deterministic discrete-event simulation of n processes
// running consensus.Protocol state machines.
type Cluster struct {
	opts  Options
	nodes []consensus.Protocol
	alive []bool
	queue eventQueue
	now   consensus.Time
	seq   int64
	gens  []map[consensus.TimerID]int64
	tr    *trace.Trace
	ran   bool

	// silencedAt[p], when ≥ 0, drops every message p sends at or after
	// that time. See SilenceFrom.
	silencedAt []consensus.Time
}

// New builds an empty cluster; populate it with SetNode before Run.
func New(opts Options) (*Cluster, error) {
	if opts.N < 1 {
		return nil, fmt.Errorf("sim: n=%d must be positive", opts.N)
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("sim: delay policy is required")
	}
	if opts.Delta <= 0 {
		return nil, fmt.Errorf("sim: delta=%d must be positive", opts.Delta)
	}
	if opts.Horizon == 0 {
		opts.Horizon = consensus.Time(10000 * opts.Delta)
	}
	c := &Cluster{
		opts:  opts,
		nodes: make([]consensus.Protocol, opts.N),
		alive: make([]bool, opts.N),
		gens:  make([]map[consensus.TimerID]int64, opts.N),
		tr:    trace.New(opts.N),
	}
	c.tr.KeepMessages = opts.KeepMessages
	c.silencedAt = make([]consensus.Time, opts.N)
	for i := range c.alive {
		c.alive[i] = true
		c.gens[i] = make(map[consensus.TimerID]int64)
		c.silencedAt[i] = -1
	}
	return c, nil
}

// SetNode installs the protocol instance for process p. All processes must
// be populated before Run.
func (c *Cluster) SetNode(p consensus.ProcessID, node consensus.Protocol) {
	c.nodes[p] = node
}

// Oracle returns an Ω leader oracle backed by the live cluster state: the
// lowest-id process that has not crashed. Because crashes are the only
// failures and are permanent, this oracle eventually stabilizes on the same
// correct process for everyone, as Ω requires.
func (c *Cluster) Oracle() consensus.LeaderOracle {
	return consensus.LeaderFunc(func() consensus.ProcessID {
		for i, up := range c.alive {
			if up {
				return consensus.ProcessID(i)
			}
		}
		return consensus.NoProcess
	})
}

// Now returns the current simulated time.
func (c *Cluster) Now() consensus.Time { return c.now }

// Trace returns the (live) execution trace.
func (c *Cluster) Trace() *trace.Trace { return c.tr }

// Alive reports whether p has not crashed.
func (c *Cluster) Alive(p consensus.ProcessID) bool { return c.alive[p] }

// ScheduleCrash makes p crash at time at (before deliveries on that tick).
func (c *Cluster) ScheduleCrash(p consensus.ProcessID, at consensus.Time) {
	c.push(&event{at: at, prio: prioCrash, kind: evCrash, p: p})
}

// SilenceFrom drops every message p sends at or after time at, while p keeps
// processing its inputs. Combined with a crash one tick later this models
// the fine-grained crash used by the paper's Appendix-B constructions: a
// process takes a step (for example, decides), then crashes before any of
// the step's messages reach the network.
func (c *Cluster) SilenceFrom(p consensus.ProcessID, at consensus.Time) {
	c.silencedAt[p] = at
}

// SchedulePropose invokes Propose(v) on p at time at. The proposal is
// recorded in the trace whether or not the protocol registers it.
func (c *Cluster) SchedulePropose(p consensus.ProcessID, at consensus.Time, v consensus.Value) {
	c.push(&event{at: at, prio: prioPropose, kind: evPropose, p: p, value: v})
}

// push assigns a sequence number and enqueues e.
func (c *Cluster) push(e *event) {
	e.seq = c.seq
	c.seq++
	heap.Push(&c.queue, e)
}

// Run starts every process at time 0 and processes events until the
// predicate returns true, the queue drains, or the horizon passes. A nil
// predicate runs to horizon/drain. Run may be called repeatedly with
// different predicates to continue the same execution.
func (c *Cluster) Run(until func(*Cluster) bool) *trace.Trace {
	if !c.ran {
		c.ran = true
		for i := range c.nodes {
			if c.nodes[i] == nil {
				panic(fmt.Sprintf("sim: process %d has no protocol instance", i))
			}
			c.push(&event{at: 0, prio: prioStart, kind: evStart, p: consensus.ProcessID(i)})
		}
	}
	for len(c.queue) > 0 {
		if until != nil && until(c) {
			break
		}
		e := heap.Pop(&c.queue).(*event)
		if e.at > c.opts.Horizon {
			break
		}
		c.now = e.at
		c.dispatch(e)
	}
	return c.tr
}

// AllDecided reports whether every non-crashed process has decided.
func (c *Cluster) AllDecided() bool {
	for i, up := range c.alive {
		if !up {
			continue
		}
		if _, ok := c.nodes[i].Decision(); !ok {
			return false
		}
	}
	return true
}

// DecidedAll reports whether every process in ps has decided.
func (c *Cluster) DecidedAll(ps []consensus.ProcessID) bool {
	for _, p := range ps {
		if _, ok := c.nodes[p].Decision(); !ok {
			return false
		}
	}
	return true
}

func (c *Cluster) dispatch(e *event) {
	switch e.kind {
	case evCrash:
		if c.alive[e.p] {
			c.alive[e.p] = false
			c.tr.RecordCrash(e.p, e.at)
		}
	case evStart:
		if c.alive[e.p] {
			c.apply(e.p, c.nodes[e.p].Start())
		}
	case evPropose:
		c.tr.RecordProposal(e.p, e.at, e.value)
		if c.alive[e.p] {
			c.apply(e.p, c.nodes[e.p].Propose(e.value))
		}
	case evDeliver:
		if c.alive[e.env.To] {
			c.tr.RecordDelivery(e.at, e.env.From, e.env.To, e.env.Msg.Kind())
			c.apply(e.env.To, c.nodes[e.env.To].Deliver(e.env.From, e.env.Msg))
		}
	case evTimer:
		if c.alive[e.p] && c.gens[e.p][e.timer] == e.gen {
			c.apply(e.p, c.nodes[e.p].Tick(e.timer))
		}
	}
}

// apply interprets the effects emitted by one protocol step at process p.
func (c *Cluster) apply(p consensus.ProcessID, effects []consensus.Effect) {
	for _, eff := range effects {
		switch eff := eff.(type) {
		case consensus.Send:
			c.send(p, eff.To, eff.Msg)
		case consensus.Broadcast:
			for i := 0; i < c.opts.N; i++ {
				to := consensus.ProcessID(i)
				if to == p && !eff.Self {
					continue
				}
				c.send(p, to, eff.Msg)
			}
		case consensus.StartTimer:
			c.gens[p][eff.Timer]++
			c.push(&event{
				at:    c.now + consensus.Time(eff.After),
				prio:  prioTimer,
				kind:  evTimer,
				p:     p,
				timer: eff.Timer,
				gen:   c.gens[p][eff.Timer],
			})
		case consensus.StopTimer:
			c.gens[p][eff.Timer]++
		case consensus.Decide:
			c.tr.RecordDecision(p, c.now, eff.Value)
		}
	}
}

// send schedules one unicast delivery. Self-addressed messages are ordinary
// messages: they go through the delay policy like everything else, exactly
// as in the paper's round model (a process's proposal to itself is delivered
// at the next round boundary and can be ordered against other deliveries by
// the scheduler).
func (c *Cluster) send(from, to consensus.ProcessID, msg consensus.Message) {
	if s := c.silencedAt[from]; s >= 0 && c.now >= s {
		return
	}
	env := Envelope{From: from, To: to, Msg: msg, SentAt: c.now}
	copies := 1
	if c.opts.Duplicator != nil {
		copies += c.opts.Duplicator(env)
	}
	for i := 0; i < copies; i++ {
		at := c.now + consensus.Time(c.opts.Policy.Delay(c.now, from, to))
		prio := prioDeliver
		if c.opts.PriorityFn != nil {
			prio += c.opts.PriorityFn(env)
		}
		c.push(&event{at: at, prio: prio, kind: evDeliver, env: env})
	}
}
