package sim

import (
	"container/heap"

	"repro/internal/consensus"
)

// Priority classes for same-tick event ordering. Crashes scheduled at a tick
// happen before message deliveries at that tick ("processes in E crash at
// the beginning of the first round"), and timers fire after deliveries, so a
// fast-path decision at exactly 2Δ lands before the 2Δ new-ballot timer.
const (
	prioCrash   = -1 << 20
	prioStart   = -1<<20 + 1
	prioPropose = -1<<20 + 2
	prioDeliver = 0 // + PriorityFn bias
	prioTimer   = 1 << 20
)

type eventKind int

const (
	evCrash eventKind = iota + 1
	evStart
	evPropose
	evDeliver
	evTimer
)

// Envelope is a message in flight.
type Envelope struct {
	From, To consensus.ProcessID
	Msg      consensus.Message
	SentAt   consensus.Time
}

type event struct {
	at   consensus.Time
	prio int
	seq  int64 // FIFO tie-break, assigned at scheduling time

	kind  eventKind
	p     consensus.ProcessID // target process (crash/start/propose/timer)
	env   Envelope            // evDeliver
	value consensus.Value     // evPropose
	timer consensus.TimerID   // evTimer
	gen   int64               // evTimer generation; stale timers are ignored
}

// eventQueue is a deterministic min-heap ordered by (at, prio, seq).
type eventQueue []*event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

// Pop implements heap.Interface.
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
