package mc_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/epaxos"
	"repro/internal/fastpaxos"
	"repro/internal/mc"
	"repro/internal/paxos"
)

// TestFastPaxosExhaustiveAtLamportBound explores Fast Paxos's fast ballot
// at its own bound n=4 (f=1, e=1): no delivery order may break agreement.
func TestFastPaxosExhaustiveAtLamportBound(t *testing.T) {
	fac := func(cfg consensus.Config) consensus.Protocol {
		return fastpaxos.NewUnchecked(cfg, consensus.FixedLeader(0))
	}
	res := requireSafe(t, fac, mc.Options{
		N: 4, F: 1, E: 1,
		Inputs:    inputs(1, 2, 0, 0),
		MaxStates: 400_000,
		MaxDepth:  44,
	}, false)
	if res.States < 1000 {
		t.Fatalf("small exploration: %+v", res)
	}
}

// TestPaxosExhaustive explores classic Paxos with the pre-promised ballot
// 0 and one timer firing per process (leader changes at any point).
func TestPaxosExhaustive(t *testing.T) {
	fac := func(cfg consensus.Config) consensus.Protocol {
		return paxos.NewUnchecked(cfg, consensus.FixedLeader(0))
	}
	requireSafe(t, fac, mc.Options{
		N: 3, F: 1, E: 0,
		Inputs:          inputs(5, 3, 0),
		TicksPerProcess: 1,
		MaxStates:       60_000,
		MaxDepth:        32,
	}, false)
}

// TestEPaxosExhaustive explores the single-owner EPaxos instance: the
// owner's fast path interleaved with recovery attempts by other processes.
func TestEPaxosExhaustive(t *testing.T) {
	owner := consensus.ProcessID(0)
	fac := func(cfg consensus.Config) consensus.Protocol {
		return epaxos.NewUnchecked(cfg, owner, consensus.FixedLeader(1))
	}
	requireSafe(t, fac, mc.Options{
		N: 3, F: 1, E: 1,
		Inputs:          inputs(7),
		TicksPerProcess: 1,
		MaxStates:       100_000,
		MaxDepth:        36,
		// Recovery may close the instance with Noop when it can prove
		// no fast commit happened — exempt from Validity by design.
		AllowedExtra: []consensus.Value{epaxos.Noop},
	}, false)
}
