// Package mc is a bounded, exhaustive model checker for the protocol state
// machines: it explores EVERY interleaving of message deliveries, timer
// firings and (optionally) crashes for a small configuration, checking
// Agreement and Validity in each reachable state. Where the simulator and
// the soak runner sample schedules, the checker enumerates them — for tiny
// systems this gives proof-grade assurance that the implementation's fast
// and slow paths cannot be driven into a safety violation.
//
// Model:
//
//   - The adversary repeatedly picks one enabled action: deliver any
//     in-flight message, fire any process's armed timer (timers may fire
//     arbitrarily early — safety must never depend on timing), or crash a
//     process while crash budget remains (a crashed process takes no more
//     steps; its in-flight messages are discarded).
//   - Protocols are deterministic, so a state is fully described by the
//     action sequence; states are reconstructed by replay and deduplicated
//     by a canonical key (per-process state dumps plus the multiset of
//     in-flight messages).
//   - Exploration is breadth-first up to MaxDepth actions and MaxStates
//     distinct states; hitting either bound reports Truncated rather than
//     silently passing.
//
// The per-process state dump comes from the StateDumper interface; protocols
// that do not implement it can still be checked, but without deduplication
// the bounds are reached much sooner.
package mc

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/consensus"
)

// StateDumper exposes a canonical, deterministic dump of a protocol
// instance's full state (volatile parts included) for deduplication.
type StateDumper interface {
	DumpState() string
}

// Factory builds the protocol under test for one process.
type Factory func(cfg consensus.Config) consensus.Protocol

// Options bounds the exploration.
type Options struct {
	// N, F, E configure the system; Inputs are the proposals submitted at
	// time zero (processes absent from Inputs propose nothing).
	N, F, E int
	Inputs  map[consensus.ProcessID]consensus.Value

	// TicksPerProcess bounds how many times each process's armed timers
	// may fire (0 disables timers — fast path only).
	TicksPerProcess int
	// AllowedExtra lists values exempt from the Validity check beyond the
	// inputs — e.g. epaxos.Noop, which recovery may legitimately commit.
	AllowedExtra []consensus.Value
	// Crashes bounds how many processes the adversary may crash.
	Crashes int
	// MaxStates bounds distinct states explored (default 2_000_000).
	MaxStates int
	// MaxDepth bounds the action-sequence length (default 64).
	MaxDepth int
}

// Result reports the exploration outcome.
type Result struct {
	// States is the number of distinct states explored.
	States int
	// Deepest is the longest action sequence reached.
	Deepest int
	// Truncated reports whether a bound stopped the exploration before
	// exhausting the state space.
	Truncated bool
	// Violation is non-nil if a safety violation was found; it carries a
	// replayable action trace.
	Violation *Violation
	// DecidedStates counts states in which at least one process decided.
	DecidedStates int
}

// Violation describes a found safety violation.
type Violation struct {
	Description string
	Trace       []Action
}

// String implements fmt.Stringer.
func (v *Violation) String() string {
	steps := make([]string, len(v.Trace))
	for i, a := range v.Trace {
		steps[i] = a.String()
	}
	return fmt.Sprintf("%s after [%s]", v.Description, strings.Join(steps, " "))
}

// actionKind tags adversary choices.
type actionKind int

const (
	actDeliver actionKind = iota + 1
	actTick
	actCrash
)

// Action is one adversary choice.
type Action struct {
	kind  actionKind
	msgIx int                 // actDeliver: index into the canonical pending list
	p     consensus.ProcessID // actTick / actCrash
	timer consensus.TimerID   // actTick
}

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.kind {
	case actDeliver:
		return fmt.Sprintf("deliver#%d", a.msgIx)
	case actTick:
		return fmt.Sprintf("tick(%s,%s)", a.p, a.timer)
	case actCrash:
		return fmt.Sprintf("crash(%s)", a.p)
	default:
		return "?"
	}
}

// flight is one in-flight message.
type flight struct {
	from, to consensus.ProcessID
	msg      consensus.Message
	key      string // canonical encoding for dedup and stable ordering
}

// world is a fully materialized state, reconstructed by replay.
type world struct {
	nodes   []consensus.Protocol
	alive   []bool
	pending []flight
	armed   []map[consensus.TimerID]bool
	ticks   []int // remaining tick budget per process
	crashes int   // remaining crash budget
}

// Check explores the model and returns the result.
func Check(fac Factory, opts Options) (Result, error) {
	if opts.N < 1 {
		return Result{}, fmt.Errorf("mc: n=%d", opts.N)
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 2_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 64
	}

	res := Result{}
	// Visited states are deduplicated by a 64-bit FNV hash of the
	// canonical key. A hash collision could in principle hide a state;
	// over the bounded state counts explored here the probability is
	// below 1e-6, and the trade keeps memory flat where full keys would
	// need gigabytes.
	visited := make(map[uint64]struct{}, 1<<16)
	// Depth-first exploration: the stack stays O(branching × depth)
	// entries, where a breadth-first frontier grows with the state count.
	stack := [][]Action{{}}

	for len(stack) > 0 {
		trace := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		w, err := replay(fac, opts, trace)
		if err != nil {
			return res, err
		}
		key := hashKey(w.canonicalKey())
		if _, seen := visited[key]; seen {
			continue
		}
		visited[key] = struct{}{}
		res.States++
		if len(trace) > res.Deepest {
			res.Deepest = len(trace)
		}

		// Safety check.
		if desc, bad := w.checkSafety(opts); bad {
			res.Violation = &Violation{Description: desc, Trace: trace}
			return res, nil
		}
		if w.anyDecided() {
			res.DecidedStates++
		}

		if res.States >= opts.MaxStates || len(trace) >= opts.MaxDepth {
			res.Truncated = true
			continue
		}

		// Enumerate successor actions. Identical pending messages are
		// collapsed: delivering either copy leads to the same state.
		seenMsg := make(map[string]struct{}, len(w.pending))
		for i, fl := range w.pending {
			if !w.alive[fl.to] {
				continue
			}
			if _, dup := seenMsg[fl.key]; dup {
				continue
			}
			seenMsg[fl.key] = struct{}{}
			stack = append(stack, appendAction(trace, Action{kind: actDeliver, msgIx: i}))
		}
		for p := 0; p < opts.N; p++ {
			if !w.alive[p] || w.ticks[p] <= 0 {
				continue
			}
			timers := make([]string, 0, len(w.armed[p]))
			for t := range w.armed[p] {
				timers = append(timers, string(t))
			}
			sort.Strings(timers)
			for _, t := range timers {
				stack = append(stack, appendAction(trace, Action{
					kind: actTick, p: consensus.ProcessID(p), timer: consensus.TimerID(t),
				}))
			}
		}
		if w.crashes > 0 {
			for p := 0; p < opts.N; p++ {
				if w.alive[p] {
					stack = append(stack, appendAction(trace, Action{
						kind: actCrash, p: consensus.ProcessID(p),
					}))
				}
			}
		}
	}
	return res, nil
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func appendAction(trace []Action, a Action) []Action {
	out := make([]Action, len(trace)+1)
	copy(out, trace)
	out[len(trace)] = a
	return out
}

// replay reconstructs the world after the action sequence.
func replay(fac Factory, opts Options, trace []Action) (*world, error) {
	w := &world{
		nodes:   make([]consensus.Protocol, opts.N),
		alive:   make([]bool, opts.N),
		armed:   make([]map[consensus.TimerID]bool, opts.N),
		ticks:   make([]int, opts.N),
		crashes: opts.Crashes,
	}
	for i := 0; i < opts.N; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: opts.N, F: opts.F, E: opts.E, Delta: 10}
		w.nodes[i] = fac(cfg)
		w.alive[i] = true
		w.armed[i] = make(map[consensus.TimerID]bool)
		w.ticks[i] = opts.TicksPerProcess
	}
	// Boot: Start then the configured proposals, in process order.
	for i := 0; i < opts.N; i++ {
		w.apply(consensus.ProcessID(i), w.nodes[i].Start())
	}
	for i := 0; i < opts.N; i++ {
		p := consensus.ProcessID(i)
		if v, ok := opts.Inputs[p]; ok {
			w.apply(p, w.nodes[p].Propose(v))
		}
	}
	for step, a := range trace {
		switch a.kind {
		case actDeliver:
			if a.msgIx >= len(w.pending) {
				return nil, fmt.Errorf("mc: replay step %d: message index %d out of range", step, a.msgIx)
			}
			fl := w.pending[a.msgIx]
			w.pending = append(w.pending[:a.msgIx], w.pending[a.msgIx+1:]...)
			if w.alive[fl.to] {
				w.apply(fl.to, w.nodes[fl.to].Deliver(fl.from, fl.msg))
			}
		case actTick:
			if w.alive[a.p] && w.armed[a.p][a.timer] && w.ticks[a.p] > 0 {
				w.ticks[a.p]--
				delete(w.armed[a.p], a.timer)
				w.apply(a.p, w.nodes[a.p].Tick(a.timer))
			}
		case actCrash:
			if w.alive[a.p] && w.crashes > 0 {
				w.crashes--
				w.alive[a.p] = false
				// Discard traffic to and from the crashed process.
				kept := w.pending[:0]
				for _, fl := range w.pending {
					if fl.to != a.p {
						kept = append(kept, fl)
					}
				}
				w.pending = kept
			}
		}
	}
	return w, nil
}

// apply interprets one step's effects at process p.
func (w *world) apply(p consensus.ProcessID, effects []consensus.Effect) {
	for _, eff := range effects {
		switch eff := eff.(type) {
		case consensus.Send:
			w.push(p, eff.To, eff.Msg)
		case consensus.Broadcast:
			for i := range w.nodes {
				to := consensus.ProcessID(i)
				if to == p && !eff.Self {
					continue
				}
				w.push(p, to, eff.Msg)
			}
		case consensus.StartTimer:
			w.armed[p][eff.Timer] = true
		case consensus.StopTimer:
			delete(w.armed[p], eff.Timer)
		case consensus.Decide:
			// Decisions are read back via the Decision() method.
		}
	}
}

func (w *world) push(from, to consensus.ProcessID, msg consensus.Message) {
	w.pending = append(w.pending, flight{
		from: from,
		to:   to,
		msg:  msg,
		key:  fmt.Sprintf("%d>%d:%s:%+v", from, to, msg.Kind(), msg),
	})
}

// canonicalKey is the dedup key: per-process dumps plus the sorted pending
// multiset plus budgets.
func (w *world) canonicalKey() string {
	var b strings.Builder
	for i, node := range w.nodes {
		fmt.Fprintf(&b, "p%d[alive=%v,ticks=%d]:", i, w.alive[i], w.ticks[i])
		if d, ok := node.(StateDumper); ok {
			b.WriteString(d.DumpState())
		} else {
			fmt.Fprintf(&b, "%+v", node)
		}
		timers := make([]string, 0, len(w.armed[i]))
		for t := range w.armed[i] {
			timers = append(timers, string(t))
		}
		sort.Strings(timers)
		fmt.Fprintf(&b, "|timers=%v;", timers)
	}
	msgs := make([]string, len(w.pending))
	for i, fl := range w.pending {
		msgs[i] = fl.key
	}
	sort.Strings(msgs)
	fmt.Fprintf(&b, "pending=%v;crashes=%d", msgs, w.crashes)
	return b.String()
}

func (w *world) anyDecided() bool {
	for _, n := range w.nodes {
		if _, ok := n.Decision(); ok {
			return true
		}
	}
	return false
}

// checkSafety verifies Agreement and Validity over the current decisions.
func (w *world) checkSafety(opts Options) (string, bool) {
	proposed := make(map[consensus.Value]struct{}, len(opts.Inputs)+len(opts.AllowedExtra))
	for _, v := range opts.Inputs {
		proposed[v] = struct{}{}
	}
	for _, v := range opts.AllowedExtra {
		proposed[v] = struct{}{}
	}
	first := consensus.None
	for i, n := range w.nodes {
		v, ok := n.Decision()
		if !ok {
			continue
		}
		if _, valid := proposed[v]; !valid {
			return fmt.Sprintf("validity: p%d decided unproposed %s", i, v), true
		}
		if first.IsNone() {
			first = v
		} else if v != first {
			return fmt.Sprintf("agreement: decisions %s and %s coexist", first, v), true
		}
	}
	return "", false
}
