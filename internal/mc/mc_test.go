package mc_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/mc"
)

func coreFactory(mode core.Mode) mc.Factory {
	return func(cfg consensus.Config) consensus.Protocol {
		return core.NewUnchecked(cfg, mode, core.DefaultOptions(), consensus.FixedLeader(0))
	}
}

func inputs(vals ...int64) map[consensus.ProcessID]consensus.Value {
	m := make(map[consensus.ProcessID]consensus.Value, len(vals))
	for i, v := range vals {
		if v != 0 {
			m[consensus.ProcessID(i)] = consensus.IntValue(v)
		}
	}
	return m
}

// requireSafe runs the checker and fails on violations or (unexpectedly)
// empty exploration. Truncation is reported, not failed: a truncated clean
// run is still strong evidence, and the test asserts non-truncation only
// where the space is known to be small.
func requireSafe(t *testing.T, fac mc.Factory, opts mc.Options, wantComplete bool) mc.Result {
	t.Helper()
	res, err := mc.Check(fac, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("safety violation found: %s", res.Violation)
	}
	if res.States < 2 {
		t.Fatalf("suspiciously small exploration: %+v", res)
	}
	if wantComplete && res.Truncated {
		t.Fatalf("exploration truncated (%d states, depth %d)", res.States, res.Deepest)
	}
	if res.DecidedStates == 0 {
		t.Fatalf("no decided states reached: %+v", res)
	}
	t.Logf("states=%d deepest=%d decided=%d truncated=%v",
		res.States, res.Deepest, res.DecidedStates, res.Truncated)
	return res
}

// TestFastPathExhaustiveTask explores ALL fast-ballot interleavings of the
// task protocol at the tight bound n=3 (f=1, e=1): every delivery order of
// proposals, votes, and decide announcements, with no timers.
func TestFastPathExhaustiveTask(t *testing.T) {
	requireSafe(t, coreFactory(core.ModeTask), mc.Options{
		N: 3, F: 1, E: 1,
		Inputs: inputs(1, 2, 2),
	}, true)
}

func TestFastPathExhaustiveTaskDistinct(t *testing.T) {
	requireSafe(t, coreFactory(core.ModeTask), mc.Options{
		N: 3, F: 1, E: 1,
		Inputs: inputs(3, 1, 2),
	}, true)
}

// TestFastPathExhaustiveObject explores the object protocol with two
// concurrent proposers and one silent process.
func TestFastPathExhaustiveObject(t *testing.T) {
	requireSafe(t, coreFactory(core.ModeObject), mc.Options{
		N: 3, F: 1, E: 1,
		Inputs: inputs(2, 1, 0),
	}, true)
}

// TestFastPlusSlowBallotExhaustive adds one timer firing per process: the
// adversary can start slow ballots at any point, in any interleaving with
// the fast ballot — the recovery rule must never contradict a fast decision.
func TestFastPlusSlowBallotExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("state space in the hundreds of thousands")
	}
	res := requireSafe(t, coreFactory(core.ModeTask), mc.Options{
		N: 3, F: 1, E: 1,
		Inputs:          inputs(1, 2, 2),
		TicksPerProcess: 1,
		MaxStates:       120_000,
		MaxDepth:        40,
	}, false)
	if res.States < 10_000 {
		t.Fatalf("expected a large exploration, got %d states", res.States)
	}
}

// TestCrashesExhaustive lets the adversary crash one process at any point.
func TestCrashesExhaustive(t *testing.T) {
	requireSafe(t, coreFactory(core.ModeTask), mc.Options{
		N: 3, F: 1, E: 1,
		Inputs:  inputs(1, 2, 2),
		Crashes: 1,
	}, true)
}

// TestCheckerDetectsSeededViolation proves the checker can actually find
// bugs: a deliberately broken protocol (fast quorum one too small) must
// produce an agreement violation.
func TestCheckerDetectsSeededViolation(t *testing.T) {
	fac := func(cfg consensus.Config) consensus.Protocol {
		// e = 2 on 4 processes with f = 1: fast quorum n−e = 2, so one
		// external vote suffices — and n = 4 is below the tight bound
		// max{2e+f, 2f+1} = 5, so two disjoint "fast quorums" for
		// different values can coexist.
		return core.NewUnchecked(cfg, core.ModeTask, core.DefaultOptions(), consensus.FixedLeader(0))
	}
	// p1 proposes 2 (p0 can vote for it), p2 proposes 3 (p3 can vote for
	// it): {p0,p1} and {p2,p3} are disjoint fast quorums.
	// A violating run needs only ~8 actions; the shallow depth bound keeps
	// the depth-first search from diving into long innocent schedules.
	res, err := mc.Check(fac, mc.Options{
		N: 4, F: 1, E: 2,
		Inputs:    inputs(1, 2, 3, 0),
		MaxStates: 300_000,
		MaxDepth:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("checker missed the seeded violation (%d states)", res.States)
	}
	t.Logf("found: %s", res.Violation)
}
