package consensus

import (
	"fmt"
	"reflect"
)

// EventKind tags a recorded protocol input.
type EventKind int

// Recorded input kinds.
const (
	EventStart EventKind = iota + 1
	EventPropose
	EventDeliver
	EventTick
)

// RecordedEvent is one protocol input, as captured by a Recorder.
type RecordedEvent struct {
	Kind  EventKind
	From  ProcessID // EventDeliver
	Msg   Message   // EventDeliver
	Value Value     // EventPropose
	Timer TimerID   // EventTick
}

// Recorder wraps a Protocol and captures every input fed to it, so the
// exact execution can be replayed against a fresh instance — the practical
// form of the determinism contract that the lower-bound machinery and the
// simulator rely on, and a debugging tool for live clusters (capture a
// node's inputs, replay them locally).
type Recorder struct {
	inner  Protocol
	events []RecordedEvent
}

var _ Protocol = (*Recorder)(nil)

// NewRecorder wraps inner.
func NewRecorder(inner Protocol) *Recorder {
	return &Recorder{inner: inner}
}

// Events returns the captured inputs in order. The returned slice is the
// recorder's own; callers must not mutate it.
func (r *Recorder) Events() []RecordedEvent { return r.events }

// ID implements Protocol.
func (r *Recorder) ID() ProcessID { return r.inner.ID() }

// Start implements Protocol.
func (r *Recorder) Start() []Effect {
	r.events = append(r.events, RecordedEvent{Kind: EventStart})
	return r.inner.Start()
}

// Propose implements Protocol.
func (r *Recorder) Propose(v Value) []Effect {
	r.events = append(r.events, RecordedEvent{Kind: EventPropose, Value: v})
	return r.inner.Propose(v)
}

// Deliver implements Protocol.
func (r *Recorder) Deliver(from ProcessID, m Message) []Effect {
	r.events = append(r.events, RecordedEvent{Kind: EventDeliver, From: from, Msg: m})
	return r.inner.Deliver(from, m)
}

// Tick implements Protocol.
func (r *Recorder) Tick(t TimerID) []Effect {
	r.events = append(r.events, RecordedEvent{Kind: EventTick, Timer: t})
	return r.inner.Tick(t)
}

// Decision implements Protocol.
func (r *Recorder) Decision() (Value, bool) { return r.inner.Decision() }

// Replay feeds the recorded events to a fresh protocol instance and returns
// the effect slices each event produced.
func Replay(events []RecordedEvent, fresh Protocol) [][]Effect {
	out := make([][]Effect, 0, len(events))
	for _, ev := range events {
		switch ev.Kind {
		case EventStart:
			out = append(out, fresh.Start())
		case EventPropose:
			out = append(out, fresh.Propose(ev.Value))
		case EventDeliver:
			out = append(out, fresh.Deliver(ev.From, ev.Msg))
		case EventTick:
			out = append(out, fresh.Tick(ev.Timer))
		}
	}
	return out
}

// CheckReplayEquivalence replays events against two fresh instances built
// by factory and verifies they produce identical effects for every event —
// a machine check of the determinism contract. It returns the index of the
// first divergence, or an error describing it.
func CheckReplayEquivalence(events []RecordedEvent, factory func() Protocol) error {
	a := Replay(events, factory())
	b := Replay(events, factory())
	if len(a) != len(b) {
		return fmt.Errorf("replay: %d vs %d effect batches", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return fmt.Errorf("replay: divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}
