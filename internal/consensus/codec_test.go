package consensus_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/epaxos"
	"repro/internal/fastpaxos"
	"repro/internal/omega"
	"repro/internal/paxos"
	"repro/internal/smr"
)

// fullCodec registers every message kind in the repository, which also
// proves all kind names are globally unique.
func fullCodec(t *testing.T) *consensus.Codec {
	t.Helper()
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	paxos.RegisterMessages(codec)
	fastpaxos.RegisterMessages(codec)
	epaxos.RegisterMessages(codec)
	smr.RegisterMessages(codec) // includes omega
	return codec
}

func TestAllKindsGloballyUnique(t *testing.T) {
	codec := fullCodec(t)
	if got := len(codec.Kinds()); got < 20 {
		t.Fatalf("expected 20+ registered kinds, got %d: %v", got, codec.Kinds())
	}
}

func TestDuplicateRegistrationFails(t *testing.T) {
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	if err := codec.Register(core.KindPropose, func() consensus.Message { return &core.ProposeMsg{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRoundTripAllMessageTypes(t *testing.T) {
	codec := fullCodec(t)
	v := consensus.Value{Key: 42, Data: "payload"}
	msgs := []consensus.Message{
		&core.ProposeMsg{Value: v},
		&core.OneA{Ballot: 3},
		&core.OneB{Ballot: 3, VBal: 1, Val: v, Proposer: 2, Decided: consensus.None},
		&core.TwoA{Ballot: 3, Value: v},
		&core.TwoB{Ballot: 0, Value: v},
		&core.DecideMsg{Value: v},
		&paxos.Forward{Value: v},
		&paxos.OneA{Ballot: 9},
		&paxos.OneB{Ballot: 9, VBal: 2, Val: v},
		&paxos.TwoA{Ballot: 9, Value: v},
		&paxos.TwoB{Ballot: 9, Value: v},
		&paxos.DecideMsg{Value: v},
		&fastpaxos.ProposeMsg{Value: v},
		&fastpaxos.OneA{Ballot: 4},
		&fastpaxos.OneB{Ballot: 4, VBal: 0, Val: v},
		&fastpaxos.TwoA{Ballot: 4, Value: v},
		&fastpaxos.TwoB{Ballot: 4, Value: v},
		&fastpaxos.DecideMsg{Value: v},
		&epaxos.PreAccept{Value: v},
		&epaxos.PreAcceptOK{Value: v},
		&epaxos.Prepare{Ballot: 6},
		&epaxos.PrepareOK{Ballot: 6, VBal: 0, Val: v, FastVoted: true, Committed: consensus.None},
		&epaxos.Accept{Ballot: 6, Value: v},
		&epaxos.AcceptOK{Ballot: 6, Value: v},
		&epaxos.Commit{Value: v},
		&omega.Heartbeat{},
		&smr.SlotMessage{Slot: 12, InnerKind: core.KindTwoB, InnerBody: []byte(`{"ballot":0,"value":{"key":1}}`)},
	}
	for _, msg := range msgs {
		data, err := codec.Encode(msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", msg.Kind(), err)
		}
		got, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", msg.Kind(), err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%s: round trip mismatch:\n got %#v\nwant %#v", msg.Kind(), got, msg)
		}
	}
}

func TestAppendJSONString(t *testing.T) {
	cases := []string{
		"",
		"plain-ascii_0123",
		`quote " inside`,
		`back\slash`,
		"tab\tnewline\nbell\a",
		"control \x01\x1f",
		"unicode é ☃ 你好",
		"emoji \U0001F600 mix",
		"html <&> stays valid",
	}
	for _, s := range cases {
		lit := consensus.AppendJSONString(nil, s)
		var got string
		if err := json.Unmarshal(lit, &got); err != nil {
			t.Errorf("%q: produced invalid JSON %q: %v", s, lit, err)
			continue
		}
		if got != s {
			t.Errorf("%q: round trip gave %q", s, got)
		}
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	codec := consensus.NewCodec()
	if _, err := codec.Decode([]byte(`{"kind":"nope","body":{}}`)); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestDecodeGarbage(t *testing.T) {
	codec := fullCodec(t)
	for _, bad := range []string{"", "{", `{"kind":"core.2b","body":"notanobject"}`} {
		if _, err := codec.Decode([]byte(bad)); err == nil {
			t.Errorf("garbage %q decoded", bad)
		}
	}
}
