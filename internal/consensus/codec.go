package consensus

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Codec translates protocol messages to and from a self-describing JSON wire
// form, so that the TCP transport can carry any registered message type.
// Message kinds are registered once, at host construction time, via
// Register; registration is safe for concurrent use.
type Codec struct {
	mu        sync.RWMutex
	factories map[string]func() Message
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{factories: make(map[string]func() Message)}
}

// Register associates kind with a factory producing a pointer to a fresh
// message struct of that kind. Registering the same kind twice is an error.
func (c *Codec) Register(kind string, factory func() Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.factories[kind]; dup {
		return fmt.Errorf("codec: kind %q already registered", kind)
	}
	c.factories[kind] = factory
	return nil
}

// MustRegister is Register for host construction paths where a duplicate
// registration is a programming error.
func (c *Codec) MustRegister(kind string, factory func() Message) {
	if err := c.Register(kind, factory); err != nil {
		panic(err)
	}
}

// Kinds returns the registered kinds in sorted order.
func (c *Codec) Kinds() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.factories))
	for k := range c.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// wireMessage is the self-describing envelope body.
type wireMessage struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// Encode serializes m into the self-describing wire form.
func (c *Codec) Encode(m Message) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("codec encode %s: %w", m.Kind(), err)
	}
	return json.Marshal(wireMessage{Kind: m.Kind(), Body: body})
}

// Decode parses a wire-form message produced by Encode.
func (c *Codec) Decode(data []byte) (Message, error) {
	var w wireMessage
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("codec decode envelope: %w", err)
	}
	c.mu.RLock()
	factory, ok := c.factories[w.Kind]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec decode: unknown kind %q", w.Kind)
	}
	m := factory()
	if err := json.Unmarshal(w.Body, m); err != nil {
		return nil, fmt.Errorf("codec decode %s body: %w", w.Kind, err)
	}
	return m, nil
}
