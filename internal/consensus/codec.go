package consensus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Codec translates protocol messages to and from a self-describing JSON wire
// form, so that the TCP transport can carry any registered message type.
// Message kinds are registered once, at host construction time, via
// Register; registration is safe for concurrent use.
type Codec struct {
	mu        sync.RWMutex
	factories map[string]func() Message
}

// NewCodec returns an empty codec.
func NewCodec() *Codec {
	return &Codec{factories: make(map[string]func() Message)}
}

// Register associates kind with a factory producing a pointer to a fresh
// message struct of that kind. Registering the same kind twice is an error.
func (c *Codec) Register(kind string, factory func() Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.factories[kind]; dup {
		return fmt.Errorf("codec: kind %q already registered", kind)
	}
	c.factories[kind] = factory
	return nil
}

// MustRegister is Register for host construction paths where a duplicate
// registration is a programming error.
func (c *Codec) MustRegister(kind string, factory func() Message) {
	if err := c.Register(kind, factory); err != nil {
		panic(err)
	}
}

// Kinds returns the registered kinds in sorted order.
func (c *Codec) Kinds() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.factories))
	for k := range c.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// wireMessage is the self-describing envelope body.
type wireMessage struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// encScratch is a pooled encoder: the bytes.Buffer keeps its capacity
// across uses, so steady-state encoding only allocates the returned slice.
type encScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	s := &encScratch{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

// MarshalPooled encodes v into a pooled scratch buffer and returns a fresh
// exact-size copy. It is json.Marshal minus the allocation of the
// intermediate encoder state; hot paths (Command.Encode, the transports)
// use it for message bodies.
func MarshalPooled(v any) ([]byte, error) {
	s := encPool.Get().(*encScratch)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		encPool.Put(s)
		return nil, err
	}
	b := s.buf.Bytes()
	b = b[:len(b)-1] // json.Encoder appends '\n'
	out := make([]byte, len(b))
	copy(out, b)
	encPool.Put(s)
	return out, nil
}

// BodyAppender is an optional fast path for Message implementations: the
// message splices its own JSON body directly into the wire buffer, so
// Encode skips both the reflective marshal and the intermediate body copy.
// The appended bytes must be one valid JSON value.
type BodyAppender interface {
	AppendBody(dst []byte) []byte
}

// Encode serializes m into the self-describing wire form. The envelope is
// spliced by hand around the marshaled body — a single pass with one
// allocation for the returned frame, instead of re-marshaling the body
// through a wireMessage round trip.
func (c *Codec) Encode(m Message) ([]byte, error) {
	if a, ok := m.(BodyAppender); ok {
		kind := m.Kind()
		dst := make([]byte, 0, len(`{"kind":"","body":}`)+len(kind)+256)
		dst = append(dst, `{"kind":`...)
		dst = strconv.AppendQuote(dst, kind)
		dst = append(dst, `,"body":`...)
		dst = a.AppendBody(dst)
		return append(dst, '}'), nil
	}
	s := encPool.Get().(*encScratch)
	s.buf.Reset()
	if err := s.enc.Encode(m); err != nil {
		encPool.Put(s)
		return nil, fmt.Errorf("codec encode %s: %w", m.Kind(), err)
	}
	body := s.buf.Bytes()
	body = body[:len(body)-1] // json.Encoder appends '\n'
	out := AppendWire(make([]byte, 0, len(`{"kind":"","body":}`)+len(m.Kind())+len(body)), m.Kind(), body)
	encPool.Put(s)
	return out, nil
}

// AppendWire appends the self-describing envelope {"kind":K,"body":B} to
// dst, splicing body verbatim (it must already be valid JSON; empty encodes
// as null).
func AppendWire(dst []byte, kind string, body []byte) []byte {
	dst = append(dst, `{"kind":`...)
	dst = strconv.AppendQuote(dst, kind)
	dst = append(dst, `,"body":`...)
	if len(body) == 0 {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, body...)
	}
	return append(dst, '}')
}

// AppendJSONString appends s to dst as a JSON string literal. Plain ASCII
// without quotes, backslashes, or control characters — the overwhelmingly
// common case for IDs, keys, and kinds — is copied straight through;
// anything else takes encoding/json's escaper (strconv's quoting is NOT
// JSON: it emits \x and \U escapes JSON parsers reject).
func AppendJSONString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			b, _ := json.Marshal(s)
			return append(dst, b...)
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"')
}

// wirePool recycles decode envelopes: json.RawMessage's UnmarshalJSON
// appends into the existing slice, so the body scratch capacity survives
// across Decode calls.
var wirePool = sync.Pool{New: func() any { return new(wireMessage) }}

// Decode parses a wire-form message produced by Encode.
func (c *Codec) Decode(data []byte) (Message, error) {
	w := wirePool.Get().(*wireMessage)
	w.Kind = ""
	w.Body = w.Body[:0]
	if err := json.Unmarshal(data, w); err != nil {
		wirePool.Put(w)
		return nil, fmt.Errorf("codec decode envelope: %w", err)
	}
	m, err := c.DecodeBody(w.Kind, w.Body)
	// The decoded message copies what it needs out of w.Body (string fields
	// are fresh allocations; RawMessage fields append into the message's own
	// slice), so the scratch can go straight back to the pool.
	wirePool.Put(w)
	return m, err
}

// DecodeBody instantiates a registered message kind straight from its body
// bytes, skipping the envelope parse when the caller already has the parts
// (the replica's slot-message unwrap path).
func (c *Codec) DecodeBody(kind string, body []byte) (Message, error) {
	c.mu.RLock()
	factory, ok := c.factories[kind]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec decode: unknown kind %q", kind)
	}
	m := factory()
	if err := json.Unmarshal(body, m); err != nil {
		return nil, fmt.Errorf("codec decode %s body: %w", kind, err)
	}
	return m, nil
}
