package consensus

import (
	"fmt"
	"math"
)

// Value is an element of the totally ordered value domain over which
// consensus is reached.
//
// The paper's protocol (Figure 1) compares proposals: a process accepts a
// Propose(v) message only if v is at least its own proposal, and the recovery
// procedure breaks ties by choosing the maximal candidate value. Value
// therefore carries an ordering key. Data is an opaque payload (for example a
// state-machine command) that rides along with the key but does not
// participate in the protocol logic beyond tie-breaking the total order.
//
// The bottom element ⊥ of the paper is represented by None; it is smaller
// than every proposable value and must never be proposed.
type Value struct {
	// Key is the primary ordering key. Proposable values must have
	// Key > math.MinInt64.
	Key int64 `json:"key"`
	// Data is an opaque payload. It participates in the total order only
	// to break Key ties, keeping the order total and deterministic.
	Data string `json:"data,omitempty"`
}

// None is the bottom element ⊥: smaller than every proposable value.
// The zero Value is NOT None; use None explicitly for "no value".
var None = Value{Key: math.MinInt64}

// IsNone reports whether v is the bottom element ⊥.
func (v Value) IsNone() bool { return v == None }

// Less reports whether v precedes o in the total order (Key, then Data).
func (v Value) Less(o Value) bool {
	if v.Key != o.Key {
		return v.Key < o.Key
	}
	return v.Data < o.Data
}

// Cmp returns -1, 0, or +1 as v is less than, equal to, or greater than o.
func (v Value) Cmp(o Value) int {
	switch {
	case v.Less(o):
		return -1
	case o.Less(v):
		return 1
	default:
		return 0
	}
}

// MaxValue returns the larger of a and b in the total order.
func MaxValue(a, b Value) Value {
	if a.Less(b) {
		return b
	}
	return a
}

// IntValue builds a payload-free value from an integer key. It is the
// conventional way tests and examples construct proposals.
func IntValue(k int64) Value { return Value{Key: k} }

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.IsNone() {
		return "⊥"
	}
	if v.Data == "" {
		return fmt.Sprintf("v(%d)", v.Key)
	}
	return fmt.Sprintf("v(%d,%q)", v.Key, v.Data)
}
