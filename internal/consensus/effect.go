package consensus

import "fmt"

// Message is implemented by every protocol message. Kind returns a globally
// unique, stable name used by the wire codec (see codec.go) and by traces.
type Message interface {
	Kind() string
}

// Effect is the closed set of actions a protocol step can request from its
// host. Hosts must apply effects in order.
type Effect interface {
	isEffect()
	fmt.Stringer
}

// Send asks the host to transmit Msg to the single process To.
type Send struct {
	To  ProcessID
	Msg Message
}

// Broadcast asks the host to transmit Msg to every process in Π.
// When Self is false the sender is excluded (the paper's "send to Π∖{p_i}").
// When Self is true the sender delivers the message to itself as well, with
// no network delay (a local step).
type Broadcast struct {
	Msg  Message
	Self bool
}

// StartTimer asks the host to (re)arm the named timer to fire After ticks
// from now. Arming a timer that is already pending replaces it.
type StartTimer struct {
	Timer TimerID
	After Duration
}

// StopTimer asks the host to cancel the named timer if it is pending.
type StopTimer struct {
	Timer TimerID
}

// Decide announces that this process has irrevocably decided Value. A
// correct protocol emits Decide at most once per instance.
type Decide struct {
	Value Value
}

func (Send) isEffect()       {}
func (Broadcast) isEffect()  {}
func (StartTimer) isEffect() {}
func (StopTimer) isEffect()  {}
func (Decide) isEffect()     {}

// String implements fmt.Stringer.
func (e Send) String() string { return fmt.Sprintf("send %s to %s", e.Msg.Kind(), e.To) }

// String implements fmt.Stringer.
func (e Broadcast) String() string {
	if e.Self {
		return fmt.Sprintf("broadcast %s to Π", e.Msg.Kind())
	}
	return fmt.Sprintf("broadcast %s to Π∖self", e.Msg.Kind())
}

// String implements fmt.Stringer.
func (e StartTimer) String() string { return fmt.Sprintf("start timer %s +%d", e.Timer, e.After) }

// String implements fmt.Stringer.
func (e StopTimer) String() string { return fmt.Sprintf("stop timer %s", e.Timer) }

// String implements fmt.Stringer.
func (e Decide) String() string { return fmt.Sprintf("decide %s", e.Value) }
