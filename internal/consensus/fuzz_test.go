package consensus_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
)

// FuzzCodecDecode asserts the wire decoder never panics and never returns
// both a message and an error, whatever bytes arrive from the network.
func FuzzCodecDecode(f *testing.F) {
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	seed := [][]byte{
		[]byte(`{"kind":"core.2b","body":{"ballot":0,"value":{"key":1}}}`),
		[]byte(`{"kind":"core.1b","body":{}}`),
		[]byte(`{"kind":"nope","body":{}}`),
		[]byte(`{`),
		[]byte(``),
		[]byte(`{"kind":"core.2b","body":[1,2,3]}`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := codec.Decode(data)
		if err == nil && msg == nil {
			t.Fatal("nil message with nil error")
		}
		if err == nil {
			// Whatever decoded must re-encode.
			if _, err := codec.Encode(msg); err != nil {
				t.Fatalf("decoded message does not re-encode: %v", err)
			}
		}
	})
}
