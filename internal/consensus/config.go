package consensus

import (
	"errors"
	"fmt"

	"repro/internal/quorum"
)

// Common configuration errors, matchable with errors.Is.
var (
	ErrBadID        = errors.New("process id out of range")
	ErrTooFew       = errors.New("too few processes for the requested resilience")
	ErrBadThreshold = errors.New("thresholds must satisfy 0 ≤ e ≤ f and f ≥ 0")
)

// Config describes one process's view of a consensus deployment: the system
// size n, the resilience threshold f (maximum crashes tolerated while still
// terminating), the fast threshold e ≤ f (maximum crashes tolerated while
// still deciding in two message delays), this process's identity, and the
// round length Δ used to compute timer durations.
type Config struct {
	// ID is this process's identity, in [0, N).
	ID ProcessID
	// N is the number of processes in Π.
	N int
	// F is the resilience threshold f.
	F int
	// E is the fast-decision threshold e, with 0 ≤ e ≤ f.
	E int
	// Delta is the round length Δ in host ticks. Protocols use it to arm
	// the new-ballot timer (2Δ initially, 5Δ thereafter, per §C.1).
	Delta Duration
	// FastSize, when non-zero, overrides the fast-quorum size n−e with a
	// flexible-quorum size per Fast Flexible Paxos (internal/quorum.NewFlex
	// holds the intersection requirements and constructs sound values).
	// Zero keeps the classical n−e.
	FastSize int
	// RecoverySize, when non-zero, overrides the phase-1/recovery quorum
	// size n−f. Flexible deployments grow it to pay for a smaller FastSize;
	// the leader-change path then needs RecoverySize live processes. Zero
	// keeps the classical n−f.
	RecoverySize int
}

// Validate checks the structural sanity of the configuration. It does not
// check protocol-specific lower bounds on N — those live in internal/quorum
// and are deliberately checkable per protocol (the whole point of the paper
// is that the required N differs between protocols).
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("n=%d: %w", c.N, ErrTooFew)
	}
	if c.ID < 0 || int(c.ID) >= c.N {
		return fmt.Errorf("id=%d n=%d: %w", c.ID, c.N, ErrBadID)
	}
	if c.F < 0 || c.E < 0 || c.E > c.F {
		return fmt.Errorf("f=%d e=%d: %w", c.F, c.E, ErrBadThreshold)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("delta=%d: must be positive", c.Delta)
	}
	if c.FastSize != 0 || c.RecoverySize != 0 {
		if err := quorum.CheckFlex(c.N, c.F, c.E, c.FastSize, c.RecoverySize); err != nil {
			return err
		}
	}
	return nil
}

// Flexible reports whether the configuration overrides the classical
// quorum sizes (Fast Flexible Paxos mode).
func (c Config) Flexible() bool { return c.FastSize != 0 || c.RecoverySize != 0 }

// FastQuorum returns the number of processes (including the proposer
// itself) whose ballot-0 votes suffice for a fast decision: n−e, unless a
// flexible FastSize overrides it.
func (c Config) FastQuorum() int {
	if c.FastSize != 0 {
		return c.FastSize
	}
	return c.N - c.E
}

// ClassicQuorum returns n−f, the slow-path phase-2 quorum size.
func (c Config) ClassicQuorum() int { return c.N - c.F }

// RecoveryQuorum returns the number of 1B reports a new leader collects
// before recovering: n−f, unless a flexible RecoverySize overrides it.
func (c Config) RecoveryQuorum() int {
	if c.RecoverySize != 0 {
		return c.RecoverySize
	}
	return c.N - c.F
}

// FastOverlap returns RecoveryQuorum()+FastQuorum()−n: the minimum number
// of members any fast quorum shares with any recovery quorum, and the
// vote-count threshold a fast-decided value is guaranteed to reach among
// the 1B reports. With classical sizes this is the familiar n−e−f.
func (c Config) FastOverlap() int { return c.RecoveryQuorum() + c.FastQuorum() - c.N }

// Others returns the identities of all processes except this one, in
// ascending order.
func (c Config) Others() []ProcessID {
	out := make([]ProcessID, 0, c.N-1)
	for i := 0; i < c.N; i++ {
		if ProcessID(i) != c.ID {
			out = append(out, ProcessID(i))
		}
	}
	return out
}

// All returns the identities of all processes, in ascending order.
func (c Config) All() []ProcessID {
	out := make([]ProcessID, c.N)
	for i := range out {
		out[i] = ProcessID(i)
	}
	return out
}
