package consensus

import (
	"errors"
	"fmt"
)

// Common configuration errors, matchable with errors.Is.
var (
	ErrBadID        = errors.New("process id out of range")
	ErrTooFew       = errors.New("too few processes for the requested resilience")
	ErrBadThreshold = errors.New("thresholds must satisfy 0 ≤ e ≤ f and f ≥ 0")
)

// Config describes one process's view of a consensus deployment: the system
// size n, the resilience threshold f (maximum crashes tolerated while still
// terminating), the fast threshold e ≤ f (maximum crashes tolerated while
// still deciding in two message delays), this process's identity, and the
// round length Δ used to compute timer durations.
type Config struct {
	// ID is this process's identity, in [0, N).
	ID ProcessID
	// N is the number of processes in Π.
	N int
	// F is the resilience threshold f.
	F int
	// E is the fast-decision threshold e, with 0 ≤ e ≤ f.
	E int
	// Delta is the round length Δ in host ticks. Protocols use it to arm
	// the new-ballot timer (2Δ initially, 5Δ thereafter, per §C.1).
	Delta Duration
}

// Validate checks the structural sanity of the configuration. It does not
// check protocol-specific lower bounds on N — those live in internal/quorum
// and are deliberately checkable per protocol (the whole point of the paper
// is that the required N differs between protocols).
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("n=%d: %w", c.N, ErrTooFew)
	}
	if c.ID < 0 || int(c.ID) >= c.N {
		return fmt.Errorf("id=%d n=%d: %w", c.ID, c.N, ErrBadID)
	}
	if c.F < 0 || c.E < 0 || c.E > c.F {
		return fmt.Errorf("f=%d e=%d: %w", c.F, c.E, ErrBadThreshold)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("delta=%d: must be positive", c.Delta)
	}
	return nil
}

// FastQuorum returns n−e, the number of processes (including the proposer
// itself) whose ballot-0 votes suffice for a fast decision.
func (c Config) FastQuorum() int { return c.N - c.E }

// ClassicQuorum returns n−f, the slow-path quorum size.
func (c Config) ClassicQuorum() int { return c.N - c.F }

// Others returns the identities of all processes except this one, in
// ascending order.
func (c Config) Others() []ProcessID {
	out := make([]ProcessID, 0, c.N-1)
	for i := 0; i < c.N; i++ {
		if ProcessID(i) != c.ID {
			out = append(out, ProcessID(i))
		}
	}
	return out
}

// All returns the identities of all processes, in ascending order.
func (c Config) All() []ProcessID {
	out := make([]ProcessID, c.N)
	for i := range out {
		out[i] = ProcessID(i)
	}
	return out
}
