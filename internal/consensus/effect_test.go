package consensus

import (
	"strings"
	"testing"
)

type stubMsg struct{}

func (stubMsg) Kind() string { return "stub.msg" }

func TestEffectStrings(t *testing.T) {
	cases := []struct {
		eff  Effect
		want string
	}{
		{Send{To: 3, Msg: stubMsg{}}, "send stub.msg to p3"},
		{Broadcast{Msg: stubMsg{}, Self: true}, "broadcast stub.msg to Π"},
		{Broadcast{Msg: stubMsg{}}, "broadcast stub.msg to Π∖self"},
		{StartTimer{Timer: "t", After: 20}, "start timer t +20"},
		{StopTimer{Timer: "t"}, "stop timer t"},
		{Decide{Value: IntValue(7)}, "decide v(7)"},
	}
	for _, c := range cases {
		if got := c.eff.String(); got != c.want {
			t.Errorf("%T.String() = %q, want %q", c.eff, got, c.want)
		}
	}
}

func TestLeaderOracles(t *testing.T) {
	if got := FixedLeader(4).Leader(); got != 4 {
		t.Errorf("FixedLeader = %v", got)
	}
	calls := 0
	f := LeaderFunc(func() ProcessID { calls++; return 2 })
	if got := f.Leader(); got != 2 || calls != 1 {
		t.Errorf("LeaderFunc = %v calls=%d", got, calls)
	}
}

func TestIDStrings(t *testing.T) {
	if got := ProcessID(5).String(); got != "p5" {
		t.Errorf("ProcessID.String = %q", got)
	}
	if got := Ballot(7).String(); got != "b7" {
		t.Errorf("Ballot.String = %q", got)
	}
	if !Ballot(0).Fast() || Ballot(1).Fast() {
		t.Error("Fast() wrong")
	}
}

// stubProto records which entry points ran, for Recorder/Replay coverage.
type stubProto struct {
	log []string
}

func (s *stubProto) ID() ProcessID { return 0 }
func (s *stubProto) Start() []Effect {
	s.log = append(s.log, "start")
	return []Effect{StartTimer{Timer: "t", After: 1}}
}
func (s *stubProto) Propose(v Value) []Effect {
	s.log = append(s.log, "propose:"+v.String())
	return nil
}
func (s *stubProto) Deliver(from ProcessID, m Message) []Effect {
	s.log = append(s.log, "deliver:"+from.String()+":"+m.Kind())
	return nil
}
func (s *stubProto) Tick(t TimerID) []Effect {
	s.log = append(s.log, "tick:"+string(t))
	return nil
}
func (s *stubProto) Decision() (Value, bool) { return None, false }

func TestRecorderReplayOnStub(t *testing.T) {
	rec := NewRecorder(&stubProto{})
	rec.Start()
	rec.Propose(IntValue(1))
	rec.Deliver(2, stubMsg{})
	rec.Tick("t")
	if rec.ID() != 0 {
		t.Fatal("ID passthrough")
	}
	if _, ok := rec.Decision(); ok {
		t.Fatal("Decision passthrough")
	}
	if len(rec.Events()) != 4 {
		t.Fatalf("events = %d", len(rec.Events()))
	}

	fresh := &stubProto{}
	batches := Replay(rec.Events(), fresh)
	if len(batches) != 4 {
		t.Fatalf("replay batches = %d", len(batches))
	}
	want := strings.Join([]string{"start", "propose:v(1)", "deliver:p2:stub.msg", "tick:t"}, ",")
	if got := strings.Join(fresh.log, ","); got != want {
		t.Fatalf("replay log = %q, want %q", got, want)
	}
	if err := CheckReplayEquivalence(rec.Events(), func() Protocol { return &stubProto{} }); err != nil {
		t.Fatal(err)
	}
}
