package consensus

// Protocol is the deterministic state machine implemented by every consensus
// protocol in this repository (the paper's protocol in internal/core, and the
// Paxos, Fast Paxos and EPaxos-style baselines).
//
// Determinism contract: given the same sequence of entry-point invocations
// with the same arguments, a Protocol must produce the same effects and reach
// the same state. Protocols must not read clocks, random sources, or any
// other ambient state. This contract is what makes the replayed and spliced
// executions of internal/lowerbound meaningful, and is checked by property
// tests.
type Protocol interface {
	// ID returns the identity of this process.
	ID() ProcessID

	// Start is invoked exactly once, when the process boots at time 0,
	// before any other entry point.
	Start() []Effect

	// Propose submits value v at this process. For a consensus task the
	// harness calls Propose once at startup with the process's input; for
	// a consensus object Propose corresponds to an invocation of
	// propose(v) and may never be called. v must not be None.
	Propose(v Value) []Effect

	// Deliver processes message m received from process from.
	Deliver(from ProcessID, m Message) []Effect

	// Tick fires the named timer. Hosts only fire timers previously armed
	// via StartTimer and not since re-armed or stopped.
	Tick(t TimerID) []Effect

	// Decision returns the decided value, if any. Once it reports
	// ok=true the result never changes.
	Decision() (v Value, ok bool)
}

// FastPathReporter is optionally implemented by protocols that can report
// whether their decision was reached on the two-step fast path (a full
// fast quorum of first-round votes) rather than a slow ballot or a learned
// Decide. Reporting only — implementations must not let it influence the
// protocol state machine. The WAN bench (F10) uses it to compute slow-path
// rates per sweep point.
type FastPathReporter interface {
	// DecidedFast returns (fast, decided): decided mirrors Decision's ok;
	// fast is meaningful only when decided is true.
	DecidedFast() (fast, decided bool)
}

// LeaderOracle abstracts the Ω leader-election service of the paper's
// Appendix C.1. At any moment it outputs a process the caller should treat
// as the current leader; eventually all correct processes agree on the same
// correct leader. The simulator provides an omniscient oracle; live nodes
// use the heartbeat implementation in internal/omega.
type LeaderOracle interface {
	Leader() ProcessID
}

// FixedLeader is a LeaderOracle that always returns the same process.
// Useful in tests and for classic leader-driven Paxos configurations.
type FixedLeader ProcessID

// Leader implements LeaderOracle.
func (l FixedLeader) Leader() ProcessID { return ProcessID(l) }

// LeaderFunc adapts a function to the LeaderOracle interface.
type LeaderFunc func() ProcessID

// Leader implements LeaderOracle.
func (f LeaderFunc) Leader() ProcessID { return f() }
