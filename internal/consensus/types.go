// Package consensus defines the shared kernel used by every protocol in this
// repository: process identifiers, ballots, an ordered value domain with a
// bottom element, the deterministic state-machine interface that protocols
// implement, and the effect vocabulary through which protocols interact with
// the outside world.
//
// Protocols are pure, deterministic state machines: they never touch the
// network or the clock directly. Instead every entry point returns a slice of
// Effect values (send a message, broadcast, start a timer, announce a
// decision) that the host — either the discrete-event simulator in
// internal/sim or the live node host in internal/node — interprets. This is
// what lets the same protocol code run in reproducible simulated executions
// (including the adversarial lower-bound constructions of the paper's
// Appendix B) and on a real TCP cluster.
package consensus

import "strconv"

// ProcessID identifies a process in the system Π = {0, …, n−1}.
type ProcessID int

// String implements fmt.Stringer.
func (p ProcessID) String() string { return "p" + strconv.Itoa(int(p)) }

// NoProcess is the distinguished "no process" value (⊥ in the paper's
// proposer field). It is never a valid member of Π.
const NoProcess ProcessID = -1

// Ballot numbers order the protocol's attempts to reach agreement.
// Ballot 0 is the fast ballot; all others are slow ballots.
type Ballot int64

// String implements fmt.Stringer.
func (b Ballot) String() string { return "b" + strconv.FormatInt(int64(b), 10) }

// Fast reports whether b is the fast ballot.
func (b Ballot) Fast() bool { return b == 0 }

// Time is a point in simulated time, measured in abstract ticks.
// The simulator maps rounds onto ticks (one round = Δ ticks); the live node
// host maps ticks onto wall-clock milliseconds.
type Time int64

// Duration is a span of simulated time in ticks.
type Duration int64

// TimerID names a timer owned by a protocol instance. Protocols choose their
// own identifiers; hosts treat them as opaque. Restarting a timer with the
// same ID cancels the previous instance.
type TimerID string
