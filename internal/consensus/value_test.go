package consensus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoneIsSmallest(t *testing.T) {
	values := []Value{
		IntValue(math.MinInt64 + 1),
		IntValue(-1),
		IntValue(0),
		IntValue(1),
		IntValue(math.MaxInt64),
		{Key: math.MinInt64, Data: "x"}, // same key as None, more data
	}
	for _, v := range values {
		if !None.Less(v) {
			t.Errorf("None is not less than %v", v)
		}
		if v.Less(None) {
			t.Errorf("%v is less than None", v)
		}
	}
	if None.Less(None) {
		t.Error("None < None")
	}
	if !None.IsNone() {
		t.Error("None.IsNone() = false")
	}
	if IntValue(0).IsNone() {
		t.Error("v(0) reported as None")
	}
}

// TestValueTotalOrder checks the order axioms with testing/quick.
func TestValueTotalOrder(t *testing.T) {
	gen := func(k1, k2 int64, d1, d2 string) bool {
		a := Value{Key: k1, Data: d1}
		b := Value{Key: k2, Data: d2}
		// Trichotomy: exactly one of <, >, ==.
		less, greater, equal := a.Less(b), b.Less(a), a == b
		count := 0
		for _, x := range []bool{less, greater, equal} {
			if x {
				count++
			}
		}
		if count != 1 {
			return false
		}
		// Cmp consistency.
		switch a.Cmp(b) {
		case -1:
			return less
		case 1:
			return greater
		default:
			return equal
		}
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValueOrderTransitive(t *testing.T) {
	gen := func(k1, k2, k3 int64) bool {
		a, b, c := IntValue(k1%100), IntValue(k2%100), IntValue(k3%100)
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxValue(t *testing.T) {
	a, b := IntValue(3), IntValue(7)
	if MaxValue(a, b) != b || MaxValue(b, a) != b {
		t.Fatal("MaxValue is not commutative-max")
	}
	if MaxValue(None, a) != a {
		t.Fatal("MaxValue(None, a) != a")
	}
	if MaxValue(a, a) != a {
		t.Fatal("MaxValue(a, a) != a")
	}
}

func TestValueString(t *testing.T) {
	if got := None.String(); got != "⊥" {
		t.Errorf("None.String() = %q", got)
	}
	if got := IntValue(5).String(); got != "v(5)" {
		t.Errorf("IntValue(5).String() = %q", got)
	}
	if got := (Value{Key: 5, Data: "x"}).String(); got != `v(5,"x")` {
		t.Errorf("String() = %q", got)
	}
}
