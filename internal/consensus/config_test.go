package consensus

import (
	"errors"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	valid := Config{ID: 2, N: 5, F: 2, E: 1, Delta: 10}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(Config) Config
		want error
	}{
		{"zero n", func(c Config) Config { c.N = 0; return c }, ErrTooFew},
		{"id negative", func(c Config) Config { c.ID = -1; return c }, ErrBadID},
		{"id too large", func(c Config) Config { c.ID = 5; return c }, ErrBadID},
		{"e > f", func(c Config) Config { c.E = 3; return c }, ErrBadThreshold},
		{"negative f", func(c Config) Config { c.F = -1; return c }, ErrBadThreshold},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.mut(valid).Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	zeroDelta := valid
	zeroDelta.Delta = 0
	if err := zeroDelta.Validate(); err == nil {
		t.Fatal("zero delta accepted")
	}
}

func TestConfigQuorums(t *testing.T) {
	c := Config{ID: 0, N: 7, F: 2, E: 2, Delta: 10}
	if got := c.FastQuorum(); got != 5 {
		t.Errorf("FastQuorum = %d, want 5", got)
	}
	if got := c.ClassicQuorum(); got != 5 {
		t.Errorf("ClassicQuorum = %d, want 5", got)
	}
}

func TestConfigOthersAndAll(t *testing.T) {
	c := Config{ID: 1, N: 4, F: 1, E: 1, Delta: 10}
	others := c.Others()
	if len(others) != 3 {
		t.Fatalf("Others() = %v", others)
	}
	for _, p := range others {
		if p == c.ID {
			t.Fatalf("Others() contains self: %v", others)
		}
	}
	all := c.All()
	if len(all) != 4 || all[0] != 0 || all[3] != 3 {
		t.Fatalf("All() = %v", all)
	}
}
