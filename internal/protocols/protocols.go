// Package protocols is the registry tying protocol implementations to the
// scenario runner and the benchmark harness: named factories for the paper's
// protocol (task and object modes), the ablated variants, and the baselines.
package protocols

import (
	"fmt"
	"sort"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/epaxos"
	"repro/internal/fastpaxos"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// Names of the registered protocols.
const (
	CoreTask   = "core-task"
	CoreObject = "core-object"
	Paxos      = "paxos"
	FastPaxos  = "fastpaxos"
	// FastPaxosFlex is Fast Paxos under the smallest sound flexible fast
	// quorum (a bare majority, paid for with an all-but-nothing recovery
	// quorum — quorum.SmallestFastFlex). Same state machine as FastPaxos;
	// only the Config sizes differ.
	FastPaxosFlex = "fastpaxos-flex"
)

// CoreTaskFactory builds the paper's task-mode protocol.
func CoreTaskFactory(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
	return core.NewUnchecked(cfg, core.ModeTask, core.DefaultOptions(), oracle)
}

// CoreObjectFactory builds the paper's object-mode protocol.
func CoreObjectFactory(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
	return core.NewUnchecked(cfg, core.ModeObject, core.DefaultOptions(), oracle)
}

// PaxosFactory builds the classic Paxos baseline.
func PaxosFactory(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
	return paxos.NewUnchecked(cfg, oracle)
}

// FastPaxosFactory builds the Fast Paxos baseline.
func FastPaxosFactory(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
	return fastpaxos.NewUnchecked(cfg, oracle)
}

// FastPaxosFlexFactory builds Fast Paxos with the smallest sound flexible
// fast quorum for the config's (n, f, e): FastSize/RecoverySize are filled
// from quorum.SmallestFastFlex before construction. Panics if the majority
// fast quorum cannot survive e crashes — callers sweep only combinations
// quorum.SmallestFastFlex accepts (the F10 bench filters on it).
func FastPaxosFlexFactory(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
	fl, err := quorum.SmallestFastFlex(cfg.N, cfg.F, cfg.E)
	if err != nil {
		panic(fmt.Sprintf("protocols: %s n=%d f=%d e=%d: %v", FastPaxosFlex, cfg.N, cfg.F, cfg.E, err))
	}
	cfg.FastSize = fl.Fast
	cfg.RecoverySize = fl.Recovery
	return fastpaxos.NewUnchecked(cfg, oracle)
}

// EPaxosFactory builds the EPaxos-style baseline for an instance owned by
// owner; only the owner's proposals are registered.
func EPaxosFactory(owner consensus.ProcessID) runner.Factory {
	return func(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
		return epaxos.NewUnchecked(cfg, owner, oracle)
	}
}

// CoreAblatedFactory builds the paper's protocol with specific options
// disabled, for the ablation benches.
func CoreAblatedFactory(mode core.Mode, opts core.Options) runner.Factory {
	return func(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
		return core.NewUnchecked(cfg, mode, opts, oracle)
	}
}

var factories = map[string]runner.Factory{
	CoreTask:      CoreTaskFactory,
	CoreObject:    CoreObjectFactory,
	Paxos:         PaxosFactory,
	FastPaxos:     FastPaxosFactory,
	FastPaxosFlex: FastPaxosFlexFactory,
}

// ByName returns the named factory. EPaxos instances are owner-specific;
// use EPaxosFactory directly.
func ByName(name string) (runner.Factory, error) {
	fac, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("protocols: unknown protocol %q (have %v)", name, Names())
	}
	return fac, nil
}

// Names lists the registered protocol names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MinProcesses returns the theoretical minimum process count for the named
// protocol at thresholds (f, e).
func MinProcesses(name string, f, e int) (int, error) {
	switch name {
	case CoreTask:
		return quorum.TaskMinProcesses(f, e), nil
	case CoreObject:
		return quorum.ObjectMinProcesses(f, e), nil
	case FastPaxos:
		return quorum.LamportMinProcesses(f, e), nil
	case FastPaxosFlex:
		// Flexible quorums don't evade Lamport's count for f-resilient
		// recovery — they trade recovery resilience instead. The majority
		// fast quorum survives e crashes whenever n ≥ 2e+1, which e ≤ f
		// subsumes under 2f+1.
		return quorum.PlainMinProcesses(f), nil
	case Paxos:
		return quorum.PlainMinProcesses(f), nil
	default:
		return 0, fmt.Errorf("protocols: unknown protocol %q", name)
	}
}
