package protocols_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/protocols"
	"repro/internal/quorum"
)

func TestByName(t *testing.T) {
	for _, name := range protocols.Names() {
		fac, err := protocols.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := consensus.Config{ID: 0, N: 7, F: 2, E: 1, Delta: 10}
		p := fac(cfg, consensus.FixedLeader(0))
		if p == nil || p.ID() != 0 {
			t.Fatalf("%s: bad instance", name)
		}
		if _, ok := p.Decision(); ok {
			t.Fatalf("%s: fresh instance already decided", name)
		}
	}
	if _, err := protocols.ByName("nope"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestMinProcesses(t *testing.T) {
	cases := []struct {
		name string
		f, e int
		want int
	}{
		{protocols.CoreTask, 2, 2, quorum.TaskMinProcesses(2, 2)},
		{protocols.CoreObject, 2, 2, quorum.ObjectMinProcesses(2, 2)},
		{protocols.FastPaxos, 2, 2, quorum.LamportMinProcesses(2, 2)},
		{protocols.Paxos, 2, 2, quorum.PlainMinProcesses(2)},
	}
	for _, c := range cases {
		got, err := protocols.MinProcesses(c.name, c.f, c.e)
		if err != nil || got != c.want {
			t.Errorf("MinProcesses(%s) = %d, %v; want %d", c.name, got, err, c.want)
		}
	}
	if _, err := protocols.MinProcesses("nope", 1, 1); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestEPaxosFactoryBindsOwner(t *testing.T) {
	fac := protocols.EPaxosFactory(3)
	cfg := consensus.Config{ID: 1, N: 5, F: 2, E: 2, Delta: 10}
	p := fac(cfg, consensus.FixedLeader(0))
	// Non-owners must not register proposals.
	if effs := p.Propose(consensus.IntValue(7)); len(effs) != 0 {
		t.Fatalf("non-owner Propose produced effects: %v", effs)
	}
	cfg.ID = 3
	owner := fac(cfg, consensus.FixedLeader(0))
	if effs := owner.Propose(consensus.IntValue(7)); len(effs) == 0 {
		t.Fatal("owner Propose produced no effects")
	}
}
