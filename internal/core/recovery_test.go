package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/consensus"
)

// testNode builds a bare node for white-box recovery tests.
func testNode(t *testing.T, n, f, e int, mode Mode, opts Options) *Node {
	t.Helper()
	cfg := consensus.Config{ID: 0, N: n, F: f, E: e, Delta: 10}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	return NewUnchecked(cfg, mode, opts, consensus.FixedLeader(0))
}

func report(vbal consensus.Ballot, val consensus.Value, proposer consensus.ProcessID, decided consensus.Value) OneB {
	return OneB{Ballot: 1, VBal: vbal, Val: val, Proposer: proposer, Decided: decided}
}

func TestRecoverPrefersDecided(t *testing.T) {
	n := testNode(t, 5, 2, 1, ModeTask, DefaultOptions())
	reports := map[consensus.ProcessID]OneB{
		1: report(0, consensus.IntValue(9), 2, consensus.None),
		2: report(0, consensus.IntValue(9), 3, consensus.None),
		3: report(0, consensus.IntValue(4), 4, consensus.IntValue(4)),
	}
	if got := n.recover(reports); got != consensus.IntValue(4) {
		t.Fatalf("recover = %v, want decided value v(4)", got)
	}
}

func TestRecoverPrefersHighestSlowBallot(t *testing.T) {
	n := testNode(t, 5, 2, 1, ModeTask, DefaultOptions())
	reports := map[consensus.ProcessID]OneB{
		1: report(3, consensus.IntValue(1), consensus.NoProcess, consensus.None),
		2: report(7, consensus.IntValue(2), consensus.NoProcess, consensus.None),
		3: report(0, consensus.IntValue(9), 4, consensus.None),
	}
	if got := n.recover(reports); got != consensus.IntValue(2) {
		t.Fatalf("recover = %v, want v(2) from vbal=7", got)
	}
}

func TestRecoverExcludesProposersInQ(t *testing.T) {
	// n=5, f=2, e=1: threshold n-f-e = 2. Value 9 has two votes but its
	// proposer (p2) is inside Q, so both votes are excluded; value 5 has
	// two votes from R and must win.
	n := testNode(t, 5, 2, 1, ModeTask, DefaultOptions())
	reports := map[consensus.ProcessID]OneB{
		1: report(0, consensus.IntValue(9), 2, consensus.None),
		2: report(0, consensus.IntValue(5), 4, consensus.None),
		3: report(0, consensus.IntValue(5), 4, consensus.None),
	}
	if got := n.recover(reports); got != consensus.IntValue(5) {
		t.Fatalf("recover = %v, want v(5)", got)
	}

	// Ablation: without proposer exclusion, value 9 competes; 9 > 5 and
	// both reach the (>=) thresholds, so Fast-Paxos-style counting picks 9.
	opts := DefaultOptions()
	opts.ExcludeProposers = false
	n2 := testNode(t, 5, 2, 1, ModeTask, opts)
	reports[1] = report(0, consensus.IntValue(9), 2, consensus.None)
	reports[4] = report(0, consensus.IntValue(9), 2, consensus.None)
	delete(reports, 3)
	if got := n2.recover(reports); got != consensus.IntValue(9) {
		t.Fatalf("ablated recover = %v, want v(9)", got)
	}
}

func TestRecoverEqualityBranchMaxTieBreak(t *testing.T) {
	// n=6, f=2, e=2 (task bound): threshold n-f-e = 2. Two values with
	// exactly 2 votes each; the greater must win.
	n := testNode(t, 6, 2, 2, ModeTask, DefaultOptions())
	reports := map[consensus.ProcessID]OneB{
		0: report(0, consensus.IntValue(3), 4, consensus.None),
		1: report(0, consensus.IntValue(3), 4, consensus.None),
		2: report(0, consensus.IntValue(8), 5, consensus.None),
		3: report(0, consensus.IntValue(8), 5, consensus.None),
	}
	if got := n.recover(reports); got != consensus.IntValue(8) {
		t.Fatalf("recover = %v, want max candidate v(8)", got)
	}

	// Without the equality branch the rule falls through to the leader's
	// own proposal.
	opts := DefaultOptions()
	opts.EqualityBranch = false
	n2 := testNode(t, 6, 2, 2, ModeTask, opts)
	n2.initialVal = consensus.IntValue(1)
	if got := n2.recover(reports); got != consensus.IntValue(1) {
		t.Fatalf("ablated recover = %v, want leader's own v(1)", got)
	}
}

func TestRecoverFallsBackToOwnProposal(t *testing.T) {
	n := testNode(t, 5, 2, 1, ModeTask, DefaultOptions())
	n.initialVal = consensus.IntValue(6)
	reports := map[consensus.ProcessID]OneB{
		1: report(0, consensus.None, consensus.NoProcess, consensus.None),
		2: report(0, consensus.None, consensus.NoProcess, consensus.None),
		3: report(0, consensus.None, consensus.NoProcess, consensus.None),
	}
	if got := n.recover(reports); got != consensus.IntValue(6) {
		t.Fatalf("recover = %v, want own proposal v(6)", got)
	}
}

func TestRecoverTerminationCompletion(t *testing.T) {
	// No decided value, no slow votes, below-threshold fast votes, and a
	// leader with no proposal of its own: rule 5 must still surface the
	// greatest visible vote so the object variant stays wait-free.
	n := testNode(t, 5, 2, 1, ModeObject, DefaultOptions())
	reports := map[consensus.ProcessID]OneB{
		1: report(0, consensus.IntValue(3), 4, consensus.None),
		2: report(0, consensus.None, consensus.NoProcess, consensus.None),
		3: report(0, consensus.None, consensus.NoProcess, consensus.None),
	}
	if got := n.recover(reports); got != consensus.IntValue(3) {
		t.Fatalf("recover = %v, want completion pick v(3)", got)
	}
}

func TestRecoverNoneWhenNothingVisible(t *testing.T) {
	n := testNode(t, 5, 2, 1, ModeObject, DefaultOptions())
	reports := map[consensus.ProcessID]OneB{
		1: report(0, consensus.None, consensus.NoProcess, consensus.None),
		2: report(0, consensus.None, consensus.NoProcess, consensus.None),
		3: report(0, consensus.None, consensus.NoProcess, consensus.None),
	}
	if got := n.recover(reports); !got.IsNone() {
		t.Fatalf("recover = %v, want ⊥", got)
	}
}

// TestRecoverLemmaProperty is a property-based check of Lemma 3 (task) and
// Lemma 7 (object): whenever a value v is decided on the fast path — i.e.
// at least n−e processes voted for v at ballot 0, counting the proposer —
// the recovery rule selects v, for every quorum Q of n−f reports drawn from
// a consistent global state.
func TestRecoverLemmaProperty(t *testing.T) {
	for _, mode := range []Mode{ModeTask, ModeObject} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfgProp := func(seed int64) bool {
				return checkRecoverLemmaOnce(t, mode, seed)
			}
			if err := quick.Check(cfgProp, &quick.Config{MaxCount: 400}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// checkRecoverLemmaOnce builds one random consistent post-fast-decision
// state and verifies the recovery rule re-selects the fast value.
func checkRecoverLemmaOnce(t *testing.T, mode Mode, seed int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// Random thresholds at the tight bound for the mode.
	f := 1 + rng.Intn(3)
	e := 1 + rng.Intn(f)
	var n int
	if mode == ModeTask {
		n = maxInt(2*e+f, 2*f+1)
	} else {
		n = maxInt(2*e+f-1, 2*f+1)
	}

	fastValue := consensus.IntValue(int64(50 + rng.Intn(10)))
	proposer := consensus.ProcessID(rng.Intn(n))

	// Voters for the fast value: the proposer (implicitly) plus at least
	// n−e−1 explicit voters among the others.
	voters := map[consensus.ProcessID]bool{proposer: true}
	others := rng.Perm(n)
	for _, i := range others {
		p := consensus.ProcessID(i)
		if p == proposer {
			continue
		}
		if len(voters) < n-e {
			voters[p] = true
		}
	}

	// Remaining processes may have voted for lower competing values whose
	// proposers are among the fast voters' complement — any state the
	// fast-path preconditions allow. Competing values must be ≤ fastValue
	// only in task mode when their proposer's own value ordering forces
	// it; to stay conservative we generate arbitrary lower and higher
	// competitor keys but mark competitors consistently: a process that
	// voted for the fast value cannot also propose a different value that
	// got votes unless ordering permits. We keep competitors' proposers
	// outside the fast voter set and their values below the fast value,
	// which is exactly what the fast-path acceptance rule enforces for
	// any value that could coexist with a fast quorum for fastValue.
	type state struct {
		val      consensus.Value
		prop     consensus.ProcessID
		decided  consensus.Value
		vbal     consensus.Ballot
		proposed consensus.Value
	}
	states := make([]state, n)
	var nonVoters []consensus.ProcessID
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		if p == proposer {
			// The proposer may or may not have voted for another
			// (greater) proposal in task mode; in object mode it
			// votes only for its own value. Keep it unvoted or
			// voted for its own decided value.
			st := state{val: consensus.None, prop: consensus.NoProcess, decided: consensus.None, proposed: fastValue}
			if rng.Intn(2) == 0 {
				// The proposer has already fast-decided.
				st.val = fastValue
				st.decided = fastValue
			}
			states[i] = st
			continue
		}
		if voters[p] {
			states[i] = state{val: fastValue, prop: proposer, decided: consensus.None}
			continue
		}
		nonVoters = append(nonVoters, p)
		states[i] = state{val: consensus.None, prop: consensus.NoProcess, decided: consensus.None}
	}
	// Give some non-voters votes for a lower competing value proposed by
	// another non-voter.
	if len(nonVoters) > 1 && rng.Intn(2) == 0 {
		compProposer := nonVoters[rng.Intn(len(nonVoters))]
		compValue := consensus.IntValue(int64(1 + rng.Intn(40)))
		for _, p := range nonVoters {
			if p != compProposer && rng.Intn(2) == 0 {
				states[p] = state{val: compValue, prop: compProposer, decided: consensus.None}
			}
		}
	}

	// Build Q: a random quorum of n−f processes. If the proposer is in Q
	// it must report its decision only if it decided; to exercise the
	// hard case, force the proposer out of Q half the time.
	perm := rng.Perm(n)
	var q []consensus.ProcessID
	excludeProposer := rng.Intn(2) == 0
	for _, i := range perm {
		p := consensus.ProcessID(i)
		if excludeProposer && p == proposer {
			continue
		}
		if len(q) < n-f {
			q = append(q, p)
		}
	}
	if len(q) < n-f {
		q = append(q, proposer)
	}
	// If the proposer landed in Q without having decided, the fast
	// decision cannot have happened (it would have joined the new ballot
	// first); emulate the paper's semantics by forcing its decided flag.
	for _, p := range q {
		if p == proposer && states[p].decided.IsNone() {
			states[p] = state{val: fastValue, prop: consensus.NoProcess, decided: fastValue, proposed: fastValue}
		}
	}

	reports := make(map[consensus.ProcessID]OneB, len(q))
	for _, p := range q {
		st := states[p]
		reports[p] = OneB{Ballot: 1, VBal: st.vbal, Val: st.val, Proposer: st.prop, Decided: st.decided}
	}

	cfg := consensus.Config{ID: consensus.ProcessID(0), N: n, F: f, E: e, Delta: 10}
	node := NewUnchecked(cfg, mode, DefaultOptions(), consensus.FixedLeader(0))
	node.initialVal = consensus.IntValue(int64(1 + rng.Intn(40)))

	got := node.recover(reports)
	if got != fastValue {
		t.Logf("seed=%d mode=%s n=%d f=%d e=%d proposer=%v Q=%v: recover=%v want %v",
			seed, mode, n, f, e, proposer, q, got, fastValue)
		return false
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestNextOwnedBallot(t *testing.T) {
	cases := []struct {
		bal  consensus.Ballot
		id   consensus.ProcessID
		n    int
		want consensus.Ballot
	}{
		{0, 0, 5, 5},
		{0, 1, 5, 1},
		{0, 4, 5, 4},
		{4, 4, 5, 9},
		{7, 2, 5, 12},
		{12, 2, 5, 17},
		{3, 0, 3, 6},
	}
	for _, c := range cases {
		if got := nextOwnedBallot(c.bal, c.id, c.n); got != c.want {
			t.Errorf("nextOwnedBallot(%d,%d,%d) = %d, want %d", c.bal, c.id, c.n, got, c.want)
		}
		if got := nextOwnedBallot(c.bal, c.id, c.n); int64(got)%int64(c.n) != int64(c.id) || got <= c.bal {
			t.Errorf("nextOwnedBallot(%d,%d,%d) = %d violates ownership/monotonicity", c.bal, c.id, c.n, got)
		}
	}
}
