package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/consensus"
)

// State is the durable part of a Node: everything whose loss across a
// restart could violate safety. Volatile bookkeeping (collected fast votes,
// leader state for an in-flight ballot, pending re-announcements) is
// deliberately excluded — losing it can only delay progress, never break
// agreement, because the restarted node re-enters the protocol through a
// fresh slow ballot if needed.
//
// A host that wants crash-recovery semantics (as opposed to the paper's
// crash-stop model) must persist the state after every step that changed it
// and restore before processing further input.
type State struct {
	Mode       Mode                `json:"mode"`
	InitialVal consensus.Value     `json:"initialVal"`
	Val        consensus.Value     `json:"val"`
	Proposer   consensus.ProcessID `json:"proposer"`
	Bal        consensus.Ballot    `json:"bal"`
	VBal       consensus.Ballot    `json:"vbal"`
	Decided    consensus.Value     `json:"decided"`
	PendingMax consensus.Value     `json:"pendingMax"`
}

// Snapshot exports the node's durable state.
func (n *Node) Snapshot() State {
	return State{
		Mode:       n.mode,
		InitialVal: n.initialVal,
		Val:        n.val,
		Proposer:   n.proposer,
		Bal:        n.bal,
		VBal:       n.vbal,
		Decided:    n.decided,
		PendingMax: n.pendingMax,
	}
}

// SnapshotJSON exports the durable state as JSON, for journals.
func (n *Node) SnapshotJSON() ([]byte, error) {
	data, err := json.Marshal(n.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("core snapshot: %w", err)
	}
	return data, nil
}

// Restore installs a previously exported state on a fresh node. It must be
// called before Start and fails on a mode mismatch.
func (n *Node) Restore(s State) error {
	if s.Mode != 0 && s.Mode != n.mode {
		return fmt.Errorf("core restore: snapshot mode %s, node mode %s", s.Mode, n.mode)
	}
	n.initialVal = s.InitialVal
	n.val = s.Val
	n.proposer = s.Proposer
	n.bal = s.Bal
	n.vbal = s.VBal
	n.decided = s.Decided
	n.pendingMax = s.PendingMax
	if !n.decided.IsNone() {
		n.rebroadcasts = decidedRebroadcasts
	}
	return nil
}

// RestoreJSON installs a JSON-encoded state.
func (n *Node) RestoreJSON(data []byte) error {
	var s State
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("core restore: %w", err)
	}
	return n.Restore(s)
}

// DumpState returns a canonical dump of the node's FULL state — durable and
// volatile — for the model checker's state deduplication (internal/mc). Two
// nodes with equal dumps behave identically on all future inputs.
func (n *Node) DumpState() string {
	votes := make([]int, 0, len(n.fastVotes))
	for p := range n.fastVotes {
		votes = append(votes, int(p))
	}
	sort.Ints(votes)
	oneBs := make([]string, 0, len(n.lead.oneBs))
	for p, ob := range n.lead.oneBs {
		oneBs = append(oneBs, fmt.Sprintf("%d:%+v", p, ob))
	}
	sort.Strings(oneBs)
	twoBs := make([]int, 0, len(n.lead.twoBs))
	for p := range n.lead.twoBs {
		twoBs = append(twoBs, int(p))
	}
	sort.Ints(twoBs)
	return fmt.Sprintf("iv=%v v=%v pr=%d b=%d vb=%d d=%v pm=%v rb=%d fv=%v|lead{b=%d 1b=%v s2a=%v lv=%v 2b=%v}",
		n.initialVal, n.val, n.proposer, n.bal, n.vbal, n.decided, n.pendingMax, n.rebroadcasts, votes,
		n.lead.ballot, oneBs, n.lead.sentTwoA, n.lead.val, twoBs)
}
