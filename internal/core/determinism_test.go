package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/consensus"
	"repro/internal/core"
)

// TestDeterminismUnderRandomInputs is the machine check of the determinism
// contract (consensus.Protocol doc): feed a random but fixed input sequence
// to two fresh instances and require identical effects throughout. The
// recorded sequence is replayed via the consensus.Recorder machinery — the
// same machinery a live-cluster debugging session would use.
func TestDeterminismUnderRandomInputs(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeTask, core.ModeObject} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			prop := func(seed int64) bool {
				events := randomEventSequence(seed)
				factory := func() consensus.Protocol {
					cfg := consensus.Config{ID: 0, N: 5, F: 2, E: 1, Delta: 10}
					return core.NewUnchecked(cfg, mode, core.DefaultOptions(), consensus.FixedLeader(0))
				}
				if err := consensus.CheckReplayEquivalence(events, factory); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecorderCapturesAndReplays drives a node through the recorder and
// verifies the replayed fresh instance reaches the same decision.
func TestRecorderCapturesAndReplays(t *testing.T) {
	cfg := consensus.Config{ID: 0, N: 5, F: 2, E: 1, Delta: 10}
	build := func() consensus.Protocol {
		return core.NewUnchecked(cfg, core.ModeTask, core.DefaultOptions(), consensus.FixedLeader(0))
	}
	rec := consensus.NewRecorder(build())
	rec.Start()
	rec.Propose(consensus.IntValue(5))
	for _, from := range []consensus.ProcessID{1, 2, 3} {
		rec.Deliver(from, &core.TwoB{Ballot: 0, Value: consensus.IntValue(5)})
	}
	v, ok := rec.Decision()
	if !ok || v != consensus.IntValue(5) {
		t.Fatalf("recorded run did not decide: %v %v", v, ok)
	}

	fresh := build()
	consensus.Replay(rec.Events(), fresh)
	v2, ok2 := fresh.Decision()
	if !ok2 || !reflect.DeepEqual(v, v2) {
		t.Fatalf("replayed run decision %v %v, want %v", v2, ok2, v)
	}
}

// randomEventSequence builds a random but type-correct input sequence.
func randomEventSequence(seed int64) []consensus.RecordedEvent {
	rng := rand.New(rand.NewSource(seed))
	events := []consensus.RecordedEvent{{Kind: consensus.EventStart}}
	vals := func() consensus.Value { return consensus.IntValue(int64(1 + rng.Intn(9))) }
	from := func() consensus.ProcessID { return consensus.ProcessID(rng.Intn(5)) }
	for i := 0; i < 40; i++ {
		switch rng.Intn(10) {
		case 0:
			events = append(events, consensus.RecordedEvent{Kind: consensus.EventPropose, Value: vals()})
		case 1:
			events = append(events, consensus.RecordedEvent{Kind: consensus.EventTick, Timer: core.TimerNewBallot})
		case 2:
			events = append(events, deliver(from(), &core.ProposeMsg{Value: vals()}))
		case 3:
			events = append(events, deliver(from(), &core.TwoB{Ballot: consensus.Ballot(rng.Intn(3)), Value: vals()}))
		case 4:
			events = append(events, deliver(from(), &core.OneA{Ballot: consensus.Ballot(rng.Intn(20))}))
		case 5:
			events = append(events, deliver(from(), &core.OneB{
				Ballot:   consensus.Ballot(rng.Intn(20)),
				VBal:     consensus.Ballot(rng.Intn(3)),
				Val:      vals(),
				Proposer: from(),
				Decided:  consensus.None,
			}))
		case 6:
			events = append(events, deliver(from(), &core.TwoA{Ballot: consensus.Ballot(rng.Intn(20)), Value: vals()}))
		case 7:
			events = append(events, deliver(from(), &core.DecideMsg{Value: vals()}))
		case 8:
			events = append(events, deliver(from(), &core.TwoB{Ballot: 0, Value: vals()}))
		case 9:
			// Malformed/hostile inputs: negative and zero ballots in
			// slow-path messages must be tolerated.
			events = append(events, deliver(from(), &core.OneB{Ballot: consensus.Ballot(rng.Intn(3) - 1)}))
		}
	}
	return events
}

func deliver(from consensus.ProcessID, m consensus.Message) consensus.RecordedEvent {
	return consensus.RecordedEvent{Kind: consensus.EventDeliver, From: from, Msg: m}
}
