// Package core implements the paper's primary contribution: the consensus
// protocol of Figure 1 in "Revisiting Lower Bounds for Two-Step Consensus"
// (Ryabinin, Gotsman, Sutra; PODC 2025).
//
// The protocol is a Fast-Paxos-like algorithm operating in ballots. Ballot 0
// is the fast ballot: every proposer broadcasts its proposal in a Propose
// message; a process accepts a Propose(v) only when it has not voted yet and
// v is at least its own proposal (plus, in object mode, the red-line
// condition that it has not itself proposed a different value). A proposer
// that gathers ballot-0 votes from n−e processes, counting itself, decides
// after two message delays. All other ballots are slow Paxos-style ballots
// driven by a leader chosen through an Ω oracle.
//
// What makes the protocol use fewer processes than Fast Paxos is the
// recovery rule run by a new leader over n−f collected 1B messages when the
// highest vote ballot is 0 (fastRecover in recovery.go): it first discards
// the votes whose proposers are themselves inside the 1B quorum Q — those
// proposers demonstrably did not and will never decide on the fast path —
// and then looks for a value with more than n−f−e surviving votes, or
// exactly n−f−e votes with a maximal-value tie-break. Lemma 3 of the paper
// (Lemma 7 for the object variant) shows this always re-selects a value
// decided on the fast path, for n ≥ 2e+f (task) or n ≥ 2e+f−1 (object).
//
// Two modes are provided:
//
//   - ModeTask: consensus as a decision task. Every process receives an
//     input value and the harness calls Propose exactly once at startup.
//     Requires n ≥ max{2e+f, 2f+1} (Theorem 5).
//   - ModeObject: consensus as an atomic object. Propose corresponds to an
//     explicit propose(v) invocation and may never happen at a given
//     process. Includes the paper's red lines: a process only registers its
//     own proposal if it has not voted for someone else's, and only accepts
//     a Propose(v) if it has not proposed, or proposed the same v.
//     Requires n ≥ max{2e+f−1, 2f+1} (Theorem 6).
//
// The Options type exposes the design choices called out for ablation in
// DESIGN.md §5 (value-ordered fast path, proposer-exclusion set R, equality
// branch with maximal-value tie-break). Production configurations use
// DefaultOptions; the ablation benches flip individual switches to
// demonstrate why each rule is necessary at the tight process counts.
//
// One completion relative to the paper's pseudocode is documented on
// (*Node).recover: if every rule of the 1B aggregation yields ⊥ but some
// vote is visible, the leader proposes the maximal visible vote. This is
// unreachable in any execution where a fast-path decision exists (the
// earlier rules catch those by Lemma 3) and is required for wait-freedom of
// the object variant when the only proposers of a registered value have
// crashed.
package core
