package core_test

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/runner"
)

// Example runs the paper's protocol through its fast path in the simulated
// synchronous-round model: five processes, the object formulation at its
// tight bound (f = 2, e = 2 on five processes, where Fast Paxos would need
// seven), a single proposer, decision after exactly two message delays.
func Example() {
	sc := runner.Scenario{N: 5, F: 2, E: 2, Delta: 10}
	factory := func(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
		node, err := core.New(cfg, core.ModeObject, oracle)
		if err != nil {
			panic(err) // example setup; the bound is satisfied by construction
		}
		return node
	}
	tr, err := runner.EFaultySync(factory, sc, runner.SyncRun{
		Inputs: map[consensus.ProcessID]consensus.Value{2: consensus.IntValue(42)},
		Prefer: 2,
	})
	if err != nil {
		panic(err)
	}
	d, _ := tr.DecisionOf(2)
	fmt.Printf("p2 decided %s at t=%d (2Δ=%d)\n", d.Value, d.At, 2*sc.Delta)
	// Output:
	// p2 decided v(42) at t=20 (2Δ=20)
}
