package core_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// TestFastPathAtScale runs the fast path on a 19-process deployment
// (f=7, e=6 at the object bound 2e+f−1=18… rounded up to satisfy 2f+1):
// the protocol's quorum arithmetic and the simulator must handle larger
// clusters without drama.
func TestFastPathAtScale(t *testing.T) {
	f, e := 7, 6
	n := quorum.ObjectMinProcesses(f, e) // max{18, 15} = 18
	sc := runner.Scenario{N: n, F: f, E: e, Delta: 10}

	var faulty []consensus.ProcessID
	for i := 0; i < e; i++ {
		faulty = append(faulty, consensus.ProcessID(n-1-i))
	}
	proxy := consensus.ProcessID(3)
	tr, err := runner.EFaultySync(ObjectFactory, sc, runner.SyncRun{
		Faulty: faulty,
		Inputs: map[consensus.ProcessID]consensus.Value{proxy: consensus.IntValue(7)},
		Prefer: proxy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TwoStepFor(proxy, sc.Delta) {
		t.Fatalf("n=%d: proxy not two-step under %d crashes: %v", n, e, tr.Decisions)
	}
}

// TestSoakAtScale runs the randomized campaign at n=15.
func TestSoakAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n soak")
	}
	f, e := 7, 4
	n := quorum.TaskMinProcesses(f, e) // max{15, 15} = 15
	sc := runner.Scenario{N: n, F: f, E: e, Delta: 10, Seed: 99}
	res := runner.Soak(TaskFactory, sc, runner.SoakOptions{Runs: 25, MaxCrashes: f})
	if !res.OK() {
		t.Fatalf("scale soak: %s\n%v", res, res.Failures)
	}
}
