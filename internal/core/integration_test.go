package core_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/runner"
)

func taskFactory(fac func(consensus.Config, consensus.LeaderOracle) *core.Node) runner.Factory {
	return func(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
		return fac(cfg, oracle)
	}
}

// TaskFactory builds the task-mode protocol with default options.
func TaskFactory(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
	return core.NewUnchecked(cfg, core.ModeTask, core.DefaultOptions(), oracle)
}

// ObjectFactory builds the object-mode protocol with default options.
func ObjectFactory(cfg consensus.Config, oracle consensus.LeaderOracle) consensus.Protocol {
	return core.NewUnchecked(cfg, core.ModeObject, core.DefaultOptions(), oracle)
}

func TestNewEnforcesBounds(t *testing.T) {
	cfg := consensus.Config{ID: 0, N: 4, F: 2, E: 1, Delta: 10} // task needs 5
	if _, err := core.New(cfg, core.ModeTask, consensus.FixedLeader(0)); err == nil {
		t.Fatal("New accepted n below the task bound")
	}
	cfg.N = 5
	if _, err := core.New(cfg, core.ModeTask, consensus.FixedLeader(0)); err != nil {
		t.Fatalf("New rejected n at the task bound: %v", err)
	}
	// Object mode needs one fewer for f=2 e=2: max{2·2+2−1, 5} = 5 vs
	// task max{6, 5} = 6.
	cfg = consensus.Config{ID: 0, N: 5, F: 2, E: 2, Delta: 10}
	if _, err := core.New(cfg, core.ModeObject, consensus.FixedLeader(0)); err != nil {
		t.Fatalf("New rejected object mode at its bound: %v", err)
	}
	if _, err := core.New(cfg, core.ModeTask, consensus.FixedLeader(0)); err == nil {
		t.Fatal("New accepted task mode below its bound")
	}
}

func TestFastPathDecidesAtTwoDelta(t *testing.T) {
	sc := runner.Scenario{N: 3, F: 1, E: 1, Delta: 10}
	inputs := map[consensus.ProcessID]consensus.Value{
		0: consensus.IntValue(1),
		1: consensus.IntValue(5),
		2: consensus.IntValue(3),
	}
	tr, err := runner.EFaultySync(TaskFactory, sc, runner.SyncRun{Inputs: inputs, Prefer: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := tr.DecisionOf(1)
	if !ok {
		t.Fatal("p1 did not decide")
	}
	if d.At != consensus.Time(2*sc.Delta) {
		t.Fatalf("p1 decided at t=%d, want 2Δ=%d", d.At, 2*sc.Delta)
	}
	if d.Value != consensus.IntValue(5) {
		t.Fatalf("p1 decided %v, want its own v(5)", d.Value)
	}
}

func TestFastPathToleratesECrashes(t *testing.T) {
	sc := runner.Scenario{N: 6, F: 2, E: 2, Delta: 10}
	inputs := make(map[consensus.ProcessID]consensus.Value)
	for i := 0; i < sc.N; i++ {
		inputs[consensus.ProcessID(i)] = consensus.IntValue(int64(i + 1))
	}
	tr, err := runner.EFaultySync(TaskFactory, sc, runner.SyncRun{
		Faulty: []consensus.ProcessID{4, 5}, // crash the two largest proposers
		Inputs: inputs,
		Prefer: 3, // greatest correct proposal
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TwoStepFor(3, sc.Delta) {
		t.Fatalf("p3 not two-step; decisions: %v", tr.Decisions)
	}
}

func TestTaskTwoStepAtBound(t *testing.T) {
	cases := []struct{ f, e int }{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 2}}
	for _, c := range cases {
		n := quorum.TaskMinProcesses(c.f, c.e)
		sc := runner.Scenario{N: n, F: c.f, E: c.e, Delta: 10, Seed: 42}
		report := runner.TaskTwoStep(TaskFactory, sc)
		if !report.OK() {
			t.Errorf("task f=%d e=%d n=%d: %s\nitem1: %v\nitem2: %v",
				c.f, c.e, n, report, report.Item1.Failures, report.Item2.Failures)
		}
	}
}

func TestObjectTwoStepAtBound(t *testing.T) {
	cases := []struct{ f, e int }{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {3, 3}}
	for _, c := range cases {
		n := quorum.ObjectMinProcesses(c.f, c.e)
		sc := runner.Scenario{N: n, F: c.f, E: c.e, Delta: 10, Seed: 42}
		report := runner.ObjectTwoStep(ObjectFactory, sc)
		if !report.OK() {
			t.Errorf("object f=%d e=%d n=%d: %s\nitem1: %v\nitem2: %v",
				c.f, c.e, n, report, report.Item1.Failures, report.Item2.Failures)
		}
	}
}

func TestSlowPathResolvesConflicts(t *testing.T) {
	// Split votes so nobody reaches a fast quorum, then let the leader's
	// slow ballot finish the job. Horizon long enough for several ballots.
	sc := runner.Scenario{N: 5, F: 2, E: 1, Delta: 10}
	inputs := make(map[consensus.ProcessID]consensus.Value)
	for i := 0; i < sc.N; i++ {
		inputs[consensus.ProcessID(i)] = consensus.IntValue(int64(10 - i))
	}
	tr, err := runner.EFaultySync(TaskFactory, sc, runner.SyncRun{
		Inputs:  inputs,
		Prefer:  4, // prefer the smallest value's messages: guarantees conflicts
		Horizon: consensus.Time(200 * sc.Delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckTaskSpec(); err != nil {
		t.Fatalf("spec: %v", err)
	}
}

func TestCrashOfDeciderPreservesDecision(t *testing.T) {
	// p1 decides fast at 2Δ and crashes immediately after, before its
	// Decide broadcast is delivered (synchronous delivery means the
	// broadcast sent at 2Δ arrives at 3Δ; we crash p1 at 2Δ+1 — links are
	// reliable so the broadcast still arrives, which is fine: the point
	// is the *recovery* must also pick p1's value from votes alone).
	sc := runner.Scenario{N: 5, F: 2, E: 1, Delta: 10}
	inputs := make(map[consensus.ProcessID]consensus.Value)
	for i := 0; i < sc.N; i++ {
		inputs[consensus.ProcessID(i)] = consensus.IntValue(int64(i + 1))
	}
	tr, err := runner.EFaultySync(TaskFactory, sc, runner.SyncRun{
		Inputs:  inputs,
		Prefer:  4,
		Horizon: consensus.Time(300 * sc.Delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckTaskSpec(); err != nil {
		t.Fatalf("spec: %v", err)
	}
	d, ok := tr.DecisionOf(4)
	if !ok || d.Value != consensus.IntValue(5) {
		t.Fatalf("expected p4's v(5) to win; got %v (ok=%v)", d, ok)
	}
}

func TestTaskSoak(t *testing.T) {
	sc := runner.Scenario{N: 5, F: 2, E: 1, Delta: 10, Seed: 7}
	res := runner.Soak(TaskFactory, sc, runner.SoakOptions{Runs: 60, MaxCrashes: 2})
	if !res.OK() {
		t.Fatalf("soak: %s\n%v", res, res.Failures)
	}
}

func TestObjectSoak(t *testing.T) {
	sc := runner.Scenario{N: 5, F: 2, E: 2, Delta: 10, Seed: 11}
	res := runner.Soak(ObjectFactory, sc, runner.SoakOptions{Runs: 60, MaxCrashes: 2, Object: true})
	if !res.OK() {
		t.Fatalf("soak: %s\n%v", res, res.Failures)
	}
}

func TestObjectRejectsConflictingProposalAfterOwn(t *testing.T) {
	// Red-line behaviour: a process that proposed v refuses to vote for a
	// different value w ≠ v, even a greater one.
	sc := runner.Scenario{N: 5, F: 2, E: 2, Delta: 10}
	inputs := map[consensus.ProcessID]consensus.Value{
		0: consensus.IntValue(3),
		1: consensus.IntValue(9),
	}
	tr, err := runner.EFaultySync(ObjectFactory, sc, runner.SyncRun{
		Inputs:  inputs,
		Prefer:  1,
		Horizon: consensus.Time(2 * sc.Delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	// p1 collects votes from p2,p3,p4 (3 votes + itself = 4 ≥ n−e = 3);
	// p0 votes for nobody else. p1 must be two-step; p0 must not have
	// decided a value other than 9 — in fact by 2Δ p0 only sees Propose
	// traffic and decides nothing.
	if !tr.TwoStepFor(1, sc.Delta) {
		t.Fatalf("p1 not two-step: %v", tr.Decisions)
	}
	if d, ok := tr.DecisionOf(0); ok && d.Value != consensus.IntValue(9) {
		t.Fatalf("p0 decided %v", d.Value)
	}
}

// Silence the unused helper warning if factories are reused elsewhere.
var _ = taskFactory
