package core_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/sim"
)

// TestObjectTerminatesWhenProposalsMissFastBallot is the regression test
// for recovery rule 6 + proposer re-submission: both proposals are delayed
// past the fast ballot (every process has moved to a slow ballot before any
// Propose arrives), the leader p0 never proposed anything itself, and no
// vote was ever cast. Without the completions the leader recovers ⊥
// forever; with them the proposers re-submit to the leader on their timers
// and the instance decides.
func TestObjectTerminatesWhenProposalsMissFastBallot(t *testing.T) {
	const n, f, e = 5, 2, 2
	delta := consensus.Duration(10)

	cl, err := sim.New(sim.Options{
		N:     n,
		Delta: delta,
		// All Propose broadcasts sent before 2Δ are delayed until long
		// after every process joined a slow ballot; everything else is
		// synchronous.
		Policy:  delayProposals{delta: delta, until: 60 * consensus.Time(delta)},
		Horizon: consensus.Time(300 * delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := cl.Oracle()
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		cl.SetNode(p, ObjectFactory(scenarioConfig(p, n, f, e, delta), oracle))
	}
	cl.SchedulePropose(2, 0, consensus.IntValue(5))
	cl.SchedulePropose(4, 1, consensus.IntValue(3))
	tr := cl.Run(func(c *sim.Cluster) bool { return c.AllDecided() })

	if err := tr.CheckObjectSpec(); err != nil {
		t.Fatalf("object spec: %v", err)
	}
	if _, ok := tr.DecisionOf(2); !ok {
		t.Fatal("proposer p2 never decided")
	}
	if _, ok := tr.DecisionOf(4); !ok {
		t.Fatal("proposer p4 never decided")
	}
}

// delayProposals delays every message sent before 2Δ until `until`
// (messages sent at or after 2Δ flow synchronously). Since the only
// pre-2Δ messages in the scenario are the initial Propose broadcasts, this
// models a network that loses the fast window entirely.
type delayProposals struct {
	delta consensus.Duration
	until consensus.Time
}

func (d delayProposals) Delay(sentAt consensus.Time, from, to consensus.ProcessID) consensus.Duration {
	if sentAt < 2*consensus.Time(d.delta) {
		return consensus.Duration(d.until - sentAt)
	}
	return sim.Synchronous{Delta: d.delta}.Delay(sentAt, from, to)
}

// TestObjectTerminatesWhenOnlyProposerCrashes is the regression test for
// recovery rule 5: the lone proposer's Propose reaches one voter and the
// proposer crashes. The vote is the only trace of the value; the leader
// must surface it and the instance must close so that the voter's later
// propose call (unregistered because it voted) still returns.
func TestObjectTerminatesWhenOnlyProposerCrashes(t *testing.T) {
	const n, f, e = 5, 2, 2
	delta := consensus.Duration(10)

	cl, err := sim.New(sim.Options{
		N:       n,
		Delta:   delta,
		Policy:  sim.Synchronous{Delta: delta},
		Horizon: consensus.Time(300 * delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := cl.Oracle()
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		cl.SetNode(p, ObjectFactory(scenarioConfig(p, n, f, e, delta), oracle))
	}
	// p4 proposes at t=0; its Propose arrives everywhere at Δ, so
	// everyone votes v(9) — then p4 crashes before collecting votes
	// (at Δ, before its 2Bs arrive at 2Δ). p1 proposes after voting: its
	// invocation is not registered, yet it must still get a decision.
	cl.SchedulePropose(4, 0, consensus.IntValue(9))
	cl.ScheduleCrash(4, consensus.Time(delta)+1)
	cl.SchedulePropose(1, consensus.Time(delta)+2, consensus.IntValue(2))

	tr := cl.Run(func(c *sim.Cluster) bool { return c.AllDecided() })

	d, ok := tr.DecisionOf(1)
	if !ok {
		t.Fatal("voter p1 never decided")
	}
	if d.Value != consensus.IntValue(9) {
		t.Fatalf("decision %v, want the crashed proposer's v(9)", d.Value)
	}
	if err := tr.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

func scenarioConfig(p consensus.ProcessID, n, f, e int, delta consensus.Duration) consensus.Config {
	return consensus.Config{ID: p, N: n, F: f, E: e, Delta: delta}
}
