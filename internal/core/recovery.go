package core

import (
	"sort"

	"repro/internal/consensus"
)

// recover computes the value a new leader must propose in its slow ballot,
// from the n−f collected 1B reports (Figure 1, lines 25–36). The rules, in
// order:
//
//  1. If some process reports a decided value, propose it.
//  2. Otherwise, if a vote was cast in a slow ballot, propose the value of
//     the highest such ballot (classic Paxos rule).
//  3. Otherwise all votes are fast-ballot votes. Restrict attention to the
//     set R of reports whose vote's proposer is NOT in the 1B quorum Q:
//     proposers inside Q demonstrably never decided on the fast path and
//     never will (they joined this ballot before collecting a fast quorum).
//     a. If a value has strictly more than n−f−e votes in R, propose it
//     (unique at legal process counts — Lemma 3 / Lemma 7).
//     b. Else if one or more values have exactly n−f−e votes in R, propose
//     the greatest (the value ordering of the fast path guarantees any
//     fast-decided value is the greatest candidate).
//  4. Otherwise propose this leader's own proposal, if it made one.
//  5. Completion (documented in the package comment): propose the greatest
//     visible vote, if any. Unreachable when a fast decision exists; needed
//     for object-mode wait-freedom when every registered proposer crashed.
//  6. Completion: propose the greatest value seen in any Propose message.
//     Needed for object-mode wait-freedom when proposals were delayed past
//     the fast ballot so that no vote was ever cast; proposers re-submit to
//     the leader on every timer expiry, so after GST the leader knows them.
//
// Rules 5 and 6 are safe for the same reason rule 4 is: they only run when
// rules 1–3 found no possible decision at any ballot, and any value they
// yield was genuinely proposed (Validity).
//
// It returns ⊥ (None) when no value can be formed, in which case the leader
// stays silent and retries at the next timer expiry.
func (n *Node) recover(reports map[consensus.ProcessID]OneB) consensus.Value {
	members := make([]consensus.ProcessID, 0, len(reports))
	for q := range reports {
		members = append(members, q)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	// Rule 1: a decided value wins outright.
	for _, q := range members {
		if d := reports[q].Decided; !d.IsNone() {
			return d
		}
	}

	// Rule 2: highest slow-ballot vote.
	var bmax consensus.Ballot
	for _, q := range members {
		if vb := reports[q].VBal; vb > bmax {
			bmax = vb
		}
	}
	if bmax > 0 {
		best := consensus.None
		for _, q := range members {
			if reports[q].VBal == bmax {
				best = consensus.MaxValue(best, reports[q].Val)
			}
		}
		return best
	}

	// Rule 3: fast-ballot recovery over R.
	inQ := make(map[consensus.ProcessID]struct{}, len(members))
	for _, q := range members {
		inQ[q] = struct{}{}
	}
	counts := make(map[consensus.Value]int)
	for _, q := range members {
		r := reports[q]
		if r.Val.IsNone() {
			continue
		}
		if n.opts.ExcludeProposers {
			if _, proposerJoined := inQ[r.Proposer]; proposerJoined {
				continue // q ∉ R
			}
		}
		counts[r.Val]++
	}
	// n−f−e classically; under flexible quorum sizes (consensus.Config
	// FastSize/RecoverySize) the same overlap argument gives
	// RecoveryQuorum+FastQuorum−n, which FastOverlap computes for both.
	threshold := n.cfg.FastOverlap()
	if v := maxValueWithCountAbove(counts, threshold); !v.IsNone() {
		return v // rule 3a: > n−f−e votes
	}
	if n.opts.EqualityBranch && threshold > 0 {
		if v := maxValueWithCountExactly(counts, threshold); !v.IsNone() {
			return v // rule 3b: exactly n−f−e votes, maximal value
		}
	}

	// Rule 4: the leader's own proposal.
	if !n.initialVal.IsNone() {
		return n.initialVal
	}

	// Rule 5: termination completion — greatest visible vote.
	best := consensus.None
	for _, q := range members {
		if v := reports[q].Val; !v.IsNone() {
			best = consensus.MaxValue(best, v)
		}
	}
	if !best.IsNone() {
		return best
	}

	// Rule 6: termination completion — greatest proposal merely seen in a
	// Propose message (possibly re-submitted to us as leader by an
	// undecided proposer). Like rule 5 this is unreachable whenever any
	// decision exists, because rules 1–3 catch those.
	return n.pendingMax
}

// ComputeRecovery exposes the leader's value-selection rule for analysis
// and ablation studies: given a hypothetical set of 1B reports it returns
// the value this node would propose. It does not change the node's state.
func (n *Node) ComputeRecovery(reports map[consensus.ProcessID]OneB) consensus.Value {
	return n.recover(reports)
}

// maxValueWithCountAbove returns the greatest value whose count strictly
// exceeds threshold, or ⊥ if none. At legal process counts at most one value
// can exceed the threshold; taking the maximum keeps the rule deterministic
// even in deliberately infeasible lower-bound experiments.
func maxValueWithCountAbove(counts map[consensus.Value]int, threshold int) consensus.Value {
	best := consensus.None
	for v, c := range counts {
		if c > threshold {
			best = consensus.MaxValue(best, v)
		}
	}
	return best
}

// maxValueWithCountExactly returns the greatest value whose count equals
// threshold, or ⊥ if none.
func maxValueWithCountExactly(counts map[consensus.Value]int, threshold int) consensus.Value {
	best := consensus.None
	for v, c := range counts {
		if c == threshold {
			best = consensus.MaxValue(best, v)
		}
	}
	return best
}
