package core_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
)

// FuzzDeliverRobustness drives a node with an arbitrary byte-derived
// message sequence: whatever a (buggy or malicious) peer sends, the node
// must not panic, and its decision — once made — must never change.
func FuzzDeliverRobustness(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, int64(5))
	f.Add([]byte{9, 9, 9, 1, 1, 1, 200, 31, 7}, int64(-3))
	f.Add([]byte{}, int64(0))
	f.Fuzz(func(t *testing.T, script []byte, valSeed int64) {
		for _, mode := range []core.Mode{core.ModeTask, core.ModeObject} {
			cfg := consensus.Config{ID: 0, N: 4, F: 1, E: 1, Delta: 10}
			n := core.NewUnchecked(cfg, mode, core.DefaultOptions(), consensus.FixedLeader(0))
			n.Start()
			n.Propose(consensus.IntValue(valSeed))

			decided := consensus.None
			step := func() {
				if v, ok := n.Decision(); ok {
					if !decided.IsNone() && v != decided {
						t.Fatalf("decision changed from %v to %v", decided, v)
					}
					decided = v
				}
			}
			for i := 0; i+1 < len(script); i += 2 {
				op, arg := script[i], script[i+1]
				from := consensus.ProcessID(int(arg) % cfg.N)
				val := consensus.IntValue(int64(arg%7) - 3)
				bal := consensus.Ballot(int(op)%5 - 1)
				switch op % 8 {
				case 0:
					n.Deliver(from, &core.ProposeMsg{Value: val})
				case 1:
					n.Deliver(from, &core.TwoB{Ballot: bal, Value: val})
				case 2:
					n.Deliver(from, &core.OneA{Ballot: bal})
				case 3:
					n.Deliver(from, &core.OneB{Ballot: bal, VBal: bal, Val: val, Proposer: from, Decided: consensus.None})
				case 4:
					n.Deliver(from, &core.TwoA{Ballot: bal, Value: val})
				case 5:
					n.Deliver(from, &core.DecideMsg{Value: val})
				case 6:
					n.Tick(core.TimerNewBallot)
				case 7:
					n.Deliver(from, &core.OneB{Ballot: bal, VBal: 0, Val: consensus.None, Proposer: consensus.NoProcess, Decided: val})
				}
				step()
			}
		}
	})
}
