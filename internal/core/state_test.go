package core

import (
	"testing"

	"repro/internal/consensus"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	n.Propose(consensus.IntValue(5))
	n.Deliver(1, &ProposeMsg{Value: consensus.IntValue(7)}) // vote
	n.Deliver(2, &OneA{Ballot: 6})                          // join slow ballot

	data, err := n.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	fresh := newTestNode(t, 0, ModeTask)
	if err := fresh.RestoreJSON(data); err != nil {
		t.Fatal(err)
	}
	if fresh.Snapshot() != n.Snapshot() {
		t.Fatalf("state mismatch:\n%+v\n%+v", fresh.Snapshot(), n.Snapshot())
	}

	// The restored node honours its vote and ballot like the original.
	if effs := fresh.Deliver(3, &ProposeMsg{Value: consensus.IntValue(9)}); len(effs) != 0 {
		t.Fatalf("restored node voted again on the fast ballot: %v", effs)
	}
	if effs := fresh.Deliver(3, &OneA{Ballot: 4}); len(effs) != 0 {
		t.Fatalf("restored node accepted a stale ballot: %v", effs)
	}
	effs := fresh.Deliver(3, &OneA{Ballot: 10})
	ok := false
	for _, e := range effs {
		if s, isSend := e.(consensus.Send); isSend {
			if ob, is1b := s.Msg.(*OneB); is1b {
				ok = true
				if ob.Val != consensus.IntValue(7) || ob.Proposer != 1 {
					t.Fatalf("restored 1B carries wrong vote: %v", ob)
				}
			}
		}
	}
	if !ok {
		t.Fatalf("restored node did not answer a higher ballot: %v", effs)
	}
}

func TestRestoreDecidedNodeAnswersStragglers(t *testing.T) {
	n := newTestNode(t, 0, ModeObject)
	n.Deliver(1, &DecideMsg{Value: consensus.IntValue(4)})
	snap := n.Snapshot()

	fresh := newTestNode(t, 0, ModeObject)
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := fresh.Decision(); !ok || v != consensus.IntValue(4) {
		t.Fatalf("Decision after restore = %v %v", v, ok)
	}
	effs := fresh.Deliver(2, &ProposeMsg{Value: consensus.IntValue(9)})
	if !effectsContain(effs, isSendKind(KindDecide)) {
		t.Fatalf("restored decided node silent to straggler: %v", effs)
	}
}

func TestRestoreModeMismatch(t *testing.T) {
	task := newTestNode(t, 0, ModeTask)
	snap := task.Snapshot()
	object := newTestNode(t, 0, ModeObject)
	if err := object.Restore(snap); err == nil {
		t.Fatal("mode mismatch accepted")
	}
}

func TestRestoreBadJSON(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	if err := n.RestoreJSON([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
