package core

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/quorum"
)

// TimerNewBallot is the new-ballot timer of Appendix C.1: armed to 2Δ at
// startup (just long enough for the fast path) and re-armed to 5Δ on every
// expiry (long enough for a full slow ballot after GST).
const TimerNewBallot consensus.TimerID = "core.new_ballot"

// Node is one process running the Figure-1 protocol. It implements
// consensus.Protocol and is a pure deterministic state machine; see the
// package documentation for the protocol description.
type Node struct {
	cfg   consensus.Config
	mode  Mode
	opts  Options
	omega consensus.LeaderOracle

	// Acceptor state, named after the paper's variables.
	initialVal consensus.Value     // 𝗂𝗇𝗂𝗍𝗂𝖺𝗅_𝗏𝖺𝗅: own proposal, ⊥ until proposed
	val        consensus.Value     // 𝗏𝖺𝗅: current vote, ⊥ until cast
	proposer   consensus.ProcessID // 𝗉𝗋𝗈𝗉𝗈𝗌𝖾𝗋: proposer of the fast-ballot vote
	bal        consensus.Ballot    // 𝖻𝖺𝗅: current ballot
	vbal       consensus.Ballot    // 𝗏𝖻𝖺𝗅: ballot of the last vote cast
	decided    consensus.Value     // 𝖽𝖾𝖼𝗂𝖽𝖾𝖽: decided value, ⊥ until decided

	// fastVotes are the processes from which we received 2B(0, initialVal)
	// in response to our own Propose (the set P of the 2B handler; we
	// count ourselves implicitly via |P ∪ {p_i}|).
	fastVotes map[consensus.ProcessID]struct{}

	// pendingMax is the greatest proposal observed in any Propose
	// message, whether or not this process could vote for it. It feeds
	// the final recovery rule (termination completion, see recovery.go):
	// a leader that has nothing else to propose proposes a value it has
	// merely seen, which is what lets the object variant terminate when
	// the network delayed every Propose past the fast ballot.
	pendingMax consensus.Value

	// fastDecided records that this node's own decision came from a full
	// fast quorum of ballot-0 votes for its own proposal (the two-step
	// path), rather than a slow ballot or a DecideMsg. Reporting only —
	// never read by the protocol itself.
	fastDecided bool

	// rebroadcasts counts the remaining post-decision Decide
	// re-announcements; after they are spent the node goes quiescent and
	// answers stragglers reactively (see Deliver).
	rebroadcasts int

	lead leaderState
}

// leaderState tracks a slow ballot this node is leading.
type leaderState struct {
	ballot   consensus.Ballot // ballot being led; 0 when not leading
	oneBs    map[consensus.ProcessID]OneB
	sentTwoA bool
	val      consensus.Value // value proposed in 2A for this ballot
	twoBs    map[consensus.ProcessID]struct{}
}

var _ consensus.Protocol = (*Node)(nil)

// New builds a Node and verifies that cfg.N meets the tight bound for the
// requested mode (Theorem 5 for ModeTask, Theorem 6 for ModeObject). Use
// NewUnchecked to deliberately build below-bound nodes for lower-bound
// experiments.
func New(cfg consensus.Config, mode Mode, omega consensus.LeaderOracle) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	qm := quorum.Task
	if mode == ModeObject {
		qm = quorum.Object
	}
	if err := quorum.Check(qm, cfg.N, cfg.F, cfg.E); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return NewUnchecked(cfg, mode, DefaultOptions(), omega), nil
}

// NewUnchecked builds a Node without enforcing the process-count bound and
// with explicit Options. It is intended for the lower-bound and ablation
// experiments; production code should call New.
func NewUnchecked(cfg consensus.Config, mode Mode, opts Options, omega consensus.LeaderOracle) *Node {
	return &Node{
		cfg:        cfg,
		mode:       mode,
		opts:       opts,
		omega:      omega,
		initialVal: consensus.None,
		val:        consensus.None,
		proposer:   consensus.NoProcess,
		decided:    consensus.None,
		fastVotes:  make(map[consensus.ProcessID]struct{}),
		pendingMax: consensus.None,
	}
}

// ID implements consensus.Protocol.
func (n *Node) ID() consensus.ProcessID { return n.cfg.ID }

// Config returns the node's configuration.
func (n *Node) Config() consensus.Config { return n.cfg }

// Mode returns the node's consensus formulation.
func (n *Node) Mode() Mode { return n.mode }

// Decision implements consensus.Protocol.
func (n *Node) Decision() (consensus.Value, bool) {
	if n.decided.IsNone() {
		return consensus.None, false
	}
	return n.decided, true
}

// DecidedFast reports whether this node's decision was reached on the
// two-step fast path (a full fast quorum of ballot-0 votes for its own
// proposal). The WAN bench uses it to compute slow-path rates.
func (n *Node) DecidedFast() (fast, decided bool) {
	return n.fastDecided, !n.decided.IsNone()
}

// Start implements consensus.Protocol: it arms the initial 2Δ new-ballot
// timer. For a consensus task the harness must call Propose with the
// process's input immediately after Start.
func (n *Node) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.StartTimer{Timer: TimerNewBallot, After: 2 * n.cfg.Delta},
	}
}

// Propose implements consensus.Protocol: Figure 1, startup/propose(v)
// handler. The proposal is registered and broadcast only if this process
// has not yet voted for someone else's proposal (guard val = ⊥), and at
// most once.
func (n *Node) Propose(v consensus.Value) []consensus.Effect {
	if v.IsNone() {
		return nil
	}
	if !n.val.IsNone() || !n.initialVal.IsNone() {
		// Already voted for another proposal, or already proposed: the
		// invocation is not registered (object mode); the caller's
		// decision arrives with the instance's decision.
		return nil
	}
	n.initialVal = v
	return []consensus.Effect{
		consensus.Broadcast{Msg: &ProposeMsg{Value: v}, Self: false},
	}
}

// Deliver implements consensus.Protocol. Once decided, the node answers any
// further protocol traffic with the decision itself — the reactive
// anti-entropy that lets stragglers catch up after the node has gone
// quiescent (stopped rebroadcasting on its timer).
func (n *Node) Deliver(from consensus.ProcessID, m consensus.Message) []consensus.Effect {
	if !n.decided.IsNone() {
		if _, isDecide := m.(*DecideMsg); !isDecide {
			return []consensus.Effect{
				consensus.Send{To: from, Msg: &DecideMsg{Value: n.decided}},
			}
		}
		return nil
	}
	switch msg := m.(type) {
	case *ProposeMsg:
		return n.onPropose(from, msg)
	case *TwoB:
		return n.onTwoB(from, msg)
	case *DecideMsg:
		return n.onDecide(msg.Value)
	case *OneA:
		return n.onOneA(from, msg)
	case *OneB:
		return n.onOneB(from, msg)
	case *TwoA:
		return n.onTwoA(from, msg)
	default:
		return nil
	}
}

// onPropose handles the fast-ballot Propose message (Figure 1, line 7).
func (n *Node) onPropose(from consensus.ProcessID, m *ProposeMsg) []consensus.Effect {
	n.pendingMax = consensus.MaxValue(n.pendingMax, m.Value)
	if !n.bal.Fast() || !n.val.IsNone() {
		return nil
	}
	if n.opts.ValueOrdering && m.Value.Less(n.initialVal) {
		return nil // requires v ≥ initial_val
	}
	if n.mode == ModeObject {
		// Red line: accept only if we have not proposed, or proposed
		// this same value.
		if !n.initialVal.IsNone() && m.Value != n.initialVal {
			return nil
		}
	}
	n.val = m.Value
	n.proposer = from
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &TwoB{Ballot: 0, Value: m.Value}},
	}
}

// onTwoB handles votes (Figure 1, line 11). Fast-ballot votes are responses
// to our own Propose; slow-ballot votes are responses to a 2A we sent as
// ballot leader.
func (n *Node) onTwoB(from consensus.ProcessID, m *TwoB) []consensus.Effect {
	if !n.decided.IsNone() {
		return nil
	}
	if m.Ballot.Fast() {
		// First disjunct: bal = 0 ∧ |P ∪ {p_i}| ≥ n−e ∧ val ∈ {⊥, v}.
		if !n.bal.Fast() || m.Value != n.initialVal {
			return nil
		}
		if !n.val.IsNone() && n.val != m.Value {
			return nil
		}
		if from != n.cfg.ID {
			n.fastVotes[from] = struct{}{}
		}
		if len(n.fastVotes)+1 < n.cfg.FastQuorum() {
			return nil
		}
		n.fastDecided = true
		return n.decide(m.Value)
	}
	// Second disjunct: bal ≠ 0 ∧ |P| ≥ n−f, as leader of m.Ballot.
	if n.lead.ballot != m.Ballot || !n.lead.sentTwoA || m.Value != n.lead.val {
		return nil
	}
	n.lead.twoBs[from] = struct{}{}
	if len(n.lead.twoBs) < n.cfg.ClassicQuorum() {
		return nil
	}
	return n.decide(m.Value)
}

// decide records the decision and informs the other processes. A few more
// re-announcements follow on the timer (for lossy transports), after which
// the node goes quiescent.
func (n *Node) decide(v consensus.Value) []consensus.Effect {
	n.val = v
	n.decided = v
	n.rebroadcasts = decidedRebroadcasts
	return []consensus.Effect{
		consensus.Decide{Value: v},
		consensus.Broadcast{Msg: &DecideMsg{Value: v}, Self: false},
	}
}

// decidedRebroadcasts is how many timer-driven Decide re-announcements a
// node makes after deciding before going quiescent.
const decidedRebroadcasts = 3

// onDecide handles the Decide message (Figure 1, line 16).
func (n *Node) onDecide(v consensus.Value) []consensus.Effect {
	if !n.decided.IsNone() {
		return nil
	}
	n.val = v
	n.decided = v
	n.rebroadcasts = decidedRebroadcasts
	return []consensus.Effect{consensus.Decide{Value: v}}
}

// onOneA handles a leader's request to join a slow ballot (Figure 1, line 19).
func (n *Node) onOneA(from consensus.ProcessID, m *OneA) []consensus.Effect {
	if m.Ballot <= n.bal {
		return nil
	}
	n.bal = m.Ballot
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &OneB{
			Ballot:   m.Ballot,
			VBal:     n.vbal,
			Val:      n.val,
			Proposer: n.proposer,
			Decided:  n.decided,
		}},
	}
}

// onOneB collects state reports for a ballot we lead (Figure 1, line 24).
// When a recovery quorum of reports is in (n−f classically; RecoverySize
// under flexible quorums), the recovery rule computes a proposal.
func (n *Node) onOneB(from consensus.ProcessID, m *OneB) []consensus.Effect {
	// Ballot 0 is the fast ballot and is never led; rejecting it here
	// also protects the zero-value leader state from stray reports.
	if m.Ballot.Fast() || n.lead.ballot != m.Ballot || n.lead.sentTwoA {
		return nil
	}
	if _, dup := n.lead.oneBs[from]; dup {
		return nil
	}
	n.lead.oneBs[from] = *m
	if len(n.lead.oneBs) < n.cfg.RecoveryQuorum() {
		return nil
	}
	v := n.recover(n.lead.oneBs)
	if v.IsNone() {
		// Nothing to propose yet (object mode, no visible proposal).
		// Stay quiet; the next timer expiry retries with a new ballot.
		return nil
	}
	n.lead.sentTwoA = true
	n.lead.val = v
	return []consensus.Effect{
		consensus.Broadcast{Msg: &TwoA{Ballot: m.Ballot, Value: v}, Self: true},
	}
}

// onTwoA handles the leader's slow-ballot proposal (Figure 1, line 38).
func (n *Node) onTwoA(from consensus.ProcessID, m *TwoA) []consensus.Effect {
	if n.bal > m.Ballot {
		return nil
	}
	n.bal = m.Ballot
	n.vbal = m.Ballot
	n.val = m.Value
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &TwoB{Ballot: m.Ballot, Value: m.Value}},
	}
}

// Tick implements consensus.Protocol: the new-ballot timer of Appendix C.1.
// The timer is re-armed to 5Δ; if the Ω oracle nominates this process it
// starts the next slow ballot it owns (b ≡ i mod n). After deciding, the
// timer instead re-broadcasts the decision, which is harmless in the
// simulator's reliable-link model and speeds convergence on lossy real
// transports.
func (n *Node) Tick(t consensus.TimerID) []consensus.Effect {
	if t != TimerNewBallot {
		return nil
	}
	if !n.decided.IsNone() {
		// A few re-announcements for lossy transports, then quiescence:
		// stragglers are answered reactively in Deliver.
		if n.rebroadcasts <= 0 {
			return []consensus.Effect{consensus.StopTimer{Timer: TimerNewBallot}}
		}
		n.rebroadcasts--
		return []consensus.Effect{
			consensus.StartTimer{Timer: TimerNewBallot, After: 5 * n.cfg.Delta},
			consensus.Broadcast{Msg: &DecideMsg{Value: n.decided}, Self: false},
		}
	}
	effects := []consensus.Effect{
		consensus.StartTimer{Timer: TimerNewBallot, After: 5 * n.cfg.Delta},
	}
	if n.omega == nil || n.omega.Leader() != n.cfg.ID {
		// Proxy completion: an undecided proposer re-submits its
		// proposal to the current leader, so that a leader that has
		// nothing to propose itself eventually learns of it.
		if lead := n.leaderOrNone(); lead != consensus.NoProcess && !n.initialVal.IsNone() {
			return append(effects, consensus.Send{To: lead, Msg: &ProposeMsg{Value: n.initialVal}})
		}
		return effects
	}
	b := nextOwnedBallot(n.bal, n.cfg.ID, n.cfg.N)
	n.lead = leaderState{
		ballot: b,
		oneBs:  make(map[consensus.ProcessID]OneB),
		twoBs:  make(map[consensus.ProcessID]struct{}),
	}
	return append(effects, consensus.Broadcast{Msg: &OneA{Ballot: b}, Self: true})
}

// leaderOrNone returns the oracle's current leader, or NoProcess when no
// oracle is installed or the oracle has no candidate.
func (n *Node) leaderOrNone() consensus.ProcessID {
	if n.omega == nil {
		return consensus.NoProcess
	}
	return n.omega.Leader()
}

// nextOwnedBallot returns the smallest ballot greater than bal owned by
// process id under the ownership rule b ≡ id (mod n).
func nextOwnedBallot(bal consensus.Ballot, id consensus.ProcessID, n int) consensus.Ballot {
	b := bal + 1
	if r := (int64(b) % int64(n)); r != int64(id) {
		diff := (int64(id) - r + int64(n)) % int64(n)
		b += consensus.Ballot(diff)
	}
	return b
}
