package core

import (
	"testing"

	"repro/internal/consensus"
)

func newTestNode(t *testing.T, id consensus.ProcessID, mode Mode) *Node {
	t.Helper()
	cfg := consensus.Config{ID: id, N: 5, F: 2, E: 1, Delta: 10}
	return NewUnchecked(cfg, mode, DefaultOptions(), consensus.FixedLeader(0))
}

// effectsContain reports whether any effect matches the predicate.
func effectsContain(effs []consensus.Effect, pred func(consensus.Effect) bool) bool {
	for _, e := range effs {
		if pred(e) {
			return true
		}
	}
	return false
}

func isSendKind(kind string) func(consensus.Effect) bool {
	return func(e consensus.Effect) bool {
		s, ok := e.(consensus.Send)
		return ok && s.Msg.Kind() == kind
	}
}

func isDecide(e consensus.Effect) bool {
	_, ok := e.(consensus.Decide)
	return ok
}

func TestProposeOnlyOnce(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	if effs := n.Propose(consensus.IntValue(5)); len(effs) == 0 {
		t.Fatal("first Propose produced nothing")
	}
	if effs := n.Propose(consensus.IntValue(9)); len(effs) != 0 {
		t.Fatalf("second Propose produced %v", effs)
	}
	if n.initialVal != consensus.IntValue(5) {
		t.Fatalf("initialVal overwritten: %v", n.initialVal)
	}
}

func TestProposeNoneIgnored(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	if effs := n.Propose(consensus.None); effs != nil {
		t.Fatalf("Propose(⊥) produced %v", effs)
	}
}

func TestProposeAfterVoteNotRegistered(t *testing.T) {
	n := newTestNode(t, 0, ModeObject)
	n.Deliver(1, &ProposeMsg{Value: consensus.IntValue(7)}) // vote for p1's value
	if effs := n.Propose(consensus.IntValue(9)); len(effs) != 0 {
		t.Fatalf("Propose after voting produced %v", effs)
	}
	if !n.initialVal.IsNone() {
		t.Fatal("initialVal set despite prior vote")
	}
}

func TestVoteOrderingTask(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	n.Propose(consensus.IntValue(5))
	if effs := n.Deliver(1, &ProposeMsg{Value: consensus.IntValue(3)}); len(effs) != 0 {
		t.Fatalf("voted for a lower value: %v", effs)
	}
	effs := n.Deliver(2, &ProposeMsg{Value: consensus.IntValue(8)})
	if !effectsContain(effs, isSendKind(KindTwoB)) {
		t.Fatalf("did not vote for a greater value: %v", effs)
	}
	if n.proposer != 2 || n.val != consensus.IntValue(8) {
		t.Fatalf("vote state: val=%v proposer=%v", n.val, n.proposer)
	}
	// Second vote refused.
	if effs := n.Deliver(3, &ProposeMsg{Value: consensus.IntValue(9)}); len(effs) != 0 {
		t.Fatalf("voted twice: %v", effs)
	}
}

func TestVoteObjectRejectsDifferentValueAfterOwnProposal(t *testing.T) {
	n := newTestNode(t, 0, ModeObject)
	n.Propose(consensus.IntValue(5))
	if effs := n.Deliver(1, &ProposeMsg{Value: consensus.IntValue(9)}); len(effs) != 0 {
		t.Fatalf("object node voted for a different value than its own proposal: %v", effs)
	}
	effs := n.Deliver(1, &ProposeMsg{Value: consensus.IntValue(5)})
	if !effectsContain(effs, isSendKind(KindTwoB)) {
		t.Fatalf("object node refused its own value from a peer: %v", effs)
	}
}

func TestVoteRefusedAfterFastBallot(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	n.Deliver(1, &OneA{Ballot: 6}) // joins slow ballot
	if effs := n.Deliver(2, &ProposeMsg{Value: consensus.IntValue(9)}); len(effs) != 0 {
		t.Fatalf("fast vote cast at slow ballot: %v", effs)
	}
}

func TestFastQuorumCountsDistinctVoters(t *testing.T) {
	n := newTestNode(t, 0, ModeTask) // n=5, e=1 → fast quorum 4 (3 others + self)
	n.Propose(consensus.IntValue(5))
	vote := &TwoB{Ballot: 0, Value: consensus.IntValue(5)}
	if effs := n.Deliver(1, vote); effectsContain(effs, isDecide) {
		t.Fatal("decided after 1 vote")
	}
	// Duplicate from the same voter must not advance the count.
	if effs := n.Deliver(1, vote); effectsContain(effs, isDecide) {
		t.Fatal("decided on duplicate vote")
	}
	n.Deliver(2, vote)
	effs := n.Deliver(3, vote)
	if !effectsContain(effs, isDecide) {
		t.Fatalf("no decision at fast quorum: %v", effs)
	}
	if v, ok := n.Decision(); !ok || v != consensus.IntValue(5) {
		t.Fatalf("Decision() = %v, %v", v, ok)
	}
	// Further protocol traffic after deciding is answered with the
	// decision itself (reactive anti-entropy), never with more votes.
	effs = n.Deliver(4, vote)
	if !effectsContain(effs, func(e consensus.Effect) bool {
		s, ok := e.(consensus.Send)
		if !ok {
			return false
		}
		d, ok := s.Msg.(*DecideMsg)
		return ok && s.To == 4 && d.Value == consensus.IntValue(5)
	}) {
		t.Fatalf("post-decision traffic not answered with the decision: %v", effs)
	}
}

func TestFastVoteForWrongValueIgnored(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	n.Propose(consensus.IntValue(5))
	for _, from := range []consensus.ProcessID{1, 2, 3, 4} {
		n.Deliver(from, &TwoB{Ballot: 0, Value: consensus.IntValue(6)})
	}
	if _, ok := n.Decision(); ok {
		t.Fatal("decided from votes for a foreign value")
	}
}

func TestOneAStaleBallotIgnored(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	if effs := n.Deliver(1, &OneA{Ballot: 6}); !effectsContain(effs, isSendKind(KindOneB)) {
		t.Fatalf("fresh 1A not answered: %v", effs)
	}
	if effs := n.Deliver(2, &OneA{Ballot: 6}); len(effs) != 0 {
		t.Fatalf("equal-ballot 1A answered: %v", effs)
	}
	if effs := n.Deliver(2, &OneA{Ballot: 3}); len(effs) != 0 {
		t.Fatalf("stale 1A answered: %v", effs)
	}
	if effs := n.Deliver(2, &OneA{Ballot: 9}); !effectsContain(effs, isSendKind(KindOneB)) {
		t.Fatalf("higher 1A not answered: %v", effs)
	}
}

func TestTwoAStaleBallotIgnored(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	n.Deliver(1, &OneA{Ballot: 6})
	if effs := n.Deliver(1, &TwoA{Ballot: 3, Value: consensus.IntValue(4)}); len(effs) != 0 {
		t.Fatalf("stale 2A accepted: %v", effs)
	}
	effs := n.Deliver(1, &TwoA{Ballot: 6, Value: consensus.IntValue(4)})
	if !effectsContain(effs, isSendKind(KindTwoB)) {
		t.Fatalf("current-ballot 2A refused: %v", effs)
	}
	if n.vbal != 6 || n.val != consensus.IntValue(4) {
		t.Fatalf("vote state after 2A: vbal=%v val=%v", n.vbal, n.val)
	}
}

func TestLeaderSlowBallotFlow(t *testing.T) {
	// p0 is the Ω leader; drive a full slow ballot by hand.
	n := newTestNode(t, 0, ModeTask)
	n.Propose(consensus.IntValue(5))
	effs := n.Tick(TimerNewBallot)
	if !effectsContain(effs, func(e consensus.Effect) bool {
		b, ok := e.(consensus.Broadcast)
		return ok && b.Msg.Kind() == KindOneA && b.Self
	}) {
		t.Fatalf("leader did not start a ballot: %v", effs)
	}
	b := n.lead.ballot
	if b%consensus.Ballot(n.cfg.N) != consensus.Ballot(n.cfg.ID) {
		t.Fatalf("ballot %d not owned by %s", b, n.cfg.ID)
	}
	// Collect 1Bs: a quorum of empty reports; leader proposes its own
	// value (rule 4).
	report := &OneB{Ballot: b, VBal: 0, Val: consensus.None, Proposer: consensus.NoProcess, Decided: consensus.None}
	n.Deliver(0, report)
	n.Deliver(1, report)
	effs = n.Deliver(2, report)
	found := false
	for _, e := range effs {
		if bc, ok := e.(consensus.Broadcast); ok {
			if ta, ok := bc.Msg.(*TwoA); ok {
				found = true
				if ta.Value != consensus.IntValue(5) {
					t.Fatalf("leader proposed %v, want own v(5)", ta.Value)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no 2A after 1B quorum: %v", effs)
	}
	// Extra 1Bs after 2A are ignored.
	if effs := n.Deliver(3, report); len(effs) != 0 {
		t.Fatalf("1B after 2A produced %v", effs)
	}
	// Collect 2Bs (classic quorum = 3): decide.
	vote := &TwoB{Ballot: b, Value: consensus.IntValue(5)}
	n.Deliver(0, vote)
	n.Deliver(1, vote)
	effs = n.Deliver(2, vote)
	if !effectsContain(effs, isDecide) {
		t.Fatalf("leader did not decide at classic quorum: %v", effs)
	}
}

func TestDecidedNodeGoesQuiescent(t *testing.T) {
	n := newTestNode(t, 1, ModeTask)
	n.Deliver(3, &DecideMsg{Value: consensus.IntValue(8)})
	// A bounded number of timer rebroadcasts…
	rebroadcasts := 0
	for i := 0; i < 10; i++ {
		effs := n.Tick(TimerNewBallot)
		stopped := false
		for _, e := range effs {
			switch e.(type) {
			case consensus.Broadcast:
				rebroadcasts++
			case consensus.StopTimer:
				stopped = true
			}
		}
		if stopped {
			break
		}
	}
	if rebroadcasts == 0 || rebroadcasts > 5 {
		t.Fatalf("rebroadcasts = %d, want a small positive number", rebroadcasts)
	}
	// …and after quiescence, stragglers are served reactively.
	effs := n.Deliver(2, &OneA{Ballot: 99})
	if !effectsContain(effs, isSendKind(KindDecide)) {
		t.Fatalf("quiescent node did not answer a straggler: %v", effs)
	}
}

func TestDecideMessageIdempotent(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	effs := n.Deliver(3, &DecideMsg{Value: consensus.IntValue(8)})
	if !effectsContain(effs, isDecide) {
		t.Fatalf("Decide not processed: %v", effs)
	}
	if effs := n.Deliver(4, &DecideMsg{Value: consensus.IntValue(8)}); len(effs) != 0 {
		t.Fatalf("duplicate Decide produced %v", effs)
	}
}

func TestTickAfterDecisionRebroadcasts(t *testing.T) {
	n := newTestNode(t, 1, ModeTask) // not the Ω leader
	n.Deliver(3, &DecideMsg{Value: consensus.IntValue(8)})
	effs := n.Tick(TimerNewBallot)
	if !effectsContain(effs, func(e consensus.Effect) bool {
		b, ok := e.(consensus.Broadcast)
		return ok && b.Msg.Kind() == KindDecide
	}) {
		t.Fatalf("decided node did not rebroadcast on tick: %v", effs)
	}
}

func TestNonLeaderTickResubmitsProposal(t *testing.T) {
	n := newTestNode(t, 1, ModeObject) // Ω leader is p0
	n.Propose(consensus.IntValue(5))
	effs := n.Tick(TimerNewBallot)
	if !effectsContain(effs, func(e consensus.Effect) bool {
		s, ok := e.(consensus.Send)
		return ok && s.To == 0 && s.Msg.Kind() == KindPropose
	}) {
		t.Fatalf("undecided proposer did not re-submit to the leader: %v", effs)
	}
}

func TestUnknownTimerIgnored(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	if effs := n.Tick("someone.elses.timer"); len(effs) != 0 {
		t.Fatalf("foreign timer produced %v", effs)
	}
}

func TestForeignMessageIgnored(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	if effs := n.Deliver(1, foreignMsg{}); len(effs) != 0 {
		t.Fatalf("foreign message produced %v", effs)
	}
}

type foreignMsg struct{}

func (foreignMsg) Kind() string { return "other.kind" }

func TestOneBForWrongBallotIgnored(t *testing.T) {
	n := newTestNode(t, 0, ModeTask)
	n.Tick(TimerNewBallot) // leads ballot 5 (n=5, id=0)
	wrong := &OneB{Ballot: n.lead.ballot + 1}
	if effs := n.Deliver(1, wrong); len(effs) != 0 {
		t.Fatalf("1B for foreign ballot processed: %v", effs)
	}
}
