package core

// Mode selects the consensus formulation implemented by a Node.
type Mode int

const (
	// ModeTask runs the black-lines-only protocol of Figure 1: consensus
	// as a decision task, sound for n ≥ max{2e+f, 2f+1}.
	ModeTask Mode = iota + 1
	// ModeObject additionally enables the paper's red lines: consensus as
	// an atomic object, sound for n ≥ max{2e+f−1, 2f+1}.
	ModeObject
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTask:
		return "task"
	case ModeObject:
		return "object"
	default:
		return "mode(?)"
	}
}

// Options exposes the protocol's load-bearing design choices so that the
// ablation benches can demonstrate each one is necessary (DESIGN.md §5).
// Production deployments must use DefaultOptions.
type Options struct {
	// ValueOrdering enables the fast-path acceptance rule v ≥ initial_val
	// (Figure 1, Propose precondition). Disabling it makes processes
	// accept whichever Propose arrives first, Fast-Paxos style, which
	// breaks item 2 of Definition 4 at n = 2e+f under conflicts.
	ValueOrdering bool
	// ExcludeProposers enables the recovery set R = {q ∈ Q : proposer_q ∉ Q}
	// (Figure 1, 1B handler). Disabling it counts all votes in Q, which
	// is exactly Fast Paxos's recovery and is unsafe below n = 2e+f+1.
	ExcludeProposers bool
	// EqualityBranch enables the |S| = n−f−e branch with the
	// maximal-value tie-break. Disabling it loses fast decisions whose
	// votes intersect the 1B quorum in exactly n−f−e processes.
	EqualityBranch bool
}

// DefaultOptions returns the paper's protocol exactly as specified.
func DefaultOptions() Options {
	return Options{
		ValueOrdering:    true,
		ExcludeProposers: true,
		EqualityBranch:   true,
	}
}
