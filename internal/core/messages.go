package core

import (
	"fmt"

	"repro/internal/consensus"
)

// Message kinds, registered with the wire codec via RegisterMessages.
const (
	KindPropose = "core.propose"
	KindOneA    = "core.1a"
	KindOneB    = "core.1b"
	KindTwoA    = "core.2a"
	KindTwoB    = "core.2b"
	KindDecide  = "core.decide"
)

// ProposeMsg is the fast-ballot proposal broadcast at startup or upon a
// propose(v) invocation (Figure 1, line 5).
type ProposeMsg struct {
	Value consensus.Value `json:"value"`
}

// OneA asks processes to join slow ballot Ballot (Figure 1, 1A).
type OneA struct {
	Ballot consensus.Ballot `json:"ballot"`
}

// OneB reports a process's state to the leader of slow ballot Ballot
// (Figure 1, 1B). Decided is ⊥ (None) unless the sender has decided.
type OneB struct {
	Ballot   consensus.Ballot    `json:"ballot"`
	VBal     consensus.Ballot    `json:"vbal"`
	Val      consensus.Value     `json:"val"`
	Proposer consensus.ProcessID `json:"proposer"`
	Decided  consensus.Value     `json:"decided"`
}

// TwoA carries the leader's proposal for slow ballot Ballot (Figure 1, 2A).
type TwoA struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// TwoB is a vote for Value at ballot Ballot, sent to the proposer (fast
// ballot) or the ballot leader (slow ballots) (Figure 1, 2B).
type TwoB struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// DecideMsg announces a decided value (Figure 1, Decide).
type DecideMsg struct {
	Value consensus.Value `json:"value"`
}

// Kind implements consensus.Message.
func (ProposeMsg) Kind() string { return KindPropose }

// Kind implements consensus.Message.
func (OneA) Kind() string { return KindOneA }

// Kind implements consensus.Message.
func (OneB) Kind() string { return KindOneB }

// Kind implements consensus.Message.
func (TwoA) Kind() string { return KindTwoA }

// Kind implements consensus.Message.
func (TwoB) Kind() string { return KindTwoB }

// Kind implements consensus.Message.
func (DecideMsg) Kind() string { return KindDecide }

// String implements fmt.Stringer.
func (m ProposeMsg) String() string { return fmt.Sprintf("Propose(%s)", m.Value) }

// String implements fmt.Stringer.
func (m OneA) String() string { return fmt.Sprintf("1A(%s)", m.Ballot) }

// String implements fmt.Stringer.
func (m OneB) String() string {
	return fmt.Sprintf("1B(%s,vbal=%s,val=%s,prop=%s,dec=%s)", m.Ballot, m.VBal, m.Val, m.Proposer, m.Decided)
}

// String implements fmt.Stringer.
func (m TwoA) String() string { return fmt.Sprintf("2A(%s,%s)", m.Ballot, m.Value) }

// String implements fmt.Stringer.
func (m TwoB) String() string { return fmt.Sprintf("2B(%s,%s)", m.Ballot, m.Value) }

// String implements fmt.Stringer.
func (m DecideMsg) String() string { return fmt.Sprintf("Decide(%s)", m.Value) }

// RegisterMessages registers all core message kinds with codec.
func RegisterMessages(codec *consensus.Codec) {
	codec.MustRegister(KindPropose, func() consensus.Message { return &ProposeMsg{} })
	codec.MustRegister(KindOneA, func() consensus.Message { return &OneA{} })
	codec.MustRegister(KindOneB, func() consensus.Message { return &OneB{} })
	codec.MustRegister(KindTwoA, func() consensus.Message { return &TwoA{} })
	codec.MustRegister(KindTwoB, func() consensus.Message { return &TwoB{} })
	codec.MustRegister(KindDecide, func() consensus.Message { return &DecideMsg{} })
}
