package epaxos_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/epaxos"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
	"repro/internal/sim"
)

// scenarioFor returns the canonical EPaxos setting for resilience f:
// n = 2f+1 processes, e = ⌈(f+1)/2⌉.
func scenarioFor(f int) runner.Scenario {
	return runner.Scenario{
		N:     2*f + 1,
		F:     f,
		E:     quorum.EPaxosFastThreshold(f),
		Delta: 10,
	}
}

func TestNewValidatesParameters(t *testing.T) {
	cfg := consensus.Config{ID: 0, N: 5, F: 2, E: 1, Delta: 10}
	if _, err := epaxos.New(cfg, 0, consensus.FixedLeader(0)); err == nil {
		t.Fatal("New accepted e ≠ ⌈(f+1)/2⌉")
	}
	cfg.E = quorum.EPaxosFastThreshold(2)
	if _, err := epaxos.New(cfg, 0, consensus.FixedLeader(0)); err != nil {
		t.Fatalf("New rejected canonical parameters: %v", err)
	}
}

func TestOwnerCommitsFastUnderECrashes(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		sc := scenarioFor(f)
		owner := consensus.ProcessID(0)
		// Crash the e highest-id processes; the owner must still
		// commit at 2Δ with the remaining n−e (= fast quorum).
		var faulty []consensus.ProcessID
		for i := 0; i < sc.E; i++ {
			faulty = append(faulty, consensus.ProcessID(sc.N-1-i))
		}
		tr, err := runner.EFaultySync(protocols.EPaxosFactory(owner), sc, runner.SyncRun{
			Faulty: faulty,
			Inputs: map[consensus.ProcessID]consensus.Value{owner: consensus.IntValue(7)},
			Prefer: owner,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.TwoStepFor(owner, sc.Delta) {
			t.Errorf("f=%d n=%d e=%d: owner not two-step: %v", f, sc.N, sc.E, tr.Decisions)
		}
	}
}

func TestOwnerCannotCommitFastBeyondE(t *testing.T) {
	f := 2
	sc := scenarioFor(f) // n=5, e=2, fast quorum 3
	owner := consensus.ProcessID(0)
	faulty := []consensus.ProcessID{2, 3, 4} // e+1 crashes
	tr, err := runner.EFaultySync(protocols.EPaxosFactory(owner), sc, runner.SyncRun{
		Faulty: faulty,
		Inputs: map[consensus.ProcessID]consensus.Value{owner: consensus.IntValue(7)},
		Prefer: owner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.TwoStepProcesses(sc.Delta); len(got) != 0 {
		t.Fatalf("no two-step decision expected with e+1 crashes, got %v", got)
	}
}

func TestRecoveryCommitsOwnersValueWhenVisible(t *testing.T) {
	// The owner proposes, reaches part of the cluster, and crashes. The
	// recovery must commit the owner's value if a fast commit was
	// possible, and in any case terminate with agreement.
	f := 2
	sc := scenarioFor(f)
	owner := consensus.ProcessID(0)
	tr, err := runner.EFaultySync(protocols.EPaxosFactory(owner), sc, runner.SyncRun{
		Faulty:  []consensus.ProcessID{},
		Inputs:  map[consensus.ProcessID]consensus.Value{owner: consensus.IntValue(7)},
		Prefer:  owner,
		Horizon: consensus.Time(300 * sc.Delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	d, ok := tr.DecisionOf(owner)
	if !ok || d.Value != consensus.IntValue(7) {
		t.Fatalf("owner decision = %v ok=%v, want v(7)", d, ok)
	}
}

func TestRecoveryCommitsNoopWhenOwnerSilent(t *testing.T) {
	// The owner crashes before proposing: recovery must close the
	// instance with Noop.
	f := 2
	sc := scenarioFor(f)
	owner := consensus.ProcessID(0)
	cl, err := sim.New(sim.Options{
		N:       sc.N,
		Delta:   sc.Delta,
		Policy:  sim.Synchronous{Delta: sc.Delta},
		Horizon: consensus.Time(300 * sc.Delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := cl.Oracle()
	fac := protocols.EPaxosFactory(owner)
	for i := 0; i < sc.N; i++ {
		p := consensus.ProcessID(i)
		cl.SetNode(p, fac(sc.Config(p), oracle))
	}
	cl.ScheduleCrash(owner, 0)
	tr := cl.Run(func(c *sim.Cluster) bool { return c.AllDecided() })
	if err := tr.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	d, ok := tr.DecisionOf(1)
	if !ok {
		t.Fatal("survivors did not close the instance")
	}
	if d.Value != epaxos.Noop {
		t.Fatalf("decision = %v, want Noop", d.Value)
	}
}
