// Package epaxos implements a single-shot variant of the Egalitarian Paxos
// fast path (Moraru et al., SOSP 2013) — the protocol whose existence
// motivated the paper: it decides in two message delays under
// e = ⌈(f+1)/2⌉ crashes while using only 2f+1 processes, seemingly below
// Lamport's fast-consensus bound.
//
// Faithful to EPaxos, every consensus instance is owned by one command
// leader: only the owner ever proposes a value into its instance, and other
// processes vote unconditionally (there are no competing values inside an
// instance; EPaxos conflicts concern command ordering, which a single-shot
// instance does not model). The fast path is:
//
//	owner:     broadcast PreAccept(v)
//	acceptor:  record v, reply PreAcceptOK
//	owner:     commit after n−e PreAcceptOKs counting itself,
//	           where n−e = f + ⌊(f+1)/2⌋ (the EPaxos fast quorum)
//
// If the owner crashes, an Ω-elected leader recovers the instance with a
// Paxos-style ballot: from n−f state reports, if a slow-ballot vote is
// visible it wins; else if at least n−f−e fast votes for v are visible the
// leader must propose v (a fast commit leaves at least that many in any
// n−f quorum); else no fast commit can have happened and the leader
// proposes Noop, closing the instance. Deciding Noop is the EPaxos analogue
// of committing a no-op during recovery and is exempt from Validity (the
// benches check Agreement and Termination for this protocol).
package epaxos

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/consensus"
	"repro/internal/quorum"
)

// Noop is the distinguished value a recovery commits when it can prove the
// instance's command was never fast-committed and cannot be recovered.
var Noop = consensus.Value{Key: math.MinInt64 + 1, Data: "noop"}

// Message kinds for the wire codec.
const (
	KindPreAccept   = "epaxos.preaccept"
	KindPreAcceptOK = "epaxos.preaccept_ok"
	KindPrepare     = "epaxos.prepare"
	KindPrepareOK   = "epaxos.prepare_ok"
	KindAccept      = "epaxos.accept"
	KindAcceptOK    = "epaxos.accept_ok"
	KindCommit      = "epaxos.commit"
)

// PreAccept is the owner's fast-path proposal.
type PreAccept struct {
	Value consensus.Value `json:"value"`
}

// PreAcceptOK acknowledges a PreAccept.
type PreAcceptOK struct {
	Value consensus.Value `json:"value"`
}

// Prepare asks processes to join a recovery ballot.
type Prepare struct {
	Ballot consensus.Ballot `json:"ballot"`
}

// PrepareOK reports instance state to a recovery leader.
type PrepareOK struct {
	Ballot    consensus.Ballot `json:"ballot"`
	VBal      consensus.Ballot `json:"vbal"`
	Val       consensus.Value  `json:"val"`
	FastVoted bool             `json:"fastVoted"`
	Committed consensus.Value  `json:"committed"`
}

// Accept is the slow-path (recovery) proposal at a ballot.
type Accept struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// AcceptOK is a slow-path vote.
type AcceptOK struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// Commit announces the instance's decision.
type Commit struct {
	Value consensus.Value `json:"value"`
}

// Kind implements consensus.Message.
func (PreAccept) Kind() string { return KindPreAccept }

// Kind implements consensus.Message.
func (PreAcceptOK) Kind() string { return KindPreAcceptOK }

// Kind implements consensus.Message.
func (Prepare) Kind() string { return KindPrepare }

// Kind implements consensus.Message.
func (PrepareOK) Kind() string { return KindPrepareOK }

// Kind implements consensus.Message.
func (Accept) Kind() string { return KindAccept }

// Kind implements consensus.Message.
func (AcceptOK) Kind() string { return KindAcceptOK }

// Kind implements consensus.Message.
func (Commit) Kind() string { return KindCommit }

// RegisterMessages registers all epaxos message kinds with codec.
func RegisterMessages(codec *consensus.Codec) {
	codec.MustRegister(KindPreAccept, func() consensus.Message { return &PreAccept{} })
	codec.MustRegister(KindPreAcceptOK, func() consensus.Message { return &PreAcceptOK{} })
	codec.MustRegister(KindPrepare, func() consensus.Message { return &Prepare{} })
	codec.MustRegister(KindPrepareOK, func() consensus.Message { return &PrepareOK{} })
	codec.MustRegister(KindAccept, func() consensus.Message { return &Accept{} })
	codec.MustRegister(KindAcceptOK, func() consensus.Message { return &AcceptOK{} })
	codec.MustRegister(KindCommit, func() consensus.Message { return &Commit{} })
}

// TimerRecover paces recovery: 2Δ at startup, then 5Δ.
const TimerRecover consensus.TimerID = "epaxos.recover"

// Node is one process's view of a single EPaxos-style instance.
type Node struct {
	cfg   consensus.Config
	owner consensus.ProcessID
	omega consensus.LeaderOracle

	proposal  consensus.Value // owner's command, ⊥ until proposed
	val       consensus.Value // recorded (pre-accepted or accepted) value
	fastVoted bool            // true if val was recorded from a PreAccept
	bal       consensus.Ballot
	vbal      consensus.Ballot
	decided   consensus.Value

	fastAcks    map[consensus.ProcessID]struct{}
	fastDecided bool
	lead        leaderState
}

type leaderState struct {
	ballot     consensus.Ballot
	prepareOKs map[consensus.ProcessID]PrepareOK
	sentAccept bool
	val        consensus.Value
	acceptOKs  map[consensus.ProcessID]struct{}
}

var _ consensus.Protocol = (*Node)(nil)

// New builds one process of an instance owned by owner. The EPaxos setting
// fixes e = ⌈(f+1)/2⌉; cfg.E must match and n must be at least 2f+1.
func New(cfg consensus.Config, owner consensus.ProcessID, omega consensus.LeaderOracle) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("epaxos: %w", err)
	}
	if cfg.N < quorum.PlainMinProcesses(cfg.F) {
		return nil, fmt.Errorf("epaxos: n=%d below 2f+1=%d: %w",
			cfg.N, quorum.PlainMinProcesses(cfg.F), quorum.ErrInfeasible)
	}
	if want := quorum.EPaxosFastThreshold(cfg.F); cfg.E != want {
		return nil, fmt.Errorf("epaxos: e=%d must be ⌈(f+1)/2⌉=%d", cfg.E, want)
	}
	return NewUnchecked(cfg, owner, omega), nil
}

// NewUnchecked builds a node without parameter checks.
func NewUnchecked(cfg consensus.Config, owner consensus.ProcessID, omega consensus.LeaderOracle) *Node {
	return &Node{
		cfg:      cfg,
		owner:    owner,
		omega:    omega,
		proposal: consensus.None,
		val:      consensus.None,
		decided:  consensus.None,
		fastAcks: make(map[consensus.ProcessID]struct{}),
	}
}

// ID implements consensus.Protocol.
func (n *Node) ID() consensus.ProcessID { return n.cfg.ID }

// Owner returns the instance's command leader.
func (n *Node) Owner() consensus.ProcessID { return n.owner }

// Decision implements consensus.Protocol.
func (n *Node) Decision() (consensus.Value, bool) {
	if n.decided.IsNone() {
		return consensus.None, false
	}
	return n.decided, true
}

// DecidedFast reports whether this node committed on the fast path (as
// owner, from a full fast quorum of PreAcceptOKs). The WAN bench uses it
// to compute slow-path rates.
func (n *Node) DecidedFast() (fast, decided bool) {
	return n.fastDecided, !n.decided.IsNone()
}

// Start implements consensus.Protocol.
func (n *Node) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.StartTimer{Timer: TimerRecover, After: 2 * n.cfg.Delta},
	}
}

// Propose implements consensus.Protocol. Only the owner may propose.
func (n *Node) Propose(v consensus.Value) []consensus.Effect {
	if v.IsNone() || n.cfg.ID != n.owner || !n.proposal.IsNone() {
		return nil
	}
	n.proposal = v
	n.val = v
	n.fastVoted = true
	return []consensus.Effect{
		consensus.Broadcast{Msg: &PreAccept{Value: v}, Self: false},
	}
}

// Deliver implements consensus.Protocol.
func (n *Node) Deliver(from consensus.ProcessID, m consensus.Message) []consensus.Effect {
	switch msg := m.(type) {
	case *PreAccept:
		return n.onPreAccept(from, msg)
	case *PreAcceptOK:
		return n.onPreAcceptOK(from, msg)
	case *Commit:
		return n.onCommit(msg.Value)
	case *Prepare:
		return n.onPrepare(from, msg)
	case *PrepareOK:
		return n.onPrepareOK(from, msg)
	case *Accept:
		return n.onAccept(from, msg)
	case *AcceptOK:
		return n.onAcceptOK(from, msg)
	default:
		return nil
	}
}

func (n *Node) onPreAccept(from consensus.ProcessID, m *PreAccept) []consensus.Effect {
	if from != n.owner || !n.bal.Fast() || !n.val.IsNone() {
		return nil
	}
	n.val = m.Value
	n.fastVoted = true
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &PreAcceptOK{Value: m.Value}},
	}
}

func (n *Node) onPreAcceptOK(from consensus.ProcessID, m *PreAcceptOK) []consensus.Effect {
	if n.cfg.ID != n.owner || !n.decided.IsNone() || !n.bal.Fast() || m.Value != n.proposal {
		return nil
	}
	if from != n.cfg.ID {
		n.fastAcks[from] = struct{}{}
	}
	if len(n.fastAcks)+1 < n.cfg.FastQuorum() {
		return nil
	}
	n.fastDecided = true
	return n.commit(m.Value)
}

func (n *Node) commit(v consensus.Value) []consensus.Effect {
	n.decided = v
	return []consensus.Effect{
		consensus.Decide{Value: v},
		consensus.Broadcast{Msg: &Commit{Value: v}, Self: false},
	}
}

func (n *Node) onCommit(v consensus.Value) []consensus.Effect {
	if !n.decided.IsNone() {
		return nil
	}
	n.decided = v
	return []consensus.Effect{consensus.Decide{Value: v}}
}

func (n *Node) onPrepare(from consensus.ProcessID, m *Prepare) []consensus.Effect {
	if m.Ballot <= n.bal {
		return nil
	}
	n.bal = m.Ballot
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &PrepareOK{
			Ballot:    m.Ballot,
			VBal:      n.vbal,
			Val:       n.val,
			FastVoted: n.fastVoted && n.vbal == 0,
			Committed: n.decided,
		}},
	}
}

// onPrepareOK collects n−f state reports and runs instance recovery.
func (n *Node) onPrepareOK(from consensus.ProcessID, m *PrepareOK) []consensus.Effect {
	// Ballot 0 is the fast path and is never led; this also protects the
	// zero-value leader state from stray reports.
	if m.Ballot.Fast() || n.lead.ballot != m.Ballot || n.lead.sentAccept {
		return nil
	}
	n.lead.prepareOKs[from] = *m
	if len(n.lead.prepareOKs) < n.cfg.ClassicQuorum() {
		return nil
	}
	v := n.recoverValue(n.lead.prepareOKs)
	n.lead.sentAccept = true
	n.lead.val = v
	return []consensus.Effect{
		consensus.Broadcast{Msg: &Accept{Ballot: m.Ballot, Value: v}, Self: true},
	}
}

// recoverValue decides what the recovery ballot proposes: a known commit, a
// slow-ballot vote, the owner's command when enough fast votes survive to
// make a fast commit possible, or Noop.
func (n *Node) recoverValue(reports map[consensus.ProcessID]PrepareOK) consensus.Value {
	members := make([]consensus.ProcessID, 0, len(reports))
	for q := range reports {
		members = append(members, q)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	for _, q := range members {
		if c := reports[q].Committed; !c.IsNone() {
			return c
		}
	}
	var bmax consensus.Ballot
	for _, q := range members {
		if vb := reports[q].VBal; vb > bmax {
			bmax = vb
		}
	}
	if bmax > 0 {
		for _, q := range members {
			if reports[q].VBal == bmax {
				return reports[q].Val
			}
		}
	}
	fastVotes := 0
	value := consensus.None
	for _, q := range members {
		r := reports[q]
		if r.FastVoted && !r.Val.IsNone() {
			fastVotes++
			value = r.Val
		}
	}
	// A fast commit gathers n−e votes; any n−f of the processes include
	// at least n−e−f of them. Seeing fewer proves no fast commit exists.
	if fastVotes >= n.cfg.N-n.cfg.E-n.cfg.F && !value.IsNone() {
		return value
	}
	return Noop
}

func (n *Node) onAccept(from consensus.ProcessID, m *Accept) []consensus.Effect {
	if n.bal > m.Ballot {
		return nil
	}
	n.bal = m.Ballot
	n.vbal = m.Ballot
	n.val = m.Value
	n.fastVoted = false
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &AcceptOK{Ballot: m.Ballot, Value: m.Value}},
	}
}

func (n *Node) onAcceptOK(from consensus.ProcessID, m *AcceptOK) []consensus.Effect {
	if n.lead.ballot != m.Ballot || !n.lead.sentAccept || m.Value != n.lead.val || !n.decided.IsNone() {
		return nil
	}
	n.lead.acceptOKs[from] = struct{}{}
	if len(n.lead.acceptOKs) < n.cfg.ClassicQuorum() {
		return nil
	}
	return n.commit(m.Value)
}

// Tick implements consensus.Protocol: Ω-guarded instance recovery.
func (n *Node) Tick(t consensus.TimerID) []consensus.Effect {
	if t != TimerRecover {
		return nil
	}
	effects := []consensus.Effect{
		consensus.StartTimer{Timer: TimerRecover, After: 5 * n.cfg.Delta},
	}
	if !n.decided.IsNone() {
		return append(effects, consensus.Broadcast{Msg: &Commit{Value: n.decided}, Self: false})
	}
	if n.omega == nil || n.omega.Leader() != n.cfg.ID {
		return effects
	}
	b := nextOwnedBallot(n.bal, n.cfg.ID, n.cfg.N)
	n.lead = leaderState{
		ballot:     b,
		prepareOKs: make(map[consensus.ProcessID]PrepareOK),
		acceptOKs:  make(map[consensus.ProcessID]struct{}),
	}
	return append(effects, consensus.Broadcast{Msg: &Prepare{Ballot: b}, Self: true})
}

func nextOwnedBallot(bal consensus.Ballot, id consensus.ProcessID, n int) consensus.Ballot {
	b := bal + 1
	if r := int64(b) % int64(n); r != int64(id) {
		b += consensus.Ballot((int64(id) - r + int64(n)) % int64(n))
	}
	return b
}

// DumpState returns a canonical dump of the node's full state for the model
// checker's deduplication (internal/mc).
func (n *Node) DumpState() string {
	acks := make([]int, 0, len(n.fastAcks))
	for p := range n.fastAcks {
		acks = append(acks, int(p))
	}
	sort.Ints(acks)
	pOKs := make([]string, 0, len(n.lead.prepareOKs))
	for p, ok := range n.lead.prepareOKs {
		pOKs = append(pOKs, fmt.Sprintf("%d:%+v", p, ok))
	}
	sort.Strings(pOKs)
	aOKs := make([]int, 0, len(n.lead.acceptOKs))
	for p := range n.lead.acceptOKs {
		aOKs = append(aOKs, int(p))
	}
	sort.Ints(aOKs)
	return fmt.Sprintf("own=%d pr=%v v=%v fv=%v b=%d vb=%d d=%v acks=%v|lead{b=%d p=%v sa=%v lv=%v a=%v}",
		n.owner, n.proposal, n.val, n.fastVoted, n.bal, n.vbal, n.decided, acks,
		n.lead.ballot, pOKs, n.lead.sentAccept, n.lead.val, aOKs)
}
