package shard

import (
	"sort"
	"strings"
	"testing"
)

// FuzzRangeRouter cross-checks RangeRouter against a brute-force oracle:
// the bounds are decoded from a fuzz-controlled spec, the routed group for
// every probed key must equal a linear scan over the bounds, and the
// router's contract must hold — groups in range, routing monotone in key
// order, and every boundary key landing in the group it opens. Rejected
// (non-ascending) specs must never construct a router.
func FuzzRangeRouter(f *testing.F) {
	f.Add("b|d|f", "a")
	f.Add("", "anything")
	f.Add("a|a", "a")       // rejected: not strictly ascending
	f.Add("b|a", "c")       // rejected: descending
	f.Add("k0|k1|k9", "k5") // planner-style bounds
	f.Fuzz(func(t *testing.T, spec, probe string) {
		var bounds []string
		if spec != "" {
			bounds = strings.Split(spec, "|")
		}
		r, err := NewRangeRouter(bounds)
		ascending := true
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				ascending = false
			}
		}
		if !ascending {
			if err == nil {
				t.Fatalf("bounds %q not strictly ascending but accepted", bounds)
			}
			return
		}
		if err != nil {
			t.Fatalf("ascending bounds %q rejected: %v", bounds, err)
		}
		if got, want := r.Groups(), len(bounds)+1; got != want {
			t.Fatalf("Groups() = %d, want %d", got, want)
		}

		// Oracle: group of key = number of bounds ≤ key, by linear scan.
		oracle := func(key string) int {
			g := 0
			for _, b := range bounds {
				if b <= key {
					g++
				}
			}
			return g
		}

		// Probe the fuzz key plus every boundary and its neighbors — the
		// off-by-one surface of the binary search.
		probes := []string{probe, "", probe + "\x00"}
		for _, b := range bounds {
			probes = append(probes, b, b+"\x00")
			if b != "" {
				probes = append(probes, b[:len(b)-1]) // just below the bound
			}
		}
		for _, key := range probes {
			got := r.Group(key)
			if want := oracle(key); got != want {
				t.Fatalf("Group(%q) = %d, oracle says %d (bounds %q)", key, got, want, bounds)
			}
			if got < 0 || got >= r.Groups() {
				t.Fatalf("Group(%q) = %d out of [0, %d)", key, got, r.Groups())
			}
		}
		// Monotone: sorting the probes must sort their groups.
		sorted := append([]string(nil), probes...)
		sort.Strings(sorted)
		prev := -1
		for _, key := range sorted {
			g := r.Group(key)
			if g < prev {
				t.Fatalf("routing not monotone: key %q group %d after group %d", key, g, prev)
			}
			prev = g
		}
		// Each bound opens its own group.
		for i, b := range bounds {
			if g := r.Group(b); g != i+1 {
				t.Fatalf("bound %q routes to group %d, want %d", b, g, i+1)
			}
		}
	})
}
