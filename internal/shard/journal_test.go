package shard

import (
	"fmt"
	"testing"

	"repro/internal/wal"
)

// TestSharedWALMinFloorTruncation checks the segment-retention rule: a
// group's TruncateBefore only raises its own floor, and segments fall only
// below the minimum floor across all groups — a group that never
// snapshots pins the whole log.
func TestSharedWALMinFloorTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenSharedWAL(dir, 3, wal.Options{SegmentBytes: 256, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j0, j1, j2 := s.Group(0), s.Group(1), s.Group(2)
	var last uint64
	for i := 0; i < 60; i++ {
		idx, err := j0.Append([]byte(fmt.Sprintf("{\"g\":%d,\"i\":%d,\"pad\":\"xxxxxxxxxxxxxxxx\"}", i%3, i)))
		if err != nil {
			t.Fatal(err)
		}
		last = idx
	}
	before := s.Stats().Segments
	if before < 3 {
		t.Fatalf("test needs multiple segments, got %d", before)
	}

	// Two groups release everything; group 2's floor stays 0, so nothing
	// may be truncated.
	if _, err := j0.TruncateBefore(last); err != nil {
		t.Fatal(err)
	}
	if n, err := j1.TruncateBefore(last); err != nil || n != 0 {
		t.Fatalf("truncated %d segments with group 2 pinning floor 0 (err=%v)", n, err)
	}
	if got := s.Stats().Segments; got != before {
		t.Fatalf("segments %d -> %d despite a zero min floor", before, got)
	}

	// The last group releases too: now the min floor governs and segments
	// below it go.
	n, err := j2.TruncateBefore(last)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no segments truncated after every group raised its floor")
	}
	if got := s.Stats().Segments; got >= before {
		t.Fatalf("segments %d -> %d, want fewer", before, got)
	}

	// Floors are monotonic: a stale, smaller request must not resurrect or
	// re-truncate anything (and must not lower the recorded floor).
	if _, err := j2.TruncateBefore(1); err != nil {
		t.Fatal(err)
	}
	if s.floors[2] != last {
		t.Fatalf("floor lowered to %d by stale request, want %d", s.floors[2], last)
	}
}
