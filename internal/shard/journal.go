package shard

import (
	"sync"

	"repro/internal/smr"
	"repro/internal/wal"
)

// SharedWAL is one wal.WAL serving every consensus group in a process.
// Groups append interleaved records into a single index space (each record
// JSON-tagged with its group id by the smr durability layer) and share one
// group-commit stream: wal.Commit coalesces concurrent committers, so the
// fsyncs of N groups collapse into the same fdatasyncs — the scale-out
// payoff the F8 bench measures. Recovery demuxes by replaying the whole
// log once per group and skipping foreign records (smr filters on the
// group tag); snapshots record a per-group WAL cut-off, and segments are
// only truncated below the minimum cut-off across all groups.
type SharedWAL struct {
	w *wal.WAL

	mu sync.Mutex
	// floors[g] is group g's truncation request — the WAL index its newest
	// snapshot is consistent up to. A group that has never snapshotted
	// pins the floor at 0, keeping every segment (its state still lives
	// only in the log).
	floors []uint64
}

// OpenSharedWAL opens (or creates) the shared WAL at dir for the given
// number of groups.
func OpenSharedWAL(dir string, groups int, opts wal.Options) (*SharedWAL, wal.OpenInfo, error) {
	w, info, err := wal.Open(dir, opts)
	if err != nil {
		return nil, wal.OpenInfo{}, err
	}
	return &SharedWAL{w: w, floors: make([]uint64, groups)}, info, nil
}

// Stats reports the underlying WAL's counters (one set for the process;
// the cluster-fsyncs-per-op metric sums Syncs across processes).
func (s *SharedWAL) Stats() wal.Stats { return s.w.Stats() }

// Sync forces an fsync of the underlying WAL.
func (s *SharedWAL) Sync() error { return s.w.Sync() }

// Close syncs and closes the underlying WAL. The runtime calls it once,
// after every group's replica has shut down.
func (s *SharedWAL) Close() error { return s.w.Close() }

// Abort closes the underlying WAL without the final sync — the crash
// simulation. Queued group commits fail from here on, which is what makes
// a runtime Kill fail every group's in-flight acknowledgements instead of
// making the "crashed" state durable.
func (s *SharedWAL) Abort() error { return s.w.Abort() }

// Group returns group g's journal view, the smr.Journal its replica's
// durability layer writes through.
func (s *SharedWAL) Group(g int) smr.Journal { return &groupJournal{s: s, g: g} }

// groupJournal adapts the shared WAL to one group's smr.Journal. Appends,
// commits, and replays hit the shared log directly (the index space is
// shared; filtering is the reader's job via the record's group tag).
// Truncation and lifecycle differ: see each method.
type groupJournal struct {
	s *SharedWAL
	g int
}

func (j *groupJournal) Append(payload []byte) (uint64, error) { return j.s.w.Append(payload) }

func (j *groupJournal) AppendBuffered(payload []byte) (uint64, error) {
	return j.s.w.AppendBuffered(payload)
}

func (j *groupJournal) Commit(index uint64) error { return j.s.w.Commit(index) }
func (j *groupJournal) Sync() error               { return j.s.w.Sync() }
func (j *groupJournal) NextIndex() uint64         { return j.s.w.NextIndex() }
func (j *groupJournal) Stats() wal.Stats          { return j.s.w.Stats() }

func (j *groupJournal) Replay(from uint64, fn func(index uint64, payload []byte) error) (wal.ReplayInfo, error) {
	return j.s.w.Replay(from, fn)
}

// TruncateBefore records the group's floor and truncates the shared WAL
// below the minimum floor across all groups: a segment may only go once no
// group needs it for recovery. The index passed by a group that snapshots
// rarely simply keeps the tail long — correctness never depends on
// truncation happening.
func (j *groupJournal) TruncateBefore(index uint64) (int, error) {
	j.s.mu.Lock()
	if index > j.s.floors[j.g] {
		j.s.floors[j.g] = index
	}
	min := j.s.floors[0]
	for _, f := range j.s.floors[1:] {
		if f < min {
			min = f
		}
	}
	j.s.mu.Unlock()
	// Out of the floor lock: truncation takes the WAL's own lock, and a
	// racing truncation with a smaller minimum is a harmless no-op.
	return j.s.w.TruncateBefore(min)
}

// Close is a no-op: the shared WAL's lifecycle belongs to the runtime, and
// the smr durability layer never calls Close on an unowned journal anyway.
func (j *groupJournal) Close() error { return nil }

// Abort is a no-op for the same reason; the runtime aborts the shared WAL
// itself, before killing the groups.
func (j *groupJournal) Abort() error { return nil }
