package shard

import (
	"fmt"
	"testing"
)

// Golden FNV-1a assignments. These constants are the cross-process
// determinism contract: a router built in any process, on any
// architecture, at any time must produce exactly these groups, or keys
// written by one process would be looked up in the wrong group by the
// next. If this test ever fails, the hash changed — which is a data-loss
// event for existing deployments, not a refactor.
var hashGolden = []struct {
	key     string
	hash    uint64
	g4, g16 int
}{
	{"", 14695981039346656037, 1, 5},
	{"a", 12638187200555641996, 0, 12},
	{"b", 12638190499090526629, 1, 5},
	{"alpha", 9999721509958787115, 3, 11},
	{"user:1001", 5312262665563488470, 2, 6},
	{"user:1002", 5312261566051860259, 3, 3},
	{"k-0", 4383272481634059855, 3, 15},
	{"k-1", 4383271382122431644, 0, 12},
	{"k-2", 4383274680657316277, 1, 5},
	{"k-3", 4383273581145688066, 2, 2},
	{"k-42", 16722895478352542147, 3, 3},
	{"\x01ctl", 15888628532292840197, 1, 5},
	{"with space", 3432753902736173735, 3, 7},
	{"tab\tkey", 10694657974509953254, 2, 6},
	{"héllo", 11772399666002542816, 0, 0},
}

func TestHashRouterGolden(t *testing.T) {
	r4 := NewHashRouter(4)
	r16 := NewHashRouter(16)
	for _, g := range hashGolden {
		if h := fnv64a(g.key); h != g.hash {
			t.Errorf("fnv64a(%q) = %d, want %d", g.key, h, g.hash)
		}
		if got := r4.Group(g.key); got != g.g4 {
			t.Errorf("HashRouter(4).Group(%q) = %d, want %d", g.key, got, g.g4)
		}
		if got := r16.Group(g.key); got != g.g16 {
			t.Errorf("HashRouter(16).Group(%q) = %d, want %d", g.key, got, g.g16)
		}
	}
}

// TestHashRouterDeterminismAcrossInstances models a restart/peer process:
// two independently built routers must agree on every key, including keys
// the wire protocol would reject (empty, whitespace, control bytes) — the
// router is total even when validation upstream refuses the key.
func TestHashRouterDeterminismAcrossInstances(t *testing.T) {
	edge := []string{
		"", " ", "  ", "\t", "\n", "\r\n", "\x00", "\x7f", "\x01\x02\x03",
		"plain", "with space", "tab\tin\tkey", "trailing ", " leading",
		"ünïcødé-ключ-鍵", string(make([]byte, 1024)),
	}
	for i := 0; i < 1000; i++ {
		edge = append(edge, fmt.Sprintf("user:%d", i))
	}
	for _, n := range []int{1, 2, 3, 4, 16, 64} {
		a, b := NewHashRouter(n), NewHashRouter(n)
		if a.Groups() != n {
			t.Fatalf("Groups() = %d, want %d", a.Groups(), n)
		}
		for _, k := range edge {
			ga, gb := a.Group(k), b.Group(k)
			if ga != gb {
				t.Fatalf("n=%d key=%q: instance disagreement %d vs %d", n, k, ga, gb)
			}
			if ga < 0 || ga >= n {
				t.Fatalf("n=%d key=%q: group %d out of range", n, k, ga)
			}
		}
	}
}

// TestHashRouterSpread sanity-checks that a uniform key population does not
// collapse onto a few groups (a broken hash routes everything to group 0
// and "scales" to nothing).
func TestHashRouterSpread(t *testing.T) {
	const n, keys = 8, 8000
	r := NewHashRouter(n)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Group(fmt.Sprintf("key-%d", i))]++
	}
	want := keys / n
	for g, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("group %d holds %d of %d keys (expected ~%d): hash is badly skewed", g, c, keys, want)
		}
	}
}

func TestHashRouterDegenerate(t *testing.T) {
	r := NewHashRouter(0)
	if r.Groups() != 1 {
		t.Fatalf("Groups() = %d, want 1", r.Groups())
	}
	if g := r.Group("anything"); g != 0 {
		t.Fatalf("Group = %d, want 0", g)
	}
}

func TestRangeRouter(t *testing.T) {
	r, err := NewRangeRouter([]string{"g", "n", "t"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Groups() != 4 {
		t.Fatalf("Groups() = %d, want 4", r.Groups())
	}
	cases := map[string]int{
		"":      0, // empty key sorts before every bound
		"apple": 0,
		"f":     0,
		"g":     1, // bounds are inclusive lower ends
		"melon": 1,
		"n":     2,
		"pear":  2,
		"t":     3,
		"zebra": 3,
		" ":     0, // whitespace sorts below printable bounds
		"\x01":  0,
	}
	for k, want := range cases {
		if got := r.Group(k); got != want {
			t.Errorf("Group(%q) = %d, want %d", k, got, want)
		}
	}
}

func TestRangeRouterEmptyBounds(t *testing.T) {
	r, err := NewRangeRouter(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Groups() != 1 || r.Group("k") != 0 {
		t.Fatalf("empty-bounds router: Groups=%d Group=%d, want 1/0", r.Groups(), r.Group("k"))
	}
}

func TestRangeRouterRejectsUnsortedBounds(t *testing.T) {
	if _, err := NewRangeRouter([]string{"m", "a"}); err == nil {
		t.Fatal("descending bounds accepted")
	}
	if _, err := NewRangeRouter([]string{"m", "m"}); err == nil {
		t.Fatal("duplicate bounds accepted")
	}
}

// TestRangeRouterImmutableBounds guards the defensive copy: mutating the
// caller's slice after construction must not change routing.
func TestRangeRouterImmutableBounds(t *testing.T) {
	bounds := []string{"m"}
	r, err := NewRangeRouter(bounds)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Group("x")
	bounds[0] = "z"
	if after := r.Group("x"); after != before {
		t.Fatalf("router followed caller mutation: %d -> %d", before, after)
	}
}
