package shard_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// bootCluster builds a 3-process cluster where each process hosts `groups`
// consensus groups over one mesh endpoint. dirs[i] != "" enables the
// shared-WAL durability layer for process i.
func bootCluster(t *testing.T, groups int, dirs [3]string) (rts [3]*shard.Runtime, mesh *transport.Mesh) {
	t.Helper()
	const n, f, e = 3, 1, 1
	mesh = transport.NewMesh(n)
	for i := 0; i < n; i++ {
		opts := shard.Options{
			Groups: groups,
			Config: consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10},
			Tick:   time.Millisecond,
		}
		if dirs[i] != "" {
			opts.Durability = &shard.Durability{Dir: dirs[i], Policy: wal.SyncAlways, SnapshotEvery: 32}
		}
		rt, err := shard.New(opts)
		if err != nil {
			t.Fatalf("shard.New(%d): %v", i, err)
		}
		ep, err := mesh.Endpoint(consensus.ProcessID(i), rt.Handler())
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
		rt.BindTransport(ep)
		rt.Start()
		rts[i] = rt
	}
	return rts, mesh
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

// TestRuntimeRoutesAcrossGroups drives writes through one process and
// checks every key lands in — and reads back from — its routed group, with
// multiple groups actually exercised (independent slot spaces).
func TestRuntimeRoutesAcrossGroups(t *testing.T) {
	const groups = 4
	rts, mesh := bootCluster(t, groups, [3]string{})
	defer mesh.Close()
	defer func() {
		for _, rt := range rts {
			rt.Close()
		}
	}()

	c := ctx(t)
	const keys = 40
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := rts[0].Put(c, k, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	touched := 0
	for g := 0; g < groups; g++ {
		if rts[0].Group(g).Applied() > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("only %d of %d groups applied anything: keys are not spreading", touched, groups)
	}
	router := rts[0].Router()
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok, err := rts[0].GetLinearizable(c, k)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("getl %s: %q %v %v", k, v, ok, err)
		}
		// The value must live in the routed group and no other.
		g := router.Group(k)
		if _, ok := rts[0].Group(g).Get(k); !ok {
			t.Errorf("key %s missing from its routed group %d", k, g)
		}
		for o := 0; o < groups; o++ {
			if o == g {
				continue
			}
			if _, ok := rts[0].Group(o).Get(k); ok {
				t.Errorf("key %s leaked into group %d (routed to %d)", k, o, g)
			}
		}
	}

	// Independent slot spaces: total applied across groups accounts for all
	// keys plus the GETL no-ops, not keys stacked into one log.
	info := rts[0].Info()
	if info.Groups != groups || info.Applied < keys {
		t.Fatalf("info = %+v, want %d groups and >= %d applied", info, groups, keys)
	}
	line := info.String()
	if !strings.Contains(line, "groups=4") || !strings.Contains(line, "g3_applied=") {
		t.Fatalf("info line missing per-group stats: %q", line)
	}
}

// TestRuntimeGracefulRecovery writes through a durable sharded cluster,
// closes it, and reopens each process from disk: every group's state must
// come back from the demuxed shared WAL + per-group snapshots.
func TestRuntimeGracefulRecovery(t *testing.T) {
	const groups = 4
	var dirs [3]string
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	rts, mesh := bootCluster(t, groups, dirs)

	c := ctx(t)
	const keys = 48
	for i := 0; i < keys; i++ {
		if err := rts[0].Put(c, fmt.Sprintf("key-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for _, rt := range rts {
		if err := rt.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	mesh.Close()

	// Reopen process 0 alone: recovery is local (snapshot + WAL), no
	// transport or peers needed.
	rt, err := shard.New(shard.Options{
		Groups:     groups,
		Config:     consensus.Config{ID: 0, N: 3, F: 1, E: 1, Delta: 10},
		Tick:       time.Millisecond,
		Durability: &shard.Durability{Dir: dirs[0], Policy: wal.SyncAlways, SnapshotEvery: 32},
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rt.Close()
	recov, _ := rt.Recovery()
	recovered := false
	for _, ri := range recov {
		if ri.Recovered {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no group reported recovered state")
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, ok := rt.Get(k); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("after recovery %s = %q,%v", k, v, ok)
		}
	}
}

// TestRuntimeCrashRecovery is the crash-consistency variant: Kill abandons
// unsynced buffers, but every acknowledged write (SyncAlways) must survive
// the restart of all three processes.
func TestRuntimeCrashRecovery(t *testing.T) {
	const groups = 3
	var dirs [3]string
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	rts, mesh := bootCluster(t, groups, dirs)

	c := ctx(t)
	const keys = 30
	for i := 0; i < keys; i++ {
		if err := rts[0].Put(c, fmt.Sprintf("key-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for _, rt := range rts {
		if err := rt.Kill(); err != nil {
			t.Fatalf("kill: %v", err)
		}
	}
	mesh.Close()

	rts2, mesh2 := bootCluster(t, groups, dirs)
	defer mesh2.Close()
	defer func() {
		for _, rt := range rts2 {
			rt.Close()
		}
	}()
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok, err := rts2[0].GetLinearizable(c, k)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write lost across crash: %s = %q,%v,%v", k, v, ok, err)
		}
	}
}

// TestSingleGroupReadsPreShardingWAL pins backward compatibility: a data
// directory written by a plain (pre-sharding) smr.Replica must open under
// a 1-group runtime with all state intact — old records carry no group tag
// and belong to group 0, whose snapshot dir is the legacy Dir/snap.
func TestSingleGroupReadsPreShardingWAL(t *testing.T) {
	const n, f, e = 3, 1, 1
	var dirs [3]string
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	mesh := transport.NewMesh(n)
	var reps [3]*smr.Replica
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		rep, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rep.EnableDurability(smr.DurabilityOptions{Dir: dirs[i], Policy: wal.SyncAlways, SnapshotEvery: 16}); err != nil {
			t.Fatal(err)
		}
		ep, err := mesh.Endpoint(cfg.ID, rep.Handle)
		if err != nil {
			t.Fatal(err)
		}
		rep.BindTransport(ep)
		rep.Start()
		reps[i] = rep
	}
	c := ctx(t)
	const keys = 40 // past SnapshotEvery, so recovery mixes snapshot + WAL tail
	kv := smr.NewKV(reps[0])
	for i := 0; i < keys; i++ {
		if err := kv.Put(c, fmt.Sprintf("legacy-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for _, rep := range reps {
		if err := rep.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mesh.Close()

	rt, err := shard.New(shard.Options{
		Groups:     1,
		Config:     consensus.Config{ID: 0, N: n, F: f, E: e, Delta: 10},
		Tick:       time.Millisecond,
		Durability: &shard.Durability{Dir: dirs[0], Policy: wal.SyncAlways},
	})
	if err != nil {
		t.Fatalf("1-group runtime on pre-sharding dir: %v", err)
	}
	defer rt.Close()
	recov, _ := rt.Recovery()
	if len(recov) != 1 || !recov[0].Recovered {
		t.Fatalf("recovery info = %+v, want group 0 recovered", recov)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("legacy-%d", i)
		if v, ok := rt.Get(k); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("legacy key %s = %q,%v after 1-group open", k, v, ok)
		}
	}
}

// TestShardedWALLayoutSingleGroup pins the on-disk layout contract the
// compatibility above rests on: a 1-group runtime writes Dir/wal and
// Dir/snap exactly where the pre-sharding replica did (no g0 subdir).
func TestShardedWALLayoutSingleGroup(t *testing.T) {
	dir := t.TempDir()
	rt, err := shard.New(shard.Options{
		Groups:     1,
		Config:     consensus.Config{ID: 0, N: 3, F: 1, E: 1, Delta: 10},
		Tick:       time.Millisecond,
		Durability: &shard.Durability{Dir: dir, Policy: wal.SyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"wal"} {
		if m, err := filepath.Glob(filepath.Join(dir, sub, "*")); err != nil || len(m) == 0 {
			t.Fatalf("expected files under %s/%s (glob=%v err=%v)", dir, sub, m, err)
		}
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "g0")); len(m) != 0 {
		t.Fatalf("1-group runtime created %v: group 0 must use the legacy layout", m)
	}
}

// TestServerRoutesSharded fronts a sharded cluster with the stock TCP
// servers (Backend seam) and drives all four commands through a pipelined
// session client: routing must be invisible on the wire.
func TestServerRoutesSharded(t *testing.T) {
	const groups = 4
	rts, mesh := bootCluster(t, groups, [3]string{})
	defer mesh.Close()
	defer func() {
		for _, rt := range rts {
			rt.Close()
		}
	}()
	var addrs []string
	for _, rt := range rts {
		srv, err := smr.NewBackendServer(rt, "127.0.0.1:0", 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	sc, err := smr.NewSessionClient(addrs, smr.SessionOptions{Timeout: 30 * time.Second, Depth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	const keys = 32
	for i := 0; i < keys; i++ {
		if err := sc.Put(fmt.Sprintf("wire-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("wire-%d", i)
		v, err := sc.GetLinearizable(k)
		if err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("getl %s = %q,%v", k, v, err)
		}
	}
	if err := sc.Delete("wire-0"); err != nil {
		t.Fatalf("del: %v", err)
	}
	if _, err := sc.GetLinearizable("wire-0"); !errors.Is(err, smr.ErrNotFound) {
		t.Fatalf("deleted key: err = %v, want ErrNotFound", err)
	}
	info, err := sc.Info()
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.Contains(info, "groups=4") || !strings.Contains(info, "g1_applied=") {
		t.Fatalf("INFO lacks per-group stats: %q", info)
	}
	stats, err := sc.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(stats, "groups=4") {
		t.Fatalf("STATS lacks group count: %q", stats)
	}
	// Cross-check that more than one group served traffic.
	touched := 0
	for g := 0; g < groups; g++ {
		if rts[0].Group(g).Applied() > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("only %d groups touched through the wire", touched)
	}
}
