package shard

import (
	"fmt"
	"sort"
)

// A Router maps every key to one of a fixed number of consensus groups.
// Routing must be a pure function of the key: the same key must land on
// the same group in every process and across restarts, because each group
// is an independent consensus log — a key that wandered between groups
// would see two unrelated histories. Routers therefore hold no mutable
// state and never consult clocks, randomness, or local load.
type Router interface {
	// Groups returns the number of groups the router spreads keys over.
	Groups() int
	// Group returns the group id for key, in [0, Groups()).
	Group(key string) int
}

// HashRouter is the default router: FNV-1a over the key's bytes, modulo
// the group count. FNV-1a is defined byte-by-byte with fixed constants, so
// the mapping is identical on every architecture and in every process —
// the property the determinism tests pin with golden values.
type HashRouter struct {
	n int
}

// NewHashRouter builds a hash router over n groups (n < 1 is treated as 1:
// a degenerate router that sends everything to group 0).
func NewHashRouter(n int) HashRouter {
	if n < 1 {
		n = 1
	}
	return HashRouter{n: n}
}

// Groups implements Router.
func (r HashRouter) Groups() int { return r.n }

// Group implements Router.
func (r HashRouter) Group(key string) int {
	return int(fnv64a(key) % uint64(r.n))
}

// FNV-1a 64-bit constants (FNV-0 offset basis and prime).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a is FNV-1a inlined over a string (hash/fnv forces a []byte copy
// and an interface call per write; routing runs on every client command).
func fnv64a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// RangeRouter routes by key order: len(bounds)+1 groups, where group 0
// serves keys below bounds[0], group i serves [bounds[i-1], bounds[i]),
// and the last group serves everything from the last bound up. Range
// routing keeps contiguous keyspaces together (scans, prefix locality) at
// the cost of needing a placement decision; planner.PlanGroups derives
// bounds from a key sample so the initial assignment is balanced.
type RangeRouter struct {
	bounds []string
}

// NewRangeRouter builds a range router from strictly ascending split
// bounds. An empty bounds slice yields a single group.
func NewRangeRouter(bounds []string) (RangeRouter, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return RangeRouter{}, fmt.Errorf("shard: range bounds not strictly ascending at %d (%q <= %q)", i, bounds[i], bounds[i-1])
		}
	}
	cp := make([]string, len(bounds))
	copy(cp, bounds)
	return RangeRouter{bounds: cp}, nil
}

// Groups implements Router.
func (r RangeRouter) Groups() int { return len(r.bounds) + 1 }

// Group implements Router: the number of bounds at or below key.
func (r RangeRouter) Group(key string) int {
	return sort.Search(len(r.bounds), func(i int) bool { return r.bounds[i] > key })
}
