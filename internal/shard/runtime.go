package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Runtime hosts N independent consensus groups in one process. Each group
// is a full smr.Replica — its own Ω detector, slot space, and snapshot
// store — but the process-wide resources are shared exactly once:
//
//   - one transport, multiplexed by group-tagged envelopes (mux.go);
//   - one WAL, interleaving group-tagged records (journal.go);
//   - one outbox/fsync scheduler (smr.IOScheduler), so the group-commit
//     stream coalesces fsyncs across every group, not just within one.
//
// Keys route to groups through a deterministic Router; the Runtime
// implements smr.Backend, so the line/session servers route PUT/GET/DEL/
// GETL transparently and clients cannot tell a sharded process from a
// single-replica one.
//
// Construction order mirrors a single replica's: New (which recovers every
// group from the shared WAL), then build the real transport around
// Handler(), then BindTransport, then Start.
type Runtime struct {
	cfg      consensus.Config
	router   Router
	mux      *Mux
	shared   *SharedWAL
	io       *smr.IOScheduler
	groups   []*smr.Replica
	recovery []smr.RecoveryInfo
	walInfo  wal.OpenInfo

	mu     sync.Mutex
	tr     transport.Transport
	closed bool
}

// Durability configures the shared WAL and per-group snapshots. The WAL
// lives in Dir/wal — the same place a pre-sharding single replica kept it —
// and group 0's snapshots in Dir/snap, so a 1-group runtime opens a data
// directory written before sharding existed unchanged (old records carry
// no group tag and belong to group 0 by definition). Groups 1+ keep their
// snapshots under Dir/g<i>/snap.
type Durability struct {
	// Dir is the process data directory.
	Dir string
	// Policy is the WAL fsync policy (default wal.SyncAlways).
	Policy wal.SyncPolicy
	// SyncEvery is the per-group fsync period under wal.SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes caps WAL segment size (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// SnapshotEvery is the per-group snapshot period in applied commands
	// (default 64; <0 disables automatic snapshots).
	SnapshotEvery int
	// SyncHook runs before each WAL fsync (tests only; see wal.Options).
	SyncHook func()
}

// Options configures New.
type Options struct {
	// Groups is the number of consensus groups this process hosts (>= 1).
	Groups int
	// Config is the consensus configuration shared by every group: one
	// process id, one membership, N groups layered over it.
	Config consensus.Config
	// Tick is the protocol tick duration (see smr.NewReplica).
	Tick time.Duration
	// Router maps keys to groups; nil defaults to NewHashRouter(Groups).
	// Its group count must match Groups.
	Router Router
	// Durability, when non-nil, enables the shared WAL + per-group
	// snapshots under Durability.Dir.
	Durability *Durability
	// AdaptiveBatch enables per-group adaptive write batching
	// (smr.EnableAdaptiveBatching) — the serving configuration; leave off
	// for latency-measuring setups that want one command per slot.
	AdaptiveBatch bool
	// Leases, when non-nil, enables replicated leader leases on every
	// group (smr.EnableLeases): each group tracks its own leaseholder, so
	// GETLs on a key whose group this process leads are served locally.
	Leases *smr.LeaseOptions
}

// New builds the runtime and recovers every group from the shared WAL (one
// replay pass per group; each pass skips the other groups' records).
// Groups are numbered 0..Groups-1.
func New(opts Options) (*Runtime, error) {
	if opts.Groups < 1 {
		return nil, fmt.Errorf("shard: groups must be >= 1, got %d", opts.Groups)
	}
	router := opts.Router
	if router == nil {
		router = NewHashRouter(opts.Groups)
	}
	if router.Groups() != opts.Groups {
		return nil, fmt.Errorf("shard: router spans %d groups, runtime hosts %d", router.Groups(), opts.Groups)
	}
	rt := &Runtime{
		cfg:    opts.Config,
		router: router,
		mux:    NewMux(opts.Groups),
		io:     smr.NewSharedIO(),
	}
	if opts.Durability != nil {
		w, winfo, err := OpenSharedWAL(filepath.Join(opts.Durability.Dir, "wal"), opts.Groups, wal.Options{
			SegmentBytes: opts.Durability.SegmentBytes,
			Policy:       opts.Durability.Policy,
			SyncHook:     opts.Durability.SyncHook,
		})
		if err != nil {
			return nil, fmt.Errorf("shard: %w", err)
		}
		rt.shared = w
		rt.walInfo = winfo
	}
	for g := 0; g < opts.Groups; g++ {
		r, err := smr.NewReplica(opts.Config, opts.Tick)
		if err != nil {
			rt.abandon()
			return nil, fmt.Errorf("shard: group %d: %w", g, err)
		}
		r.ShareIO(rt.io)
		if opts.AdaptiveBatch {
			r.EnableAdaptiveBatching(0)
		}
		if opts.Leases != nil {
			// Before EnableDurability: recovery replays grant commands into
			// the lease table.
			if err := r.EnableLeases(*opts.Leases); err != nil {
				rt.abandon()
				return nil, fmt.Errorf("shard: group %d: %w", g, err)
			}
		}
		if opts.Durability != nil {
			dir := opts.Durability.Dir
			if g > 0 {
				dir = filepath.Join(dir, fmt.Sprintf("g%d", g))
			}
			info, err := r.EnableDurability(smr.DurabilityOptions{
				Dir:           dir,
				Journal:       rt.shared.Group(g),
				Group:         g,
				Policy:        opts.Durability.Policy,
				SyncEvery:     opts.Durability.SyncEvery,
				SnapshotEvery: opts.Durability.SnapshotEvery,
			})
			if err != nil {
				rt.abandon()
				return nil, fmt.Errorf("shard: group %d: %w", g, err)
			}
			rt.recovery = append(rt.recovery, info)
		}
		rt.groups = append(rt.groups, r)
	}
	return rt, nil
}

// abandon tears down a partially constructed runtime.
func (rt *Runtime) abandon() {
	for _, r := range rt.groups {
		_ = r.Close()
	}
	rt.io.Close()
	if rt.shared != nil {
		_ = rt.shared.Close()
	}
}

// Handler returns the inbound handler for the process's real transport:
// construct the transport with it, then call BindTransport.
func (rt *Runtime) Handler() transport.Handler { return rt.mux.Handle }

// BindTransport installs the process transport and binds every group's
// view of it. The runtime takes ownership: Close/Kill close it after the
// groups.
func (rt *Runtime) BindTransport(tr transport.Transport) {
	rt.mu.Lock()
	rt.tr = tr
	rt.mu.Unlock()
	rt.mux.Bind(tr)
	for g, r := range rt.groups {
		r.BindTransport(rt.mux.View(g, r.Handle))
	}
}

// Start boots every group (Ω detector, status gossip).
func (rt *Runtime) Start() {
	for _, r := range rt.groups {
		r.Start()
	}
}

// Groups returns the number of groups hosted.
func (rt *Runtime) Groups() int { return len(rt.groups) }

// Group returns group g's replica (tests, benches, per-group inspection).
func (rt *Runtime) Group(g int) *smr.Replica { return rt.groups[g] }

// Router returns the runtime's key router.
func (rt *Runtime) Router() Router { return rt.router }

// Recovery reports what each group reconstructed on open (empty without
// durability), plus whether the shared WAL's tail was torn.
func (rt *Runtime) Recovery() ([]smr.RecoveryInfo, wal.OpenInfo) {
	return rt.recovery, rt.walInfo
}

// WalStats reports the shared WAL's counters (false without durability).
func (rt *Runtime) WalStats() (wal.Stats, bool) {
	if rt.shared == nil {
		return wal.Stats{}, false
	}
	return rt.shared.Stats(), true
}

// SyncIO barriers every group's outbox: when it returns, all I/O emitted
// before the call is externally visible (see smr.Replica.SyncIO).
func (rt *Runtime) SyncIO() {
	for _, r := range rt.groups {
		r.SyncIO()
	}
}

// Close shuts the runtime down gracefully: every group drains through the
// shared scheduler, then the scheduler stops, the shared WAL syncs closed,
// and the transport closes.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	tr := rt.tr
	rt.mu.Unlock()
	var firstErr error
	for _, r := range rt.groups {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	rt.io.Close()
	if rt.shared != nil {
		if err := rt.shared.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if tr != nil {
		if err := tr.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Kill simulates a process crash for the chaos harness: the shared WAL is
// aborted FIRST (queued group commits across every group must fail — and
// fail their client wakeups — rather than make the crashed state durable),
// then every group is killed, the scheduler drained, and the transport
// closed. A new Runtime opened on the same data directory runs the real
// per-group recovery demux.
func (rt *Runtime) Kill() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	tr := rt.tr
	rt.mu.Unlock()
	var firstErr error
	if rt.shared != nil {
		if err := rt.shared.Abort(); err != nil {
			firstErr = err
		}
	}
	for _, r := range rt.groups {
		if err := r.Kill(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	rt.io.Close()
	if tr != nil {
		if err := tr.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Route implements smr.Backend: the replica hosting key's group.
func (rt *Runtime) Route(key string) *smr.Replica {
	return rt.groups[rt.router.Group(key)]
}

// Proxy implements smr.Backend. Group 0 stands in for the process: every
// group shares the process id, and the OHAI leader hint is advisory — a
// client optimizing for group 0's leader still reaches every group through
// whichever process it dials.
func (rt *Runtime) Proxy() *smr.Replica { return rt.groups[0] }

// StatsLine implements smr.Backend: the shared transport's counters (the
// wire is per-process, not per-group) prefixed with the group count. With
// leases enabled the per-group lease counters are summed into one suffix
// (lease_groups_held counts groups whose lease this process holds right
// now); pre-lease consumers parse the unchanged prefix.
func (rt *Runtime) StatsLine() string {
	st, ok := rt.groups[0].TransportStats()
	if !ok {
		return "ERR no transport bound"
	}
	line := fmt.Sprintf("STATS groups=%d %s", len(rt.groups), st.String())
	var agg smr.LeaseStats
	held := 0
	for _, r := range rt.groups {
		ls := r.LeaseStats()
		if !ls.Enabled {
			continue
		}
		agg.Enabled = true
		if ls.Valid {
			held++
		}
		agg.Hits += ls.Hits
		agg.Misses += ls.Misses
		agg.Expired += ls.Expired
		agg.Revoked += ls.Revoked
		agg.Grants += ls.Grants
		agg.Refused += ls.Refused
		agg.Fenced += ls.Fenced
		agg.ReadRounds += ls.ReadRounds
		agg.ReadCoalesced += ls.ReadCoalesced
	}
	if agg.Enabled {
		agg.Valid = held > 0
		agg.Holder = -1 // not meaningful summed across groups
		line += fmt.Sprintf(" lease_groups_held=%d %s", held, agg.String())
	}
	return line
}

// GroupLeaders returns each group's Ω leader estimate — the per-group
// leaseholder hint: grants are only proposed by a group's stable Ω leader,
// so this is where each group's GETLs are expected to be servable locally.
func (rt *Runtime) GroupLeaders() []consensus.ProcessID {
	out := make([]consensus.ProcessID, len(rt.groups))
	for g, r := range rt.groups {
		out[g] = r.OmegaLeader()
	}
	return out
}

// InfoLine implements smr.Backend.
func (rt *Runtime) InfoLine() string { return "INFO " + rt.Info().String() }

// Info is the runtime's operational summary: process-wide aggregates plus
// one entry per group, in group order.
type Info struct {
	Groups    int               `json:"groups"`
	Applied   int               `json:"applied"`   // sum over groups
	OpenSlots int               `json:"openSlots"` // sum over groups
	Durable   bool              `json:"durable"`
	Wal       wal.Stats         `json:"wal,omitempty"` // shared WAL
	PerGroup  []smr.ReplicaInfo `json:"perGroup"`
}

// Info collects the runtime summary.
func (rt *Runtime) Info() Info {
	info := Info{Groups: len(rt.groups), Durable: rt.shared != nil}
	if rt.shared != nil {
		info.Wal = rt.shared.Stats()
	}
	for _, r := range rt.groups {
		gi := r.Info()
		info.Applied += gi.Applied
		info.OpenSlots += gi.OpenSlots
		info.PerGroup = append(info.PerGroup, gi)
	}
	return info
}

// String renders the info as the single key=value line INFO serves: the
// aggregates, the shared WAL, then per-group applied/open-slot counts.
func (i Info) String() string {
	s := fmt.Sprintf("groups=%d applied=%d open_slots=%d durable=%t",
		i.Groups, i.Applied, i.OpenSlots, i.Durable)
	if i.Durable {
		s += fmt.Sprintf(" wal_segments=%d wal_bytes=%d wal_next=%d wal_syncs=%d",
			i.Wal.Segments, i.Wal.Bytes, i.Wal.NextIndex, i.Wal.Syncs)
	}
	for g, gi := range i.PerGroup {
		s += fmt.Sprintf(" g%d_applied=%d g%d_open=%d", g, gi.Applied, g, gi.OpenSlots)
		if gi.Lease != nil {
			s += fmt.Sprintf(" g%d_lease_holder=%d g%d_lease_valid=%t",
				g, gi.Lease.Holder, g, gi.Lease.Valid)
		}
	}
	return s
}

// Put routes key to its group and replicates the write.
func (rt *Runtime) Put(ctx context.Context, key, val string) error {
	return smr.NewKV(rt.Route(key)).Put(ctx, key, val)
}

// Delete routes key to its group and replicates the delete.
func (rt *Runtime) Delete(ctx context.Context, key string) error {
	return smr.NewKV(rt.Route(key)).Delete(ctx, key)
}

// Get reads key from its group's local applied state.
func (rt *Runtime) Get(key string) (string, bool) {
	return rt.Route(key).Get(key)
}

// GetLinearizable reads key through its group's consensus log.
func (rt *Runtime) GetLinearizable(ctx context.Context, key string) (string, bool, error) {
	return smr.NewKV(rt.Route(key)).GetLinearizable(ctx, key)
}
