package shard

import (
	"encoding/json"
	"errors"
	"strconv"
	"sync"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
)

// The mux multiplexes N consensus groups over one transport. Every message
// a group's replica sends is wrapped in a GroupMessage tagging the group
// id at the frame level; inbound frames are unwrapped and fanned out to
// the tagged group's handler. The real transport therefore carries exactly
// one wire kind, and peer processes demux symmetrically — group g on
// process A only ever talks to group g on process B, so each group runs
// its own Ω detector and slot space undisturbed by its neighbors.

// KindGroup is the wire kind of the group envelope — the only kind that
// travels on a sharded process's real transport.
const KindGroup = "shard.group"

// GroupMessage wraps one group's protocol message with its group id.
type GroupMessage struct {
	Group     int             `json:"g"`
	InnerKind string          `json:"innerKind"`
	InnerBody json.RawMessage `json:"innerBody"`
}

// Kind implements consensus.Message.
func (GroupMessage) Kind() string { return KindGroup }

// AppendBody splices the inner body verbatim instead of letting
// encoding/json re-validate the RawMessage — the same single-buffer encode
// smr.SlotMessage uses, and just as hot: every inter-replica message in a
// sharded process takes this wrap on top of the slot wrap. Field names
// stay in lockstep with the struct tags; decoding remains reflective.
func (m GroupMessage) AppendBody(dst []byte) []byte {
	dst = append(dst, `{"g":`...)
	dst = strconv.AppendInt(dst, int64(m.Group), 10)
	dst = append(dst, `,"innerKind":`...)
	dst = strconv.AppendQuote(dst, m.InnerKind)
	dst = append(dst, `,"innerBody":`...)
	if len(m.InnerBody) == 0 {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, m.InnerBody...)
	}
	return append(dst, '}')
}

// MarshalJSON keeps plain json.Marshal on the same spliced encoding.
func (m GroupMessage) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, len(`{"g":,"innerKind":,"innerBody":}`)+20+len(m.InnerKind)+2+len(m.InnerBody))
	return m.AppendBody(b), nil
}

// RegisterMessages registers the group envelope with codec. A sharded
// process's real transport needs only this kind: the inner kinds live in
// the mux's private codec.
func RegisterMessages(codec *consensus.Codec) {
	codec.MustRegister(KindGroup, func() consensus.Message { return &GroupMessage{} })
}

// errNoTransport reports a send before BindTransport (or after teardown).
var errNoTransport = errors.New("shard: no transport bound")

// Mux fans one transport between the groups: inbound GroupMessages go to
// the tagged group's handler, and each group sends through a view that
// wraps outbound messages with its id. Handlers are a slice indexed by
// group id — fixed size, no iteration-order hazards.
type Mux struct {
	inner *consensus.Codec // decodes inner smr kinds

	mu       sync.Mutex
	tr       transport.Transport
	handlers []transport.Handler
}

// NewMux builds a mux for the given number of groups. Install Handle on
// the real transport, Bind the transport, then View each group.
func NewMux(groups int) *Mux {
	c := consensus.NewCodec()
	smr.RegisterMessages(c)
	return &Mux{inner: c, handlers: make([]transport.Handler, groups)}
}

// Bind installs the real transport the group views send through.
func (m *Mux) Bind(tr transport.Transport) {
	m.mu.Lock()
	m.tr = tr
	m.mu.Unlock()
}

// Handle is the inbound handler for the real transport: it unwraps the
// envelope and delivers to the tagged group. Frames that are not group
// envelopes, carry an out-of-range id, target a detached group, or fail
// inner decode are dropped — the transport contract is lossy anyway and
// protocol timers retransmit.
func (m *Mux) Handle(from consensus.ProcessID, msg consensus.Message) {
	gm, ok := msg.(*GroupMessage)
	if !ok {
		return
	}
	m.mu.Lock()
	var h transport.Handler
	if gm.Group >= 0 && gm.Group < len(m.handlers) {
		h = m.handlers[gm.Group]
	}
	m.mu.Unlock()
	if h == nil {
		return
	}
	inner, err := m.inner.DecodeBody(gm.InnerKind, gm.InnerBody)
	if err != nil {
		return
	}
	h(from, inner)
}

// View registers group g's inbound handler and returns the transport its
// replica binds: sends are wrapped with the group id, Close detaches only
// this group. The real transport stays the caller's to close.
func (m *Mux) View(g int, h transport.Handler) transport.Transport {
	m.mu.Lock()
	m.handlers[g] = h
	m.mu.Unlock()
	return &groupView{m: m, g: g}
}

// groupView is one group's transport.Transport over the shared mux.
type groupView struct {
	m *Mux
	g int
}

// Self implements transport.Transport.
func (v *groupView) Self() consensus.ProcessID {
	v.m.mu.Lock()
	tr := v.m.tr
	v.m.mu.Unlock()
	if tr == nil {
		return -1
	}
	return tr.Self()
}

// Send wraps msg in the group envelope and hands it to the real transport.
func (v *groupView) Send(to consensus.ProcessID, msg consensus.Message) error {
	v.m.mu.Lock()
	tr := v.m.tr
	v.m.mu.Unlock()
	if tr == nil {
		return errNoTransport
	}
	body, err := consensus.MarshalPooled(msg)
	if err != nil {
		return err
	}
	return tr.Send(to, &GroupMessage{Group: v.g, InnerKind: msg.Kind(), InnerBody: body})
}

// Stats implements transport.Transport: the counters are the shared
// transport's — per-process, not per-group, since the wire is shared.
func (v *groupView) Stats() transport.Stats {
	v.m.mu.Lock()
	tr := v.m.tr
	v.m.mu.Unlock()
	if tr == nil {
		return transport.Stats{}
	}
	return tr.Stats()
}

// Close detaches the group's inbound handler; the shared transport belongs
// to the runtime and outlives any one group.
func (v *groupView) Close() error {
	v.m.mu.Lock()
	if v.g >= 0 && v.g < len(v.m.handlers) {
		v.m.handlers[v.g] = nil
	}
	v.m.mu.Unlock()
	return nil
}
