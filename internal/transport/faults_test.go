package transport_test

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

func testMsg(v int64) consensus.Message {
	return &core.DecideMsg{Value: consensus.IntValue(v)}
}

func waitStats(t *testing.T, tr transport.Transport, pred func(transport.Stats) bool) transport.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := tr.Stats()
		if pred(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for stats condition; last: %v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultDropCountedAndHealRestores pins the two core nemesis
// properties: an injected drop is counted under the distinct "fault"
// cause (not confused with organic backpressure), and clearing the
// injector heals the fabric — subsequent sends deliver.
func TestFaultDropCountedAndHealRestores(t *testing.T) {
	mesh := transport.NewMesh(2)
	defer mesh.Close()
	var c1 collector
	ep0, err := mesh.Endpoint(0, (&collector{}).handle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(1, c1.handle); err != nil {
		t.Fatal(err)
	}

	mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
		return transport.FaultVerdict{Drop: true}
	})
	for i := int64(0); i < 3; i++ {
		if err := ep0.Send(1, testMsg(i)); err != nil {
			t.Fatalf("send under fault: %v", err)
		}
	}
	s := ep0.Stats()
	if s.DropsByCause[transport.DropFault] != 3 {
		t.Fatalf("fault drops = %d, want 3 (stats: %v)", s.DropsByCause[transport.DropFault], s)
	}
	if s.Sends != 0 {
		t.Fatalf("sends = %d under total drop fault, want 0", s.Sends)
	}
	if s.DropsByPeer[1] != 3 {
		t.Fatalf("drops against peer 1 = %d, want 3", s.DropsByPeer[1])
	}
	// The fabric view must carry the cause through Merge.
	if ms := mesh.Stats(); ms.DropsByCause[transport.DropFault] != 3 {
		t.Fatalf("mesh fault drops = %d, want 3", ms.DropsByCause[transport.DropFault])
	}

	mesh.SetFault(nil) // heal
	if err := ep0.Send(1, testMsg(9)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c1, 1)
	if got := c1.got[0].(*core.DecideMsg).Value; got != consensus.IntValue(9) {
		t.Fatalf("delivered %v after heal, want 9", got)
	}
	if s := ep0.Stats(); s.DropsByCause[transport.DropFault] != 3 {
		t.Fatalf("heal changed historical drop count: %v", s)
	}
}

// TestFaultAsymmetricPartition: blocking 0→1 must leave 1→0 untouched.
func TestFaultAsymmetricPartition(t *testing.T) {
	mesh := transport.NewMesh(2)
	defer mesh.Close()
	var c0, c1 collector
	ep0, err := mesh.Endpoint(0, c0.handle)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := mesh.Endpoint(1, c1.handle)
	if err != nil {
		t.Fatal(err)
	}

	mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
		return transport.FaultVerdict{Drop: from == 0 && to == 1}
	})
	if err := ep0.Send(1, testMsg(1)); err != nil {
		t.Fatal(err)
	}
	if err := ep1.Send(0, testMsg(2)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c0, 1) // reverse direction flows
	if got := ep0.Stats().DropsByCause[transport.DropFault]; got != 1 {
		t.Fatalf("0→1 fault drops = %d, want 1", got)
	}
	if got := ep1.Stats().Drops; got != 0 {
		t.Fatalf("1→0 drops = %d, want 0", got)
	}
	if c1.count() != 0 {
		t.Fatalf("blocked direction delivered %d message(s)", c1.count())
	}
}

// TestFaultDuplicate: a Duplicate verdict delivers the message twice and
// counts both copies as sends.
func TestFaultDuplicate(t *testing.T) {
	mesh := transport.NewMesh(2)
	defer mesh.Close()
	var c1 collector
	ep0, err := mesh.Endpoint(0, (&collector{}).handle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(1, c1.handle); err != nil {
		t.Fatal(err)
	}
	mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
		return transport.FaultVerdict{Duplicate: true}
	})
	if err := ep0.Send(1, testMsg(5)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c1, 2)
	if s := ep0.Stats(); s.Sends != 2 {
		t.Fatalf("sends = %d for one duplicated message, want 2", s.Sends)
	}
}

// TestFaultDelay: a delayed message arrives no earlier than its delay, and
// its send is only counted at delivery.
func TestFaultDelay(t *testing.T) {
	const delay = 100 * time.Millisecond
	mesh := transport.NewMesh(2)
	defer mesh.Close()
	var c1 collector
	ep0, err := mesh.Endpoint(0, (&collector{}).handle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(1, c1.handle); err != nil {
		t.Fatal(err)
	}
	mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
		return transport.FaultVerdict{Delay: delay}
	})
	start := time.Now()
	if err := ep0.Send(1, testMsg(7)); err != nil {
		t.Fatal(err)
	}
	if s := ep0.Stats(); s.Sends != 0 {
		t.Fatalf("send counted before the delay elapsed: %v", s)
	}
	waitCount(t, &c1, 1)
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("message arrived after %v, before its %v delay", elapsed, delay)
	}
	if s := ep0.Stats(); s.Sends != 1 {
		t.Fatalf("sends = %d after delayed delivery, want 1", s.Sends)
	}
}

// TestFaultDelayedDropsOnClosedMesh: a message still in its delay window
// when the fabric closes becomes a closed-drop, not a panic.
func TestFaultDelayedDropsOnClosedMesh(t *testing.T) {
	mesh := transport.NewMesh(2)
	var c1 collector
	ep0, err := mesh.Endpoint(0, (&collector{}).handle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(1, c1.handle); err != nil {
		t.Fatal(err)
	}
	mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
		return transport.FaultVerdict{Delay: 30 * time.Millisecond}
	})
	if err := ep0.Send(1, testMsg(1)); err != nil {
		t.Fatal(err)
	}
	mesh.Close()
	waitStats(t, ep0, func(s transport.Stats) bool {
		return s.DropsByCause[transport.DropClosed] >= 1
	})
	if c1.count() != 0 {
		t.Fatal("delayed message delivered through a closed mesh")
	}
}
