package transport

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameRoundTrip drives arbitrary payloads through writeFrame/readFrame
// — the codec pair under the TCP transport's wire format, also watched
// statically by the codecsym analyzer. Invariants: any payload up to
// maxFrame survives a round trip byte-for-byte, an oversize payload is
// rejected on write (never silently truncated), and reading a stream with
// trailing garbage still yields the first frame intact.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x00})
	f.Add([]byte("twostep"))
	f.Add(bytes.Repeat([]byte{0xa5}, 1<<12))

	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		err := writeFrame(&buf, payload)
		if len(payload) > maxFrame {
			if !errors.Is(err, ErrOversize) {
				t.Fatalf("writeFrame(%d bytes) = %v, want ErrOversize", len(payload), err)
			}
			return
		}
		if err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(payload), err)
		}
		if got := buf.Len(); got != frameHeaderLen+len(payload) {
			t.Fatalf("frame is %d bytes, want header(%d)+payload(%d)", got, frameHeaderLen, len(payload))
		}

		// Trailing garbage must not bleed into the decoded frame.
		buf.Write([]byte{0xde, 0xad})
		var scratch []byte
		got, err := readFrame(&buf, &scratch)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: wrote %d bytes, read %d", len(payload), len(got))
		}
	})
}
