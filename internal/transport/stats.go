package transport

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/consensus"
)

// DropCause classifies why a transport dropped a message instead of
// delivering it. Dropping is legal under the at-most-once contract — the
// protocols retransmit on their timers — but every drop is counted so loss
// is observable (see docs/TRANSPORT.md).
type DropCause string

const (
	// DropQueueFull: the destination's bounded queue (per-peer outbound
	// queue for TCP, inbox for Mesh) was full.
	DropQueueFull DropCause = "queue-full"
	// DropConn: the link was down — a dial or framed write failed, or the
	// reconnect backoff window was still open.
	DropConn DropCause = "conn"
	// DropOversize: the encoded frame exceeded maxFrame.
	DropOversize DropCause = "oversize"
	// DropClosed: the transport was already closed.
	DropClosed DropCause = "closed"
	// DropBadSender: an inbound frame named a sender that is negative or
	// not in the address book; it was rejected before reaching protocol
	// code.
	DropBadSender DropCause = "bad-sender"
	// DropFault: an injected fault (Mesh.SetFault) discarded the message.
	// Distinct from the organic causes so chaos runs can tell deliberate
	// loss from real backpressure.
	DropFault DropCause = "fault"
)

// dropCauseOrder fixes the rendering order of Stats.String.
var dropCauseOrder = []DropCause{
	DropQueueFull, DropConn, DropOversize, DropClosed, DropBadSender, DropFault,
}

// Stats is a point-in-time snapshot of a transport's counters.
type Stats struct {
	// Enqueued counts messages accepted into an outbound queue by Send.
	Enqueued uint64
	// Sends counts frames actually written to the wire (for Mesh:
	// delivered into the destination inbox).
	Sends uint64
	// Drops counts messages dropped, across all causes.
	Drops uint64
	// Reconnects counts successful re-dials after a connection was lost.
	Reconnects uint64
	// BytesSent and BytesRecv count framed wire bytes (zero for Mesh,
	// which passes messages by reference).
	BytesSent uint64
	BytesRecv uint64
	// QueueDepth is the number of messages currently queued.
	QueueDepth int
	// DropsByCause breaks Drops down by cause.
	DropsByCause map[DropCause]uint64
	// DropsByPeer breaks Drops down by peer: the destination for outbound
	// causes, the claimed source for bad-sender.
	DropsByPeer map[consensus.ProcessID]uint64
}

// Merge returns the field-wise sum of s and o (queue depths add, maps
// union). Useful for aggregating endpoint stats into a fabric view.
func (s Stats) Merge(o Stats) Stats {
	out := s
	out.Enqueued += o.Enqueued
	out.Sends += o.Sends
	out.Drops += o.Drops
	out.Reconnects += o.Reconnects
	out.BytesSent += o.BytesSent
	out.BytesRecv += o.BytesRecv
	out.QueueDepth += o.QueueDepth
	if len(o.DropsByCause) > 0 {
		m := make(map[DropCause]uint64, len(s.DropsByCause)+len(o.DropsByCause))
		for k, v := range s.DropsByCause {
			m[k] = v
		}
		for k, v := range o.DropsByCause {
			m[k] += v
		}
		out.DropsByCause = m
	}
	if len(o.DropsByPeer) > 0 {
		m := make(map[consensus.ProcessID]uint64, len(s.DropsByPeer)+len(o.DropsByPeer))
		for k, v := range s.DropsByPeer {
			m[k] = v
		}
		for k, v := range o.DropsByPeer {
			m[k] += v
		}
		out.DropsByPeer = m
	}
	return out
}

// String renders a stable one-line summary, e.g.
//
//	sends=42 drops=3 (conn=2 queue-full=1) reconnects=1 queued=0 out=9801 in=7730
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sends=%d drops=%d", s.Sends, s.Drops)
	if s.Drops > 0 {
		parts := make([]string, 0, len(dropCauseOrder))
		for _, c := range dropCauseOrder {
			if n := s.DropsByCause[c]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", c, n))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, " "))
		}
	}
	fmt.Fprintf(&b, " reconnects=%d queued=%d out=%d in=%d",
		s.Reconnects, s.QueueDepth, s.BytesSent, s.BytesRecv)
	return b.String()
}

// counters is the mutable tally behind Stats snapshots. The zero value is
// ready to use; all methods are safe for concurrent use.
type counters struct {
	mu         sync.Mutex
	enqueued   uint64
	sends      uint64
	drops      uint64
	reconnects uint64
	bytesSent  uint64
	bytesRecv  uint64
	queueDepth int
	byCause    map[DropCause]uint64
	byPeer     map[consensus.ProcessID]uint64
}

func (c *counters) enqueue() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enqueued++
	c.queueDepth++
}

func (c *counters) dequeue() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queueDepth--
}

func (c *counters) sent(bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sends++
	c.bytesSent += uint64(bytes)
}

func (c *counters) received(bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytesRecv += uint64(bytes)
}

func (c *counters) drop(cause DropCause, peer consensus.ProcessID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drops++
	if c.byCause == nil {
		c.byCause = make(map[DropCause]uint64)
	}
	c.byCause[cause]++
	if c.byPeer == nil {
		c.byPeer = make(map[consensus.ProcessID]uint64)
	}
	c.byPeer[peer]++
}

func (c *counters) reconnect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reconnects++
}

func (c *counters) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Enqueued:   c.enqueued,
		Sends:      c.sends,
		Drops:      c.drops,
		Reconnects: c.reconnects,
		BytesSent:  c.bytesSent,
		BytesRecv:  c.bytesRecv,
		QueueDepth: c.queueDepth,
	}
	if len(c.byCause) > 0 {
		s.DropsByCause = make(map[DropCause]uint64, len(c.byCause))
		for k, v := range c.byCause {
			s.DropsByCause[k] = v
		}
	}
	if len(c.byPeer) > 0 {
		s.DropsByPeer = make(map[consensus.ProcessID]uint64, len(c.byPeer))
		for k, v := range c.byPeer {
			s.DropsByPeer[k] = v
		}
	}
	return s
}
