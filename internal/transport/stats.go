package transport

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/consensus"
)

// DropCause classifies why a transport dropped a message instead of
// delivering it. Dropping is legal under the at-most-once contract — the
// protocols retransmit on their timers — but every drop is counted so loss
// is observable (see docs/TRANSPORT.md).
type DropCause string

const (
	// DropQueueFull: the destination's bounded queue (per-peer outbound
	// queue for TCP, inbox for Mesh) was full.
	DropQueueFull DropCause = "queue-full"
	// DropConn: the link was down — a dial or framed write failed, or the
	// reconnect backoff window was still open.
	DropConn DropCause = "conn"
	// DropOversize: the encoded frame exceeded maxFrame.
	DropOversize DropCause = "oversize"
	// DropClosed: the transport was already closed.
	DropClosed DropCause = "closed"
	// DropBadSender: an inbound frame named a sender that is negative or
	// not in the address book; it was rejected before reaching protocol
	// code.
	DropBadSender DropCause = "bad-sender"
	// DropFault: an injected fault (Mesh.SetFault) discarded the message.
	// Distinct from the organic causes so chaos runs can tell deliberate
	// loss from real backpressure.
	DropFault DropCause = "fault"
)

// dropCauseOrder fixes the rendering order of Stats.String.
var dropCauseOrder = []DropCause{
	DropQueueFull, DropConn, DropOversize, DropClosed, DropBadSender, DropFault,
}

// Stats is a point-in-time snapshot of a transport's counters.
type Stats struct {
	// Enqueued counts messages accepted into an outbound queue by Send.
	Enqueued uint64
	// Sends counts frames actually written to the wire (for Mesh:
	// delivered into the destination inbox).
	Sends uint64
	// Drops counts messages dropped, across all causes.
	Drops uint64
	// Reconnects counts successful re-dials after a connection was lost.
	Reconnects uint64
	// BytesSent and BytesRecv count framed wire bytes (zero for Mesh,
	// which passes messages by reference).
	BytesSent uint64
	BytesRecv uint64
	// QueueDepth is the number of messages currently queued.
	QueueDepth int
	// DropsByCause breaks Drops down by cause.
	DropsByCause map[DropCause]uint64
	// DropsByPeer breaks Drops down by peer: the destination for outbound
	// causes, the claimed source for bad-sender.
	DropsByPeer map[consensus.ProcessID]uint64
}

// Merge returns the field-wise sum of s and o (queue depths add, maps
// union). Useful for aggregating endpoint stats into a fabric view.
func (s Stats) Merge(o Stats) Stats {
	out := s
	out.Enqueued += o.Enqueued
	out.Sends += o.Sends
	out.Drops += o.Drops
	out.Reconnects += o.Reconnects
	out.BytesSent += o.BytesSent
	out.BytesRecv += o.BytesRecv
	out.QueueDepth += o.QueueDepth
	if len(o.DropsByCause) > 0 {
		m := make(map[DropCause]uint64, len(s.DropsByCause)+len(o.DropsByCause))
		for k, v := range s.DropsByCause {
			m[k] = v
		}
		for k, v := range o.DropsByCause {
			m[k] += v
		}
		out.DropsByCause = m
	}
	if len(o.DropsByPeer) > 0 {
		m := make(map[consensus.ProcessID]uint64, len(s.DropsByPeer)+len(o.DropsByPeer))
		for k, v := range s.DropsByPeer {
			m[k] = v
		}
		for k, v := range o.DropsByPeer {
			m[k] += v
		}
		out.DropsByPeer = m
	}
	return out
}

// String renders a stable one-line summary, e.g.
//
//	sends=42 drops=3 (conn=2 queue-full=1) reconnects=1 queued=0 out=9801 in=7730
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sends=%d drops=%d", s.Sends, s.Drops)
	if s.Drops > 0 {
		parts := make([]string, 0, len(dropCauseOrder))
		for _, c := range dropCauseOrder {
			if n := s.DropsByCause[c]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", c, n))
			}
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, " "))
		}
	}
	fmt.Fprintf(&b, " reconnects=%d queued=%d out=%d in=%d",
		s.Reconnects, s.QueueDepth, s.BytesSent, s.BytesRecv)
	return b.String()
}

// counters is the mutable tally behind Stats snapshots. The zero value is
// ready to use; all methods are safe for concurrent use.
//
// The scalar counts are sync/atomic wrappers, not mutex-guarded fields: the
// happy path bumps them once per Send and once per wire write, from every
// sender goroutine and every per-peer writer at once, and a shared Mutex
// there serializes exactly the goroutines the per-peer queues exist to
// decouple. Only the two drop-breakdown maps keep the lock, and they sit on
// the drop path, which is off the hot path by definition. The atomicguard
// analyzer holds every access to the atomic discipline. A snapshot is
// consequently not a cross-counter atomic cut — sends and bytesSent may
// disagree by the handful of operations in flight — which Stats tolerates:
// it feeds logs and expvar, not invariants.
type counters struct {
	enqueued   atomic.Uint64
	sends      atomic.Uint64
	drops      atomic.Uint64
	reconnects atomic.Uint64
	bytesSent  atomic.Uint64
	bytesRecv  atomic.Uint64
	queueDepth atomic.Int64

	mu      sync.Mutex // guards byCause and byPeer only
	byCause map[DropCause]uint64
	byPeer  map[consensus.ProcessID]uint64
}

func (c *counters) enqueue() {
	c.enqueued.Add(1)
	c.queueDepth.Add(1)
}

func (c *counters) dequeue() {
	c.queueDepth.Add(-1)
}

func (c *counters) sent(bytes int) {
	c.sends.Add(1)
	c.bytesSent.Add(uint64(bytes))
}

func (c *counters) received(bytes int) {
	c.bytesRecv.Add(uint64(bytes))
}

func (c *counters) drop(cause DropCause, peer consensus.ProcessID) {
	c.drops.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byCause == nil {
		c.byCause = make(map[DropCause]uint64)
	}
	c.byCause[cause]++
	if c.byPeer == nil {
		c.byPeer = make(map[consensus.ProcessID]uint64)
	}
	c.byPeer[peer]++
}

func (c *counters) reconnect() {
	c.reconnects.Add(1)
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Enqueued:   c.enqueued.Load(),
		Sends:      c.sends.Load(),
		Drops:      c.drops.Load(),
		Reconnects: c.reconnects.Load(),
		BytesSent:  c.bytesSent.Load(),
		BytesRecv:  c.bytesRecv.Load(),
		QueueDepth: int(c.queueDepth.Load()),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.byCause) > 0 {
		s.DropsByCause = make(map[DropCause]uint64, len(c.byCause))
		for k, v := range c.byCause {
			s.DropsByCause[k] = v
		}
	}
	if len(c.byPeer) > 0 {
		s.DropsByPeer = make(map[consensus.ProcessID]uint64, len(c.byPeer))
		for k, v := range c.byPeer {
			s.DropsByPeer[k] = v
		}
	}
	return s
}
