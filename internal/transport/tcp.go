package transport

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/consensus"
)

// maxFrame bounds a single wire frame, enforced on both sides: readFrame
// rejects oversized headers and writeFrame refuses to emit a frame the
// receiver would reject (one oversized message must not poison the link).
const maxFrame = 1 << 20

// frameHeaderLen is the length prefix preceding every frame.
const frameHeaderLen = 4

// Sentinel errors for the enqueue-or-drop send path, matchable with
// errors.Is. All Send errors are advisory: the message is dropped and the
// protocol timers retransmit.
var (
	// ErrClosed reports a send on a closed transport.
	ErrClosed = errors.New("transport closed")
	// ErrQueueFull reports that the peer's bounded outbound queue was full.
	ErrQueueFull = errors.New("outbound queue full")
	// ErrOversize reports a frame exceeding maxFrame.
	ErrOversize = errors.New("frame exceeds size limit")
)

// tcpFrame is the wire envelope: the sender identity plus the codec's
// self-describing message encoding.
type tcpFrame struct {
	From int             `json:"from"`
	Msg  json.RawMessage `json:"msg"`
}

// TCPOptions tunes the per-peer send path. The zero value of any field
// selects its default.
type TCPOptions struct {
	// QueueDepth bounds each peer's outbound queue (default 1024). When
	// the queue is full Send drops the message and returns ErrQueueFull.
	QueueDepth int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds one framed write; a peer that stops reading
	// stalls its own writer for at most this long (default 2s).
	WriteTimeout time.Duration
	// BackoffMin and BackoffMax bound the exponential reconnect backoff
	// (defaults 25ms and 1s). While the backoff window is open, frames to
	// that peer are dropped immediately rather than queued behind a dial.
	BackoffMin time.Duration
	// BackoffMax caps the backoff; jitter of up to backoff/2 is added.
	BackoffMax time.Duration
	// LinkDelay, when non-nil, returns an artificial one-way latency for
	// frames to each peer (internal/wan derives it from a geo topology).
	// Frames are stamped at enqueue time and the peer's writer goroutine
	// sleeps until stamp+delay before writing, which preserves per-peer
	// FIFO order and lets concurrent frames pipeline — a link with
	// latency, not a link with reduced bandwidth. The function must be
	// safe for concurrent use and is consulted once per Send. Nil (the
	// default) adds no delay.
	LinkDelay func(to consensus.ProcessID) time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 25 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = time.Second
		if o.BackoffMax < o.BackoffMin {
			o.BackoffMax = o.BackoffMin
		}
	}
	return o
}

// TCP is a transport over TCP with 4-byte length-prefixed JSON frames.
//
// Each peer has a bounded outbound queue drained by a dedicated writer
// goroutine, so a slow or dead peer can never stall sends to healthy ones:
// Send only enqueues (or drops, when the queue is full) and returns
// immediately. The writer dials lazily, applies write deadlines, and
// reconnects with capped exponential backoff plus jitter; while the link is
// down its frames are dropped, which the protocols tolerate through timer
// retransmission. Stats exposes send/drop/reconnect counters.
type TCP struct {
	self    consensus.ProcessID
	codec   *consensus.Codec
	handler Handler
	opts    TCPOptions

	ln net.Listener
	wg sync.WaitGroup

	// dialCtx is canceled on Close, aborting in-flight dials.
	dialCtx    context.Context
	dialCancel context.CancelFunc

	stats counters

	mu      sync.Mutex
	addrs   map[consensus.ProcessID]string
	peers   map[consensus.ProcessID]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool
}

var _ Transport = (*TCP)(nil)

// tcpQueued is one outbound frame plus its earliest write instant (zero
// when no LinkDelay is configured).
type tcpQueued struct {
	frame []byte
	due   time.Time
}

// tcpPeer is one peer's outbound state: the frame queue its writer drains
// and the link state shared between the writer and SetPeerAddr/Close.
type tcpPeer struct {
	id    consensus.ProcessID
	queue chan tcpQueued

	mu       sync.Mutex
	conn     net.Conn
	closed   bool
	everConn bool          // a dial has succeeded before (next success is a reconnect)
	backoff  time.Duration // next backoff step; 0 means start at BackoffMin
	nextDial time.Time     // dial attempts before this instant drop the frame
}

// NewTCP starts listening on addrs[self] with default options and delivers
// inbound messages to handler. addrs must name every peer, including self.
func NewTCP(
	self consensus.ProcessID,
	addrs map[consensus.ProcessID]string,
	codec *consensus.Codec,
	handler Handler,
) (*TCP, error) {
	return NewTCPWithOptions(self, addrs, codec, handler, TCPOptions{})
}

// NewTCPWithOptions is NewTCP with explicit send-path tuning.
func NewTCPWithOptions(
	self consensus.ProcessID,
	addrs map[consensus.ProcessID]string,
	codec *consensus.Codec,
	handler Handler,
	opts TCPOptions,
) (*TCP, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("tcp: no address for self (%s)", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCP{
		self:       self,
		codec:      codec,
		handler:    handler,
		opts:       opts.withDefaults(),
		ln:         ln,
		dialCtx:    ctx,
		dialCancel: cancel,
		addrs:      make(map[consensus.ProcessID]string, len(addrs)),
		peers:      make(map[consensus.ProcessID]*tcpPeer),
		inbound:    make(map[net.Conn]struct{}),
	}
	for p, a := range addrs {
		t.addrs[p] = a
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeerAddr updates the address book entry for a peer, dropping any
// established connection so the writer re-dials the new address promptly.
// Useful when peers bind to ":0" and publish their real addresses after
// startup.
func (t *TCP) SetPeerAddr(p consensus.ProcessID, addr string) {
	t.mu.Lock()
	t.addrs[p] = addr
	pe := t.peers[p]
	t.mu.Unlock()
	if pe != nil {
		pe.resetLink()
	}
}

// Self implements Transport.
func (t *TCP) Self() consensus.ProcessID { return t.self }

// Stats implements Transport.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	// Per-connection scratch: the frame buffer and envelope are reused
	// across iterations (json.RawMessage unmarshals by appending into the
	// existing slice), so a busy link settles into zero steady-state
	// allocations for framing.
	var buf []byte
	var f tcpFrame
	for {
		frame, err := readFrame(conn, &buf)
		if err != nil {
			return
		}
		t.stats.received(frameHeaderLen + len(frame))
		f.From = -1
		f.Msg = f.Msg[:0]
		if err := json.Unmarshal(frame, &f); err != nil {
			return
		}
		from := consensus.ProcessID(f.From)
		if !t.knownPeer(from) {
			// A wire-supplied identity that is negative or absent from
			// the address book never reaches protocol code.
			t.stats.drop(DropBadSender, from)
			continue
		}
		msg, err := t.codec.Decode(f.Msg)
		if err != nil {
			continue // unknown kind: ignore, stay connected
		}
		t.handler(from, msg)
	}
}

// knownPeer reports whether p is a valid sender identity.
func (t *TCP) knownPeer(p consensus.ProcessID) bool {
	if int(p) < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.addrs[p]
	return ok
}

// Send implements Transport: it encodes msg and enqueues the frame on the
// peer's outbound queue, never blocking on network I/O. A full queue,
// oversized frame, or closed transport drops the message with an advisory
// error; the protocols retransmit on their timers. The frame envelope is
// spliced by hand around the codec output — the message body is marshaled
// exactly once on this path.
func (t *TCP) Send(to consensus.ProcessID, msg consensus.Message) error {
	body, err := t.codec.Encode(msg)
	if err != nil {
		return fmt.Errorf("tcp send: %w", err)
	}
	frame := make([]byte, 0, len(`{"from":,"msg":}`)+20+len(body))
	frame = append(frame, `{"from":`...)
	frame = strconv.AppendInt(frame, int64(t.self), 10)
	frame = append(frame, `,"msg":`...)
	frame = append(frame, body...)
	frame = append(frame, '}')
	if len(frame) > maxFrame {
		t.stats.drop(DropOversize, to)
		return fmt.Errorf("tcp send to %s: %d-byte frame: %w", to, len(frame), ErrOversize)
	}
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	q := tcpQueued{frame: frame}
	if t.opts.LinkDelay != nil {
		if d := t.opts.LinkDelay(to); d > 0 {
			q.due = time.Now().Add(d)
		}
	}
	select {
	case p.queue <- q:
		t.stats.enqueue()
		return nil
	default:
		t.stats.drop(DropQueueFull, to)
		return fmt.Errorf("tcp send to %s: %w", to, ErrQueueFull)
	}
}

// peer returns (starting if needed) the outbound queue state for a peer.
func (t *TCP) peer(to consensus.ProcessID) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		t.stats.drop(DropClosed, to)
		return nil, fmt.Errorf("tcp send to %s: %w", to, ErrClosed)
	}
	if p, ok := t.peers[to]; ok {
		return p, nil
	}
	if _, ok := t.addrs[to]; !ok {
		return nil, fmt.Errorf("tcp: no address for %s", to)
	}
	p := &tcpPeer{id: to, queue: make(chan tcpQueued, t.opts.QueueDepth)}
	t.peers[to] = p
	t.wg.Add(1)
	go t.writeLoop(p)
	return p, nil
}

// writeLoop drains one peer's queue until the transport closes.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	// Jitter source; transport is a host package, so wall-clock seeding is
	// fine (the determinism contract covers only the protocol packages).
	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(p.id)<<32))
	for {
		select {
		case <-t.dialCtx.Done():
			p.shutdown()
			return
		case q := <-p.queue:
			t.stats.dequeue()
			if !q.due.IsZero() {
				// LinkDelay shim: hold the frame until its due instant.
				// Later frames' windows overlap (stamps are taken at
				// enqueue), so a busy link still pipelines.
				if wait := time.Until(q.due); wait > 0 {
					timer := time.NewTimer(wait)
					select {
					case <-t.dialCtx.Done():
						timer.Stop()
						p.shutdown()
						return
					case <-timer.C:
					}
				}
			}
			t.writeOne(p, q.frame, rng)
		}
	}
}

// writeOne delivers one frame: it ensures a connection (honouring the
// backoff window — frames due before the next allowed dial are dropped
// immediately so the writer never stalls on a dead peer) and performs one
// deadline-bounded framed write. Any failure drops the frame.
func (t *TCP) writeOne(p *tcpPeer, frame []byte, rng *rand.Rand) {
	conn := p.current()
	if conn == nil {
		c, ok := t.dialPeer(p, rng)
		if !ok {
			t.stats.drop(DropConn, p.id)
			return
		}
		conn = c
	}
	conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if err := writeFrame(conn, frame); err != nil {
		p.dropConn(conn)
		t.armBackoff(p, rng)
		t.stats.drop(DropConn, p.id)
		return
	}
	t.stats.sent(frameHeaderLen + len(frame))
}

// dialPeer attempts one connection to p's current address. It fails
// immediately (without blocking) while the backoff window is open.
func (t *TCP) dialPeer(p *tcpPeer, rng *rand.Rand) (net.Conn, bool) {
	if !p.dialDue() {
		return nil, false
	}
	t.mu.Lock()
	addr, ok := t.addrs[p.id]
	t.mu.Unlock()
	if !ok {
		return nil, false
	}
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	c, err := d.DialContext(t.dialCtx, "tcp", addr)
	if err != nil {
		t.armBackoff(p, rng)
		return nil, false
	}
	reconnected, adopted := p.adopt(c)
	if !adopted {
		c.Close() // transport closed while dialing
		return nil, false
	}
	if reconnected {
		t.stats.reconnect()
	}
	return c, true
}

// armBackoff opens p's backoff window after a dial or write failure,
// doubling the delay up to BackoffMax with up to 50% jitter.
func (t *TCP) armBackoff(p *tcpPeer, rng *rand.Rand) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.backoff
	if b < t.opts.BackoffMin {
		b = t.opts.BackoffMin
	}
	jitter := time.Duration(rng.Int63n(int64(b)/2 + 1))
	p.nextDial = time.Now().Add(b + jitter)
	p.backoff = 2 * b
	if p.backoff > t.opts.BackoffMax {
		p.backoff = t.opts.BackoffMax
	}
}

// current returns the established connection, if any.
func (p *tcpPeer) current() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// dialDue reports whether the backoff window has elapsed.
func (p *tcpPeer) dialDue() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !time.Now().Before(p.nextDial)
}

// adopt installs a freshly dialed connection, reporting whether it is a
// reconnect and whether the peer is still open.
func (p *tcpPeer) adopt(c net.Conn) (reconnected, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, false
	}
	p.conn = c
	reconnected = p.everConn
	p.everConn = true
	p.backoff = 0
	p.nextDial = time.Time{}
	return reconnected, true
}

// dropConn closes and forgets a failed connection (if still current).
func (p *tcpPeer) dropConn(c net.Conn) {
	c.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == c {
		p.conn = nil
	}
}

// resetLink drops the connection and clears the backoff so the writer
// re-dials (a possibly updated address) on the next frame.
func (p *tcpPeer) resetLink() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.backoff = 0
	p.nextDial = time.Time{}
}

// shutdown marks the peer closed and severs its connection, unblocking any
// in-flight write.
func (p *tcpPeer) shutdown() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	t.dialCancel()
	for _, p := range peers {
		p.shutdown()
	}
	for _, c := range inbound {
		c.Close()
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// readFrame reads one length-prefixed frame into *scratch, growing it as
// needed; the returned slice aliases *scratch and is valid until the next
// call.
func readFrame(r io.Reader, scratch *[]byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("frame of %d bytes: %w", size, ErrOversize)
	}
	if uint32(cap(*scratch)) < size {
		*scratch = make([]byte, size)
	}
	buf := (*scratch)[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeFrame emits one length-prefixed frame, refusing sizes the receiving
// side's readFrame would reject (which would poison the connection there).
func writeFrame(w io.Writer, frame []byte) error {
	if len(frame) > maxFrame {
		return fmt.Errorf("frame of %d bytes: %w", len(frame), ErrOversize)
	}
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}
