package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/consensus"
)

// maxFrame bounds a single wire frame (defense against corrupt peers).
const maxFrame = 1 << 20

// tcpFrame is the wire envelope: the sender identity plus the codec's
// self-describing message encoding.
type tcpFrame struct {
	From int             `json:"from"`
	Msg  json.RawMessage `json:"msg"`
}

// TCP is a transport over TCP with 4-byte length-prefixed JSON frames.
// Outbound connections are dialed lazily and re-dialed on failure; a failed
// send drops the message (protocol timers retransmit).
type TCP struct {
	self    consensus.ProcessID
	addrs   map[consensus.ProcessID]string
	codec   *consensus.Codec
	handler Handler

	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	conns   map[consensus.ProcessID]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool
}

var _ Transport = (*TCP)(nil)

// NewTCP starts listening on addrs[self] and delivers inbound messages to
// handler. addrs must name every peer, including self.
func NewTCP(
	self consensus.ProcessID,
	addrs map[consensus.ProcessID]string,
	codec *consensus.Codec,
	handler Handler,
) (*TCP, error) {
	addr, ok := addrs[self]
	if !ok {
		return nil, fmt.Errorf("tcp: no address for self (%s)", self)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	t := &TCP{
		self:    self,
		addrs:   make(map[consensus.ProcessID]string, len(addrs)),
		codec:   codec,
		handler: handler,
		ln:      ln,
		conns:   make(map[consensus.ProcessID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	for p, a := range addrs {
		t.addrs[p] = a
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeerAddr updates the address book entry for a peer, dropping any
// cached connection. Useful when peers bind to ":0" and publish their real
// addresses after startup.
func (t *TCP) SetPeerAddr(p consensus.ProcessID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[p] = addr
	if c, ok := t.conns[p]; ok {
		c.Close()
		delete(t.conns, p)
	}
}

// Self implements Transport.
func (t *TCP) Self() consensus.ProcessID { return t.self }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		var f tcpFrame
		if err := json.Unmarshal(frame, &f); err != nil {
			return
		}
		msg, err := t.codec.Decode(f.Msg)
		if err != nil {
			continue // unknown kind: ignore, stay connected
		}
		t.handler(consensus.ProcessID(f.From), msg)
	}
}

// Send implements Transport.
func (t *TCP) Send(to consensus.ProcessID, msg consensus.Message) error {
	body, err := t.codec.Encode(msg)
	if err != nil {
		return fmt.Errorf("tcp send: %w", err)
	}
	frame, err := json.Marshal(tcpFrame{From: int(t.self), Msg: body})
	if err != nil {
		return fmt.Errorf("tcp send: %w", err)
	}
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := writeFrame(conn, frame); err != nil {
		// Drop the connection; the next send re-dials.
		conn.Close()
		if t.conns[to] == conn {
			delete(t.conns, to)
		}
		return fmt.Errorf("tcp send to %s: %w", to, err)
	}
	return nil
}

// conn returns a cached or freshly dialed connection to the peer.
func (t *TCP) conn(to consensus.ProcessID) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("tcp: closed")
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcp: no address for %s", to)
	}
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, fmt.Errorf("tcp dial %s: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		c.Close()
		return nil, errors.New("tcp: closed")
	}
	if prev, ok := t.conns[to]; ok {
		c.Close() // lost the race; reuse the existing connection
		return prev, nil
	}
	t.conns[to] = c
	return c, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, c := range t.conns {
		c.Close()
	}
	t.conns = make(map[consensus.ProcessID]net.Conn)
	for c := range t.inbound {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, frame []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}
