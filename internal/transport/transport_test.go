package transport_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

// collector gathers delivered messages behind a mutex.
type collector struct {
	mu   sync.Mutex
	got  []consensus.Message
	from []consensus.ProcessID
}

func (c *collector) handle(from consensus.ProcessID, msg consensus.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, msg)
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitCount(t *testing.T, c *collector, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages, have %d", want, c.count())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMeshDelivery(t *testing.T) {
	mesh := transport.NewMesh(3)
	defer mesh.Close()
	var c0, c1 collector
	ep0, err := mesh.Endpoint(0, c0.handle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(1, c1.handle); err != nil {
		t.Fatal(err)
	}
	if ep0.Self() != 0 {
		t.Fatalf("Self = %v", ep0.Self())
	}
	msg := &core.DecideMsg{Value: consensus.IntValue(7)}
	if err := ep0.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c1, 1)
	if c1.from[0] != 0 {
		t.Fatalf("from = %v", c1.from[0])
	}
	if got, ok := c1.got[0].(*core.DecideMsg); !ok || got.Value != consensus.IntValue(7) {
		t.Fatalf("got %#v", c1.got[0])
	}
}

func TestMeshSendOutOfRange(t *testing.T) {
	mesh := transport.NewMesh(2)
	defer mesh.Close()
	var c collector
	ep, err := mesh.Endpoint(0, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(5, &core.DecideMsg{}); err == nil {
		t.Fatal("out-of-range send accepted")
	}
}

func TestMeshClosedSendFails(t *testing.T) {
	mesh := transport.NewMesh(2)
	var c collector
	ep, err := mesh.Endpoint(0, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	mesh.Close()
	if err := ep.Send(1, &core.DecideMsg{}); err == nil {
		t.Fatal("send on closed mesh accepted")
	}
}

func newTCPPair(t *testing.T) (*transport.TCP, *transport.TCP, *collector, *collector) {
	t.Helper()
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	addrs := map[consensus.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	var c0, c1 collector
	t0, err := transport.NewTCP(0, addrs, codec, c0.handle)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := transport.NewTCP(1, addrs, codec, c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	t0.SetPeerAddr(1, t1.Addr())
	t1.SetPeerAddr(0, t0.Addr())
	return t0, t1, &c0, &c1
}

func TestTCPRoundTrip(t *testing.T) {
	t0, t1, c0, c1 := newTCPPair(t)
	defer t0.Close()
	defer t1.Close()

	if err := t0.Send(1, &core.TwoB{Ballot: 3, Value: consensus.IntValue(9)}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, c1, 1)
	got, ok := c1.got[0].(*core.TwoB)
	if !ok || got.Ballot != 3 || got.Value != consensus.IntValue(9) {
		t.Fatalf("got %#v", c1.got[0])
	}

	if err := t1.Send(0, &core.DecideMsg{Value: consensus.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, c0, 1)
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	addrs := map[consensus.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	var c0, c1 collector
	t0, err := transport.NewTCP(0, addrs, codec, c0.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := transport.NewTCP(1, addrs, codec, c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	t0.SetPeerAddr(1, t1.Addr())
	oldAddr := t1.Addr()

	if err := t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c1, 1)

	// Restart peer 1 on the same port.
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}
	addrs[1] = oldAddr
	t1b, err := transport.NewTCP(1, addrs, codec, c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer t1b.Close()

	// Send is enqueue-or-drop: frames sent into the dead connection are
	// dropped by the writer, which re-dials with backoff. Retrying the
	// send until delivery is exactly the protocol-timer retransmission
	// pattern.
	deadline := time.Now().Add(5 * time.Second)
	for c1.count() < 2 {
		_ = t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(2)})
		if time.Now().After(deadline) {
			t.Fatal("delivery never resumed after peer restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	addrs := map[consensus.ProcessID]string{0: "127.0.0.1:0"}
	var c collector
	tr, err := transport.NewTCP(0, addrs, codec, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(7, &core.DecideMsg{}); err == nil {
		t.Fatal("send to unknown peer accepted")
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	t0, t1, _, _ := newTCPPair(t)
	if err := t0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := t0.Close(); err != nil {
		t.Fatal(err)
	}
	t1.Close()
}
