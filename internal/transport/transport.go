// Package transport provides real message transports for running the
// protocol state machines outside the simulator: an in-process channel mesh
// for tests, examples and throughput benchmarks, and a TCP transport with
// length-prefixed JSON framing for multi-process deployments.
//
// A transport delivers whole messages with their sender identity; ordering
// is per-link FIFO and delivery is at-most-once per send (the protocols
// tolerate loss through retransmission on their timers, per their design
// for partial synchrony).
package transport

import "repro/internal/consensus"

// Handler consumes one received message. Implementations of Transport call
// the handler sequentially from a single receiving goroutine per peer;
// handlers must be safe for concurrent invocation across peers.
type Handler func(from consensus.ProcessID, msg consensus.Message)

// Transport sends messages to peers and hands received ones to the handler.
type Transport interface {
	// Self returns the local process identity.
	Self() consensus.ProcessID
	// Send transmits msg to the peer. Errors are advisory: a send to a
	// crashed or unreachable peer may simply drop.
	Send(to consensus.ProcessID, msg consensus.Message) error
	// Close releases resources and stops delivery.
	Close() error
}
