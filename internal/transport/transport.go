// Package transport provides real message transports for running the
// protocol state machines outside the simulator: an in-process channel mesh
// for tests, examples and throughput benchmarks, and a TCP transport with
// length-prefixed JSON framing for multi-process deployments.
//
// A transport delivers whole messages with their sender identity; ordering
// is per-link FIFO and delivery is at-most-once per send (the protocols
// tolerate loss through retransmission on their timers, per their design
// for partial synchrony). Sends never block on a slow destination: each
// link has a bounded queue and messages beyond it drop. Every transport
// counts sends, drops by cause, reconnects, bytes and queue depth, exposed
// through Stats — see docs/TRANSPORT.md for the full contract.
package transport

import "repro/internal/consensus"

// Handler consumes one received message. Implementations of Transport call
// the handler sequentially from a single receiving goroutine per peer;
// handlers must be safe for concurrent invocation across peers.
type Handler func(from consensus.ProcessID, msg consensus.Message)

// Transport sends messages to peers and hands received ones to the handler.
type Transport interface {
	// Self returns the local process identity.
	Self() consensus.ProcessID
	// Send transmits msg to the peer without blocking on network I/O.
	// Errors are advisory: a send to a crashed or unreachable peer, or one
	// whose queue is full, drops the message (timers retransmit).
	Send(to consensus.ProcessID, msg consensus.Message) error
	// Stats returns a snapshot of the transport's counters.
	Stats() Stats
	// Close releases resources and stops delivery.
	Close() error
}
