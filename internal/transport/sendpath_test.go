package transport_test

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/transport"
)

// testCodec returns a codec with the core protocol messages registered.
func testCodec() *consensus.Codec {
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	return codec
}

// fastOpts are tight send-path timings so failure paths resolve quickly in
// tests.
var fastOpts = transport.TCPOptions{
	QueueDepth:   64,
	DialTimeout:  500 * time.Millisecond,
	WriteTimeout: 300 * time.Millisecond,
	BackoffMin:   10 * time.Millisecond,
	BackoffMax:   200 * time.Millisecond,
}

// TestTCPSlowPeerDoesNotBlockHealthy is the head-of-line-blocking
// regression test: with one peer connected but never reading from its
// socket, 1000 sends to a healthy peer must all complete in under a second.
// Under the old global-lock send path the stalled write held the transport
// mutex and froze every peer.
func TestTCPSlowPeerDoesNotBlockHealthy(t *testing.T) {
	codec := testCodec()

	// Stalled peer: accepts connections and then never reads.
	stall, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	var (
		heldMu sync.Mutex
		held   []net.Conn
	)
	defer func() {
		heldMu.Lock()
		defer heldMu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := stall.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c)
			heldMu.Unlock()
		}
	}()

	addrs := map[consensus.ProcessID]string{
		0: "127.0.0.1:0",
		1: "127.0.0.1:0",
		2: stall.Addr().String(),
	}
	var c0, c1 collector
	opts := fastOpts
	opts.QueueDepth = 1024
	t0, err := transport.NewTCPWithOptions(0, addrs, codec, c0.handle, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := transport.NewTCP(1, addrs, codec, c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t0.SetPeerAddr(1, t1.Addr())

	// Wedge peer 2's writer: large frames fill the socket buffers, after
	// which each write blocks until its deadline. None of this may touch
	// sends to peer 1.
	big := &core.DecideMsg{Value: consensus.Value{Key: 1, Data: strings.Repeat("x", 256<<10)}}
	for i := 0; i < 64; i++ {
		_ = t0.Send(2, big)
	}
	time.Sleep(50 * time.Millisecond) // let the writer sink into a blocked write

	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(int64(i))}); err != nil {
			t.Fatalf("send %d to healthy peer: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("1000 sends to healthy peer took %v (head-of-line blocking)", elapsed)
	}
	waitCount(t, &c1, 1000)

	st := t0.Stats()
	if st.Enqueued < 1000 {
		t.Fatalf("Enqueued = %d, want >= 1000", st.Enqueued)
	}
	if st.BytesSent == 0 {
		t.Fatalf("BytesSent = 0 after %d wire sends", st.Sends)
	}
}

// TestTCPDeadPeerFailFastAndResume kills a peer's listener mid-run, checks
// that sends to it fail fast without blocking, restarts it on the same
// address, and checks that traffic resumes within the backoff cap.
func TestTCPDeadPeerFailFastAndResume(t *testing.T) {
	codec := testCodec()
	addrs := map[consensus.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	var c0, c1 collector
	t0, err := transport.NewTCPWithOptions(0, addrs, codec, c0.handle, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := transport.NewTCP(1, addrs, codec, c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	t0.SetPeerAddr(1, t1.Addr())
	oldAddr := t1.Addr()

	if err := t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, &c1, 1)

	// Kill the peer. Sends must return immediately (enqueue or drop); the
	// writer burns through its queue against a refused dial.
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 200; i++ {
		_ = t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(2)})
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("200 sends to a dead peer took %v, want fail-fast", elapsed)
	}
	// The writer observes the dead link within a few dial attempts.
	deadline := time.Now().Add(2 * time.Second)
	for t0.Stats().DropsByCause[transport.DropConn] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no conn drops recorded against the dead peer")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart on the same address; retransmission-style sends must get
	// through once the backoff window (capped at fastOpts.BackoffMax, plus
	// jitter) reopens.
	addrs[1] = oldAddr
	t1b, err := transport.NewTCP(1, addrs, codec, c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer t1b.Close()
	restart := time.Now()
	before := c1.count()
	deadline = time.Now().Add(5 * time.Second)
	for c1.count() == before {
		_ = t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(3)})
		if time.Now().After(deadline) {
			t.Fatal("traffic never resumed after listener restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Generous CI slack on top of the 200ms cap + 50% jitter + dial.
	if resumed := time.Since(restart); resumed > 2*time.Second {
		t.Fatalf("traffic resumed after %v, want within the backoff cap", resumed)
	}
	if st := t0.Stats(); st.Reconnects == 0 {
		t.Fatalf("Reconnects = 0 after listener restart; stats: %s", st)
	}
}

// TestTCPOversizeSendRejected checks that the frame limit is enforced at
// encode time: the oversized message errors out at the caller and the
// connection stays healthy for subsequent traffic.
func TestTCPOversizeSendRejected(t *testing.T) {
	t0, t1, _, c1 := newTCPPair(t)
	defer t0.Close()
	defer t1.Close()

	big := &core.DecideMsg{Value: consensus.Value{Key: 1, Data: strings.Repeat("x", 2<<20)}}
	err := t0.Send(1, big)
	if !errors.Is(err, transport.ErrOversize) {
		t.Fatalf("oversized send: err = %v, want ErrOversize", err)
	}
	st := t0.Stats()
	if st.DropsByCause[transport.DropOversize] != 1 {
		t.Fatalf("oversize drops = %d, want 1 (stats: %s)", st.DropsByCause[transport.DropOversize], st)
	}
	if st.DropsByPeer[1] != 1 {
		t.Fatalf("drops charged to peer 1 = %d, want 1", st.DropsByPeer[1])
	}

	// The link was never poisoned: a normal message still round-trips.
	if err := t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(5)}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, c1, 1)
}

// rawFrame writes one length-prefixed tcpFrame with an arbitrary sender id.
func rawFrame(t *testing.T, conn net.Conn, from int, body json.RawMessage) {
	t.Helper()
	frame, err := json.Marshal(struct {
		From int             `json:"from"`
		Msg  json.RawMessage `json:"msg"`
	}{From: from, Msg: body})
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := conn.Write(append(hdr[:], frame...)); err != nil {
		t.Fatal(err)
	}
}

// TestTCPRejectsUnknownSender checks that frames whose wire-supplied sender
// id is negative or absent from the address book never reach the handler.
func TestTCPRejectsUnknownSender(t *testing.T) {
	codec := testCodec()
	addrs := map[consensus.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:7999"}
	var c collector
	tr, err := transport.NewTCP(0, addrs, codec, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := codec.Encode(&core.DecideMsg{Value: consensus.IntValue(9)})
	if err != nil {
		t.Fatal(err)
	}
	rawFrame(t, conn, -1, body) // negative id
	rawFrame(t, conn, 7, body)  // not in the address book
	rawFrame(t, conn, 1, body)  // legitimate

	waitCount(t, &c, 1)
	time.Sleep(50 * time.Millisecond) // window for any spurious delivery
	if got := c.count(); got != 1 {
		t.Fatalf("delivered %d messages, want only the valid sender's", got)
	}
	if c.from[0] != 1 {
		t.Fatalf("from = %v, want 1", c.from[0])
	}
	st := tr.Stats()
	if st.DropsByCause[transport.DropBadSender] != 2 {
		t.Fatalf("bad-sender drops = %d, want 2 (stats: %s)", st.DropsByCause[transport.DropBadSender], st)
	}
}

// TestMeshDropCounters checks that inbox-full drops are counted per
// destination endpoint and aggregate into the fabric view.
func TestMeshDropCounters(t *testing.T) {
	mesh := transport.NewMeshWithDepth(2, 4)
	defer mesh.Close()
	var c collector
	ep0, err := mesh.Endpoint(0, c.handle)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint 1 is never attached, so its inbox is never drained: sends
	// beyond the depth of 4 must drop.
	for i := 0; i < 6; i++ {
		if err := ep0.Send(1, &core.DecideMsg{Value: consensus.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := ep0.Stats()
	if st.Sends != 4 || st.Drops != 2 {
		t.Fatalf("endpoint stats = %s, want sends=4 drops=2", st)
	}
	if st.DropsByPeer[1] != 2 || st.DropsByCause[transport.DropQueueFull] != 2 {
		t.Fatalf("drop breakdown = %+v / %+v, want 2 queue-full against peer 1", st.DropsByPeer, st.DropsByCause)
	}
	fabric := mesh.Stats()
	if fabric.Drops != 2 || fabric.QueueDepth != 4 {
		t.Fatalf("fabric stats = %s, want drops=2 queued=4", fabric)
	}
}

// TestStatsString pins the rendering the kv STATS command and the periodic
// stats lines rely on.
func TestStatsString(t *testing.T) {
	s := transport.Stats{
		Sends:      42,
		Drops:      3,
		Reconnects: 1,
		QueueDepth: 2,
		BytesSent:  9801,
		BytesRecv:  7730,
		DropsByCause: map[transport.DropCause]uint64{
			transport.DropConn:      2,
			transport.DropQueueFull: 1,
		},
	}
	want := "sends=42 drops=3 (queue-full=1 conn=2) reconnects=1 queued=2 out=9801 in=7730"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	merged := s.Merge(transport.Stats{Drops: 1, DropsByCause: map[transport.DropCause]uint64{transport.DropConn: 1}})
	if merged.Drops != 4 || merged.DropsByCause[transport.DropConn] != 3 {
		t.Fatalf("Merge = %s", merged)
	}
}
