package transport

import (
	"fmt"
	"sync"

	"repro/internal/consensus"
)

// Mesh is an in-process transport fabric connecting n endpoints through
// buffered channels, one delivery goroutine per endpoint. Messages between
// endpoints are passed by reference; protocols must treat received messages
// as immutable (the same contract the simulator imposes).
type Mesh struct {
	n  int
	mu sync.RWMutex
	// inboxes[i] carries envelopes destined for endpoint i.
	inboxes []chan meshEnvelope
	closed  bool
}

type meshEnvelope struct {
	from consensus.ProcessID
	msg  consensus.Message
}

// meshInboxDepth bounds each endpoint's queue; sends beyond it drop, which
// the protocols tolerate (timers retransmit). The depth is generous so
// drops only occur under pathological backlog.
const meshInboxDepth = 4096

// NewMesh creates a fabric for n endpoints.
func NewMesh(n int) *Mesh {
	m := &Mesh{n: n, inboxes: make([]chan meshEnvelope, n)}
	for i := range m.inboxes {
		m.inboxes[i] = make(chan meshEnvelope, meshInboxDepth)
	}
	return m
}

// Endpoint attaches handler as endpoint id's receiver and returns its
// transport. Each id must be attached at most once.
func (m *Mesh) Endpoint(id consensus.ProcessID, handler Handler) (Transport, error) {
	if int(id) < 0 || int(id) >= m.n {
		return nil, fmt.Errorf("mesh: endpoint %d out of range [0,%d)", id, m.n)
	}
	ep := &meshEndpoint{mesh: m, id: id, done: make(chan struct{})}
	go func() {
		defer close(ep.done)
		for env := range m.inboxes[id] {
			handler(env.from, env.msg)
		}
	}()
	return ep, nil
}

// Close shuts the whole fabric down.
func (m *Mesh) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, ch := range m.inboxes {
		close(ch)
	}
}

type meshEndpoint struct {
	mesh *Mesh
	id   consensus.ProcessID
	done chan struct{}
}

var _ Transport = (*meshEndpoint)(nil)

// Self implements Transport.
func (e *meshEndpoint) Self() consensus.ProcessID { return e.id }

// Send implements Transport. Sends to a full or closed inbox drop.
func (e *meshEndpoint) Send(to consensus.ProcessID, msg consensus.Message) error {
	if int(to) < 0 || int(to) >= e.mesh.n {
		return fmt.Errorf("mesh: send to %d out of range", to)
	}
	e.mesh.mu.RLock()
	defer e.mesh.mu.RUnlock()
	if e.mesh.closed {
		return fmt.Errorf("mesh: closed")
	}
	select {
	case e.mesh.inboxes[to] <- meshEnvelope{from: e.id, msg: msg}:
	default:
		// Queue full: drop; protocol timers will retransmit.
	}
	return nil
}

// Close implements Transport. Closing an endpoint does not tear down the
// fabric; use (*Mesh).Close for that.
func (e *meshEndpoint) Close() error { return nil }
