package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
)

// Mesh is an in-process transport fabric connecting n endpoints through
// buffered channels, one delivery goroutine per endpoint. Messages between
// endpoints are passed by reference; protocols must treat received messages
// as immutable (the same contract the simulator imposes).
type Mesh struct {
	n     int
	depth int

	// fault, when set, decides the fate of every message (see SetFault).
	// atomic.Pointer so the hot Send path reads it without the mesh lock.
	fault atomic.Pointer[FaultFunc]

	mu sync.RWMutex
	// inboxes[i] carries envelopes destined for endpoint i.
	inboxes   []chan meshEnvelope
	endpoints []*meshEndpoint
	closed    bool
}

type meshEnvelope struct {
	from consensus.ProcessID
	msg  consensus.Message
}

// meshInboxDepth bounds each endpoint's queue; sends beyond it drop, which
// the protocols tolerate (timers retransmit). The depth is generous so
// drops only occur under pathological backlog.
const meshInboxDepth = 4096

// NewMesh creates a fabric for n endpoints with the default inbox depth.
func NewMesh(n int) *Mesh { return NewMeshWithDepth(n, meshInboxDepth) }

// NewMeshWithDepth creates a fabric with an explicit per-endpoint inbox
// depth (useful for exercising the drop path in tests).
func NewMeshWithDepth(n, depth int) *Mesh {
	if depth <= 0 {
		depth = meshInboxDepth
	}
	m := &Mesh{n: n, depth: depth, inboxes: make([]chan meshEnvelope, n)}
	for i := range m.inboxes {
		m.inboxes[i] = make(chan meshEnvelope, depth)
	}
	return m
}

// Endpoint attaches handler as endpoint id's receiver and returns its
// transport. Each id must be attached at most once.
func (m *Mesh) Endpoint(id consensus.ProcessID, handler Handler) (Transport, error) {
	if int(id) < 0 || int(id) >= m.n {
		return nil, fmt.Errorf("mesh: endpoint %d out of range [0,%d)", id, m.n)
	}
	ep := &meshEndpoint{mesh: m, id: id, done: make(chan struct{})}
	m.mu.Lock()
	m.endpoints = append(m.endpoints, ep)
	m.mu.Unlock()
	go func() {
		defer close(ep.done)
		for env := range m.inboxes[id] {
			handler(env.from, env.msg)
		}
	}()
	return ep, nil
}

// Stats aggregates every attached endpoint's counters into a fabric view;
// QueueDepth is the live total backlog across all inboxes (including those
// of endpoints that were never attached).
func (m *Mesh) Stats() Stats {
	m.mu.RLock()
	eps := make([]*meshEndpoint, len(m.endpoints))
	copy(eps, m.endpoints)
	m.mu.RUnlock()
	var s Stats
	for _, ep := range eps {
		es := ep.stats.snapshot()
		es.QueueDepth = 0 // endpoint depth is a live inbox view, not a counter
		s = s.Merge(es)
	}
	for _, ch := range m.inboxes {
		s.QueueDepth += len(ch)
	}
	return s
}

// Close shuts the whole fabric down.
func (m *Mesh) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, ch := range m.inboxes {
		close(ch)
	}
}

type meshEndpoint struct {
	mesh  *Mesh
	id    consensus.ProcessID
	done  chan struct{}
	stats counters
}

var _ Transport = (*meshEndpoint)(nil)

// Self implements Transport.
func (e *meshEndpoint) Self() consensus.ProcessID { return e.id }

// Stats implements Transport: this endpoint's outbound counters (drops are
// broken down per destination), with QueueDepth reporting the endpoint's
// own inbound backlog.
func (e *meshEndpoint) Stats() Stats {
	s := e.stats.snapshot()
	s.QueueDepth = len(e.mesh.inboxes[e.id])
	return s
}

// Send implements Transport. Sends to a full inbox drop (counted per
// destination); sends on a closed mesh drop with an error. An installed
// fault injector (Mesh.SetFault) may discard, duplicate, or delay the
// message first.
func (e *meshEndpoint) Send(to consensus.ProcessID, msg consensus.Message) error {
	if int(to) < 0 || int(to) >= e.mesh.n {
		return fmt.Errorf("mesh: send to %d out of range", to)
	}
	copies := 1
	var delay time.Duration
	if fp := e.mesh.fault.Load(); fp != nil {
		v := (*fp)(e.id, to)
		if v.Drop {
			e.stats.drop(DropFault, to)
			return nil
		}
		if v.Duplicate {
			copies = 2
		}
		delay = v.Delay
	}
	if delay > 0 {
		// Delivery (and its accounting) happens when the timer fires; a
		// mesh closed in the meantime turns the copies into closed-drops.
		for i := 0; i < copies; i++ {
			time.AfterFunc(delay, func() { e.mesh.deliver(e.id, to, msg, &e.stats) })
		}
		return nil
	}
	e.mesh.mu.RLock()
	defer e.mesh.mu.RUnlock()
	if e.mesh.closed {
		e.stats.drop(DropClosed, to)
		return fmt.Errorf("mesh send to %d: %w", to, ErrClosed)
	}
	for i := 0; i < copies; i++ {
		select {
		case e.mesh.inboxes[to] <- meshEnvelope{from: e.id, msg: msg}:
			e.stats.sent(0) // by-reference delivery: no wire bytes
		default:
			// Inbox full: drop; protocol timers will retransmit. The drop is
			// counted against the destination so soak runs can report loss.
			e.stats.drop(DropQueueFull, to)
		}
	}
	return nil
}

// Close implements Transport. Closing an endpoint does not tear down the
// fabric; use (*Mesh).Close for that.
func (e *meshEndpoint) Close() error { return nil }
