package transport

import (
	"repro/internal/consensus"
	"time"
)

// FaultVerdict is a fault injector's decision for one message. The zero
// value delivers normally. Drop takes precedence over Duplicate and Delay.
type FaultVerdict struct {
	// Drop discards the message, counted under DropFault.
	Drop bool
	// Duplicate delivers the message twice. The protocols are idempotent
	// per (slot, kind, sender), so duplication must be harmless; chaos runs
	// assert exactly that.
	Duplicate bool
	// Delay holds the message for the given duration before delivery.
	// Delayed messages bypass the fabric's per-pair FIFO order — reordering
	// is deliberately part of the fault model.
	Delay time.Duration
}

// FaultFunc inspects a message's (from, to) pair and decides its fate. It
// is called on the sender's goroutine with no mesh locks held and must be
// safe for concurrent use.
type FaultFunc func(from, to consensus.ProcessID) FaultVerdict

// SetFault installs f as the fabric-wide fault injector; nil heals the
// fabric. The swap is atomic: in-flight sends use whichever injector they
// loaded, subsequent sends use f.
func (m *Mesh) SetFault(f FaultFunc) {
	if f == nil {
		m.fault.Store(nil)
		return
	}
	m.fault.Store(&f)
}

// deliver enqueues a delayed message, counting the outcome against st at
// delivery time: a mesh closed during the delay turns the message into a
// closed-drop, a full inbox into a queue-full drop.
func (m *Mesh) deliver(from, to consensus.ProcessID, msg consensus.Message, st *counters) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		st.drop(DropClosed, to)
		return
	}
	select {
	case m.inboxes[to] <- meshEnvelope{from: from, msg: msg}:
		st.sent(0)
	default:
		st.drop(DropQueueFull, to)
	}
}
