package wan

import (
	"time"

	"repro/internal/consensus"
	"repro/internal/transport"
)

// MeshFault returns a fault injector for transport.Mesh that delays every
// message by the topology's one-way latency for its (from, to) link,
// scaled. The injector is fully deterministic: the delay is a pure function
// of the link, with no randomness, so a Mesh-backed WAN run has exactly one
// delay schedule per topology. Pairs outside the topology (and self-sends)
// pass through undelayed. Compose with chaos faults by consulting this
// injector from the chaos verdict function rather than installing both.
func (t Topology) MeshFault(scale float64) transport.FaultFunc {
	n := t.N()
	// Precomputed so the per-send hot path is two slice indexes.
	delays := make([][]time.Duration, n)
	for i := 0; i < n; i++ {
		delays[i] = make([]time.Duration, n)
		for j := 0; j < n; j++ {
			if i != j {
				delays[i][j] = t.OneWayDelay(i, j, scale)
			}
		}
	}
	return func(from, to consensus.ProcessID) transport.FaultVerdict {
		if int(from) < 0 || int(from) >= n || int(to) < 0 || int(to) >= n || from == to {
			return transport.FaultVerdict{}
		}
		return transport.FaultVerdict{Delay: delays[from][to]}
	}
}

// TCPLinkDelay returns the per-peer outbound delay function for
// transport.TCPOptions.LinkDelay: frames from self to each peer are held on
// the peer's writer goroutine for the topology's scaled one-way latency.
// Unknown peers get no delay.
func (t Topology) TCPLinkDelay(self consensus.ProcessID, scale float64) func(consensus.ProcessID) time.Duration {
	n := t.N()
	delays := make([]time.Duration, n)
	for j := 0; j < n; j++ {
		if j != int(self) && int(self) >= 0 && int(self) < n {
			delays[j] = t.OneWayDelay(int(self), j, scale)
		}
	}
	return func(to consensus.ProcessID) time.Duration {
		if int(to) < 0 || int(to) >= n {
			return 0
		}
		return delays[to]
	}
}
