// Package wan models multi-region deployments for the WAN scenario suite:
// named regions, a pairwise RTT matrix, and replica→region placements
// ("topologies"), with helpers that turn a topology into per-link one-way
// delays for transport.Mesh (a deterministic fault injector) and
// transport.TCP (the writer-side LinkDelay shim).
//
// The package is pure arithmetic over the matrix — it reads no clocks and
// owns no goroutines — so it is held to the protocol determinism contract
// (cmd/protolint): the same topology and scale always yield the same delay
// schedule.
//
// Placement semantics follow the F3 experiment: a topology's Slots list is
// in deployment order, and a protocol that needs n processes occupies the
// first n slots (Prefix). This is what makes the paper's C5 claim
// measurable — on a one-region-per-slot spread, a protocol with a smaller
// fast quorum stops one region-hop earlier.
package wan

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/consensus"
)

// sites are the canonical deployment regions, in deployment order: a
// topology (or the F3 experiment) that needs r regions uses the first r
// entries. This is the single source of the region list; bench delegates
// here.
var sites = []string{
	"eu-west",  // proxy focus: Dublin
	"eu-cent",  // Frankfurt
	"us-east",  // Virginia
	"us-west",  // Oregon
	"ap-se",    // Singapore
	"sa-east",  // São Paulo
	"ap-ne",    // Tokyo
	"ap-south", // Mumbai
}

// siteRTT holds approximate public-cloud inter-region round-trip times in
// milliseconds (symmetric). Indexed like sites. Values are in the ballpark
// of published cloud latency matrices; the experiments' conclusions depend
// only on their relative order.
var siteRTT = [][]consensus.Duration{
	//            euW  euC  usE  usW  apSE saE  apNE apS
	{0, 25, 75, 130, 180, 185, 210, 125},   // eu-west
	{25, 0, 90, 145, 160, 200, 225, 110},   // eu-cent
	{75, 90, 0, 65, 215, 115, 145, 185},    // us-east
	{130, 145, 65, 0, 165, 175, 100, 220},  // us-west
	{180, 160, 215, 165, 0, 320, 70, 60},   // ap-se
	{185, 200, 115, 175, 320, 0, 255, 300}, // sa-east
	{210, 225, 145, 100, 70, 255, 0, 120},  // ap-ne
	{125, 110, 185, 220, 60, 300, 120, 0},  // ap-south
}

// Sites returns the canonical 8-region site list and RTT matrix (in
// milliseconds), as copies.
func Sites() ([]string, [][]consensus.Duration) {
	names := make([]string, len(sites))
	copy(names, sites)
	rtt := make([][]consensus.Duration, len(siteRTT))
	for i, row := range siteRTT {
		rtt[i] = make([]consensus.Duration, len(row))
		copy(rtt[i], row)
	}
	return names, rtt
}

// Topology is a geo deployment: a set of regions with pairwise RTTs and an
// ordered assignment of replica slots to regions. Slot i's process ID is i.
type Topology struct {
	// Name identifies the topology in bench tables and JSON reports.
	Name string
	// Regions are the region names, indexed by the values in Slots.
	Regions []string
	// RTT is the square, symmetric, zero-diagonal round-trip matrix
	// between regions, in milliseconds.
	RTT [][]consensus.Duration
	// Slots maps each replica slot (process ID) to a region index, in
	// deployment order: protocols needing n < len(Slots) processes use
	// Prefix(n).
	Slots []int
}

// Validate checks structural sanity: a square symmetric RTT matrix with a
// zero diagonal and non-negative entries, region names for every row, and
// every slot naming a valid region.
func (t Topology) Validate() error {
	r := len(t.Regions)
	if r == 0 {
		return fmt.Errorf("wan: topology %q has no regions", t.Name)
	}
	if len(t.RTT) != r {
		return fmt.Errorf("wan: topology %q: %d regions but %d RTT rows", t.Name, r, len(t.RTT))
	}
	for i, row := range t.RTT {
		if len(row) != r {
			return fmt.Errorf("wan: topology %q: RTT row %d has %d entries, want %d", t.Name, i, len(row), r)
		}
		if row[i] != 0 {
			return fmt.Errorf("wan: topology %q: RTT[%d][%d] = %d, diagonal must be 0", t.Name, i, i, row[i])
		}
		for j, d := range row {
			if d < 0 {
				return fmt.Errorf("wan: topology %q: RTT[%d][%d] = %d negative", t.Name, i, j, d)
			}
			if d != t.RTT[j][i] {
				return fmt.Errorf("wan: topology %q: RTT[%d][%d]=%d != RTT[%d][%d]=%d, matrix must be symmetric",
					t.Name, i, j, d, j, i, t.RTT[j][i])
			}
		}
	}
	if len(t.Slots) == 0 {
		return fmt.Errorf("wan: topology %q has no slots", t.Name)
	}
	for s, reg := range t.Slots {
		if reg < 0 || reg >= r {
			return fmt.Errorf("wan: topology %q: slot %d names region %d, have %d regions", t.Name, s, reg, r)
		}
	}
	return nil
}

// N returns the number of replica slots.
func (t Topology) N() int { return len(t.Slots) }

// Region returns the region name of a replica slot.
func (t Topology) Region(slot int) string { return t.Regions[t.Slots[slot]] }

// RegionNames returns the distinct region names actually used by slots, in
// slot order (first appearance).
func (t Topology) RegionNames() []string {
	seen := make(map[int]bool, len(t.Regions))
	out := make([]string, 0, len(t.Regions))
	for _, reg := range t.Slots {
		if !seen[reg] {
			seen[reg] = true
			out = append(out, t.Regions[reg])
		}
	}
	return out
}

// RTTBetween returns the round-trip time between two replica slots, in
// milliseconds. Slots in the same region are 0ms apart.
func (t Topology) RTTBetween(i, j int) consensus.Duration {
	return t.RTT[t.Slots[i]][t.Slots[j]]
}

// OneWayDelay returns the one-way link latency between two replica slots as
// a wall duration: RTT/2 milliseconds multiplied by scale. Scale < 1
// compresses the geography so timer-driven harnesses (chaos) stay fast;
// scale 1 is real milliseconds.
func (t Topology) OneWayDelay(i, j int, scale float64) time.Duration {
	return time.Duration(float64(t.RTTBetween(i, j)) / 2 * scale * float64(time.Millisecond))
}

// Prefix returns the topology restricted to its first n slots (deployment
// order), for protocols needing fewer processes than the topology offers.
func (t Topology) Prefix(n int) (Topology, error) {
	if n < 1 || n > len(t.Slots) {
		return Topology{}, fmt.Errorf("wan: topology %q has %d slots, cannot take prefix %d", t.Name, len(t.Slots), n)
	}
	p := t
	p.Slots = t.Slots[:n]
	return p, nil
}

// QuorumRTT returns the round-trip time within which a process at slot
// `from` can assemble q replies (counting its own, at 0ms): the q-th
// smallest RTT to any slot. It is the analytical floor for a quorum-q
// protocol phase initiated at `from`, used by the bench to sanity-check
// measured latencies and by tests to rank protocols without running them.
func (t Topology) QuorumRTT(from, q int) consensus.Duration {
	rtts := make([]consensus.Duration, 0, len(t.Slots))
	for j := range t.Slots {
		rtts = append(rtts, t.RTTBetween(from, j))
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	if q < 1 {
		q = 1
	}
	if q > len(rtts) {
		q = len(rtts)
	}
	return rtts[q-1]
}

// presets are the named topologies of the WAN suite. geo3x*/geo5x* place
// replicas round-robin over 3 or 5 regions (the AWS-like multi-replica
// layouts, where co-located replicas soak up quorums locally); spread7 and
// spread9 place one replica per region in deployment order — the layout
// where a smaller fast quorum avoids a region hop, i.e. the paper's C5
// setting.
func presets() map[string]Topology {
	names, rtt := Sites()
	sub := func(r int) ([]string, [][]consensus.Duration) {
		m := make([][]consensus.Duration, r)
		for i := 0; i < r; i++ {
			m[i] = rtt[i][:r:r]
		}
		return names[:r:r], m
	}
	build := func(name string, regions int, slots []int) Topology {
		rn, rm := sub(regions)
		return Topology{Name: name, Regions: rn, RTT: rm, Slots: slots}
	}
	// The 3-region family uses eu-west, us-east, ap-se (indices 0, 2, 4 of
	// the canonical list): one site per continent, like a classic
	// EU/US/APAC deployment.
	triRegions := []string{names[0], names[2], names[4]}
	triRTT := [][]consensus.Duration{
		{0, rtt[0][2], rtt[0][4]},
		{rtt[2][0], 0, rtt[2][4]},
		{rtt[4][0], rtt[4][2], 0},
	}
	tri := func(name string, slots []int) Topology {
		return Topology{Name: name, Regions: triRegions, RTT: triRTT, Slots: slots}
	}
	return map[string]Topology{
		"geo3x5":  tri("geo3x5", []int{0, 1, 2, 0, 1}),
		"geo3x7":  tri("geo3x7", []int{0, 1, 2, 0, 1, 2, 0}),
		"geo3x9":  tri("geo3x9", []int{0, 1, 2, 0, 1, 2, 0, 1, 2}),
		"geo5x5":  build("geo5x5", 5, []int{0, 1, 2, 3, 4}),
		"geo5x7":  build("geo5x7", 5, []int{0, 1, 2, 3, 4, 0, 1}),
		"geo5x9":  build("geo5x9", 5, []int{0, 1, 2, 3, 4, 0, 1, 2, 3}),
		"spread7": build("spread7", 7, []int{0, 1, 2, 3, 4, 5, 6}),
		"spread9": build("spread9", 8, []int{0, 1, 2, 3, 4, 5, 6, 7, 0}),
	}
}

// Preset returns a named topology. See PresetNames for the list.
func Preset(name string) (Topology, error) {
	t, ok := presets()[name]
	if !ok {
		return Topology{}, fmt.Errorf("wan: unknown topology %q (have %v)", name, PresetNames())
	}
	return t, nil
}

// PresetNames lists the preset topology names, sorted.
func PresetNames() []string {
	ps := presets()
	out := make([]string, 0, len(ps))
	for name := range ps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
