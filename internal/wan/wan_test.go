package wan_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/wan"
)

func TestPresetsValidate(t *testing.T) {
	names := wan.PresetNames()
	if len(names) < 6 {
		t.Fatalf("only %d presets: %v", len(names), names)
	}
	for _, name := range names {
		topo, err := wan.Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for n := 1; n <= topo.N(); n++ {
			p, err := topo.Prefix(n)
			if err != nil {
				t.Fatalf("%s.Prefix(%d): %v", name, n, err)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("%s.Prefix(%d): %v", name, n, err)
			}
		}
		if _, err := topo.Prefix(topo.N() + 1); err == nil {
			t.Errorf("%s.Prefix(N+1) accepted", name)
		}
		if _, err := topo.Prefix(0); err == nil {
			t.Errorf("%s.Prefix(0) accepted", name)
		}
	}
	if _, err := wan.Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestC5QuorumOrdering checks the paper's C5 claim analytically on the
// spread topology (one replica per region, deployment order): at f=e=2 the
// object protocol (n=5, fast quorum 3) assembles its fast quorum a full
// region-hop earlier than Fast Paxos (n=7, fast quorum 5), with the task
// protocol and flexible-quorum Fast Paxos in between — and that the
// advantage disappears on the co-located geo5x7 layout. The F10 bench
// measures the same ordering end-to-end.
func TestC5QuorumOrdering(t *testing.T) {
	spread, err := wan.Preset("spread7")
	if err != nil {
		t.Fatal(err)
	}
	const f, e = 2, 2
	quorumFloor := func(topo wan.Topology, n, q int) consensus.Duration {
		p, err := topo.Prefix(n)
		if err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		return p.QuorumRTT(0, q)
	}
	object := quorumFloor(spread, quorum.ObjectMinProcesses(f, e), quorum.ObjectMinProcesses(f, e)-e)
	task := quorumFloor(spread, quorum.TaskMinProcesses(f, e), quorum.TaskMinProcesses(f, e)-e)
	nLam := quorum.LamportMinProcesses(f, e)
	fast := quorumFloor(spread, nLam, nLam-e)
	fl, err := quorum.SmallestFastFlex(nLam, f, e)
	if err != nil {
		t.Fatal(err)
	}
	flex := quorumFloor(spread, nLam, fl.Fast)
	if !(object < task && task < fast) {
		t.Errorf("C5 ordering violated on spread7: object=%dms task=%dms fastpaxos=%dms", object, task, fast)
	}
	if flex >= fast {
		t.Errorf("flex quorum %d not faster than classical on spread7: flex=%dms fastpaxos=%dms", fl.Fast, flex, fast)
	}
	if fast-object < 100 {
		t.Errorf("spread7 advantage %dms, expected the claimed hundreds of ms (object=%d fastpaxos=%d)",
			fast-object, object, fast)
	}
	// Honest contrast: with replicas co-located round-robin over 5 regions,
	// Fast Paxos's larger quorum is absorbed by the local copies.
	colo, err := wan.Preset("geo5x7")
	if err != nil {
		t.Fatal(err)
	}
	coloFast := quorumFloor(colo, nLam, nLam-e)
	coloObject := quorumFloor(colo, quorum.ObjectMinProcesses(f, e), quorum.ObjectMinProcesses(f, e)-e)
	if coloFast-coloObject >= fast-object {
		t.Errorf("co-location should shrink the gap: spread %dms, geo5x7 %dms", fast-object, coloFast-coloObject)
	}
}

func TestOneWayDelayDeterministicAndScaled(t *testing.T) {
	topo, err := wan.Preset("geo3x5")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.N(); i++ {
		for j := 0; j < topo.N(); j++ {
			d1 := topo.OneWayDelay(i, j, 1.0)
			if d2 := topo.OneWayDelay(i, j, 1.0); d2 != d1 {
				t.Fatalf("OneWayDelay(%d,%d) nondeterministic: %v vs %v", i, j, d1, d2)
			}
			if dj := topo.OneWayDelay(j, i, 1.0); dj != d1 {
				t.Fatalf("OneWayDelay asymmetric: (%d,%d)=%v (%d,%d)=%v", i, j, d1, j, i, dj)
			}
			if half := topo.OneWayDelay(i, j, 0.5); half != d1/2 {
				t.Fatalf("scale 0.5: got %v, want %v", half, d1/2)
			}
			want := time.Duration(topo.RTTBetween(i, j)) * time.Millisecond / 2
			if d1 != want {
				t.Fatalf("OneWayDelay(%d,%d)=%v, want RTT/2=%v", i, j, d1, want)
			}
		}
	}
	// Same-region slots (0 and 3 are both in the first region) are free.
	if d := topo.OneWayDelay(0, 3, 1.0); d != 0 {
		t.Fatalf("same-region delay %v", d)
	}
}

type arrival struct {
	at  time.Time
	val int64
}

type recorder struct {
	mu  sync.Mutex
	got []arrival
}

func (r *recorder) handle(from consensus.ProcessID, msg consensus.Message) {
	d, ok := msg.(*core.DecideMsg)
	if !ok {
		return
	}
	r.mu.Lock()
	r.got = append(r.got, arrival{at: time.Now(), val: d.Value.Key})
	r.mu.Unlock()
}

func (r *recorder) wait(t *testing.T, want int) []arrival {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		n := len(r.got)
		out := make([]arrival, n)
		copy(out, r.got)
		r.mu.Unlock()
		if n >= want {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d/%d arrivals", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMeshFaultDelay: the Mesh injector holds cross-region messages for the
// scaled one-way latency and passes same-region ones through immediately.
func TestMeshFaultDelay(t *testing.T) {
	topo, err := wan.Preset("geo3x5")
	if err != nil {
		t.Fatal(err)
	}
	const scale = 0.4 // eu-west→us-east RTT 75ms → one-way 15ms
	mesh := transport.NewMesh(topo.N())
	defer mesh.Close()
	mesh.SetFault(topo.MeshFault(scale))
	var toUS, toEU recorder
	ep0, err := mesh.Endpoint(0, func(consensus.ProcessID, consensus.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(1, toUS.handle); err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint(3, toEU.handle); err != nil {
		t.Fatal(err)
	}
	wantDelay := topo.OneWayDelay(0, 1, scale)
	if wantDelay <= 0 {
		t.Fatalf("expected positive delay, got %v", wantDelay)
	}
	start := time.Now()
	if err := ep0.Send(1, &core.DecideMsg{Value: consensus.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if err := ep0.Send(3, &core.DecideMsg{Value: consensus.IntValue(2)}); err != nil {
		t.Fatal(err)
	}
	local := toEU.wait(t, 1)
	remote := toUS.wait(t, 1)
	if got := remote[0].at.Sub(start); got < wantDelay {
		t.Errorf("cross-region message arrived after %v, want ≥ %v", got, wantDelay)
	}
	if got := local[0].at.Sub(start); got > wantDelay/2 {
		t.Errorf("same-region message took %v, expected well under %v", got, wantDelay)
	}
}

// TestTCPLinkDelayShim: the writer-side shim holds frames for the one-way
// latency while preserving FIFO order, and overlapping frames pipeline —
// k frames arrive roughly one delay after the burst, not k delays.
func TestTCPLinkDelayShim(t *testing.T) {
	topo, err := wan.Preset("geo3x5")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := topo.Prefix(2) // eu-west, us-east
	if err != nil {
		t.Fatal(err)
	}
	const scale = 0.8 // one-way 30ms
	codec := consensus.NewCodec()
	core.RegisterMessages(codec)
	addrs := map[consensus.ProcessID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	var rec recorder
	t0, err := transport.NewTCPWithOptions(0, addrs, codec, func(consensus.ProcessID, consensus.Message) {}, transport.TCPOptions{
		LinkDelay: pair.TCPLinkDelay(0, scale),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := transport.NewTCP(1, addrs, codec, rec.handle)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t0.SetPeerAddr(1, t1.Addr())
	t1.SetPeerAddr(0, t0.Addr())

	// Warm the connection so the measured sends exclude the dial.
	if err := t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(0)}); err != nil {
		t.Fatal(err)
	}
	rec.wait(t, 1)

	oneWay := pair.OneWayDelay(0, 1, scale)
	const burst = 4
	start := time.Now()
	for i := 1; i <= burst; i++ {
		if err := t0.Send(1, &core.DecideMsg{Value: consensus.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	got := rec.wait(t, 1+burst)[1:]
	for i, a := range got {
		if a.val != int64(i+1) {
			t.Fatalf("FIFO violated: arrival %d carries %d", i, a.val)
		}
		if d := a.at.Sub(start); d < oneWay {
			t.Errorf("frame %d arrived after %v, want ≥ one-way %v", i+1, d, oneWay)
		}
	}
	// Pipelining: the whole burst should land well before burst×oneWay
	// (serialized delays would need ≥ 4×30ms; allow generous slack for CI).
	if total := got[len(got)-1].at.Sub(start); total > 3*oneWay {
		t.Errorf("burst of %d took %v — frames serialized instead of pipelining (one-way %v)", burst, total, oneWay)
	}
}
