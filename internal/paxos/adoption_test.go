package paxos_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/paxos"
)

// TestLeaderChangeAdoptsHighestVote drives the phase-1 value-adoption rule
// by hand: a new leader collecting promises that carry votes must propose
// the value of the highest-ballot vote, not its own.
func TestLeaderChangeAdoptsHighestVote(t *testing.T) {
	cfg := consensus.Config{ID: 1, N: 5, F: 2, E: 0, Delta: 10}
	n := paxos.NewUnchecked(cfg, consensus.FixedLeader(1))
	n.Propose(consensus.IntValue(9)) // own pending value (forwarded to Ω=p1=self)

	// Become leader of ballot 6 (6 ≡ 1 mod 5).
	effs := n.Tick(paxos.TimerLeader)
	var ballot consensus.Ballot
	for _, e := range effs {
		if b, ok := e.(consensus.Broadcast); ok {
			if oa, ok := b.Msg.(*paxos.OneA); ok {
				ballot = oa.Ballot
			}
		}
	}
	if ballot == 0 {
		t.Fatalf("no 1A broadcast: %v", effs)
	}

	// Promises: p2 voted v(4) at ballot 3; others empty.
	n.Deliver(2, &paxos.OneB{Ballot: ballot, VBal: 3, Val: consensus.IntValue(4)})
	n.Deliver(3, &paxos.OneB{Ballot: ballot, VBal: -1, Val: consensus.None})
	effs = n.Deliver(4, &paxos.OneB{Ballot: ballot, VBal: -1, Val: consensus.None})

	adopted := consensus.None
	for _, e := range effs {
		if b, ok := e.(consensus.Broadcast); ok {
			if ta, ok := b.Msg.(*paxos.TwoA); ok {
				adopted = ta.Value
			}
		}
	}
	if adopted != consensus.IntValue(4) {
		t.Fatalf("leader proposed %v, must adopt the prior vote v(4)", adopted)
	}
}

// TestLeaderProposesPendingWhenNoVotes verifies the complementary case.
func TestLeaderProposesPendingWhenNoVotes(t *testing.T) {
	cfg := consensus.Config{ID: 1, N: 5, F: 2, E: 0, Delta: 10}
	n := paxos.NewUnchecked(cfg, consensus.FixedLeader(1))
	n.Deliver(3, &paxos.Forward{Value: consensus.IntValue(7)})

	effs := n.Tick(paxos.TimerLeader)
	var ballot consensus.Ballot
	for _, e := range effs {
		if b, ok := e.(consensus.Broadcast); ok {
			if oa, ok := b.Msg.(*paxos.OneA); ok {
				ballot = oa.Ballot
			}
		}
	}
	empty := &paxos.OneB{Ballot: ballot, VBal: -1, Val: consensus.None}
	n.Deliver(2, empty)
	n.Deliver(3, empty)
	effs = n.Deliver(4, empty)
	adopted := consensus.None
	for _, e := range effs {
		if b, ok := e.(consensus.Broadcast); ok {
			if ta, ok := b.Msg.(*paxos.TwoA); ok {
				adopted = ta.Value
			}
		}
	}
	if adopted != consensus.IntValue(7) {
		t.Fatalf("leader proposed %v, want forwarded v(7)", adopted)
	}
}
