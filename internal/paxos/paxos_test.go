package paxos_test

import (
	"errors"
	"testing"

	"repro/internal/consensus"
	"repro/internal/paxos"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

func TestNewEnforcesBound(t *testing.T) {
	cfg := consensus.Config{ID: 0, N: 4, F: 2, E: 0, Delta: 10}
	if _, err := paxos.New(cfg, consensus.FixedLeader(0)); !errors.Is(err, quorum.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible for n=4 f=2, got %v", err)
	}
	cfg.N = 5
	if _, err := paxos.New(cfg, consensus.FixedLeader(0)); err != nil {
		t.Fatalf("New at 2f+1: %v", err)
	}
}

func TestLeaderDecidesInTwoDelaysWhenCorrect(t *testing.T) {
	sc := runner.Scenario{N: 3, F: 1, E: 1, Delta: 10}
	inputs := map[consensus.ProcessID]consensus.Value{0: consensus.IntValue(7)}
	tr, err := runner.EFaultySync(protocols.PaxosFactory, sc, runner.SyncRun{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := tr.DecisionOf(0)
	if !ok || d.At > consensus.Time(2*sc.Delta) {
		t.Fatalf("leader should decide by 2Δ with a correct leader; got %v ok=%v", d, ok)
	}
}

func TestNotETwoStepWhenLeaderCrashes(t *testing.T) {
	// With the initial leader in the crash set, no process can decide by
	// 2Δ — Paxos is not e-two-step for e > 0 (§2 of the paper).
	sc := runner.Scenario{N: 3, F: 1, E: 1, Delta: 10}
	inputs := map[consensus.ProcessID]consensus.Value{
		0: consensus.IntValue(1),
		1: consensus.IntValue(2),
		2: consensus.IntValue(3),
	}
	tr, err := runner.EFaultySync(protocols.PaxosFactory, sc, runner.SyncRun{
		Faulty: []consensus.ProcessID{0},
		Inputs: inputs,
		Prefer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.TwoStepProcesses(sc.Delta); len(got) != 0 {
		t.Fatalf("no process should be two-step with the leader crashed; got %v", got)
	}
}

func TestRecoversAfterLeaderCrash(t *testing.T) {
	sc := runner.Scenario{N: 5, F: 2, E: 1, Delta: 10}
	inputs := make(map[consensus.ProcessID]consensus.Value)
	for i := 0; i < sc.N; i++ {
		inputs[consensus.ProcessID(i)] = consensus.IntValue(int64(i + 1))
	}
	tr, err := runner.EFaultySync(protocols.PaxosFactory, sc, runner.SyncRun{
		Faulty:  []consensus.ProcessID{0, 1},
		Inputs:  inputs,
		Horizon: consensus.Time(300 * sc.Delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckTaskSpec(); err != nil {
		t.Fatalf("spec: %v", err)
	}
}

func TestSoak(t *testing.T) {
	sc := runner.Scenario{N: 5, F: 2, E: 0, Delta: 10, Seed: 3}
	res := runner.Soak(protocols.PaxosFactory, sc, runner.SoakOptions{Runs: 60, MaxCrashes: 2})
	if !res.OK() {
		t.Fatalf("soak: %s\n%v", res, res.Failures)
	}
}
