// Package paxos implements classic single-decree Paxos as a baseline.
//
// The deployment is leader-driven in the Multi-Paxos style the paper's
// introduction refers to: ballot 0 is implicitly pre-promised to process 0,
// so when the initial leader is correct and the system is synchronous it
// proposes directly with a 2A and decides after two message delays. Any
// other proposer forwards its value to the current Ω leader, adding a
// message delay. If the initial leader crashes, progress waits for a timer
// and a full phase-1 + phase-2 slow ballot — which is precisely why Paxos is
// not e-two-step for any e > 0 (§2 of the paper): with the initial leader in
// the crash set E there is no run in which anyone decides by 2Δ.
//
// Ballots are owned round-robin: ballot b belongs to process b mod n.
// Ballot 0 therefore belongs to process 0, which skips phase 1 for it.
package paxos

import (
	"fmt"
	"sort"

	"repro/internal/consensus"
	"repro/internal/quorum"
)

// Message kinds for the wire codec.
const (
	KindForward = "paxos.forward"
	KindOneA    = "paxos.1a"
	KindOneB    = "paxos.1b"
	KindTwoA    = "paxos.2a"
	KindTwoB    = "paxos.2b"
	KindDecide  = "paxos.decide"
)

// Forward carries a proposal from a non-leader to the current leader.
type Forward struct {
	Value consensus.Value `json:"value"`
}

// OneA is the phase-1 prepare request for a ballot.
type OneA struct {
	Ballot consensus.Ballot `json:"ballot"`
}

// OneB is the phase-1 promise, carrying the highest accepted vote.
type OneB struct {
	Ballot consensus.Ballot `json:"ballot"`
	VBal   consensus.Ballot `json:"vbal"`
	Val    consensus.Value  `json:"val"`
}

// TwoA is the phase-2 accept request.
type TwoA struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// TwoB is the phase-2 vote.
type TwoB struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// DecideMsg announces the decision.
type DecideMsg struct {
	Value consensus.Value `json:"value"`
}

// Kind implements consensus.Message.
func (Forward) Kind() string { return KindForward }

// Kind implements consensus.Message.
func (OneA) Kind() string { return KindOneA }

// Kind implements consensus.Message.
func (OneB) Kind() string { return KindOneB }

// Kind implements consensus.Message.
func (TwoA) Kind() string { return KindTwoA }

// Kind implements consensus.Message.
func (TwoB) Kind() string { return KindTwoB }

// Kind implements consensus.Message.
func (DecideMsg) Kind() string { return KindDecide }

// RegisterMessages registers all paxos message kinds with codec.
func RegisterMessages(codec *consensus.Codec) {
	codec.MustRegister(KindForward, func() consensus.Message { return &Forward{} })
	codec.MustRegister(KindOneA, func() consensus.Message { return &OneA{} })
	codec.MustRegister(KindOneB, func() consensus.Message { return &OneB{} })
	codec.MustRegister(KindTwoA, func() consensus.Message { return &TwoA{} })
	codec.MustRegister(KindTwoB, func() consensus.Message { return &TwoB{} })
	codec.MustRegister(KindDecide, func() consensus.Message { return &DecideMsg{} })
}

// TimerLeader drives leader-change attempts; armed to 2Δ at startup and 5Δ
// thereafter, mirroring the core protocol's pacing so latency comparisons
// are apples-to-apples.
const TimerLeader consensus.TimerID = "paxos.leader"

// Node is one classic Paxos process.
type Node struct {
	cfg   consensus.Config
	omega consensus.LeaderOracle

	// Acceptor state.
	bal     consensus.Ballot // highest promised ballot
	vbal    consensus.Ballot // ballot of last vote (-1: none)
	val     consensus.Value  // last voted value
	decided consensus.Value

	// Proposer state.
	initialVal consensus.Value // own proposal (also used when leading)
	pending    consensus.Value // greatest forwarded/own value to propose

	lead leaderState
}

type leaderState struct {
	ballot   consensus.Ballot // ballot being led; -1 when none
	oneBs    map[consensus.ProcessID]OneB
	sentTwoA bool
	val      consensus.Value
	twoBs    map[consensus.ProcessID]struct{}
}

var _ consensus.Protocol = (*Node)(nil)

// New builds a Paxos node, checking n ≥ 2f+1.
func New(cfg consensus.Config, omega consensus.LeaderOracle) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("paxos: %w", err)
	}
	if cfg.N < quorum.PlainMinProcesses(cfg.F) {
		return nil, fmt.Errorf("paxos: n=%d below 2f+1=%d: %w",
			cfg.N, quorum.PlainMinProcesses(cfg.F), quorum.ErrInfeasible)
	}
	return NewUnchecked(cfg, omega), nil
}

// NewUnchecked builds a Paxos node without the bound check.
func NewUnchecked(cfg consensus.Config, omega consensus.LeaderOracle) *Node {
	return &Node{
		cfg:        cfg,
		omega:      omega,
		bal:        0, // ballot 0 implicitly promised everywhere
		vbal:       -1,
		val:        consensus.None,
		decided:    consensus.None,
		initialVal: consensus.None,
		pending:    consensus.None,
		lead:       leaderState{ballot: -1},
	}
}

// ID implements consensus.Protocol.
func (n *Node) ID() consensus.ProcessID { return n.cfg.ID }

// Decision implements consensus.Protocol.
func (n *Node) Decision() (consensus.Value, bool) {
	if n.decided.IsNone() {
		return consensus.None, false
	}
	return n.decided, true
}

// DecidedFast implements the optional fast-path reporting interface the
// WAN bench consumes. Classic Paxos has no fast path, so the first result
// is always false.
func (n *Node) DecidedFast() (fast, decided bool) {
	return false, !n.decided.IsNone()
}

// Start implements consensus.Protocol.
func (n *Node) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.StartTimer{Timer: TimerLeader, After: 2 * n.cfg.Delta},
	}
}

// Propose implements consensus.Protocol. Process 0 exploits its pre-promised
// ballot 0 and proposes immediately; everyone else forwards to the leader.
func (n *Node) Propose(v consensus.Value) []consensus.Effect {
	if v.IsNone() || !n.initialVal.IsNone() {
		return nil
	}
	n.initialVal = v
	n.pending = consensus.MaxValue(n.pending, v)
	if n.cfg.ID == 0 {
		return n.proposeAtBallotZero()
	}
	lead := n.leaderOrNone()
	if lead == consensus.NoProcess {
		return nil
	}
	return []consensus.Effect{consensus.Send{To: lead, Msg: &Forward{Value: v}}}
}

// proposeAtBallotZero starts phase 2 directly on the pre-promised ballot 0.
func (n *Node) proposeAtBallotZero() []consensus.Effect {
	if n.lead.ballot >= 0 || n.pending.IsNone() {
		return nil
	}
	n.lead = leaderState{
		ballot:   0,
		sentTwoA: true,
		val:      n.pending,
		twoBs:    make(map[consensus.ProcessID]struct{}),
	}
	return []consensus.Effect{
		consensus.Broadcast{Msg: &TwoA{Ballot: 0, Value: n.pending}, Self: true},
	}
}

// Deliver implements consensus.Protocol.
func (n *Node) Deliver(from consensus.ProcessID, m consensus.Message) []consensus.Effect {
	switch msg := m.(type) {
	case *Forward:
		n.pending = consensus.MaxValue(n.pending, msg.Value)
		if n.cfg.ID == 0 && n.lead.ballot < 0 && n.decided.IsNone() {
			return n.proposeAtBallotZero()
		}
		return nil
	case *OneA:
		return n.onOneA(from, msg)
	case *OneB:
		return n.onOneB(from, msg)
	case *TwoA:
		return n.onTwoA(from, msg)
	case *TwoB:
		return n.onTwoB(from, msg)
	case *DecideMsg:
		return n.onDecide(msg.Value)
	default:
		return nil
	}
}

func (n *Node) onOneA(from consensus.ProcessID, m *OneA) []consensus.Effect {
	if m.Ballot <= n.bal {
		return nil
	}
	n.bal = m.Ballot
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &OneB{Ballot: m.Ballot, VBal: n.vbal, Val: n.val}},
	}
}

func (n *Node) onOneB(from consensus.ProcessID, m *OneB) []consensus.Effect {
	// Ballots this node leads are always positive (ballot 0 skips phase
	// 1); rejecting the rest also protects the idle leader state (ballot
	// −1, nil maps) from stray or malformed reports.
	if m.Ballot <= 0 || n.lead.ballot != m.Ballot || n.lead.sentTwoA {
		return nil
	}
	n.lead.oneBs[from] = *m
	if len(n.lead.oneBs) < n.cfg.ClassicQuorum() {
		return nil
	}
	// Choose the value of the highest-ballot vote, else a pending value.
	v := consensus.None
	best := consensus.Ballot(-1)
	members := make([]consensus.ProcessID, 0, len(n.lead.oneBs))
	for q := range n.lead.oneBs {
		members = append(members, q)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, q := range members {
		r := n.lead.oneBs[q]
		if r.VBal > best && !r.Val.IsNone() {
			best = r.VBal
			v = r.Val
		}
	}
	if v.IsNone() {
		v = n.pending
	}
	if v.IsNone() {
		return nil // nothing to propose yet; retry on a later timer
	}
	n.lead.sentTwoA = true
	n.lead.val = v
	return []consensus.Effect{
		consensus.Broadcast{Msg: &TwoA{Ballot: m.Ballot, Value: v}, Self: true},
	}
}

func (n *Node) onTwoA(from consensus.ProcessID, m *TwoA) []consensus.Effect {
	if m.Ballot < n.bal {
		return nil
	}
	n.bal = m.Ballot
	n.vbal = m.Ballot
	n.val = m.Value
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &TwoB{Ballot: m.Ballot, Value: m.Value}},
	}
}

func (n *Node) onTwoB(from consensus.ProcessID, m *TwoB) []consensus.Effect {
	if n.lead.ballot != m.Ballot || !n.lead.sentTwoA || m.Value != n.lead.val || !n.decided.IsNone() {
		return nil
	}
	n.lead.twoBs[from] = struct{}{}
	if len(n.lead.twoBs) < n.cfg.ClassicQuorum() {
		return nil
	}
	n.decided = m.Value
	return []consensus.Effect{
		consensus.Decide{Value: m.Value},
		consensus.Broadcast{Msg: &DecideMsg{Value: m.Value}, Self: false},
	}
}

func (n *Node) onDecide(v consensus.Value) []consensus.Effect {
	if !n.decided.IsNone() {
		return nil
	}
	n.decided = v
	return []consensus.Effect{consensus.Decide{Value: v}}
}

// Tick implements consensus.Protocol: on expiry the Ω leader starts a fresh
// ballot (full phase 1) if no decision is known; non-leaders re-forward
// their pending proposal to the leader.
func (n *Node) Tick(t consensus.TimerID) []consensus.Effect {
	if t != TimerLeader {
		return nil
	}
	effects := []consensus.Effect{
		consensus.StartTimer{Timer: TimerLeader, After: 5 * n.cfg.Delta},
	}
	if !n.decided.IsNone() {
		return append(effects, consensus.Broadcast{Msg: &DecideMsg{Value: n.decided}, Self: false})
	}
	lead := n.leaderOrNone()
	if lead != n.cfg.ID {
		if lead != consensus.NoProcess && !n.initialVal.IsNone() {
			return append(effects, consensus.Send{To: lead, Msg: &Forward{Value: n.initialVal}})
		}
		return effects
	}
	b := nextOwnedBallot(n.bal, n.cfg.ID, n.cfg.N)
	n.lead = leaderState{
		ballot: b,
		oneBs:  make(map[consensus.ProcessID]OneB),
		twoBs:  make(map[consensus.ProcessID]struct{}),
	}
	return append(effects, consensus.Broadcast{Msg: &OneA{Ballot: b}, Self: true})
}

func (n *Node) leaderOrNone() consensus.ProcessID {
	if n.omega == nil {
		return consensus.NoProcess
	}
	return n.omega.Leader()
}

// nextOwnedBallot returns the smallest ballot greater than bal owned by id
// under the rule b ≡ id (mod n).
func nextOwnedBallot(bal consensus.Ballot, id consensus.ProcessID, n int) consensus.Ballot {
	b := bal + 1
	if r := int64(b) % int64(n); r != int64(id) {
		b += consensus.Ballot((int64(id) - r + int64(n)) % int64(n))
	}
	return b
}

// DumpState returns a canonical dump of the node's full state for the model
// checker's deduplication (internal/mc).
func (n *Node) DumpState() string {
	oneBs := make([]string, 0, len(n.lead.oneBs))
	for p, ob := range n.lead.oneBs {
		oneBs = append(oneBs, fmt.Sprintf("%d:%+v", p, ob))
	}
	sort.Strings(oneBs)
	twoBs := make([]int, 0, len(n.lead.twoBs))
	for p := range n.lead.twoBs {
		twoBs = append(twoBs, int(p))
	}
	sort.Ints(twoBs)
	return fmt.Sprintf("iv=%v p=%v b=%d vb=%d v=%v d=%v|lead{b=%d 1b=%v s2a=%v lv=%v 2b=%v}",
		n.initialVal, n.pending, n.bal, n.vbal, n.val, n.decided,
		n.lead.ballot, oneBs, n.lead.sentTwoA, n.lead.val, twoBs)
}
