package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/consensus"
)

// flowEvent is one row of the rendered diagram.
type flowEvent struct {
	at   consensus.Time
	prio int // proposals, then crashes, then messages, then decisions
	text string
}

// WriteFlow renders the execution as a chronological message-flow listing:
// proposals, crashes, message deliveries (requires KeepMessages to have
// been set before the run) and decisions, grouped by round when delta > 0.
//
//	== round 1 (t in [0,10)) ==
//	t=    0  p1 proposes v(5)
//	== round 2 ==
//	t=   10  p1 ──core.propose──▶ p0
//	...
//	t=   20  p1 ✔ DECIDES v(5)
func (t *Trace) WriteFlow(w io.Writer, delta consensus.Duration) error {
	events := make([]flowEvent, 0, len(t.Messages)+len(t.Decisions)+len(t.Proposals)+len(t.Crashes))
	for _, p := range t.Proposals {
		events = append(events, flowEvent{
			at:   p.At,
			prio: 0,
			text: fmt.Sprintf("%s proposes %s", p.P, p.Value),
		})
	}
	for p, at := range t.Crashes {
		events = append(events, flowEvent{
			at:   at,
			prio: 1,
			text: fmt.Sprintf("%s ✖ CRASHES", p),
		})
	}
	for _, m := range t.Messages {
		events = append(events, flowEvent{
			at:   m.At,
			prio: 2,
			text: fmt.Sprintf("%s ──%s──▶ %s", m.From, m.Kind, m.To),
		})
	}
	for _, d := range t.Decisions {
		events = append(events, flowEvent{
			at:   d.At,
			prio: 3,
			text: fmt.Sprintf("%s ✔ DECIDES %s", d.P, d.Value),
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].prio < events[j].prio
	})

	lastRound := consensus.Time(-1)
	for _, ev := range events {
		if delta > 0 {
			round := ev.at / consensus.Time(delta)
			if round != lastRound {
				lastRound = round
				if _, err := fmt.Fprintf(w, "== round %d (t in [%d,%d)) ==\n",
					round+1, round*consensus.Time(delta), (round+1)*consensus.Time(delta)); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintf(w, "t=%5d  %s\n", ev.at, ev.text); err != nil {
			return err
		}
	}
	if len(t.Messages) == 0 && t.Deliveries > 0 {
		_, err := fmt.Fprintf(w, "(%d deliveries not retained — enable KeepMessages before the run)\n", t.Deliveries)
		return err
	}
	return nil
}

// Summary returns a one-paragraph account of the run: who proposed, who
// crashed, who decided what and when, and the verdicts.
func (t *Trace) Summary(delta consensus.Duration) string {
	s := fmt.Sprintf("%d processes, %d deliveries.", t.N, t.Deliveries)
	for _, p := range t.Proposals {
		s += fmt.Sprintf(" %s proposed %s@%d.", p.P, p.Value, p.At)
	}
	for i := 0; i < t.N; i++ {
		p := consensus.ProcessID(i)
		if at, ok := t.Crashes[p]; ok {
			s += fmt.Sprintf(" %s crashed@%d.", p, at)
		}
	}
	twoStep := t.TwoStepProcesses(delta)
	for i := 0; i < t.N; i++ {
		if d, ok := t.Decisions[consensus.ProcessID(i)]; ok {
			s += fmt.Sprintf(" %s decided %s@%d.", d.P, d.Value, d.At)
		}
	}
	s += fmt.Sprintf(" Two-step: %v.", twoStep)
	if err := t.CheckAgreement(); err != nil {
		s += " AGREEMENT VIOLATED."
	}
	return s
}
