// Package trace records what happened during an execution — proposals,
// decisions, crashes, message deliveries — and checks the recorded history
// against the consensus specification: Validity, Agreement, Termination, the
// two-step latency predicate of Definition 3, and linearizability for the
// object formulation.
package trace

import (
	"sort"

	"repro/internal/consensus"
)

// Proposal records that process P proposed Value at time At.
type Proposal struct {
	P     consensus.ProcessID
	At    consensus.Time
	Value consensus.Value
}

// Decision records that process P decided Value at time At.
type Decision struct {
	P     consensus.ProcessID
	At    consensus.Time
	Value consensus.Value
}

// MessageEvent records one message delivery (for diagnostics and counting).
type MessageEvent struct {
	At       consensus.Time
	From, To consensus.ProcessID
	Kind     string
}

// Trace is the recorded history of one execution over n processes.
type Trace struct {
	N int

	Proposals []Proposal
	Decisions map[consensus.ProcessID]Decision
	Crashes   map[consensus.ProcessID]consensus.Time

	// Deliveries counts message deliveries; Messages optionally retains
	// them all when KeepMessages is set before the run.
	Deliveries   int64
	KeepMessages bool
	Messages     []MessageEvent
}

// New returns an empty trace for n processes.
func New(n int) *Trace {
	return &Trace{
		N:         n,
		Decisions: make(map[consensus.ProcessID]Decision),
		Crashes:   make(map[consensus.ProcessID]consensus.Time),
	}
}

// RecordProposal appends a proposal event.
func (t *Trace) RecordProposal(p consensus.ProcessID, at consensus.Time, v consensus.Value) {
	t.Proposals = append(t.Proposals, Proposal{P: p, At: at, Value: v})
}

// RecordDecision records the first decision of p; repeats are ignored.
func (t *Trace) RecordDecision(p consensus.ProcessID, at consensus.Time, v consensus.Value) {
	if _, dup := t.Decisions[p]; dup {
		return
	}
	t.Decisions[p] = Decision{P: p, At: at, Value: v}
}

// RecordCrash records that p crashed at the given time.
func (t *Trace) RecordCrash(p consensus.ProcessID, at consensus.Time) {
	if _, dup := t.Crashes[p]; dup {
		return
	}
	t.Crashes[p] = at
}

// RecordDelivery counts (and optionally retains) one message delivery.
func (t *Trace) RecordDelivery(at consensus.Time, from, to consensus.ProcessID, kind string) {
	t.Deliveries++
	if t.KeepMessages {
		t.Messages = append(t.Messages, MessageEvent{At: at, From: from, To: to, Kind: kind})
	}
}

// Crashed reports whether p crashed during the execution.
func (t *Trace) Crashed(p consensus.ProcessID) bool {
	_, ok := t.Crashes[p]
	return ok
}

// Correct returns the processes that never crashed, ascending.
func (t *Trace) Correct() []consensus.ProcessID {
	out := make([]consensus.ProcessID, 0, t.N)
	for i := 0; i < t.N; i++ {
		if !t.Crashed(consensus.ProcessID(i)) {
			out = append(out, consensus.ProcessID(i))
		}
	}
	return out
}

// DecisionOf returns p's decision, if it made one.
func (t *Trace) DecisionOf(p consensus.ProcessID) (Decision, bool) {
	d, ok := t.Decisions[p]
	return d, ok
}

// DecidedValues returns the distinct decided values, sorted ascending.
func (t *Trace) DecidedValues() []consensus.Value {
	set := make(map[consensus.Value]struct{})
	for _, d := range t.Decisions {
		set[d.Value] = struct{}{}
	}
	out := make([]consensus.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// FirstDecision returns the earliest decision in the trace, breaking time
// ties by process id, and false if nobody decided.
func (t *Trace) FirstDecision() (Decision, bool) {
	var best Decision
	found := false
	for i := 0; i < t.N; i++ {
		d, ok := t.Decisions[consensus.ProcessID(i)]
		if !ok {
			continue
		}
		if !found || d.At < best.At {
			best = d
			found = true
		}
	}
	return best, found
}

// TwoStepProcesses returns the processes that decided by time 2Δ
// (Definition 3), ascending.
func (t *Trace) TwoStepProcesses(delta consensus.Duration) []consensus.ProcessID {
	deadline := consensus.Time(2 * delta)
	out := make([]consensus.ProcessID, 0, len(t.Decisions))
	for i := 0; i < t.N; i++ {
		if d, ok := t.Decisions[consensus.ProcessID(i)]; ok && d.At <= deadline {
			out = append(out, consensus.ProcessID(i))
		}
	}
	return out
}

// TwoStepFor reports whether the run was two-step for p (Definition 3).
func (t *Trace) TwoStepFor(p consensus.ProcessID, delta consensus.Duration) bool {
	d, ok := t.Decisions[p]
	return ok && d.At <= consensus.Time(2*delta)
}
