package trace

import (
	"errors"
	"testing"

	"repro/internal/consensus"
)

func v(k int64) consensus.Value { return consensus.IntValue(k) }

func TestAgreement(t *testing.T) {
	tr := New(3)
	tr.RecordDecision(0, 20, v(5))
	tr.RecordDecision(1, 30, v(5))
	if err := tr.CheckAgreement(); err != nil {
		t.Fatalf("agreeing decisions flagged: %v", err)
	}
	tr.RecordDecision(2, 40, v(6))
	if err := tr.CheckAgreement(); !errors.Is(err, ErrAgreement) {
		t.Fatalf("violation missed: %v", err)
	}
}

func TestRepeatedDecisionIgnored(t *testing.T) {
	tr := New(2)
	tr.RecordDecision(0, 20, v(5))
	tr.RecordDecision(0, 25, v(6)) // later duplicate must be ignored
	d, ok := tr.DecisionOf(0)
	if !ok || d.Value != v(5) || d.At != 20 {
		t.Fatalf("first decision not preserved: %v", d)
	}
}

func TestValidity(t *testing.T) {
	tr := New(3)
	tr.RecordProposal(0, 0, v(5))
	tr.RecordDecision(1, 20, v(5))
	if err := tr.CheckValidity(); err != nil {
		t.Fatalf("valid decision flagged: %v", err)
	}
	tr.RecordDecision(2, 20, v(9))
	if err := tr.CheckValidity(); !errors.Is(err, ErrValidity) {
		t.Fatalf("invented value missed: %v", err)
	}
}

func TestTermination(t *testing.T) {
	tr := New(3)
	tr.RecordCrash(2, 10)
	tr.RecordDecision(0, 20, v(5))
	if err := tr.CheckTermination(tr.Correct()); !errors.Is(err, ErrTermination) {
		t.Fatalf("missing decision of p1 not flagged: %v", err)
	}
	tr.RecordDecision(1, 25, v(5))
	if err := tr.CheckTermination(tr.Correct()); err != nil {
		t.Fatalf("termination flagged despite all correct deciding: %v", err)
	}
}

func TestTwoStepPredicates(t *testing.T) {
	tr := New(3)
	delta := consensus.Duration(10)
	tr.RecordDecision(0, 20, v(5)) // exactly 2Δ: two-step
	tr.RecordDecision(1, 21, v(5)) // just past
	if !tr.TwoStepFor(0, delta) {
		t.Error("decision at exactly 2Δ must count as two-step")
	}
	if tr.TwoStepFor(1, delta) {
		t.Error("decision after 2Δ counted as two-step")
	}
	if got := tr.TwoStepProcesses(delta); len(got) != 1 || got[0] != 0 {
		t.Errorf("TwoStepProcesses = %v", got)
	}
}

func TestLinearizable(t *testing.T) {
	tr := New(3)
	tr.RecordProposal(0, 0, v(5))
	tr.RecordDecision(0, 20, v(5))
	if err := tr.CheckLinearizable(); err != nil {
		t.Fatalf("linearizable history flagged: %v", err)
	}

	// A decision whose value was only proposed after the first response
	// completed cannot be linearized.
	tr2 := New(3)
	tr2.RecordProposal(0, 0, v(5))
	tr2.RecordProposal(1, 50, v(9))
	tr2.RecordDecision(2, 20, v(9))
	if err := tr2.CheckLinearizable(); !errors.Is(err, ErrLinearizable) {
		t.Fatalf("non-linearizable history missed: %v", err)
	}
}

func TestObjectSpecOnlyRequiresProposersToDecide(t *testing.T) {
	tr := New(4)
	tr.RecordProposal(1, 0, v(5))
	tr.RecordDecision(1, 20, v(5))
	// p0, p2, p3 never proposed and never decided: still fine.
	if err := tr.CheckObjectSpec(); err != nil {
		t.Fatalf("object spec flagged: %v", err)
	}
	// A crashed proposer needs no decision either.
	tr.RecordProposal(2, 5, v(7))
	tr.RecordCrash(2, 6)
	if err := tr.CheckObjectSpec(); err != nil {
		t.Fatalf("object spec flagged crashed proposer: %v", err)
	}
	// But a correct proposer must decide.
	tr.RecordProposal(3, 5, v(8))
	if err := tr.CheckObjectSpec(); !errors.Is(err, ErrTermination) {
		t.Fatalf("undecided correct proposer missed: %v", err)
	}
}

func TestFirstDecision(t *testing.T) {
	tr := New(3)
	if _, ok := tr.FirstDecision(); ok {
		t.Fatal("FirstDecision on empty trace")
	}
	tr.RecordDecision(2, 30, v(5))
	tr.RecordDecision(1, 20, v(5))
	d, ok := tr.FirstDecision()
	if !ok || d.P != 1 || d.At != 20 {
		t.Fatalf("FirstDecision = %v", d)
	}
}

func TestDecidedValuesSorted(t *testing.T) {
	tr := New(3)
	tr.RecordDecision(0, 20, v(9))
	tr.RecordDecision(1, 20, v(3))
	tr.RecordDecision(2, 20, v(9))
	got := tr.DecidedValues()
	if len(got) != 2 || got[0] != v(3) || got[1] != v(9) {
		t.Fatalf("DecidedValues = %v", got)
	}
}

func TestMessageRecording(t *testing.T) {
	tr := New(2)
	tr.RecordDelivery(5, 0, 1, "k")
	if tr.Deliveries != 1 || len(tr.Messages) != 0 {
		t.Fatal("messages retained without KeepMessages")
	}
	tr.KeepMessages = true
	tr.RecordDelivery(6, 1, 0, "k")
	if len(tr.Messages) != 1 {
		t.Fatal("KeepMessages did not retain")
	}
}
