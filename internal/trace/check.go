package trace

import (
	"errors"
	"fmt"

	"repro/internal/consensus"
)

// Specification violations, matchable with errors.Is.
var (
	ErrAgreement    = errors.New("agreement violated")
	ErrValidity     = errors.New("validity violated")
	ErrTermination  = errors.New("termination violated")
	ErrLinearizable = errors.New("linearizability violated")
)

// CheckAgreement verifies that no two processes decided different values.
func (t *Trace) CheckAgreement() error {
	vals := t.DecidedValues()
	if len(vals) > 1 {
		return fmt.Errorf("%w: decided values %v (decisions %v)", ErrAgreement, vals, t.decisionSummary())
	}
	return nil
}

// CheckValidity verifies that every decision is the proposal of some process.
func (t *Trace) CheckValidity() error {
	proposed := make(map[consensus.Value]struct{}, len(t.Proposals))
	for _, p := range t.Proposals {
		proposed[p.Value] = struct{}{}
	}
	for _, d := range t.Decisions {
		if _, ok := proposed[d.Value]; !ok {
			return fmt.Errorf("%w: %s decided %s which nobody proposed", ErrValidity, d.P, d.Value)
		}
	}
	return nil
}

// CheckTermination verifies that every listed process decided.
func (t *Trace) CheckTermination(required []consensus.ProcessID) error {
	for _, p := range required {
		if _, ok := t.Decisions[p]; !ok {
			return fmt.Errorf("%w: %s never decided", ErrTermination, p)
		}
	}
	return nil
}

// CheckTaskSpec verifies Validity, Agreement, and Termination for a
// consensus task: every correct process must decide.
func (t *Trace) CheckTaskSpec() error {
	if err := t.CheckValidity(); err != nil {
		return err
	}
	if err := t.CheckAgreement(); err != nil {
		return err
	}
	return t.CheckTermination(t.Correct())
}

// CheckObjectSpec verifies the consensus-object specification: Validity,
// Agreement, linearizability, and Termination restricted to correct
// processes that actually invoked propose.
func (t *Trace) CheckObjectSpec() error {
	if err := t.CheckValidity(); err != nil {
		return err
	}
	if err := t.CheckAgreement(); err != nil {
		return err
	}
	if err := t.CheckLinearizable(); err != nil {
		return err
	}
	var required []consensus.ProcessID
	seen := make(map[consensus.ProcessID]struct{})
	for _, p := range t.Proposals {
		if _, dup := seen[p.P]; dup {
			continue
		}
		seen[p.P] = struct{}{}
		if !t.Crashed(p.P) {
			required = append(required, p.P)
		}
	}
	return t.CheckTermination(required)
}

// CheckLinearizable verifies the object-specific real-time condition: the
// decided value must have been proposed by an invocation that began no later
// than the first response (decision) completed. Otherwise no linearization
// can place the winning propose before the first completed one.
func (t *Trace) CheckLinearizable() error {
	first, ok := t.FirstDecision()
	if !ok {
		return nil
	}
	for _, p := range t.Proposals {
		if p.Value == first.Value && p.At <= first.At {
			return nil
		}
	}
	return fmt.Errorf("%w: value %s decided at t=%d was not proposed by any invocation starting by then",
		ErrLinearizable, first.Value, first.At)
}

func (t *Trace) decisionSummary() string {
	s := ""
	for i := 0; i < t.N; i++ {
		if d, ok := t.Decisions[consensus.ProcessID(i)]; ok {
			s += fmt.Sprintf("%s=%s@%d ", d.P, d.Value, d.At)
		}
	}
	return s
}
