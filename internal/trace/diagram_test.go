package trace

import (
	"strings"
	"testing"

	"repro/internal/consensus"
)

func sampleTrace() *Trace {
	tr := New(3)
	tr.KeepMessages = true
	tr.RecordProposal(1, 0, consensus.IntValue(5))
	tr.RecordDelivery(10, 1, 0, "core.propose")
	tr.RecordDelivery(10, 1, 2, "core.propose")
	tr.RecordDelivery(20, 0, 1, "core.2b")
	tr.RecordDelivery(20, 2, 1, "core.2b")
	tr.RecordDecision(1, 20, consensus.IntValue(5))
	tr.RecordCrash(2, 25)
	return tr
}

func TestWriteFlow(t *testing.T) {
	tr := sampleTrace()
	var sb strings.Builder
	if err := tr.WriteFlow(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"== round 1",
		"p1 proposes v(5)",
		"p1 ──core.propose──▶ p0",
		"p1 ✔ DECIDES v(5)",
		"p2 ✖ CRASHES",
		"== round 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("flow output missing %q:\n%s", want, out)
		}
	}
	// Decisions sort after deliveries on the same tick.
	if strings.Index(out, "core.2b──▶ p1") > strings.Index(out, "DECIDES") {
		t.Errorf("decision rendered before the votes that caused it:\n%s", out)
	}
}

func TestWriteFlowWithoutMessages(t *testing.T) {
	tr := New(2)
	tr.RecordDelivery(5, 0, 1, "k") // not retained
	var sb strings.Builder
	if err := tr.WriteFlow(&sb, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "not retained") {
		t.Errorf("missing retention hint:\n%s", sb.String())
	}
}

func TestSummary(t *testing.T) {
	tr := sampleTrace()
	s := tr.Summary(10)
	for _, want := range []string{"3 processes", "p1 proposed", "p1 decided", "p2 crashed", "Two-step: [p1]"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
	// Conflicting decision shows up.
	tr.RecordDecision(0, 30, consensus.IntValue(9))
	if !strings.Contains(tr.Summary(10), "AGREEMENT VIOLATED") {
		t.Error("summary hides the violation")
	}
}
