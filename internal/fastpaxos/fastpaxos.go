// Package fastpaxos implements Fast Paxos (Lamport 2006a) as a baseline,
// specialized to the single fast ballot 0 followed by classic slow ballots.
//
// Differences from the paper's core protocol (internal/core) that make Fast
// Paxos require max{2e+f+1, 2f+1} processes rather than the paper's tighter
// bounds:
//
//   - The fast path is not value-ordered: an acceptor votes for the first
//     Propose it receives, whatever the value.
//   - Recovery does not exclude the votes of proposers that joined the new
//     ballot: from n−f 1B reports with highest vote ballot 0, the
//     coordinator picks the value with at least n−e−f votes in Q if one
//     exists (Lamport's O4 rule); at n ≥ 2e+f+1 at most one value can reach
//     that threshold.
//
// A proposer that gathers ballot-0 votes from n−e acceptors (counting
// itself) decides after two message delays, so the protocol is e-two-step in
// the paper's sense whenever n ≥ max{2e+f+1, 2f+1}. Below that count the
// recovery rule can pick a value different from a fast-decided one — the T1
// frontier bench demonstrates exactly this.
//
// Flexible quorums (Fast Flexible Paxos, Howard et al.): when the config
// carries FastSize/RecoverySize overrides, the fast path waits for
// FastQuorum votes and recovery collects RecoveryQuorum 1B reports, with
// the O4 vote threshold generalized to FastOverlap = recovery+fast−n.
// quorum.NewFlex guarantees recovery+2·fast > 2n, which keeps the O4 pick
// unique; the price is leader-change liveness (recovery needs RecoverySize
// live processes instead of n−f). With zero overrides every formula
// reduces to the classical one.
package fastpaxos

import (
	"fmt"
	"sort"

	"repro/internal/consensus"
	"repro/internal/quorum"
)

// Message kinds for the wire codec.
const (
	KindPropose = "fastpaxos.propose"
	KindOneA    = "fastpaxos.1a"
	KindOneB    = "fastpaxos.1b"
	KindTwoA    = "fastpaxos.2a"
	KindTwoB    = "fastpaxos.2b"
	KindDecide  = "fastpaxos.decide"
)

// ProposeMsg is the fast-ballot proposal (Lamport's "any value" 2A at the
// fast ballot, initiated directly by the proposer).
type ProposeMsg struct {
	Value consensus.Value `json:"value"`
}

// OneA asks acceptors to join a slow ballot.
type OneA struct {
	Ballot consensus.Ballot `json:"ballot"`
}

// OneB reports acceptor state to a slow-ballot coordinator.
type OneB struct {
	Ballot consensus.Ballot `json:"ballot"`
	VBal   consensus.Ballot `json:"vbal"`
	Val    consensus.Value  `json:"val"`
}

// TwoA carries the coordinator's slow-ballot proposal.
type TwoA struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// TwoB is a vote at a ballot.
type TwoB struct {
	Ballot consensus.Ballot `json:"ballot"`
	Value  consensus.Value  `json:"value"`
}

// DecideMsg announces the decision.
type DecideMsg struct {
	Value consensus.Value `json:"value"`
}

// Kind implements consensus.Message.
func (ProposeMsg) Kind() string { return KindPropose }

// Kind implements consensus.Message.
func (OneA) Kind() string { return KindOneA }

// Kind implements consensus.Message.
func (OneB) Kind() string { return KindOneB }

// Kind implements consensus.Message.
func (TwoA) Kind() string { return KindTwoA }

// Kind implements consensus.Message.
func (TwoB) Kind() string { return KindTwoB }

// Kind implements consensus.Message.
func (DecideMsg) Kind() string { return KindDecide }

// RegisterMessages registers all fastpaxos message kinds with codec.
func RegisterMessages(codec *consensus.Codec) {
	codec.MustRegister(KindPropose, func() consensus.Message { return &ProposeMsg{} })
	codec.MustRegister(KindOneA, func() consensus.Message { return &OneA{} })
	codec.MustRegister(KindOneB, func() consensus.Message { return &OneB{} })
	codec.MustRegister(KindTwoA, func() consensus.Message { return &TwoA{} })
	codec.MustRegister(KindTwoB, func() consensus.Message { return &TwoB{} })
	codec.MustRegister(KindDecide, func() consensus.Message { return &DecideMsg{} })
}

// TimerNewBallot paces recovery exactly like the core protocol (2Δ then 5Δ).
const TimerNewBallot consensus.TimerID = "fastpaxos.new_ballot"

// Node is one Fast Paxos process.
type Node struct {
	cfg   consensus.Config
	omega consensus.LeaderOracle

	initialVal consensus.Value
	val        consensus.Value
	bal        consensus.Ballot
	vbal       consensus.Ballot
	decided    consensus.Value
	pendingMax consensus.Value

	fastVotes   map[consensus.ProcessID]struct{}
	fastDecided bool
	lead        leaderState
}

type leaderState struct {
	ballot   consensus.Ballot
	oneBs    map[consensus.ProcessID]OneB
	sentTwoA bool
	val      consensus.Value
	twoBs    map[consensus.ProcessID]struct{}
}

var _ consensus.Protocol = (*Node)(nil)

// New builds a Fast Paxos node, checking Lamport's bound
// n ≥ max{2e+f+1, 2f+1}. Flexible configurations (FastSize/RecoverySize
// overrides) are instead checked against the Fast Flexible Paxos
// intersection requirements, which cfg.Validate delegates to
// quorum.CheckFlex — Lamport's count no longer applies because the
// deployment explicitly trades recovery resilience for the smaller fast
// quorum.
func New(cfg consensus.Config, omega consensus.LeaderOracle) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("fastpaxos: %w", err)
	}
	if !cfg.Flexible() {
		if err := quorum.Check(quorum.Lamport, cfg.N, cfg.F, cfg.E); err != nil {
			return nil, fmt.Errorf("fastpaxos: %w", err)
		}
	}
	return NewUnchecked(cfg, omega), nil
}

// NewUnchecked builds a Fast Paxos node without the bound check (for
// below-bound experiments).
func NewUnchecked(cfg consensus.Config, omega consensus.LeaderOracle) *Node {
	return &Node{
		cfg:        cfg,
		omega:      omega,
		initialVal: consensus.None,
		val:        consensus.None,
		decided:    consensus.None,
		pendingMax: consensus.None,
		fastVotes:  make(map[consensus.ProcessID]struct{}),
	}
}

// ID implements consensus.Protocol.
func (n *Node) ID() consensus.ProcessID { return n.cfg.ID }

// Decision implements consensus.Protocol.
func (n *Node) Decision() (consensus.Value, bool) {
	if n.decided.IsNone() {
		return consensus.None, false
	}
	return n.decided, true
}

// DecidedFast reports whether this node's decision was reached on the
// two-step fast path (a full fast quorum of ballot-0 votes for its own
// proposal), as opposed to a slow ballot or a DecideMsg learned from
// another node. The WAN bench uses it to compute slow-path rates.
func (n *Node) DecidedFast() (fast, decided bool) {
	return n.fastDecided, !n.decided.IsNone()
}

// Start implements consensus.Protocol.
func (n *Node) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.StartTimer{Timer: TimerNewBallot, After: 2 * n.cfg.Delta},
	}
}

// Propose implements consensus.Protocol.
func (n *Node) Propose(v consensus.Value) []consensus.Effect {
	if v.IsNone() || !n.initialVal.IsNone() || !n.val.IsNone() {
		return nil
	}
	n.initialVal = v
	n.pendingMax = consensus.MaxValue(n.pendingMax, v)
	// Unlike the paper's value-ordered protocol, the proposal goes to Π
	// including ourselves: our own acceptor votes for whichever proposal
	// it receives first, ours included. (In the paper's protocol the
	// proposer's support is counted implicitly — |P ∪ {p_i}| — which its
	// value-ordering makes safe; Fast Paxos's unordered acceptors must
	// really vote.)
	return []consensus.Effect{
		consensus.Broadcast{Msg: &ProposeMsg{Value: v}, Self: true},
	}
}

// Deliver implements consensus.Protocol.
func (n *Node) Deliver(from consensus.ProcessID, m consensus.Message) []consensus.Effect {
	switch msg := m.(type) {
	case *ProposeMsg:
		return n.onPropose(from, msg)
	case *TwoB:
		return n.onTwoB(from, msg)
	case *DecideMsg:
		return n.onDecide(msg.Value)
	case *OneA:
		return n.onOneA(from, msg)
	case *OneB:
		return n.onOneB(from, msg)
	case *TwoA:
		return n.onTwoA(from, msg)
	default:
		return nil
	}
}

// onPropose votes for the first proposal received — no value ordering.
func (n *Node) onPropose(from consensus.ProcessID, m *ProposeMsg) []consensus.Effect {
	n.pendingMax = consensus.MaxValue(n.pendingMax, m.Value)
	if !n.bal.Fast() || !n.val.IsNone() {
		return nil
	}
	n.val = m.Value
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &TwoB{Ballot: 0, Value: m.Value}},
	}
}

func (n *Node) onTwoB(from consensus.ProcessID, m *TwoB) []consensus.Effect {
	if !n.decided.IsNone() {
		return nil
	}
	if m.Ballot.Fast() {
		// Learner rule: our value is chosen once n−e acceptors voted
		// for it. Our own acceptor's vote arrives like any other (we
		// broadcast Propose to Π including ourselves), so the count
		// is over real votes only — no implicit self-support.
		if m.Value != n.initialVal {
			return nil
		}
		n.fastVotes[from] = struct{}{}
		if len(n.fastVotes) < n.cfg.FastQuorum() {
			return nil
		}
		n.fastDecided = true
		return n.decide(m.Value)
	}
	if n.lead.ballot != m.Ballot || !n.lead.sentTwoA || m.Value != n.lead.val {
		return nil
	}
	n.lead.twoBs[from] = struct{}{}
	if len(n.lead.twoBs) < n.cfg.ClassicQuorum() {
		return nil
	}
	return n.decide(m.Value)
}

func (n *Node) decide(v consensus.Value) []consensus.Effect {
	n.val = v
	n.decided = v
	return []consensus.Effect{
		consensus.Decide{Value: v},
		consensus.Broadcast{Msg: &DecideMsg{Value: v}, Self: false},
	}
}

func (n *Node) onDecide(v consensus.Value) []consensus.Effect {
	if !n.decided.IsNone() {
		return nil
	}
	n.val = v
	n.decided = v
	return []consensus.Effect{consensus.Decide{Value: v}}
}

func (n *Node) onOneA(from consensus.ProcessID, m *OneA) []consensus.Effect {
	if m.Ballot <= n.bal {
		return nil
	}
	n.bal = m.Ballot
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &OneB{Ballot: m.Ballot, VBal: n.vbal, Val: n.val}},
	}
}

// onOneB runs Lamport's O4 recovery once a recovery quorum of reports is
// in (n−f classically; RecoverySize under flexible quorums).
func (n *Node) onOneB(from consensus.ProcessID, m *OneB) []consensus.Effect {
	// Ballot 0 is never led; this also protects the zero-value leader
	// state from stray reports.
	if m.Ballot.Fast() || n.lead.ballot != m.Ballot || n.lead.sentTwoA {
		return nil
	}
	n.lead.oneBs[from] = *m
	if len(n.lead.oneBs) < n.cfg.RecoveryQuorum() {
		return nil
	}
	v := n.recover(n.lead.oneBs)
	if v.IsNone() {
		return nil
	}
	n.lead.sentTwoA = true
	n.lead.val = v
	return []consensus.Effect{
		consensus.Broadcast{Msg: &TwoA{Ballot: m.Ballot, Value: v}, Self: true},
	}
}

// recover implements the coordinator's value-selection rule: highest
// slow-ballot vote; else any value with ≥ FastOverlap fast votes in Q
// (n−e−f classically — unique at n ≥ 2e+f+1, and unique under any sound
// flexible sizing since recovery+2·fast > 2n; maximal for determinism
// below the bound); else the coordinator's own or a pending proposal;
// else the greatest visible vote.
func (n *Node) recover(reports map[consensus.ProcessID]OneB) consensus.Value {
	members := make([]consensus.ProcessID, 0, len(reports))
	for q := range reports {
		members = append(members, q)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	var bmax consensus.Ballot
	for _, q := range members {
		if vb := reports[q].VBal; vb > bmax {
			bmax = vb
		}
	}
	if bmax > 0 {
		best := consensus.None
		for _, q := range members {
			if reports[q].VBal == bmax {
				best = consensus.MaxValue(best, reports[q].Val)
			}
		}
		return best
	}

	counts := make(map[consensus.Value]int)
	for _, q := range members {
		if v := reports[q].Val; !v.IsNone() {
			counts[v]++
		}
	}
	threshold := n.cfg.FastOverlap()
	best := consensus.None
	for v, c := range counts {
		if c >= threshold {
			best = consensus.MaxValue(best, v)
		}
	}
	if !best.IsNone() {
		return best
	}
	if !n.initialVal.IsNone() {
		return n.initialVal
	}
	for _, q := range members {
		if v := reports[q].Val; !v.IsNone() {
			best = consensus.MaxValue(best, v)
		}
	}
	if !best.IsNone() {
		return best
	}
	return n.pendingMax
}

func (n *Node) onTwoA(from consensus.ProcessID, m *TwoA) []consensus.Effect {
	if n.bal > m.Ballot {
		return nil
	}
	n.bal = m.Ballot
	n.vbal = m.Ballot
	n.val = m.Value
	return []consensus.Effect{
		consensus.Send{To: from, Msg: &TwoB{Ballot: m.Ballot, Value: m.Value}},
	}
}

// Tick implements consensus.Protocol, pacing recovery like the core protocol.
func (n *Node) Tick(t consensus.TimerID) []consensus.Effect {
	if t != TimerNewBallot {
		return nil
	}
	effects := []consensus.Effect{
		consensus.StartTimer{Timer: TimerNewBallot, After: 5 * n.cfg.Delta},
	}
	if !n.decided.IsNone() {
		return append(effects, consensus.Broadcast{Msg: &DecideMsg{Value: n.decided}, Self: false})
	}
	lead := n.leaderOrNone()
	if lead != n.cfg.ID {
		if lead != consensus.NoProcess && !n.initialVal.IsNone() {
			return append(effects, consensus.Send{To: lead, Msg: &ProposeMsg{Value: n.initialVal}})
		}
		return effects
	}
	b := nextOwnedBallot(n.bal, n.cfg.ID, n.cfg.N)
	n.lead = leaderState{
		ballot: b,
		oneBs:  make(map[consensus.ProcessID]OneB),
		twoBs:  make(map[consensus.ProcessID]struct{}),
	}
	return append(effects, consensus.Broadcast{Msg: &OneA{Ballot: b}, Self: true})
}

func (n *Node) leaderOrNone() consensus.ProcessID {
	if n.omega == nil {
		return consensus.NoProcess
	}
	return n.omega.Leader()
}

func nextOwnedBallot(bal consensus.Ballot, id consensus.ProcessID, n int) consensus.Ballot {
	b := bal + 1
	if r := int64(b) % int64(n); r != int64(id) {
		b += consensus.Ballot((int64(id) - r + int64(n)) % int64(n))
	}
	return b
}

// DumpState returns a canonical dump of the node's full state for the model
// checker's deduplication (internal/mc).
func (n *Node) DumpState() string {
	votes := make([]int, 0, len(n.fastVotes))
	for p := range n.fastVotes {
		votes = append(votes, int(p))
	}
	sort.Ints(votes)
	oneBs := make([]string, 0, len(n.lead.oneBs))
	for p, ob := range n.lead.oneBs {
		oneBs = append(oneBs, fmt.Sprintf("%d:%+v", p, ob))
	}
	sort.Strings(oneBs)
	twoBs := make([]int, 0, len(n.lead.twoBs))
	for p := range n.lead.twoBs {
		twoBs = append(twoBs, int(p))
	}
	sort.Ints(twoBs)
	return fmt.Sprintf("iv=%v v=%v b=%d vb=%d d=%v pm=%v fv=%v|lead{b=%d 1b=%v s2a=%v lv=%v 2b=%v}",
		n.initialVal, n.val, n.bal, n.vbal, n.decided, n.pendingMax, votes,
		n.lead.ballot, oneBs, n.lead.sentTwoA, n.lead.val, twoBs)
}
