package fastpaxos_test

import (
	"errors"
	"testing"

	"repro/internal/consensus"
	"repro/internal/fastpaxos"
	"repro/internal/protocols"
	"repro/internal/quorum"
	"repro/internal/runner"
)

func TestNewEnforcesLamportBound(t *testing.T) {
	cfg := consensus.Config{ID: 0, N: 3, F: 1, E: 1, Delta: 10} // Lamport needs 4
	if _, err := fastpaxos.New(cfg, consensus.FixedLeader(0)); !errors.Is(err, quorum.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible at n=3 f=1 e=1, got %v", err)
	}
	cfg.N = 4
	if _, err := fastpaxos.New(cfg, consensus.FixedLeader(0)); err != nil {
		t.Fatalf("New at Lamport bound: %v", err)
	}
}

func TestTwoStepAtLamportBound(t *testing.T) {
	cases := []struct{ f, e int }{{1, 1}, {2, 1}, {2, 2}}
	for _, c := range cases {
		n := quorum.LamportMinProcesses(c.f, c.e)
		sc := runner.Scenario{N: n, F: c.f, E: c.e, Delta: 10, Seed: 5}
		report := runner.TaskTwoStep(protocols.FastPaxosFactory, sc)
		if !report.OK() {
			t.Errorf("fastpaxos f=%d e=%d n=%d: %s\nitem1: %v\nitem2: %v",
				c.f, c.e, n, report, report.Item1.Failures, report.Item2.Failures)
		}
	}
}

func TestSoakAtLamportBound(t *testing.T) {
	sc := runner.Scenario{N: 6, F: 2, E: 1, Delta: 10, Seed: 9} // 2e+f+1 = 6 > 2f+1
	res := runner.Soak(protocols.FastPaxosFactory, sc, runner.SoakOptions{Runs: 60, MaxCrashes: 2})
	if !res.OK() {
		t.Fatalf("soak: %s\n%v", res, res.Failures)
	}
}

func TestFastDecisionAtTwoDelta(t *testing.T) {
	sc := runner.Scenario{N: 4, F: 1, E: 1, Delta: 10}
	inputs := map[consensus.ProcessID]consensus.Value{
		0: consensus.IntValue(4),
		1: consensus.IntValue(9),
		2: consensus.IntValue(1),
		3: consensus.IntValue(2),
	}
	tr, err := runner.EFaultySync(protocols.FastPaxosFactory, sc, runner.SyncRun{Inputs: inputs, Prefer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TwoStepFor(1, sc.Delta) {
		t.Fatalf("p1 not two-step: %v", tr.Decisions)
	}
}
