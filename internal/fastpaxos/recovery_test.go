package fastpaxos

import (
	"testing"

	"repro/internal/consensus"
)

func recoveryNode(t *testing.T, n, f, e int) *Node {
	t.Helper()
	cfg := consensus.Config{ID: 0, N: n, F: f, E: e, Delta: 10}
	return NewUnchecked(cfg, consensus.FixedLeader(0))
}

func fpReport(vbal consensus.Ballot, val consensus.Value) OneB {
	return OneB{Ballot: 1, VBal: vbal, Val: val}
}

func TestRecoverPrefersSlowBallotVote(t *testing.T) {
	n := recoveryNode(t, 7, 2, 2)
	reports := map[consensus.ProcessID]OneB{
		1: fpReport(0, consensus.IntValue(9)),
		2: fpReport(3, consensus.IntValue(4)),
		3: fpReport(0, consensus.IntValue(9)),
		4: fpReport(0, consensus.None),
		5: fpReport(0, consensus.None),
	}
	if got := n.recover(reports); got != consensus.IntValue(4) {
		t.Fatalf("recover = %v, want slow-ballot v(4)", got)
	}
}

func TestRecoverO4PicksQuorateValue(t *testing.T) {
	// n=7, f=2, e=2 (Lamport bound): O4 threshold n−e−f = 3. A value
	// with ≥3 votes among the 5 reports may have been fast-chosen.
	n := recoveryNode(t, 7, 2, 2)
	reports := map[consensus.ProcessID]OneB{
		1: fpReport(0, consensus.IntValue(9)),
		2: fpReport(0, consensus.IntValue(9)),
		3: fpReport(0, consensus.IntValue(9)),
		4: fpReport(0, consensus.IntValue(5)),
		5: fpReport(0, consensus.IntValue(5)),
	}
	if got := n.recover(reports); got != consensus.IntValue(9) {
		t.Fatalf("recover = %v, want O4 pick v(9)", got)
	}
}

func TestRecoverFallsBackToOwnThenVotes(t *testing.T) {
	n := recoveryNode(t, 7, 2, 2)
	n.initialVal = consensus.IntValue(6)
	reports := map[consensus.ProcessID]OneB{
		1: fpReport(0, consensus.IntValue(9)), // below O4 threshold
		2: fpReport(0, consensus.None),
		3: fpReport(0, consensus.None),
		4: fpReport(0, consensus.None),
		5: fpReport(0, consensus.None),
	}
	if got := n.recover(reports); got != consensus.IntValue(6) {
		t.Fatalf("recover = %v, want coordinator's own v(6)", got)
	}
	// Without an own value, the greatest visible vote.
	n2 := recoveryNode(t, 7, 2, 2)
	if got := n2.recover(reports); got != consensus.IntValue(9) {
		t.Fatalf("recover = %v, want visible vote v(9)", got)
	}
}

func TestRecoverNothingVisible(t *testing.T) {
	n := recoveryNode(t, 7, 2, 2)
	reports := map[consensus.ProcessID]OneB{
		1: fpReport(0, consensus.None),
		2: fpReport(0, consensus.None),
	}
	if got := n.recover(reports); !got.IsNone() {
		t.Fatalf("recover = %v, want ⊥", got)
	}
}
