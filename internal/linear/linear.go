// Package linear checks concurrent key-value histories for
// linearizability (Herlihy & Wing). It is the verdict stage of the chaos
// harness: clients log invoke/return events through a Recorder while the
// nemesis injects partitions, crashes and drops against the live stack,
// and Check then searches for a legal linearization of the merged history
// — per key (a history is linearizable iff each key's subhistory is), with
// the Wing & Gong search plus memoization of visited (linearized-set,
// state) pairs, in the style of Lowe's and porcupine's checkers.
//
// Operations whose outcome the client could not observe — a timed-out
// write, a proxy that died mid-call — are recorded as ambiguous: they MAY
// have been applied, at any point from their invocation onward, so the
// checker gives them an infinite return time. Operations that definitely
// did not execute (the request never reached a server) are excluded from
// the history entirely.
package linear

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind enumerates the KV operations the checker models.
type Kind uint8

// Operation kinds.
const (
	// KindPut writes Val to Key.
	KindPut Kind = iota
	// KindGet reads Key, observing (Found, Val).
	KindGet
	// KindDelete removes Key.
	KindDelete
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindDelete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Outcome classifies how an operation completed.
type Outcome uint8

const (
	// OutcomeOK: the operation returned and its result was observed.
	OutcomeOK Outcome = iota
	// OutcomeAmbiguous: the client never learned the result (timeout,
	// dead proxy). The operation may have been applied at any point after
	// its invocation — the checker must allow both possibilities.
	OutcomeAmbiguous
)

// InfTime is the return timestamp of an ambiguous operation: it stays
// concurrent with everything after its invocation.
const InfTime = int64(math.MaxInt64)

// Op is one completed client operation in a history.
type Op struct {
	// Client identifies the issuing client (informational; the checker
	// does not require per-client sequentiality).
	Client int
	// Kind is the operation.
	Kind Kind
	// Key is the key operated on.
	Key string
	// Val is the written value (KindPut) or the observed value (KindGet
	// with Found). Unused for KindDelete.
	Val string
	// Found reports, for KindGet, whether the key was present.
	Found bool
	// Invoke and Return are logical timestamps: op A precedes op B in
	// real time iff A.Return < B.Invoke. Ambiguous ops use InfTime.
	Invoke, Return int64
	// Outcome is OK or Ambiguous.
	Outcome Outcome
}

func (o Op) String() string {
	switch o.Kind {
	case KindGet:
		if !o.Found {
			return fmt.Sprintf("c%d get(%s)=∅ [%d,%d]", o.Client, o.Key, o.Invoke, o.Return)
		}
		return fmt.Sprintf("c%d get(%s)=%q [%d,%d]", o.Client, o.Key, o.Val, o.Invoke, o.Return)
	case KindDelete:
		return fmt.Sprintf("c%d del(%s) [%d,%d]", o.Client, o.Key, o.Invoke, o.Return)
	default:
		return fmt.Sprintf("c%d put(%s,%q) [%d,%d]", o.Client, o.Key, o.Val, o.Invoke, o.Return)
	}
}

// History is a set of completed operations. Order is irrelevant to the
// checker; History() returns it sorted by invocation time for readability.
type History []Op

// Recorder collects a history from concurrent clients. Timestamps come
// from a shared atomic counter, so the recorded order is consistent with
// real time (a strict total order that refines the happens-before of the
// actual calls). All methods are safe for concurrent use.
type Recorder struct {
	clock atomic.Int64

	mu  sync.Mutex
	ops []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// PendingOp is an invoked-but-unresolved operation. Exactly one of OK,
// Observed, Ambiguous or Failed must be called to resolve it.
type PendingOp struct {
	r  *Recorder
	op Op
}

// Invoke records the invocation of an operation. For KindPut, val is the
// value being written; for KindGet and KindDelete it is ignored.
func (r *Recorder) Invoke(client int, kind Kind, key, val string) *PendingOp {
	if kind != KindPut {
		val = ""
	}
	return &PendingOp{r: r, op: Op{
		Client: client, Kind: kind, Key: key, Val: val,
		Invoke: r.clock.Add(1),
	}}
}

// OK resolves a write (Put or Delete) that was acknowledged.
func (p *PendingOp) OK() {
	p.op.Return = p.r.clock.Add(1)
	p.op.Outcome = OutcomeOK
	p.r.append(p.op)
}

// Observed resolves a Get with the value it saw (found=false for a miss).
func (p *PendingOp) Observed(val string, found bool) {
	p.op.Val, p.op.Found = val, found
	if !found {
		p.op.Val = ""
	}
	p.op.Return = p.r.clock.Add(1)
	p.op.Outcome = OutcomeOK
	p.r.append(p.op)
}

// Ambiguous resolves an operation whose outcome is unknown (timeout, lost
// connection after the request was sent). Writes are kept with an
// infinite return time — they may have been applied at any later point.
// An ambiguous read has no effect and no observation, so it is dropped.
func (p *PendingOp) Ambiguous() {
	if p.op.Kind == KindGet {
		return
	}
	p.op.Return = InfTime
	p.op.Outcome = OutcomeAmbiguous
	p.r.append(p.op)
}

// Failed resolves an operation that definitely did not execute (the
// request never reached a server). It leaves no trace in the history.
// Misclassifying a maybe-applied failure as Failed makes the checker
// unsound — when unsure, call Ambiguous.
func (p *PendingOp) Failed() {}

func (r *Recorder) append(op Op) {
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
}

// History returns the recorded operations sorted by invocation time.
func (r *Recorder) History() History {
	r.mu.Lock()
	h := make(History, len(r.ops))
	copy(h, r.ops)
	r.mu.Unlock()
	sort.Slice(h, func(i, j int) bool { return h[i].Invoke < h[j].Invoke })
	return h
}

// Len reports how many operations have been recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
