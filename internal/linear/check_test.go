package linear

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// opb builds histories with explicit timestamps, for hand-built cases.
func put(c int, key, val string, inv, ret int64) Op {
	return Op{Client: c, Kind: KindPut, Key: key, Val: val, Invoke: inv, Return: ret}
}

func get(c int, key, val string, found bool, inv, ret int64) Op {
	return Op{Client: c, Kind: KindGet, Key: key, Val: val, Found: found, Invoke: inv, Return: ret}
}

func del(c int, key string, inv, ret int64) Op {
	return Op{Client: c, Kind: KindDelete, Key: key, Invoke: inv, Return: ret}
}

func amb(op Op) Op {
	op.Return = InfTime
	op.Outcome = OutcomeAmbiguous
	return op
}

func TestCheckLinearizable(t *testing.T) {
	cases := []struct {
		name string
		h    History
	}{
		{"empty", History{}},
		{"sequential", History{
			put(0, "x", "1", 1, 2),
			get(0, "x", "1", true, 3, 4),
			put(0, "x", "2", 5, 6),
			get(0, "x", "2", true, 7, 8),
		}},
		{"miss before first write", History{
			get(0, "x", "", false, 1, 2),
			put(0, "x", "1", 3, 4),
		}},
		{"delete then miss", History{
			put(0, "x", "1", 1, 2),
			del(0, "x", 3, 4),
			get(0, "x", "", false, 5, 6),
		}},
		// Two concurrent puts: a reader may see either order.
		{"concurrent puts read second", History{
			put(0, "x", "1", 1, 5),
			put(1, "x", "2", 2, 4),
			get(2, "x", "1", true, 6, 7),
		}},
		// Read overlapping a put may see old or new value; two overlapping
		// readers may even disagree on the order.
		{"read during write sees old", History{
			put(0, "x", "1", 1, 2),
			put(0, "x", "2", 3, 8),
			get(1, "x", "1", true, 4, 5),
		}},
		{"read during write sees new", History{
			put(0, "x", "1", 1, 2),
			put(0, "x", "2", 3, 8),
			get(1, "x", "2", true, 4, 5),
		}},
		// Ambiguous put that evidently applied: the read proves it.
		{"ambiguous put applied", History{
			put(0, "x", "1", 1, 2),
			amb(put(1, "x", "2", 3, 0)),
			get(2, "x", "2", true, 10, 11),
		}},
		// Ambiguous put that never applied: linearized after everything.
		{"ambiguous put not applied", History{
			put(0, "x", "1", 1, 2),
			amb(put(1, "x", "2", 3, 0)),
			get(2, "x", "1", true, 10, 11),
		}},
		// Independent keys are checked independently.
		{"multi-key", History{
			put(0, "x", "1", 1, 4),
			put(1, "y", "9", 2, 3),
			get(0, "y", "9", true, 5, 6),
			get(1, "x", "1", true, 7, 8),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if res := Check(tc.h); !res.Ok {
				t.Fatalf("Check = %+v, want Ok for history:\n%v", res, tc.h)
			}
		})
	}
}

func TestCheckNonLinearizable(t *testing.T) {
	cases := []struct {
		name string
		h    History
	}{
		// The classic stale read: both writes acknowledged in order, then
		// a later read observes the overwritten value.
		{"stale read", History{
			put(0, "x", "1", 1, 2),
			put(0, "x", "2", 3, 4),
			get(1, "x", "1", true, 5, 6),
		}},
		// Lost update: an acknowledged write is never visible.
		{"lost update", History{
			put(0, "x", "1", 1, 2),
			get(1, "x", "", false, 3, 4),
		}},
		// Value from nowhere.
		{"phantom value", History{
			put(0, "x", "1", 1, 2),
			get(1, "x", "9", true, 3, 4),
		}},
		// Resurrection after delete.
		{"read after delete", History{
			put(0, "x", "1", 1, 2),
			del(0, "x", 3, 4),
			get(1, "x", "1", true, 5, 6),
		}},
		// Two sequential readers disagree on the order of two finished
		// writes: get=2 then get=1 with no intervening write.
		{"order flip", History{
			put(0, "x", "1", 1, 3),
			put(1, "x", "2", 2, 4),
			get(2, "x", "2", true, 5, 6),
			get(2, "x", "1", true, 7, 8),
		}},
		// An ambiguous write cannot explain a value read before its
		// invocation.
		{"ambiguous too late", History{
			amb(put(0, "x", "2", 5, 0)),
			get(1, "x", "2", true, 1, 2),
		}},
		// Ambiguous write can apply at most once: 1, then 2, then 1 again
		// with only one put(1) in the history.
		{"ambiguous single use", History{
			put(0, "x", "1", 1, 2),
			amb(put(1, "x", "2", 3, 0)),
			get(2, "x", "2", true, 5, 6),
			get(2, "x", "1", true, 7, 8),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Check(tc.h)
			if res.Ok {
				t.Fatalf("Check accepted a non-linearizable history:\n%v", tc.h)
			}
			if res.TimedOut {
				t.Fatalf("Check timed out without a deadline: %+v", res)
			}
			if res.Key != "x" {
				t.Fatalf("Result.Key = %q, want %q", res.Key, "x")
			}
		})
	}
}

func TestCheckTimeout(t *testing.T) {
	// A wide-open history (every op concurrent with every other) makes the
	// search space huge; a 1ns budget must expire rather than hang.
	var h History
	for i := 0; i < 40; i++ {
		h = append(h, put(i, "x", fmt.Sprint(i), 1, 1000))
	}
	h = append(h, get(99, "x", "nope", true, 1, 1000))
	res := CheckTimeout(h, time.Nanosecond)
	if res.Ok {
		t.Fatal("expected not-Ok on timeout")
	}
	if !res.TimedOut {
		t.Fatalf("expected TimedOut, got %+v", res)
	}
}

// TestRecorder drives the Recorder concurrently and checks the resulting
// history both linearizes and carries the expected outcome metadata.
func TestRecorder(t *testing.T) {
	r := NewRecorder()
	p := r.Invoke(0, KindPut, "k", "v")
	p.OK()
	g := r.Invoke(0, KindGet, "k", "ignored-val")
	g.Observed("v", true)
	a := r.Invoke(1, KindPut, "k", "w")
	a.Ambiguous()
	f := r.Invoke(1, KindPut, "k", "never")
	f.Failed()
	ag := r.Invoke(2, KindGet, "k", "")
	ag.Ambiguous() // ambiguous reads leave no trace

	h := r.History()
	if len(h) != 3 {
		t.Fatalf("history has %d ops, want 3 (failed and ambiguous-get dropped):\n%v", len(h), h)
	}
	for i := 1; i < len(h); i++ {
		if h[i].Invoke <= h[i-1].Invoke {
			t.Fatal("history not sorted by invocation")
		}
	}
	if h[0].Kind != KindPut || h[0].Outcome != OutcomeOK {
		t.Fatalf("op 0 = %v", h[0])
	}
	if h[1].Kind != KindGet || h[1].Val != "v" || !h[1].Found {
		t.Fatalf("op 1 = %v", h[1])
	}
	if h[2].Outcome != OutcomeAmbiguous || h[2].Return != InfTime {
		t.Fatalf("ambiguous op = %v", h[2])
	}
	if res := Check(h); !res.Ok {
		t.Fatalf("recorded history not linearizable: %+v\n%v", res, h)
	}
}

// TestCheckPerf pins the acceptance bound: a 4-client × 200-op concurrent
// history (the chaos workload's shape) must verify in under 5 seconds.
func TestCheckPerf(t *testing.T) {
	h := randomLinearizableHistory(rand.New(rand.NewSource(42)), 4, 200, 3)
	start := time.Now()
	res := CheckTimeout(h, 5*time.Second)
	elapsed := time.Since(start)
	if !res.Ok {
		t.Fatalf("generated history rejected: %+v", res)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("check took %v, want < 5s", elapsed)
	}
	t.Logf("checked %d ops in %v (%d configurations)", len(h), elapsed, res.Visited)
}

// randomLinearizableHistory simulates clients×opsEach operations against a
// real in-memory register under a random schedule, so the produced history
// has genuine concurrency yet is linearizable by construction. Each client
// has at most one outstanding op; an op takes effect at a random point
// inside its interval.
func randomLinearizableHistory(rng *rand.Rand, clients, opsEach, keys int) History {
	type pend struct {
		op      Op
		applied bool // effect already taken?
	}
	store := map[string]string{}
	var clock int64
	tick := func() int64 { clock++; return clock }
	pending := make([]*pend, clients)
	remaining := make([]int, clients)
	for i := range remaining {
		remaining[i] = opsEach
	}
	var h History
	apply := func(p *pend) {
		switch p.op.Kind {
		case KindPut:
			store[p.op.Key] = p.op.Val
		case KindDelete:
			delete(store, p.op.Key)
		default:
			v, ok := store[p.op.Key]
			p.op.Val, p.op.Found = v, ok
		}
		p.applied = true
	}
	for {
		live := 0
		for c := 0; c < clients; c++ {
			if pending[c] != nil || remaining[c] > 0 {
				live++
			}
		}
		if live == 0 {
			break
		}
		c := rng.Intn(clients)
		switch p := pending[c]; {
		case p == nil && remaining[c] > 0:
			op := Op{Client: c, Invoke: tick(), Key: fmt.Sprintf("k%d", rng.Intn(keys))}
			switch rng.Intn(4) {
			case 0, 1:
				op.Kind = KindGet
			case 2:
				op.Kind, op.Val = KindPut, fmt.Sprintf("v%d", clock)
			default:
				op.Kind = KindDelete
			}
			pending[c] = &pend{op: op}
			remaining[c]--
		case p != nil && !p.applied:
			apply(p)
		case p != nil:
			p.op.Return = tick()
			h = append(h, p.op)
			pending[c] = nil
		}
	}
	return h
}
