package linear

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteCheck decides linearizability of a single-key history by
// enumerating every permutation and validating real-time order plus the
// sequential register spec. Exponential — callers keep len(ops) tiny. It
// shares only the step function with the real checker, so it is a genuine
// independent oracle for the search.
func bruteCheck(ops []Op) bool {
	n := len(ops)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			st := regState{}
			var ok bool
			for _, i := range perm {
				if st, ok = step(st, ops[i]); !ok {
					return false
				}
			}
			return true
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			// Real-time order: nothing already placed may have been
			// invoked after the new op returned.
			legal := true
			for _, j := range perm[:k] {
				if ops[perm[k]].Return < ops[j].Invoke {
					legal = false
					break
				}
			}
			if legal && rec(k+1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return rec(0)
}

// decodeHistory turns fuzz bytes into a well-formed single-key history of
// at most six operations with unique, consistent timestamps. Five bytes
// per op: kind, value, found, raw invoke offset, raw duration+ambiguity.
// Raw interval endpoints are ranked into unique integers (ties broken by
// op index, invokes before returns) so the brute-force and search-based
// checkers can never disagree on what "concurrent" means.
func decodeHistory(data []byte) History {
	n := len(data) / 5
	if n > 6 {
		n = 6
	}
	if n == 0 {
		return nil
	}
	type endpoint struct {
		op     int
		raw    int
		invoke bool
	}
	var eps []endpoint
	ops := make(History, n)
	for i := 0; i < n; i++ {
		b := data[i*5 : i*5+5]
		op := Op{Client: i, Key: "k"}
		switch b[0] % 3 {
		case 0:
			op.Kind = KindPut
			op.Val = string('a' + rune(b[1]%3))
		case 1:
			op.Kind = KindGet
			op.Found = b[2]%2 == 0
			if op.Found {
				op.Val = string('a' + rune(b[1]%3))
			}
		default:
			op.Kind = KindDelete
		}
		if b[4]%8 == 0 && op.Kind != KindGet {
			op.Outcome = OutcomeAmbiguous
		}
		inv := int(b[3]) % 16
		eps = append(eps,
			endpoint{op: i, raw: inv, invoke: true},
			endpoint{op: i, raw: inv + 1 + int(b[4]/8)%8, invoke: false})
		ops[i] = op
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].raw != eps[j].raw {
			return eps[i].raw < eps[j].raw
		}
		if eps[i].invoke != eps[j].invoke {
			return !eps[i].invoke // returns first on ties
		}
		return eps[i].op < eps[j].op
	})
	for rank, ep := range eps {
		if ep.invoke {
			ops[ep.op].Invoke = int64(rank + 1)
		} else {
			ops[ep.op].Return = int64(rank + 1)
		}
	}
	for i := range ops {
		if ops[i].Outcome == OutcomeAmbiguous {
			ops[i].Return = InfTime
		}
	}
	return ops
}

// FuzzCheckVsBrute cross-checks the Wing & Gong search against brute-force
// permutation enumeration on tiny histories: any verdict disagreement is a
// checker bug.
func FuzzCheckVsBrute(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 9, 1, 0, 0, 2, 9})
	f.Add([]byte{0, 0, 0, 0, 9, 0, 1, 0, 4, 9, 1, 0, 0, 8, 9})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 1, 0, 1, 9, 2, 0, 0, 6, 9})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 16; i++ {
		b := make([]byte, 5*(1+rng.Intn(6)))
		rng.Read(b)
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		got := Check(h).Ok
		want := bruteCheck(h)
		if got != want {
			t.Fatalf("Check = %t, brute force = %t for history:\n%v", got, want, h)
		}
	})
}

// TestCheckVsBruteSeeded runs the same cross-check over a fixed corpus of
// random tiny histories, so the oracle comparison executes on every plain
// `go test` run, not only under -fuzz.
func TestCheckVsBruteSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		b := make([]byte, 5*(1+rng.Intn(6)))
		rng.Read(b)
		h := decodeHistory(b)
		got := Check(h).Ok
		want := bruteCheck(h)
		if got != want {
			t.Fatalf("iteration %d: Check = %t, brute force = %t for history:\n%v", i, got, want, h)
		}
	}
}
