package linear

import (
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"
)

// Result is the verdict of a linearizability check.
type Result struct {
	// Ok reports whether the whole history is linearizable.
	Ok bool
	// TimedOut reports that the search gave up before finding an answer;
	// when set, Ok is false but the history was NOT proven broken.
	TimedOut bool
	// Key is the first key whose subhistory failed (or timed out).
	Key string
	// Ops counts operations in the failing key's subhistory (0 when Ok).
	Ops int
	// Visited counts distinct (linearized-set, state) pairs explored
	// across all keys — a rough measure of search effort.
	Visited int64
}

// Check reports whether h is linearizable with respect to a key-value
// register: Put sets the value, Delete removes it, Get observes
// (found, value). Keys are independent, so the history is partitioned per
// key and each subhistory is checked on its own (Herlihy & Wing's
// locality theorem makes this exact, not an approximation).
func Check(h History) Result { return CheckTimeout(h, 0) }

// CheckTimeout is Check with a budget; timeout <= 0 means no limit. On
// expiry the result has TimedOut set: the history is unverified, not
// refuted.
func CheckTimeout(h History, timeout time.Duration) Result {
	var kill atomic.Bool
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() { kill.Store(true) })
		defer t.Stop()
	}

	byKey := make(map[string][]Op)
	for _, op := range h {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	// Deterministic key order, largest subhistory first: the expensive key
	// fails (or times out) before effort is spent on trivial ones.
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(byKey[keys[i]]) != len(byKey[keys[j]]) {
			return len(byKey[keys[i]]) > len(byKey[keys[j]])
		}
		return keys[i] < keys[j]
	})

	res := Result{Ok: true}
	for _, k := range keys {
		ok, visited := checkKey(byKey[k], &kill)
		res.Visited += visited
		if !ok {
			res.Ok = false
			res.Key = k
			res.Ops = len(byKey[k])
			res.TimedOut = kill.Load()
			return res
		}
	}
	return res
}

// regState is the sequential specification's state for one key.
type regState struct {
	present bool
	val     string
}

// step applies op to st, reporting whether the op is legal in that state.
func step(st regState, op Op) (regState, bool) {
	switch op.Kind {
	case KindPut:
		return regState{present: true, val: op.Val}, true
	case KindDelete:
		return regState{}, true
	default: // KindGet
		if op.Found != st.present {
			return st, false
		}
		if st.present && op.Val != st.val {
			return st, false
		}
		return st, true
	}
}

// entry is one end of an operation's interval in the doubly linked event
// list. A call entry has match set to its return entry; a return entry has
// match == nil. The list is ordered by time; lifting a linearized
// operation removes both of its entries, unlifting restores them.
type entry struct {
	op         int // index into the subhistory
	time       int64
	match      *entry // call → its return; nil on return entries
	prev, next *entry
}

func (e *entry) lift() {
	e.prev.next = e.next
	e.next.prev = e.prev
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

func (e *entry) unlift() {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	e.next.prev = e
}

// makeEntries builds the event list for ops: a call and a return entry per
// operation, sorted by timestamp. Recorder timestamps are unique except
// for ambiguous returns at InfTime, whose mutual order is irrelevant (no
// call follows them). Ties between a call and a return are broken return
// first, the conservative choice: it treats the two ops as ordered rather
// than concurrent, never admitting an order the real time forbids.
func makeEntries(ops []Op) *entry {
	evs := make([]entry, 0, 2*len(ops))
	for i, op := range ops {
		evs = append(evs,
			entry{op: i, time: op.Invoke},
			entry{op: i, time: op.Return})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].time != evs[j].time {
			return evs[i].time < evs[j].time
		}
		// Equal times: return entries (match still nil here) first.
		return !isCall(&evs[i], ops) && isCall(&evs[j], ops)
	})
	head := &entry{}
	prev := head
	calls := make(map[int]*entry, len(ops))
	for i := range evs {
		e := &evs[i]
		prev.next = e
		e.prev = prev
		prev = e
		if isCall(e, ops) {
			calls[e.op] = e
		} else {
			calls[e.op].match = e
		}
	}
	return head
}

func isCall(e *entry, ops []Op) bool { return e.time == ops[e.op].Invoke }

// cacheEntry is one memoized search configuration.
type cacheEntry struct {
	linearized []uint64
	state      regState
}

func cacheKey(lin []uint64, st regState) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range lin {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		h.Write(buf[:])
	}
	if st.present {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte(st.val))
	return h.Sum64()
}

func bitsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// frame is one linearization decision on the search stack.
type frame struct {
	e         *entry
	prevState regState
}

// checkKey runs the Wing & Gong search on one key's subhistory: repeatedly
// try to linearize some operation whose call is minimal in the remaining
// event list, memoizing visited (linearized-set, state) configurations,
// and backtrack when a return entry is reached with no linearizable call
// before it. Returns (linearizable, configurations visited). kill aborts
// the search; the caller reports the abort as a timeout.
func checkKey(ops []Op, kill *atomic.Bool) (bool, int64) {
	n := len(ops)
	if n == 0 {
		return true, 0
	}
	head := makeEntries(ops)
	linearized := make([]uint64, (n+63)/64)
	cache := make(map[uint64][]cacheEntry)
	var stack []frame
	var state regState
	var visited int64

	e := head.next
	for head.next != nil {
		if kill != nil && kill.Load() {
			return false, visited
		}
		if e.match != nil {
			// Call entry: try to linearize ops[e.op] here.
			next, legal := step(state, ops[e.op])
			if legal {
				linearized[e.op/64] |= 1 << (e.op % 64)
				key := cacheKey(linearized, next)
				fresh := true
				for _, ce := range cache[key] {
					if ce.state == next && bitsEqual(ce.linearized, linearized) {
						fresh = false
						break
					}
				}
				if fresh {
					visited++
					cache[key] = append(cache[key], cacheEntry{
						linearized: append([]uint64(nil), linearized...),
						state:      next,
					})
					stack = append(stack, frame{e: e, prevState: state})
					state = next
					e.lift()
					e = head.next
					continue
				}
				linearized[e.op/64] &^= 1 << (e.op % 64)
			}
			e = e.next
			continue
		}
		// Return entry: every op whose call precedes this return has been
		// tried. Backtrack.
		if len(stack) == 0 {
			return false, visited
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = f.prevState
		f.e.unlift()
		linearized[f.e.op/64] &^= 1 << (f.e.op % 64)
		e = f.e.next
	}
	return true, visited
}
