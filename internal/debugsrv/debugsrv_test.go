package debugsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServePublishesVarsAndPprof(t *testing.T) {
	addr, err := Serve("127.0.0.1:0", map[string]func() any{
		"test.counter": func() any { return map[string]int{"sends": 42} },
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var all map[string]json.RawMessage
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("vars not JSON: %v\n%s", err, body)
	}
	if string(all["test.counter"]) != `{"sends":42}` {
		t.Fatalf("test.counter = %s", all["test.counter"])
	}

	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(idx), "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%.200s", idx)
	}
}

func TestServeRejectsDuplicateVar(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", map[string]func() any{
		"test.dup": func() any { return 1 },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Serve("127.0.0.1:0", map[string]func() any{
		"test.dup": func() any { return 2 },
	}); err == nil {
		t.Fatal("expected duplicate-publish error")
	}
}
