// Package debugsrv serves the operational debug surface shared by the
// long-running binaries (cmd/kv, cmd/twostep): net/http/pprof profiling
// endpoints plus expvar counters for the hot-path observables — transport
// send/drop counts, WAL fsync totals, batch sizes. It exists so a perf
// regression in a deployed replica can be diagnosed with stock Go tooling
// (`go tool pprof`, `curl /debug/vars`) instead of bespoke log scraping.
package debugsrv

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
	"time"
)

// published guards against double-publishing an expvar name (expvar.Publish
// panics on duplicates, and tests may start more than one server per
// process).
var published sync.Map

// Serve starts the debug HTTP listener on addr (host:port; an empty host
// binds all interfaces, port 0 picks a free one) and publishes each entry
// of vars as an expvar evaluated at scrape time. It returns the bound
// address. The server runs until the process exits — debug listeners share
// the process's lifetime, so there is deliberately no Close.
func Serve(addr string, vars map[string]func() any) (string, error) {
	for name, fn := range vars {
		if _, dup := published.LoadOrStore(name, true); dup {
			return "", fmt.Errorf("debugsrv: expvar %q already published", name)
		}
		expvar.Publish(name, expvar.Func(func() any { return fn() }))
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugsrv: %w", err)
	}
	srv := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // lifetime of the process
	return ln.Addr().String(), nil
}
