package lowerbound

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// ObjectWitness executes the §B.2 construction against a consensus-object
// protocol on n processes. Only two processes ever call propose:
//
//	F   = {0, …, f−3}           bridge inside both quorums, crashes at 2Δ
//	p   = f−2                   proposes lo; fast-decides at 2Δ, silenced
//	q   = f−1                   proposes hi; crashes at 2Δ
//	E₀* = {f, …, f+a−1}         votes lo (a = n−e−f+1)
//	E₁* = {f+a, …, n−1}         votes hi
//
// E₀ = F ∪ {p} ∪ E₀* and E₁ = F ∪ {q} ∪ E₁* are the two (n−e)-quorums of
// the proof. Traffic between E₀ and {q} ∪ E₁* sent before 2Δ is delayed, so
// each side is consistent with a run in which the other side's proposer is
// alone. p collects votes from F ∪ E₀* (n−e−1 processes) and decides lo at
// 2Δ; F ∪ {q} crash at 2Δ and p is silenced and crashes, for a budget of f.
// The survivors E₀* ∪ E₁* (exactly n−f) recover. At n = 2e+f−2 (one below
// Theorem 6's bound) both values have e−1 > n−f−e surviving votes, recovery
// cannot distinguish them, and the deterministic tie-break picks hi ≠ lo:
// an agreement violation. At n = 2e+f−1 the lo votes strictly dominate and
// recovery re-selects lo.
func ObjectWitness(fac runner.Factory, n, f, e int, delta consensus.Duration) (Witness, error) {
	if f < 2 || e < 2 || e > f {
		return Witness{}, fmt.Errorf("lowerbound: object construction needs f ≥ 2 and 2 ≤ e ≤ f, got f=%d e=%d", f, e)
	}
	if min := quorum.ObjectFastSide(f, e) - 1; n < min {
		return Witness{}, fmt.Errorf("lowerbound: object construction needs n ≥ 2e+f−2 = %d, got %d", min, n)
	}
	a := n - e - f + 1 // |E₀*|
	b := n - f - a     // |E₁*|
	if a < 1 || b < 1 {
		return Witness{}, fmt.Errorf("lowerbound: degenerate partition a=%d b=%d for n=%d f=%d e=%d", a, b, n, f, e)
	}

	lo, hi := consensus.IntValue(1), consensus.IntValue(2)
	p := consensus.ProcessID(f - 2)
	q := consensus.ProcessID(f - 1)
	side1 := func(x consensus.ProcessID) bool { return x == q || int(x) >= f+a }

	inputs := map[consensus.ProcessID]consensus.Value{p: lo, q: hi}

	crashAt2D := []consensus.ProcessID{q}
	for i := 0; i < f-2; i++ {
		crashAt2D = append(crashAt2D, consensus.ProcessID(i))
	}

	c := construction{
		n: n, f: f, e: e,
		delta:  delta,
		mode:   quorum.Object,
		bound:  quorum.ObjectMinProcesses(f, e),
		inputs: inputs,
		blocked: func(from, to consensus.ProcessID) bool {
			return side1(from) != side1(to)
		},
		prefer: func(to consensus.ProcessID) consensus.ProcessID {
			if side1(to) {
				return q
			}
			return p
		},
		crashAt2D:   crashAt2D,
		fastDecider: p,
	}
	return c.execute(fac)
}
