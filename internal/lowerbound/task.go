package lowerbound

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// TaskVariant selects which flavour of the §B.1 construction to execute.
type TaskVariant int

const (
	// TaskStandard is the proof's construction: the side that fast-decides
	// proposes the greater value. Forces a violation at n = 2e+f−1
	// against the paper's protocol; harmless at n = 2e+f.
	TaskStandard TaskVariant = iota + 1
	// TaskLowFast makes the fast-deciding side propose the *smaller*
	// value. The paper's value-ordered fast path refuses to fast-decide
	// in this schedule (the bridge processes reject the lower proposal),
	// but unordered fast paths (Fast Paxos below Lamport's bound, or the
	// ValueOrdering ablation) fast-decide the low value and the recovery
	// tie-break then betrays them at n = 2e+f.
	TaskLowFast
	// TaskInsiderProposer plants two co-proposers of a high competing
	// value inside the surviving quorum. The proposer-exclusion set R
	// discards their votes during recovery; the ExcludeProposers
	// ablation counts them and violates agreement at n = 2e+f.
	// Requires e ≥ 2.
	TaskInsiderProposer
)

// String implements fmt.Stringer.
func (v TaskVariant) String() string {
	switch v {
	case TaskStandard:
		return "standard"
	case TaskLowFast:
		return "low-fast"
	case TaskInsiderProposer:
		return "insider-proposer"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// TaskWitness executes the §B.1 construction (standard variant, realized as
// one spliced run) against a consensus-task protocol on n processes.
//
// The process space is partitioned as
//
//	F₀ = {0, …, f−2}            bridge: proposes lo, votes hi, crashes at 2Δ
//	E₁ = {f−1, …, n−e−1}        proposes hi; p = min(E₁) fast-decides hi
//	B  = {n−e, …, n−1}          proposes lo; votes for p′ (min F₀, or min B
//	                            when f = 1) without ever seeing E₁
//
// Cross-partition traffic sent before 2Δ is delayed (B cannot tell that E₁
// exists, and vice versa). p gathers ballot-0 votes from F₀ ∪ E₁∖{p} — that
// is n−e−1 processes — and decides hi at 2Δ; it is silenced in the same
// instant and crashes, together with all of F₀ (crash budget f). The n−f
// survivors E₁∖{p} ∪ B then recover. At n = 2e+f−1 (one below Theorem 5's
// bound) the B-side votes for lo outnumber the threshold n−f−e and recovery
// proposes lo ≠ hi: an agreement violation. At n = 2e+f the arithmetic
// flips and recovery re-selects hi.
func TaskWitness(fac runner.Factory, n, f, e int, delta consensus.Duration) (Witness, error) {
	return TaskWitnessVariant(fac, n, f, e, delta, TaskStandard)
}

// TaskWitnessVariant executes the chosen variant of the §B.1 construction.
func TaskWitnessVariant(fac runner.Factory, n, f, e int, delta consensus.Duration, variant TaskVariant) (Witness, error) {
	if f < 1 || e < 1 || e > f {
		return Witness{}, fmt.Errorf("lowerbound: need 1 ≤ e ≤ f, got f=%d e=%d", f, e)
	}
	if min := quorum.TaskFastSide(f, e) - 1; n < min {
		return Witness{}, fmt.Errorf("lowerbound: task construction needs n ≥ 2e+f−1 = %d, got %d", min, n)
	}
	if n-e < f {
		return Witness{}, fmt.Errorf("lowerbound: side A (n−e=%d) cannot hold F₀ and p (need ≥ %d)", n-e, f)
	}
	if variant == TaskInsiderProposer && e < 2 {
		return Witness{}, fmt.Errorf("lowerbound: insider-proposer variant needs e ≥ 2, got %d", e)
	}

	inE1 := func(p consensus.ProcessID) bool { return int(p) >= f-1 && int(p) < n-e }
	inB := func(p consensus.ProcessID) bool { return int(p) >= n-e }
	pFast := consensus.ProcessID(f - 1)  // min(E₁)
	bFirst := consensus.ProcessID(n - e) // min(B)
	pPrime := consensus.ProcessID(0)     // min(F₀), B's preferred proposer
	if f == 1 || variant == TaskInsiderProposer {
		pPrime = bFirst
	}

	// Value assignment per variant.
	sideAValue, sideBValue := consensus.IntValue(2), consensus.IntValue(1)
	if variant == TaskLowFast {
		sideAValue, sideBValue = consensus.IntValue(1), consensus.IntValue(2)
	}
	insider := consensus.IntValue(3)

	inputs := make(map[consensus.ProcessID]consensus.Value, n)
	for i := 0; i < n; i++ {
		p := consensus.ProcessID(i)
		switch {
		case inE1(p):
			inputs[p] = sideAValue
		case variant == TaskInsiderProposer && inB(p) && int(p) < n-e+2:
			// z = min(B) and its neighbour co-propose the insider
			// value, so that both proposers survive inside the
			// recovery quorum while their value still collects a
			// full side of votes.
			inputs[p] = insider
		default:
			inputs[p] = sideBValue
		}
	}

	var crashAt2D []consensus.ProcessID
	for i := 0; i < f-1; i++ {
		crashAt2D = append(crashAt2D, consensus.ProcessID(i))
	}

	c := construction{
		n: n, f: f, e: e,
		delta:  delta,
		mode:   quorum.Task,
		bound:  quorum.TaskMinProcesses(f, e),
		inputs: inputs,
		blocked: func(from, to consensus.ProcessID) bool {
			// B must not see side A's E₁; side A must not see B.
			return (inB(from) && !inB(to)) || (inE1(from) && inB(to))
		},
		prefer: func(to consensus.ProcessID) consensus.ProcessID {
			if inB(to) {
				return pPrime
			}
			return pFast
		},
		crashAt2D:   crashAt2D,
		fastDecider: pFast,
	}
	return c.execute(fac)
}
