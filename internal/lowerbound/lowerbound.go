// Package lowerbound makes the paper's Appendix-B impossibility proofs
// executable. Each proof builds two indistinguishable prefix runs σ0/σ1 and
// splices them into a single partial-synchrony execution in which one
// process decides fast on each side of an information partition; continuing
// the execution then forces an agreement violation whenever the process
// count is below the tight bound.
//
// We realize each construction as one simulated execution with:
//
//   - a split delay policy: messages crossing the partition before the
//     splice point (2Δ) are delayed until the end of the run (legal under
//     partial synchrony with a late GST; links stay reliable);
//   - per-receiver delivery preferences steering who votes for whom;
//   - a fine-grained crash of the fast decider: it decides at 2Δ and is
//     silenced in the same instant, so its Decide announcements never leave
//     (sim.SilenceFrom), then crashes;
//   - crashes of the remaining "bridge" processes (F₀ resp. F ∪ {q}), for a
//     crash budget of exactly f.
//
// Running the construction against the paper's own protocol one process
// below the bound yields a deterministic agreement violation (Theorems 5
// and 6, "only if"); running the same schedule at the bound shows the
// recovery rule repairing the split (the "if" direction's mechanism):
// proposer exclusion plus the >/= n−f−e branches and the maximal-value
// tie-break pick the fast decider's value.
package lowerbound

import (
	"fmt"
	"sort"

	"repro/internal/consensus"
	"repro/internal/quorum"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Witness reports the outcome of one executed construction.
type Witness struct {
	// Mode is Task or Object.
	Mode quorum.Mode
	// N, F, E are the run parameters; Bound is the tight bound for Mode.
	N, F, E, Bound int
	// FastDecider is the process the construction makes decide at 2Δ.
	FastDecider consensus.ProcessID
	// FastValue and FastAt describe the fast decision (zero if none).
	FastValue consensus.Value
	FastAt    consensus.Time
	// FastDecided reports whether the fast decision happened as scripted.
	FastDecided bool
	// SurvivorValue is the value the continuation converged on.
	SurvivorValue consensus.Value
	// Violated reports whether Agreement was violated in the trace.
	Violated bool
	// Trace is the full execution trace.
	Trace *trace.Trace
}

// String implements fmt.Stringer.
func (w Witness) String() string {
	return fmt.Sprintf("%s n=%d (bound %d) f=%d e=%d: fast=%v@%d by %s, survivors=%v, violated=%v",
		w.Mode, w.N, w.Bound, w.F, w.E, w.FastValue, w.FastAt, w.FastDecider, w.SurvivorValue, w.Violated)
}

// splitPolicy delivers synchronously within a side and delays pre-splice
// cross-partition traffic until blockUntil.
type splitPolicy struct {
	delta      consensus.Duration
	cutoff     consensus.Time
	blockUntil consensus.Time
	blocked    func(sentAt consensus.Time, from, to consensus.ProcessID) bool
}

var _ sim.DelayPolicy = splitPolicy{}

// Delay implements sim.DelayPolicy.
func (s splitPolicy) Delay(sentAt consensus.Time, from, to consensus.ProcessID) consensus.Duration {
	if sentAt < s.cutoff && s.blocked(sentAt, from, to) {
		return consensus.Duration(s.blockUntil - sentAt)
	}
	return sim.Synchronous{Delta: s.delta}.Delay(sentAt, from, to)
}

// construction is the shared shape of both witnesses.
type construction struct {
	n, f, e int
	delta   consensus.Duration
	mode    quorum.Mode
	bound   int

	inputs      map[consensus.ProcessID]consensus.Value
	blocked     func(from, to consensus.ProcessID) bool // side partition rule
	prefer      func(to consensus.ProcessID) consensus.ProcessID
	crashAt2D   []consensus.ProcessID // crash at 2Δ, before taking round-3 steps
	fastDecider consensus.ProcessID   // decides at 2Δ, silenced, crashes at 2Δ+1
}

// execute runs the construction against the protocol built by fac.
func (c construction) execute(fac runner.Factory) (Witness, error) {
	horizon := consensus.Time(500 * c.delta)
	cl, err := sim.New(sim.Options{
		N:     c.n,
		Delta: c.delta,
		Policy: splitPolicy{
			delta:      c.delta,
			cutoff:     consensus.Time(2 * c.delta),
			blockUntil: horizon - consensus.Time(c.delta),
			blocked: func(sentAt consensus.Time, from, to consensus.ProcessID) bool {
				// Round-1 traffic into the scripted fast decider
				// is also delayed: it must decide purely from the
				// votes its own proposal attracts. (For the
				// paper's value-ordered protocol this is a no-op;
				// for unordered fast paths it keeps the decider
				// from voting for a competing proposal.)
				if sentAt < consensus.Time(c.delta) && to == c.fastDecider && from != to {
					return true
				}
				return c.blocked(from, to)
			},
		},
		Horizon: horizon,
		PriorityFn: func(env sim.Envelope) int {
			if env.From == c.prefer(env.To) {
				return 0
			}
			return 1 + int(env.From)
		},
	})
	if err != nil {
		return Witness{}, fmt.Errorf("lowerbound: %w", err)
	}
	oracle := cl.Oracle()
	for i := 0; i < c.n; i++ {
		p := consensus.ProcessID(i)
		cfg := consensus.Config{ID: p, N: c.n, F: c.f, E: c.e, Delta: c.delta}
		cl.SetNode(p, fac(cfg, oracle))
	}
	// Schedule proposals in process order: the construction's schedule must
	// be byte-for-byte reproducible, and simultaneous events keep their
	// insertion order in the simulator's queue.
	proposers := make([]consensus.ProcessID, 0, len(c.inputs))
	for p := range c.inputs {
		proposers = append(proposers, p)
	}
	sort.Slice(proposers, func(i, j int) bool { return proposers[i] < proposers[j] })
	for _, p := range proposers {
		cl.SchedulePropose(p, 0, c.inputs[p])
	}
	for _, p := range c.crashAt2D {
		cl.ScheduleCrash(p, consensus.Time(2*c.delta))
	}
	cl.SilenceFrom(c.fastDecider, consensus.Time(2*c.delta))
	cl.ScheduleCrash(c.fastDecider, consensus.Time(2*c.delta)+1)

	tr := cl.Run(func(cluster *sim.Cluster) bool {
		return cluster.Now() > consensus.Time(2*c.delta) && cluster.AllDecided()
	})

	w := Witness{
		Mode:        c.mode,
		N:           c.n,
		F:           c.f,
		E:           c.e,
		Bound:       c.bound,
		FastDecider: c.fastDecider,
		Trace:       tr,
	}
	if d, ok := tr.DecisionOf(c.fastDecider); ok {
		w.FastValue = d.Value
		w.FastAt = d.At
		w.FastDecided = d.At <= consensus.Time(2*c.delta)
	}
	for i := 0; i < c.n; i++ {
		p := consensus.ProcessID(i)
		if p == c.fastDecider || tr.Crashed(p) {
			continue
		}
		if d, ok := tr.DecisionOf(p); ok {
			w.SurvivorValue = d.Value
			break
		}
	}
	w.Violated = tr.CheckAgreement() != nil
	return w, nil
}
