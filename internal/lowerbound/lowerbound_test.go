package lowerbound_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/protocols"
	"repro/internal/quorum"
)

const delta = consensus.Duration(10)

func TestTaskWitnessBelowBoundViolates(t *testing.T) {
	cases := []struct{ f, e int }{{2, 2}, {3, 2}, {3, 3}, {4, 3}}
	for _, c := range cases {
		n := 2*c.e + c.f - 1 // one below the 2e+f side of the bound
		w, err := lowerbound.TaskWitness(protocols.CoreTaskFactory, n, c.f, c.e, delta)
		if err != nil {
			t.Fatalf("f=%d e=%d: %v", c.f, c.e, err)
		}
		if !w.FastDecided {
			t.Errorf("f=%d e=%d n=%d: construction failed to produce a fast decision: %s", c.f, c.e, n, w)
			continue
		}
		if !w.Violated {
			t.Errorf("f=%d e=%d n=%d: expected agreement violation below bound: %s", c.f, c.e, n, w)
		}
	}
}

func TestTaskWitnessAtBoundSafe(t *testing.T) {
	cases := []struct{ f, e int }{{2, 2}, {3, 2}, {3, 3}, {4, 3}}
	for _, c := range cases {
		n := quorum.TaskMinProcesses(c.f, c.e)
		w, err := lowerbound.TaskWitness(protocols.CoreTaskFactory, n, c.f, c.e, delta)
		if err != nil {
			t.Fatalf("f=%d e=%d: %v", c.f, c.e, err)
		}
		if w.Violated {
			t.Errorf("f=%d e=%d n=%d: agreement violated AT the bound: %s", c.f, c.e, n, w)
		}
		if !w.FastDecided {
			t.Errorf("f=%d e=%d n=%d: fast decision expected at the bound: %s", c.f, c.e, n, w)
		}
		if w.FastDecided && !w.SurvivorValue.IsNone() && w.SurvivorValue != w.FastValue {
			t.Errorf("f=%d e=%d n=%d: survivors diverged: %s", c.f, c.e, n, w)
		}
	}
}

func TestObjectWitnessBelowBoundViolates(t *testing.T) {
	cases := []struct{ f, e int }{{3, 3}, {4, 4}, {5, 4}}
	for _, c := range cases {
		n := 2*c.e + c.f - 2
		w, err := lowerbound.ObjectWitness(protocols.CoreObjectFactory, n, c.f, c.e, delta)
		if err != nil {
			t.Fatalf("f=%d e=%d: %v", c.f, c.e, err)
		}
		if !w.FastDecided {
			t.Errorf("f=%d e=%d n=%d: construction failed to produce a fast decision: %s", c.f, c.e, n, w)
			continue
		}
		if !w.Violated {
			t.Errorf("f=%d e=%d n=%d: expected agreement violation below bound: %s", c.f, c.e, n, w)
		}
	}
}

func TestObjectWitnessAtBoundSafe(t *testing.T) {
	cases := []struct{ f, e int }{{3, 3}, {4, 4}, {5, 4}}
	for _, c := range cases {
		n := quorum.ObjectMinProcesses(c.f, c.e)
		w, err := lowerbound.ObjectWitness(protocols.CoreObjectFactory, n, c.f, c.e, delta)
		if err != nil {
			t.Fatalf("f=%d e=%d: %v", c.f, c.e, err)
		}
		if w.Violated {
			t.Errorf("f=%d e=%d n=%d: agreement violated AT the bound: %s", c.f, c.e, n, w)
		}
		if !w.FastDecided {
			t.Errorf("f=%d e=%d n=%d: fast decision expected at the bound: %s", c.f, c.e, n, w)
		}
	}
}

func TestFastPaxosViolatedBelowLamportBound(t *testing.T) {
	// Fast Paxos's unordered fast path at n = 2e+f (one below Lamport's
	// bound, yet exactly the paper's task bound) fast-decides the *lower*
	// value in the low-fast schedule; recovery's maximal tie-break then
	// picks the other side's value.
	cases := []struct{ f, e int }{{2, 2}, {3, 3}}
	for _, c := range cases {
		n := 2*c.e + c.f
		w, err := lowerbound.TaskWitnessVariant(protocols.FastPaxosFactory, n, c.f, c.e, delta, lowerbound.TaskLowFast)
		if err != nil {
			t.Fatalf("f=%d e=%d: %v", c.f, c.e, err)
		}
		if !w.FastDecided || !w.Violated {
			t.Errorf("fastpaxos f=%d e=%d n=%d: expected fast decision + violation, got %s", c.f, c.e, n, w)
		}
	}
}

func TestCoreTaskSurvivesLowFastScheduleAtBound(t *testing.T) {
	// The same schedule cannot trick the paper's protocol at n = 2e+f:
	// the value ordering stops the lower value from fast-deciding at all.
	cases := []struct{ f, e int }{{2, 2}, {3, 3}}
	for _, c := range cases {
		n := 2*c.e + c.f
		w, err := lowerbound.TaskWitnessVariant(protocols.CoreTaskFactory, n, c.f, c.e, delta, lowerbound.TaskLowFast)
		if err != nil {
			t.Fatalf("f=%d e=%d: %v", c.f, c.e, err)
		}
		if w.Violated {
			t.Errorf("core-task f=%d e=%d n=%d: violated on low-fast schedule: %s", c.f, c.e, n, w)
		}
	}
}

func TestAblationValueOrderingIsLoadBearing(t *testing.T) {
	opts := core.DefaultOptions()
	opts.ValueOrdering = false
	fac := protocols.CoreAblatedFactory(core.ModeTask, opts)
	n, f, e := 2*2+2, 2, 2
	w, err := lowerbound.TaskWitnessVariant(fac, n, f, e, delta, lowerbound.TaskLowFast)
	if err != nil {
		t.Fatal(err)
	}
	if !w.FastDecided || !w.Violated {
		t.Errorf("no-ordering ablation at n=%d should violate on low-fast schedule: %s", n, w)
	}
}

func TestAblationProposerExclusionIsLoadBearing(t *testing.T) {
	n, f, e := 2*2+2, 2, 2

	// With the paper's rule: safe.
	w, err := lowerbound.TaskWitnessVariant(protocols.CoreTaskFactory, n, f, e, delta, lowerbound.TaskInsiderProposer)
	if err != nil {
		t.Fatal(err)
	}
	if w.Violated {
		t.Errorf("core-task with R-exclusion violated on insider schedule: %s", w)
	}
	if !w.FastDecided {
		t.Errorf("insider schedule should still fast-decide: %s", w)
	}

	// Without proposer exclusion: the insiders' surviving votes win the
	// tie-break and betray the fast decision.
	opts := core.DefaultOptions()
	opts.ExcludeProposers = false
	fac := protocols.CoreAblatedFactory(core.ModeTask, opts)
	w2, err := lowerbound.TaskWitnessVariant(fac, n, f, e, delta, lowerbound.TaskInsiderProposer)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.FastDecided || !w2.Violated {
		t.Errorf("no-exclusion ablation should violate on insider schedule: %s", w2)
	}
}
