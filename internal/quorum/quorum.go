// Package quorum encodes the process-count bounds studied by the paper and
// the quorum arithmetic shared by the protocols. It is the single source of
// truth for the formulas
//
//	task:     n ≥ max{2e+f,   2f+1}   (Theorem 5)
//	object:   n ≥ max{2e+f−1, 2f+1}   (Theorem 6)
//	Lamport:  n ≥ max{2e+f+1, 2f+1}   (Lamport 2006b; matched by Fast Paxos)
//	plain:    n ≥ 2f+1                (Dwork–Lynch–Stockmeyer)
package quorum

import (
	"errors"
	"fmt"
)

// ErrInfeasible is returned by Check* helpers when n is below the bound.
var ErrInfeasible = errors.New("process count below lower bound")

// Mode selects which formulation of e-two-step consensus a bound refers to.
type Mode int

const (
	// Task is consensus as a decision task (every process has an input).
	Task Mode = iota + 1
	// Object is consensus as an atomic object (explicit propose calls).
	Object
	// Lamport is Lamport's original definition of fast consensus,
	// matched by Fast Paxos.
	Lamport
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Task:
		return "task"
	case Object:
		return "object"
	case Lamport:
		return "lamport"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// PlainMinProcesses returns 2f+1, the minimum for f-resilient partially
// synchronous consensus with no fast-decision requirement.
func PlainMinProcesses(f int) int { return 2*f + 1 }

// TaskMinProcesses returns max{2e+f, 2f+1}: the tight bound for an
// f-resilient e-two-step consensus task (Theorem 5).
func TaskMinProcesses(f, e int) int { return maxInt(2*e+f, 2*f+1) }

// ObjectMinProcesses returns max{2e+f−1, 2f+1}: the tight bound for an
// f-resilient e-two-step consensus object (Theorem 6).
func ObjectMinProcesses(f, e int) int { return maxInt(2*e+f-1, 2*f+1) }

// LamportMinProcesses returns max{2e+f+1, 2f+1}: Lamport's lower bound for
// fast consensus, matched by Fast Paxos.
func LamportMinProcesses(f, e int) int { return maxInt(2*e+f+1, 2*f+1) }

// TaskFastSide returns 2e+f, the fast-path side of the Task bound's
// max{2e+f, 2f+1}. The lower-bound constructions (internal/lowerbound) and
// the frontier tables reason about this side in isolation: the §B.1 splice
// needs n one below it, independent of whether 2f+1 happens to dominate.
func TaskFastSide(f, e int) int { return 2*e + f }

// ObjectFastSide returns 2e+f−1, the fast-path side of the Object bound's
// max{2e+f−1, 2f+1} (Theorem 6).
func ObjectFastSide(f, e int) int { return 2*e + f - 1 }

// LamportFastSide returns 2e+f+1, the fast-path side of Lamport's
// max{2e+f+1, 2f+1}.
func LamportFastSide(f, e int) int { return 2*e + f + 1 }

// FastSideBinds reports whether, for the given mode, the fast-path side of
// the max is the binding term — i.e. whether removing one process from the
// minimum-size system drops it below the fast-path requirement, which is the
// precondition for the paper's breaking constructions to apply at n = min−1.
// Task and Object treat a tie as binding (at equality the construction still
// applies); Lamport requires a strict excess (2e+f+1 > 2f+1 ⟺ 2e > f), since
// at a tie n−1 already violates the plain 2f+1 bound instead.
func FastSideBinds(mode Mode, f, e int) bool {
	switch mode {
	case Task:
		return TaskFastSide(f, e) >= PlainMinProcesses(f)
	case Object:
		return ObjectFastSide(f, e) >= PlainMinProcesses(f)
	case Lamport:
		return LamportFastSide(f, e) > PlainMinProcesses(f)
	default:
		return false
	}
}

// MinProcesses dispatches on mode.
func MinProcesses(mode Mode, f, e int) int {
	switch mode {
	case Task:
		return TaskMinProcesses(f, e)
	case Object:
		return ObjectMinProcesses(f, e)
	case Lamport:
		return LamportMinProcesses(f, e)
	default:
		return PlainMinProcesses(f)
	}
}

// Check returns nil if n processes suffice for the given mode and
// thresholds, and a wrapped ErrInfeasible otherwise.
func Check(mode Mode, n, f, e int) error {
	if e < 0 || f < 0 || e > f {
		return fmt.Errorf("thresholds f=%d e=%d: must satisfy 0 ≤ e ≤ f", f, e)
	}
	if min := MinProcesses(mode, f, e); n < min {
		return fmt.Errorf("%s consensus with f=%d e=%d needs n ≥ %d, have %d: %w",
			mode, f, e, min, n, ErrInfeasible)
	}
	return nil
}

// MaxFastThreshold returns the largest e for which n processes can be
// e-two-step in the given mode with resilience f, or 0 if none (e ≥ 1 is the
// interesting regime; e = 0 is always achievable when n ≥ 2f+1).
func MaxFastThreshold(mode Mode, n, f int) int {
	best := 0
	for e := 1; e <= f; e++ {
		if n >= MinProcesses(mode, f, e) {
			best = e
		}
	}
	return best
}

// ByzantineFastMinProcesses returns 3f+2e−1: the number of processes
// necessary and sufficient for fast consensus under Byzantine failures per
// Kuznetsov, Tonkikh and Zhang (PODC 2021), which the paper cites as the
// Byzantine analogue of Lamport's bound and names — combined with its own
// relaxed two-step definition — as the open future-work direction. This
// repository implements only the crash-failure protocols; the constant is
// provided so deployment planning (internal/planner, cmd/plan) can size a
// prospective Byzantine deployment for comparison.
func ByzantineFastMinProcesses(f, e int) int { return maxInt(3*f+2*e-1, 3*f+1) }

// EPaxosFastThreshold returns e = ⌈(f+1)/2⌉, the fast-path crash tolerance
// Egalitarian Paxos achieves on 2f+1 processes (paper, §1). Note
// 2e+f−1 = 2f+1 exactly at this e when f is odd, which is how EPaxos sits
// precisely on the object bound.
func EPaxosFastThreshold(f int) int { return (f + 2) / 2 }

// EPaxosFastQuorum returns f + ⌊(f+1)/2⌋, the EPaxos fast-path quorum size
// (including the command leader) on 2f+1 processes.
func EPaxosFastQuorum(f int) int { return f + (f+1)/2 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
