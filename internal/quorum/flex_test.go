package quorum

import (
	"errors"
	"fmt"
	"math/bits"
	"testing"
)

// minIntersection returns the smallest possible |A ∩ B| over ALL placements
// of counting quorums A (size a) and B (size b) on n processes, by
// brute-force enumeration of subsets as bitmasks. It is the ground-truth
// oracle the property tests compare formulas against; the closed form is
// max(0, a+b−n), but the tests must not assume that.
func minIntersection(n, a, b int) int {
	if a < 0 || b < 0 || a > n || b > n {
		panic(fmt.Sprintf("minIntersection(%d,%d,%d)", n, a, b))
	}
	sizeA := subsetsOfSize(n, a)
	sizeB := subsetsOfSize(n, b)
	best := n + 1
	for _, x := range sizeA {
		for _, y := range sizeB {
			if c := bits.OnesCount32(x & y); c < best {
				best = c
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

var subsetMemo = map[[2]int][]uint32{}

func subsetsOfSize(n, k int) []uint32 {
	key := [2]int{n, k}
	if s, ok := subsetMemo[key]; ok {
		return s
	}
	var out []uint32
	for m := uint32(0); m < 1<<uint(n); m++ {
		if bits.OnesCount32(m) == k {
			out = append(out, m)
		}
	}
	subsetMemo[key] = out
	return out
}

// requiredOverlap returns the fast/recovery-quorum overlap each definition
// needs: the recovery rule must see a fast-decided value with enough votes
// to out-count any competitor, and the three bounds differ by exactly one
// unit of overlap (Lamport e+1, task e, object e−1 — the paper's headline).
func requiredOverlap(mode Mode, e int) int {
	switch mode {
	case Task:
		return e
	case Object:
		return e - 1
	case Lamport:
		return e + 1
	}
	panic("bad mode")
}

// TestBoundsMatchIntersectionOracle checks, for every (n, f, e) with
// n ≤ 11, that Check(mode) accepts exactly the combinations where the
// brute-forced worst-case fast/recovery overlap min|Qf ∩ Q1| (with
// |Qf| = n−e, |Q1| = n−f) reaches the mode's required overlap — so the
// closed-form bounds in quorum.go agree with actual set intersections, not
// just with their own algebra.
func TestBoundsMatchIntersectionOracle(t *testing.T) {
	for n := 1; n <= 11; n++ {
		for f := 0; 2*f+1 <= 11; f++ {
			for e := 0; e <= f; e++ {
				if n-e < 0 || n-f < 0 {
					continue
				}
				overlap := minIntersection(n, n-e, n-f)
				for _, mode := range []Mode{Task, Object, Lamport} {
					wantOK := n >= PlainMinProcesses(f) && overlap >= requiredOverlap(mode, e)
					gotOK := Check(mode, n, f, e) == nil
					if gotOK != wantOK {
						t.Errorf("Check(%v, n=%d, f=%d, e=%d) = %v, oracle overlap=%d (need %d, 2f+1=%d)",
							mode, n, f, e, gotOK, overlap, requiredOverlap(mode, e), PlainMinProcesses(f))
					}
				}
			}
		}
	}
}

// TestClassicQuorumsIntersect: at every accepted (n, f) two classic quorums
// of size n−f always share a process (the Paxos-side invariant all three
// protocols rely on for slow ballots).
func TestClassicQuorumsIntersect(t *testing.T) {
	for f := 0; f <= 5; f++ {
		for n := PlainMinProcesses(f); n <= 11; n++ {
			if got := minIntersection(n, n-f, n-f); got < 1 {
				t.Errorf("n=%d f=%d: classic quorums can be disjoint (overlap %d)", n, f, got)
			}
		}
	}
}

// flexOracleSound is the operational soundness oracle for flexible quorum
// sizes: it simulates the worst-case adversarial schedule on counting
// quorums instead of re-deriving NewFlex's inequalities.
//
// Schedule: the fast quorum Qf = {0..fast−1} fast-decides v; every acceptor
// outside Qf votes for a competing value w > v (each acceptor votes once at
// ballot 0, so this is the most support w can ever have). The adversary
// then picks the recovery quorum Q1 (size recovery) to contain as many
// w-voters as possible. Recovery is sound iff in every such Q1 the O4 rule
// identifies v uniquely: v reaches the vote threshold recovery+fast−n and
// w does not. Separately, a classic (phase-2) quorum that commits at a slow
// ballot must be visible to every recovery quorum.
func flexOracleSound(n, f, e, fast, recovery int) bool {
	if e < 0 || f < 0 || e > f || n < PlainMinProcesses(f) {
		return false
	}
	if fast < 1 || fast > n || recovery < 1 || recovery > n {
		return false
	}
	if fast > n-e { // fast path must survive e crashes
		return false
	}
	classic := n - f
	if minIntersection(n, recovery, classic) < 1 {
		return false
	}
	wVotes := recovery
	if n-fast < wVotes {
		wVotes = n - fast
	}
	vVotes := recovery - wVotes
	threshold := recovery + fast - n
	if threshold < 1 || vVotes < threshold || wVotes >= threshold {
		return false
	}
	return true
}

// TestFlexRejectsExactlyUnsoundCombos is the acceptance-criterion test: for
// all n ≤ 11, all 0 ≤ e ≤ f, and ALL candidate sizes (fast, recovery) in
// [0, n] (0 selects the classical default), NewFlex accepts exactly the
// combinations the operational oracle proves sound, and rejections carry
// ErrUnsound (or the threshold/infeasibility errors for malformed inputs).
func TestFlexRejectsExactlyUnsoundCombos(t *testing.T) {
	checked, accepted := 0, 0
	for n := 1; n <= 11; n++ {
		for f := 0; f <= 5; f++ {
			for e := 0; e <= f; e++ {
				for fastArg := 0; fastArg <= n; fastArg++ {
					for recArg := 0; recArg <= n; recArg++ {
						fast, rec := fastArg, recArg
						if fast == 0 {
							fast = n - e
						}
						if rec == 0 {
							rec = n - f
						}
						fl, err := NewFlex(n, f, e, fastArg, recArg)
						want := flexOracleSound(n, f, e, fast, rec)
						checked++
						if (err == nil) != want {
							t.Fatalf("NewFlex(n=%d f=%d e=%d fast=%d rec=%d) err=%v, oracle sound=%v",
								n, f, e, fastArg, recArg, err, want)
						}
						if err != nil {
							continue
						}
						accepted++
						if fl.Fast != fast || fl.Recovery != rec || fl.Classic != n-f {
							t.Fatalf("NewFlex(n=%d f=%d e=%d fast=%d rec=%d) resolved %v", n, f, e, fastArg, recArg, fl)
						}
						// A sound configuration guarantees at least one
						// fast/recovery overlap vote, and its overlap
						// threshold really is the worst-case intersection.
						if fl.FastOverlap() < 1 {
							t.Fatalf("%v: FastOverlap %d < 1", fl, fl.FastOverlap())
						}
						if got := minIntersection(n, fl.Fast, fl.Recovery); got != fl.FastOverlap() {
							t.Fatalf("%v: FastOverlap %d, brute-forced min intersection %d", fl, fl.FastOverlap(), got)
						}
						if fl.RecoveryResilience() != n-rec {
							t.Fatalf("%v: RecoveryResilience %d", fl, fl.RecoveryResilience())
						}
					}
				}
			}
		}
	}
	if accepted == 0 || accepted == checked {
		t.Fatalf("degenerate sweep: %d/%d accepted", accepted, checked)
	}
	t.Logf("flex sweep: %d combos, %d sound", checked, accepted)
}

// TestFlexDefaultsMatchLamport: with both sizes defaulted the flexible
// construction is exactly classical Fast Paxos, so it must be accepted
// precisely when Lamport's bound holds.
func TestFlexDefaultsMatchLamport(t *testing.T) {
	for n := 1; n <= 11; n++ {
		for f := 0; f <= 5; f++ {
			for e := 0; e <= f; e++ {
				err := CheckFlex(n, f, e, 0, 0)
				if wantOK := Check(Lamport, n, f, e) == nil; (err == nil) != wantOK {
					t.Errorf("CheckFlex(n=%d f=%d e=%d, defaults) err=%v; Lamport ok=%v", n, f, e, err, wantOK)
				}
			}
		}
	}
}

// TestFlexSideMinimality: FlexFastSide and FlexClassicSide return the
// smallest size satisfying the pair-intersection requirement — the value
// they return is sound per the oracle's fast-ambiguity condition and one
// less is not.
func TestFlexSideMinimality(t *testing.T) {
	for n := 1; n <= 11; n++ {
		for recovery := 1; recovery <= n; recovery++ {
			qf := FlexFastSide(n, recovery)
			if recovery+2*qf <= 2*n {
				t.Errorf("FlexFastSide(%d,%d)=%d unsound", n, recovery, qf)
			}
			if qf > 1 && recovery+2*(qf-1) > 2*n {
				t.Errorf("FlexFastSide(%d,%d)=%d not minimal", n, recovery, qf)
			}
		}
		for fast := 1; fast <= n; fast++ {
			q1 := FlexClassicSide(n, fast)
			if q1+2*fast <= 2*n {
				t.Errorf("FlexClassicSide(%d,%d)=%d unsound", n, fast, q1)
			}
			if q1 > 1 && (q1-1)+2*fast > 2*n {
				t.Errorf("FlexClassicSide(%d,%d)=%d not minimal", n, fast, q1)
			}
		}
	}
}

// TestSmallestFastFlex: the extreme flex point uses a bare-majority fast
// quorum and is sound whenever it is constructible; when e crashes cannot
// be survived by a majority quorum the constructor refuses with ErrUnsound.
func TestSmallestFastFlex(t *testing.T) {
	for n := 1; n <= 11; n++ {
		for f := 0; 2*f+1 <= n && f <= 5; f++ {
			for e := 0; e <= f; e++ {
				fl, err := SmallestFastFlex(n, f, e)
				majority := n/2 + 1
				if majority > n-e {
					if err == nil {
						t.Errorf("SmallestFastFlex(%d,%d,%d) accepted but majority %d > n−e=%d", n, f, e, majority, n-e)
					} else if !errors.Is(err, ErrUnsound) {
						t.Errorf("SmallestFastFlex(%d,%d,%d): %v, want ErrUnsound", n, f, e, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("SmallestFastFlex(%d,%d,%d): %v", n, f, e, err)
					continue
				}
				if fl.Fast != majority {
					t.Errorf("SmallestFastFlex(%d,%d,%d): fast %d, want majority %d", n, f, e, fl.Fast, majority)
				}
				if !flexOracleSound(n, f, e, fl.Fast, fl.Recovery) {
					t.Errorf("SmallestFastFlex(%d,%d,%d) = %v unsound per oracle", n, f, e, fl)
				}
				// No sound configuration can have a smaller fast quorum:
				// two sub-majority quorums can be disjoint, so two values
				// could both be fast-decided.
				for fast := 1; fast < majority; fast++ {
					for rec := 1; rec <= n; rec++ {
						if flexOracleSound(n, f, e, fast, rec) {
							t.Errorf("n=%d: oracle accepts sub-majority fast quorum %d (rec %d)", n, fast, rec)
						}
					}
				}
			}
		}
	}
}
