package quorum

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPaperHeadlineNumbers(t *testing.T) {
	// The paper's introduction: for e = ⌈(f+1)/2⌉ on 2f+1 processes,
	// EPaxos sits exactly on the object bound when f is even, and
	// Lamport's bound would demand 2f+3 for f = 2e−1... verify the
	// concrete instance the abstract cites: 2f+1 = 2e+f−1.
	for f := 2; f <= 8; f += 2 {
		e := EPaxosFastThreshold(f)
		if got := ObjectMinProcesses(f, e); got != 2*f+1 {
			t.Errorf("f=%d e=%d: object bound %d, want 2f+1=%d", f, e, got, 2*f+1)
		}
	}
	// Lamport's bound for the same e needs two more than the object bound
	// whenever the 2e+f side binds.
	if got, want := LamportMinProcesses(2, 2), 7; got != want {
		t.Errorf("Lamport(2,2) = %d, want %d", got, want)
	}
	if got, want := TaskMinProcesses(2, 2), 6; got != want {
		t.Errorf("Task(2,2) = %d, want %d", got, want)
	}
	if got, want := ObjectMinProcesses(2, 2), 5; got != want {
		t.Errorf("Object(2,2) = %d, want %d", got, want)
	}
}

// TestBoundOrdering checks object ≤ task ≤ lamport and plain ≤ all, for all
// legal thresholds.
func TestBoundOrdering(t *testing.T) {
	prop := func(fRaw, eRaw uint8) bool {
		f := int(fRaw%8) + 1
		e := int(eRaw%uint8(f)) + 1
		obj, task, lam := ObjectMinProcesses(f, e), TaskMinProcesses(f, e), LamportMinProcesses(f, e)
		plain := PlainMinProcesses(f)
		return obj <= task && task <= lam && plain <= obj &&
			task-obj <= 1 && lam-task <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCheck(t *testing.T) {
	if err := Check(Task, 6, 2, 2); err != nil {
		t.Errorf("Check(task, 6, 2, 2) = %v", err)
	}
	if err := Check(Task, 5, 2, 2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Check(task, 5, 2, 2) = %v, want ErrInfeasible", err)
	}
	if err := Check(Object, 5, 2, 2); err != nil {
		t.Errorf("Check(object, 5, 2, 2) = %v", err)
	}
	if err := Check(Task, 6, 2, 3); err == nil {
		t.Error("Check accepted e > f")
	}
}

func TestMaxFastThreshold(t *testing.T) {
	// n=7, f=3: task can afford e=2 (2e+f=7), object e=2 as well
	// (2e+f−1=6 ≤ 7; e=3 needs 8), lamport e=1 (2e+f+1=6 ≤ 7; e=2 needs 8).
	if got := MaxFastThreshold(Task, 7, 3); got != 2 {
		t.Errorf("MaxFastThreshold(task,7,3) = %d, want 2", got)
	}
	if got := MaxFastThreshold(Object, 7, 3); got != 2 {
		t.Errorf("MaxFastThreshold(object,7,3) = %d, want 2", got)
	}
	if got := MaxFastThreshold(Lamport, 7, 3); got != 1 {
		t.Errorf("MaxFastThreshold(lamport,7,3) = %d, want 1", got)
	}
	if got := MaxFastThreshold(Object, 8, 3); got != 3 {
		t.Errorf("MaxFastThreshold(object,8,3) = %d, want 3", got)
	}
}

func TestEPaxosQuorums(t *testing.T) {
	cases := []struct{ f, e, q int }{
		{1, 1, 2},
		{2, 2, 3},
		{3, 2, 5},
		{4, 3, 6},
		{5, 3, 8},
	}
	for _, c := range cases {
		if got := EPaxosFastThreshold(c.f); got != c.e {
			t.Errorf("EPaxosFastThreshold(%d) = %d, want %d", c.f, got, c.e)
		}
		if got := EPaxosFastQuorum(c.f); got != c.q {
			t.Errorf("EPaxosFastQuorum(%d) = %d, want %d", c.f, got, c.q)
		}
		// Identity: fast quorum = n − e on 2f+1 processes.
		if got := 2*c.f + 1 - EPaxosFastThreshold(c.f); got != EPaxosFastQuorum(c.f) {
			t.Errorf("f=%d: n−e = %d ≠ fast quorum %d", c.f, got, EPaxosFastQuorum(c.f))
		}
	}
}

func TestByzantineFastBound(t *testing.T) {
	// Kuznetsov et al.'s 3f+2e−1, floored by the classic 3f+1.
	if got := ByzantineFastMinProcesses(1, 1); got != 4 {
		t.Errorf("Byz(1,1) = %d, want 4 (3f+1 binds)", got)
	}
	if got := ByzantineFastMinProcesses(2, 2); got != 9 {
		t.Errorf("Byz(2,2) = %d, want 9", got)
	}
	// Always at least the crash-failure Lamport bound.
	for f := 1; f <= 5; f++ {
		for e := 1; e <= f; e++ {
			if ByzantineFastMinProcesses(f, e) < LamportMinProcesses(f, e) {
				t.Errorf("Byz(%d,%d) below the crash bound", f, e)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Task: "task", Object: "object", Lamport: "lamport"} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}
