package quorum_test

import (
	"fmt"

	"repro/internal/quorum"
)

// Example reproduces the paper's headline comparison for f = 2, e = 2.
func Example() {
	f, e := 2, 2
	fmt.Println("paxos (no fast path):", quorum.PlainMinProcesses(f))
	fmt.Println("fast paxos (Lamport):", quorum.LamportMinProcesses(f, e))
	fmt.Println("consensus task:      ", quorum.TaskMinProcesses(f, e))
	fmt.Println("consensus object:    ", quorum.ObjectMinProcesses(f, e))
	// Output:
	// paxos (no fast path): 5
	// fast paxos (Lamport): 7
	// consensus task:       6
	// consensus object:     5
}

// ExampleEPaxosFastThreshold shows how Egalitarian Paxos sits exactly on
// the object bound for even f.
func ExampleEPaxosFastThreshold() {
	f := 4
	e := quorum.EPaxosFastThreshold(f)
	fmt.Printf("f=%d: e=%d, 2e+f−1=%d, 2f+1=%d\n", f, e, 2*e+f-1, 2*f+1)
	// Output:
	// f=4: e=3, 2e+f−1=9, 2f+1=9
}
