package quorum

import (
	"errors"
	"fmt"
)

// ErrUnsound is returned by NewFlex for quorum-size combinations whose
// intersection requirements fail — combinations on which Fast-Paxos-style
// recovery could re-select a value different from a fast-decided one.
var ErrUnsound = errors.New("flexible quorum sizes violate intersection requirements")

// Flex describes a flexible-quorum deployment in the style of Fast
// Flexible Paxos (Howard, Charapko, Mortier — "Fast Flexible Paxos:
// Relaxing Quorum Intersection for Fast Paxos"): quorum roles are split
// and only the intersections the safety argument actually uses are
// required. With counting quorums of sizes
//
//	fast     = |Qf|  (ballot-0 votes needed for a fast decision)
//	classic  = |Q2|  (slow-ballot 2B votes needed to commit)
//	recovery = |Q1|  (1B reports a new leader collects before recovering)
//
// on n processes, soundness needs
//
//	classic intersection:  recovery + classic  > n       (every Q1 meets every Q2)
//	fast intersection:     recovery + 2·fast   > 2n      (every Q1 meets every PAIR of fast quorums)
//
// The second line is what makes the O4-style vote count unambiguous: a
// fast-decided value shows at least FastOverlap = recovery+fast−n votes
// among the 1B reports, and no two values can both reach that count.
//
// Availability is the trade-off, not a free parameter: the fast path
// tolerates n−fast crashes (Flex requires fast ≤ n−e so it stays e-two-
// step), the classic path tolerates n−classic ≥ f, but leader change
// needs `recovery` live processes — RecoveryResilience reports how many
// crashes that path survives. Lamport's bound n ≥ 2e+f+1 is not evaded:
// shrinking the fast quorum below n−e' sacrifices exactly that recovery
// resilience, which is why the default (non-flex) sizes keep recovery at
// n−f.
type Flex struct {
	// N is the process count; F and E the resilience and fast thresholds
	// the deployment claims (fast quorums must survive E crashes, classic
	// quorums F).
	N, F, E int
	// Fast, Classic and Recovery are the three quorum sizes.
	Fast, Classic, Recovery int
}

// NewFlex validates a flexible-quorum configuration, rejecting every
// unsound combination (see the property test, which checks the rejection
// against explicit worst-case quorum placements for all n ≤ 11). Zero
// sizes select the non-flex defaults: fast = n−e, recovery = n−f. The
// classic (phase-2) size is always n−f — flexing it buys nothing in this
// codebase because commits already wait for n−f acknowledgements.
func NewFlex(n, f, e, fast, recovery int) (Flex, error) {
	if e < 0 || f < 0 || e > f {
		return Flex{}, fmt.Errorf("quorum: flex thresholds f=%d e=%d: must satisfy 0 ≤ e ≤ f", f, e)
	}
	if n < PlainMinProcesses(f) {
		return Flex{}, fmt.Errorf("quorum: flex n=%d f=%d: %w", n, f, ErrInfeasible)
	}
	fl := Flex{N: n, F: f, E: e, Fast: fast, Classic: n - f, Recovery: recovery}
	if fl.Fast == 0 {
		fl.Fast = n - e
	}
	if fl.Recovery == 0 {
		fl.Recovery = n - f
	}
	if fl.Fast < 1 || fl.Fast > n || fl.Recovery < 1 || fl.Recovery > n {
		return Flex{}, fmt.Errorf("quorum: flex sizes fast=%d recovery=%d out of [1,%d]: %w",
			fl.Fast, fl.Recovery, n, ErrUnsound)
	}
	if fl.Fast > n-e {
		return Flex{}, fmt.Errorf("quorum: fast quorum %d of %d cannot survive e=%d crashes (needs ≤ %d): %w",
			fl.Fast, n, e, n-e, ErrUnsound)
	}
	if fl.Recovery+fl.Classic <= n {
		return Flex{}, fmt.Errorf("quorum: recovery quorum %d misses classic quorum %d on n=%d: %w",
			fl.Recovery, fl.Classic, n, ErrUnsound)
	}
	if fl.Recovery+2*fl.Fast <= 2*n {
		return Flex{}, fmt.Errorf("quorum: recovery quorum %d misses a pair of fast quorums of %d on n=%d (need recovery ≥ %d or fast ≥ %d): %w",
			fl.Recovery, fl.Fast, n, FlexClassicSide(n, fl.Fast), FlexFastSide(n, fl.Recovery), ErrUnsound)
	}
	return fl, nil
}

// CheckFlex reports whether the (n, f, e, fast, recovery) combination is
// sound, without constructing the Flex.
func CheckFlex(n, f, e, fast, recovery int) error {
	_, err := NewFlex(n, f, e, fast, recovery)
	return err
}

// FlexFastSide returns the smallest sound fast-quorum size on n processes
// given a recovery (phase-1) quorum of size recovery: the least qf with
// recovery + 2·qf > 2n.
func FlexFastSide(n, recovery int) int { return (2*n-recovery)/2 + 1 }

// FlexClassicSide returns the smallest sound recovery (phase-1) quorum
// size on n processes given fast quorums of size fast: the least q1 with
// q1 + 2·fast > 2n. (The classic-intersection requirement adds q1 ≥ f+1;
// NewFlex enforces both.)
func FlexClassicSide(n, fast int) int { return maxInt(2*(n-fast)+1, 1) }

// SmallestFastFlex returns the flexible configuration with the smallest
// sound fast quorum on n processes — a bare majority, paid for with a
// recovery quorum of all n (RecoveryResilience 0): the extreme point of
// the Fast Flexible Paxos trade-off, and the configuration the WAN bench
// sweeps as "flex on". Returns ErrUnsound via NewFlex when even the
// majority fast quorum cannot survive e crashes (n/2+1 > n−e).
func SmallestFastFlex(n, f, e int) (Flex, error) {
	fast := n/2 + 1
	return NewFlex(n, f, e, fast, FlexClassicSide(n, fast))
}

// FastOverlap returns recovery+fast−n: the minimum number of members any
// fast quorum shares with any recovery quorum, and therefore the O4-style
// vote-count threshold a fast-decided value is guaranteed to reach among
// the 1B reports. With the non-flex defaults this is the familiar n−e−f.
func (fl Flex) FastOverlap() int { return fl.Recovery + fl.Fast - fl.N }

// RecoveryResilience returns n−recovery, the number of crashes the
// leader-change path survives. The non-flex default is f; flexible
// configurations trade it away for a smaller fast quorum.
func (fl Flex) RecoveryResilience() int { return fl.N - fl.Recovery }

// String implements fmt.Stringer.
func (fl Flex) String() string {
	return fmt.Sprintf("flex{n=%d f=%d e=%d |Qf|=%d |Q2|=%d |Q1|=%d}",
		fl.N, fl.F, fl.E, fl.Fast, fl.Classic, fl.Recovery)
}
