package omega_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/omega"
	"repro/internal/sim"
)

func TestDetectorConvergesOnLowestCorrect(t *testing.T) {
	const n = 5
	delta := consensus.Duration(10)
	cl, err := sim.New(sim.Options{
		N:       n,
		Delta:   delta,
		Policy:  sim.NewPartialSync(delta, 0, delta, 1),
		Horizon: consensus.Time(100 * delta),
	})
	if err != nil {
		t.Fatal(err)
	}
	detectors := make([]*omega.Detector, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: 2, E: 1, Delta: delta}
		detectors[i] = omega.New(cfg, 0)
		cl.SetNode(consensus.ProcessID(i), detectors[i])
	}
	cl.ScheduleCrash(0, consensus.Time(5*delta))
	cl.ScheduleCrash(1, consensus.Time(20*delta))
	cl.Run(nil)

	for i := 2; i < n; i++ {
		if got := detectors[i].Leader(); got != 2 {
			t.Errorf("detector %d: leader = %s, want p2", i, got)
		}
	}
}

func TestDetectorTrustsSelfWhenAlone(t *testing.T) {
	cfg := consensus.Config{ID: 3, N: 5, F: 2, E: 1, Delta: 10}
	d := omega.New(cfg, 2)
	// Without any heartbeats, after enough epochs everyone below us is
	// suspected and we elect ourselves.
	for i := 0; i < 10; i++ {
		d.Tick(omega.TimerPeriod)
	}
	if got := d.Leader(); got != 3 {
		t.Fatalf("leader = %s, want self p3", got)
	}
}

func TestDetectorInitiallyTrustsLowest(t *testing.T) {
	cfg := consensus.Config{ID: 3, N: 5, F: 2, E: 1, Delta: 10}
	d := omega.New(cfg, 0)
	if got := d.Leader(); got != 0 {
		t.Fatalf("leader = %s, want p0 before any suspicion", got)
	}
}
