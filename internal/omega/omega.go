// Package omega implements the Ω leader-election service of the paper's
// Appendix C.1 as a heartbeat-based eventual leader detector, in the
// standard Chandra–Toueg style: every process periodically broadcasts a
// heartbeat; a process trusts the lowest-id process it has heard from
// recently; after GST all correct processes converge on the same lowest-id
// correct process.
//
// The detector is itself a deterministic consensus.Protocol (heartbeats are
// messages, periods are timers), so it runs both under the simulator and on
// live transports, side by side with a consensus protocol that consumes it
// through the consensus.LeaderOracle interface.
package omega

import (
	"repro/internal/consensus"
)

// KindHeartbeat is the heartbeat message kind.
const KindHeartbeat = "omega.heartbeat"

// Heartbeat is the liveness beacon broadcast every period.
type Heartbeat struct{}

// Kind implements consensus.Message.
func (Heartbeat) Kind() string { return KindHeartbeat }

// RegisterMessages registers the omega message kinds with codec.
func RegisterMessages(codec *consensus.Codec) {
	codec.MustRegister(KindHeartbeat, func() consensus.Message { return &Heartbeat{} })
}

// TimerPeriod drives heartbeat emission and suspicion evaluation.
const TimerPeriod consensus.TimerID = "omega.period"

// DefaultTimeoutPeriods is how many silent periods make a process suspect.
const DefaultTimeoutPeriods = 3

// Detector is the Ω implementation at one process.
type Detector struct {
	cfg     consensus.Config
	timeout int64 // periods of silence before suspicion

	epoch     int64
	lastHeard []int64 // epoch at which each process was last heard

	// Leader-stability tracking (LeaderStable): the current estimate and
	// the epoch at which it last changed, refreshed on every Deliver/Tick.
	lastLeader   consensus.ProcessID
	leaderSince  int64
	leaderInited bool
}

var (
	_ consensus.Protocol     = (*Detector)(nil)
	_ consensus.LeaderOracle = (*Detector)(nil)
)

// New builds a detector. timeoutPeriods ≤ 0 selects DefaultTimeoutPeriods.
func New(cfg consensus.Config, timeoutPeriods int) *Detector {
	if timeoutPeriods <= 0 {
		timeoutPeriods = DefaultTimeoutPeriods
	}
	d := &Detector{
		cfg:       cfg,
		timeout:   int64(timeoutPeriods),
		lastHeard: make([]int64, cfg.N),
	}
	return d
}

// ID implements consensus.Protocol.
func (d *Detector) ID() consensus.ProcessID { return d.cfg.ID }

// Leader implements consensus.LeaderOracle: the lowest-id process heard from
// within the timeout window (always including ourselves).
func (d *Detector) Leader() consensus.ProcessID {
	for i := 0; i < d.cfg.N; i++ {
		p := consensus.ProcessID(i)
		if p == d.cfg.ID {
			return p
		}
		if d.epoch-d.lastHeard[i] <= d.timeout {
			return p
		}
	}
	return d.cfg.ID
}

// Start implements consensus.Protocol: begin heartbeating immediately.
func (d *Detector) Start() []consensus.Effect {
	return []consensus.Effect{
		consensus.Broadcast{Msg: &Heartbeat{}, Self: false},
		consensus.StartTimer{Timer: TimerPeriod, After: d.cfg.Delta},
	}
}

// Propose implements consensus.Protocol (no-op: Ω has no proposals).
func (d *Detector) Propose(consensus.Value) []consensus.Effect { return nil }

// Decision implements consensus.Protocol (Ω never decides).
func (d *Detector) Decision() (consensus.Value, bool) { return consensus.None, false }

// Deliver implements consensus.Protocol.
func (d *Detector) Deliver(from consensus.ProcessID, m consensus.Message) []consensus.Effect {
	if _, ok := m.(*Heartbeat); ok {
		if int(from) < len(d.lastHeard) {
			d.lastHeard[from] = d.epoch
		}
	}
	d.noteLeader()
	return nil
}

// Tick implements consensus.Protocol: advance the epoch and heartbeat again.
func (d *Detector) Tick(t consensus.TimerID) []consensus.Effect {
	if t != TimerPeriod {
		return nil
	}
	d.epoch++
	d.noteLeader()
	return []consensus.Effect{
		consensus.Broadcast{Msg: &Heartbeat{}, Self: false},
		consensus.StartTimer{Timer: TimerPeriod, After: d.cfg.Delta},
	}
}

// noteLeader refreshes the stability tracking after any event that can
// move the estimate.
func (d *Detector) noteLeader() {
	cur := d.Leader()
	if !d.leaderInited || cur != d.lastLeader {
		d.lastLeader = cur
		d.leaderSince = d.epoch
		d.leaderInited = true
	}
}

// LeaderStable reports whether the current leader estimate has been
// unchanged for at least minPeriods heartbeat periods. The lease
// auto-grant timer uses it to avoid proposing grants during leader churn
// (competing grants revoke each other — safe, but wasted rounds).
func (d *Detector) LeaderStable(minPeriods int64) bool {
	if !d.leaderInited {
		return false
	}
	return d.Leader() == d.lastLeader && d.epoch-d.leaderSince >= minPeriods
}
