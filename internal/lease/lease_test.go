package lease

import "testing"

const (
	ms  = int64(1e6)
	dur = 100 * ms
	eps = 10 * ms
)

func newTable(self int) *Table {
	return New(Config{Self: self, Duration: dur, Epsilon: eps})
}

func TestOwnGrantWindowMargins(t *testing.T) {
	tb := newTable(0)
	tb.NoteProposed("p0-1", 1000)
	ev := tb.ApplyGrant(0, "p0-1", dur, 5000)
	if !ev.Granted || ev.Holder != 0 || ev.Revoked {
		t.Fatalf("grant event = %+v", ev)
	}
	if !tb.HolderValid(1000) {
		t.Fatal("valid from propose time")
	}
	// Expiry is t0+dur-eps, anchored at propose time, not apply time.
	if tb.HolderValid(1000 + dur - eps) {
		t.Fatal("must stop serving eps before nominal expiry")
	}
	if !tb.HolderValid(1000 + dur - eps - 1) {
		t.Fatal("should serve right up to the margin")
	}
	if got := tb.Remaining(1000); got != dur-eps {
		t.Fatalf("Remaining = %d, want %d", got, dur-eps)
	}
	if tb.Guarded(1000) {
		t.Fatal("own lease must not guard ourselves")
	}
}

func TestExpireCheckOneShot(t *testing.T) {
	tb := newTable(0)
	tb.NoteProposed("p0-1", 0)
	tb.ApplyGrant(0, "p0-1", dur, 0)
	if tb.ExpireCheck(dur - eps - 1) {
		t.Fatal("not expired yet")
	}
	if !tb.ExpireCheck(dur - eps) {
		t.Fatal("first check past expiry reports true")
	}
	if tb.ExpireCheck(dur - eps) {
		t.Fatal("second check must not re-report")
	}
	if tb.HolderValid(dur - eps) {
		t.Fatal("expired lease serves nothing")
	}
}

func TestForeignGrantGuards(t *testing.T) {
	tb := newTable(1)
	ev := tb.ApplyGrant(0, "p0-7", dur, 2000)
	if !ev.Granted || ev.Holder != 0 {
		t.Fatalf("event = %+v", ev)
	}
	if tb.HolderValid(2000) {
		t.Fatal("foreign grant confers no serving rights")
	}
	// Guard extends eps past apply-time + dur: conservative superset of
	// the holder's window (which ends eps *before* propose-time + dur).
	if !tb.Guarded(2000 + dur + eps - 1) {
		t.Fatal("guard must outlast the holder's window")
	}
	if tb.Guarded(2000 + dur + eps) {
		t.Fatal("guard lapses after dur+eps")
	}
	if tb.GuardHolder() != 0 {
		t.Fatalf("GuardHolder = %d, want 0", tb.GuardHolder())
	}
}

func TestRevocationKeepsGuard(t *testing.T) {
	tb := newTable(1)
	tb.ApplyGrant(0, "p0-7", dur, 0)
	// A command from a third replica revokes the applied-log lease...
	ev := tb.ApplyCommand(2, 1*ms)
	if !ev.Revoked {
		t.Fatal("foreign command must revoke")
	}
	if tb.Holder() != -1 {
		t.Fatalf("Holder = %d after revocation", tb.Holder())
	}
	// ...but the guard stays: replica 0 may not have applied the revoking
	// command yet and could still be serving reads.
	if !tb.Guarded(dur) {
		t.Fatal("revocation must not lower the guard")
	}
	if tb.GuardHolder() != 0 {
		t.Fatal("guard hint survives revocation")
	}
}

func TestHolderOwnCommandsDoNotRevoke(t *testing.T) {
	tb := newTable(0)
	tb.NoteProposed("p0-1", 0)
	tb.ApplyGrant(0, "p0-1", dur, 0)
	if ev := tb.ApplyCommand(0, 1*ms); ev.Revoked || ev.Fenced {
		t.Fatalf("holder's own command revoked/fenced its lease: %+v", ev)
	}
	if !tb.HolderValid(1 * ms) {
		t.Fatal("lease must survive the holder's own writes")
	}
}

func TestFencedInsideForeignGuard(t *testing.T) {
	tb := newTable(1)
	tb.ApplyGrant(0, "p0-7", dur, 0)
	// Our own command applying while replica 0's lease is conservatively
	// live: applied, but must not be acked as definite.
	ev := tb.ApplyCommand(1, 1*ms)
	if !ev.Fenced {
		t.Fatal("own command inside a foreign guard must fence")
	}
	if !ev.Revoked {
		t.Fatal("it still revokes the applied-log lease")
	}
	// After the guard lapses, our commands are clean.
	if ev := tb.ApplyCommand(1, dur+eps+1); ev.Fenced {
		t.Fatal("no fence after the guard lapses")
	}
	// Unknown proposers are never fenced (we didn't propose them) but
	// revoke conservatively.
	tb.ApplyGrant(0, "p0-8", dur, 2*dur)
	if ev := tb.ApplyCommand(-1, 2*dur+1); ev.Fenced || !ev.Revoked {
		t.Fatalf("unknown proposer: %+v", ev)
	}
}

func TestTakeoverDefersOwnWindow(t *testing.T) {
	tb := newTable(1)
	tb.ApplyGrant(0, "p0-7", dur, 0) // guard until dur+eps
	tb.NoteProposed("p1-1", 5*ms)
	tb.ApplyGrant(1, "p1-1", 3*dur, 10*ms)
	// The old holder may serve until the guard lapses; our window must
	// not start before then even though we proposed at 5ms.
	if tb.HolderValid(dur + eps - 1) {
		t.Fatal("takeover must defer to the outgoing holder's guard")
	}
	if !tb.HolderValid(dur + eps) {
		t.Fatal("window opens when the guard lapses")
	}
	// Expiry is still anchored at our propose time.
	if tb.HolderValid(5*ms + 3*dur - eps) {
		t.Fatal("expiry stays anchored at propose time")
	}
	// A short takeover grant whose deferred start passes its own expiry
	// yields an empty window: conservative, never serves.
	short := newTable(1)
	short.ApplyGrant(0, "p0-7", dur, 0)
	short.NoteProposed("p1-1", 5*ms)
	short.ApplyGrant(1, "p1-1", dur, 10*ms)
	for now := int64(0); now < 2*dur; now += ms {
		if short.HolderValid(now) {
			t.Fatalf("short takeover grant must never open (valid at %d)", now)
		}
	}
}

func TestReplayedOwnGrantConfersNothing(t *testing.T) {
	// Crash-restart: the grant replays from the WAL with no pending entry
	// (the propose-time anchor died with the process).
	tb := newTable(0)
	ev := tb.ApplyGrant(0, "p0-1", dur, 500)
	if !ev.Granted {
		t.Fatal("replayed grant still records the holder")
	}
	if tb.HolderValid(500) || tb.HolderValid(501) {
		t.Fatal("crash-restart must forget serving rights")
	}
	if tb.Holder() != 0 {
		t.Fatal("applied-log holder still tracked for revocation")
	}
}

func TestExportImport(t *testing.T) {
	// Holder exports its own valid lease with 2eps slack.
	a := newTable(0)
	a.NoteProposed("p0-1", 0)
	a.ApplyGrant(0, "p0-1", dur, 0)
	h, remain := a.Export(10 * ms)
	if h != 0 || remain != (dur-eps-10*ms)+2*eps {
		t.Fatalf("Export = (%d, %d)", h, remain)
	}
	// A fresh replica importing it must guard for the full remainder.
	b := newTable(2)
	b.Import(h, remain, 1000*ms)
	if !b.Guarded(1000*ms + remain - 1) {
		t.Fatal("import must guard for the exported remainder")
	}
	if b.Guarded(1000*ms + remain) {
		t.Fatal("guard lapses after the remainder")
	}
	// Guard-only state re-exports as the residual duration.
	h2, r2 := b.Export(1001 * ms)
	if h2 != 0 || r2 != remain-1*ms {
		t.Fatalf("re-export = (%d, %d)", h2, r2)
	}
	// Importing our own lease confers nothing (no propose anchor).
	c := newTable(0)
	c.Import(0, remain, 0)
	if c.HolderValid(1) || c.Guarded(1) {
		t.Fatal("own exported lease must be dropped on import")
	}
	// Nothing to export when idle.
	if h3, r3 := a.Export(10 * dur); h3 != -1 || r3 != 0 {
		t.Fatalf("idle export = (%d, %d)", h3, r3)
	}
}

func TestUnsafeModeHasNoTeeth(t *testing.T) {
	tb := New(Config{Self: 1, Duration: dur, Epsilon: eps, Unsafe: true})
	tb.ApplyGrant(0, "p0-7", dur, 0)
	if tb.Guarded(1) {
		t.Fatal("unsafe mode must not guard")
	}
	if ev := tb.ApplyCommand(1, 1); ev.Fenced {
		t.Fatal("unsafe mode must not fence")
	}
	// And the holder's own window has no margin: serves right up to
	// t0+dur even though others assume nothing.
	own := New(Config{Self: 0, Duration: dur, Epsilon: eps, Unsafe: true})
	own.NoteProposed("p0-1", 0)
	own.ApplyGrant(0, "p0-1", dur, 0)
	if !own.HolderValid(dur - 1) {
		t.Fatal("unsafe mode serves with zero margin")
	}
}

func TestDropProposed(t *testing.T) {
	tb := newTable(0)
	tb.NoteProposed("p0-1", 0)
	tb.DropProposed("p0-1")
	tb.ApplyGrant(0, "p0-1", dur, 5)
	if tb.HolderValid(6) {
		t.Fatal("dropped proposal must not confer serving rights")
	}
}
