// Package lease implements the deterministic state machine behind
// time-bounded leader leases for linearizable local reads.
//
// A lease is granted through consensus itself: the holder replicates an
// ordinary lease-grant command, and every replica applies it in log order
// like any write. While the holder's lease is valid it may answer
// linearizable reads from its local applied state with zero network round
// trips; every other replica refuses to acknowledge commands it proposes
// itself until the lease has conservatively expired, so no write can be
// acknowledged that the holder might not have applied.
//
// The package is deliberately host-free: it never reads a clock, spawns a
// goroutine, or touches the network. Every method takes `now`, a reading
// of the host's monotonic clock in nanoseconds (each replica measures
// durations against its own arbitrary origin — absolute values are never
// compared across replicas, only durations, which monotonic clocks measure
// faithfully up to rate drift; the ε margin absorbs that drift). This
// keeps the lease rules replayable in tests and under the determinism
// analyzer.
//
// Safety margins (why the holder's window is shorter than everyone
// else's): for a grant of length D proposed by H at local time t0,
//
//	H serves reads   during [t0 .. t0+D-ε)        (its own clock)
//	replica B blocks during [apply_B .. apply_B+D+ε)  (B's clock)
//
// Since the grant cannot apply anywhere before H proposed it,
// apply_B >= t0 in real time, so B's conservative window strictly covers
// H's serving window with 2ε of slack for clock-rate drift between the
// two monotonic clocks. Setting ε = 0 (Config.Unsafe) removes both the
// margin and the guard — the teeth-test mode that provably serves stale
// reads under partition.
package lease

// Config fixes a replica's identity and the safety margins.
type Config struct {
	// Self is this replica's process ID.
	Self int
	// Duration is the default grant length in nanoseconds. Grants carry
	// their own duration on the wire; this is what the holder proposes.
	Duration int64
	// Epsilon is the clock-skew safety margin in nanoseconds. The holder
	// stops serving ε before nominal expiry; everyone else keeps blocking
	// ε after it.
	Epsilon int64
	// Unsafe disables the margin, the guard window, and fencing — the
	// deliberately broken ε=0 mode used to prove the linearizability
	// checker catches stale lease reads. Never enable outside tests.
	Unsafe bool
}

// Event reports what applying a command did to the lease table.
type Event struct {
	// Granted: a lease-grant took effect (Holder says for whom).
	Granted bool
	// Holder is the grantee when Granted is set.
	Holder int
	// Revoked: a previously recorded lease was revoked by a command from
	// a different proposer.
	Revoked bool
	// Fenced: the applied command was proposed by this replica while a
	// foreign lease was still conservatively live. Its effect is applied
	// (log order is law) but it must not be acknowledged as a definite
	// success: the holder may have served reads that missed it.
	Fenced bool
}

// Table is one replica's view of the group's lease. All methods are
// single-threaded (the caller holds the replica lock) and deterministic
// given the sequence of calls and `now` values.
type Table struct {
	cfg Config

	// holder is the grantee of the most recent applied, unrevoked grant
	// (-1 if none). Tracked from the log alone, so it is identical on
	// every replica at equal applied index.
	holder int

	// guardHolder / guardUntil implement the conservative window during
	// which a *foreign* replica may still be serving reads. guardUntil is
	// only ever raised: revocation of the holder does not lower it,
	// because a revoked holder may not have applied the revoking command
	// yet and could still be serving.
	guardHolder int
	guardUntil  int64

	// Own serving window. Valid only when this replica proposed the grant
	// itself in this process lifetime (pending matched): a replayed or
	// snapshot-imported own grant never confers serving rights.
	ownValid  bool
	ownFrom   int64
	ownExpiry int64

	// pending maps command IDs of our own in-flight grant proposals to
	// the local time at which they were proposed. The propose-time lower
	// bound is what makes self-expiry safe: the grant cannot have applied
	// anywhere earlier than we proposed it.
	pending map[string]int64
}

// New builds an empty table; no lease is held and nothing is guarded.
func New(cfg Config) *Table {
	if cfg.Unsafe {
		cfg.Epsilon = 0
	}
	return &Table{
		cfg:         cfg,
		holder:      -1,
		guardHolder: -1,
		pending:     make(map[string]int64),
	}
}

// NoteProposed records that this replica proposed a grant command with the
// given ID at local time now. Must be called before the command is handed
// to consensus, so the recorded time lower-bounds every replica's apply
// time.
func (t *Table) NoteProposed(id string, now int64) {
	t.pending[id] = now
}

// DropProposed forgets a proposal that errored out. If the grant decides
// anyway, it will apply without a pending entry and confer no serving
// rights — conservative, never unsafe.
func (t *Table) DropProposed(id string) {
	delete(t.pending, id)
}

// ApplyGrant applies a replicated lease-grant for holder h with length
// dur, identified by the command ID id, at local time now.
func (t *Table) ApplyGrant(h int, id string, dur, now int64) Event {
	ev := Event{Granted: true, Holder: h}
	if t.holder >= 0 && t.holder != h {
		ev.Revoked = true
	}
	t.holder = h
	if h != t.cfg.Self {
		// Someone else holds the lease: raise the conservative window.
		// We block our own proposals (and local reads) until it lapses.
		t.guardHolder = h
		t.guardUntil = max64(t.guardUntil, now+dur+t.cfg.Epsilon)
		t.ownValid = false
		return ev
	}
	t0, ok := t.pending[id]
	if !ok {
		// Our own grant replayed from the WAL or adopted via catchup
		// after a restart: the propose-time anchor is gone, so we get no
		// serving window. Holding the record still matters (a later
		// foreign command revokes it), but crash-restart forgets leases.
		t.ownValid = false
		return ev
	}
	delete(t.pending, id)
	t.ownValid = true
	t.ownFrom = t0
	if !t.cfg.Unsafe && t.guardUntil > t.ownFrom {
		// Taking over from a previous holder: it may serve until the
		// guard lapses, so our own window must not start before then.
		t.ownFrom = t.guardUntil
	}
	t.ownExpiry = t0 + dur - t.cfg.Epsilon
	return ev
}

// ApplyCommand applies any non-grant command from the given proposer
// (-1 if unknown) at local time now. A command from anyone but the
// current holder revokes the lease; a command we proposed ourselves while
// a foreign guard is still live is flagged Fenced.
func (t *Table) ApplyCommand(proposer int, now int64) Event {
	var ev Event
	if !t.cfg.Unsafe && proposer == t.cfg.Self && now < t.guardUntil && !t.HolderValid(now) {
		ev.Fenced = true
	}
	if t.holder >= 0 && proposer != t.holder {
		// Revoke — but never lower guardUntil: the deposed holder may
		// not have applied this command yet and could still be serving.
		t.holder = -1
		t.ownValid = false
		ev.Revoked = true
	}
	return ev
}

// HolderValid reports whether this replica may serve a linearizable read
// from local applied state right now.
func (t *Table) HolderValid(now int64) bool {
	return t.ownValid && t.holder == t.cfg.Self && t.ownFrom <= now && now < t.ownExpiry
}

// ExpireCheck retires an expired own lease and reports whether it just
// did so (one-shot, for expiry counters).
func (t *Table) ExpireCheck(now int64) bool {
	if t.ownValid && now >= t.ownExpiry {
		t.ownValid = false
		return true
	}
	return false
}

// Guarded reports whether a foreign lease is conservatively live, i.e.
// this replica must not acknowledge commands it proposes itself (and must
// not serve local reads).
func (t *Table) Guarded(now int64) bool {
	return !t.cfg.Unsafe && now < t.guardUntil && !t.HolderValid(now)
}

// GuardHolder is the replica to redirect to while Guarded (-1 if none
// ever was). It survives revocation deliberately: a just-revoked holder
// is still the best hint until the guard lapses.
func (t *Table) GuardHolder() int { return t.guardHolder }

// Holder is the applied-log holder (-1 if none / revoked).
func (t *Table) Holder() int { return t.holder }

// Remaining is how much of our own serving window is left (0 when not
// valid).
func (t *Table) Remaining(now int64) int64 {
	if !t.HolderValid(now) {
		return 0
	}
	return t.ownExpiry - now
}

// Export summarizes the lease for a snapshot or catchup reply as
// (holder, remaining-duration). Durations are clock-origin-free, so the
// pair is meaningful on another replica's clock: importing at any later
// real time and guarding for `remain` strictly covers the exporter's
// window. Our own valid lease exports with 2ε slack (we serve until
// ownExpiry; the importer must block past that plus drift).
func (t *Table) Export(now int64) (holder int, remain int64) {
	if t.HolderValid(now) {
		return t.cfg.Self, t.ownExpiry - now + 2*t.cfg.Epsilon
	}
	if t.guardUntil > now {
		return t.guardHolder, t.guardUntil - now
	}
	return -1, 0
}

// Import adopts an exported (holder, remain) pair at local time now,
// raising the guard conservatively. Own grants are skipped: serving
// rights never survive snapshot transfer (no propose-time anchor).
func (t *Table) Import(holder int, remain, now int64) {
	if holder < 0 || remain <= 0 || holder == t.cfg.Self {
		return
	}
	t.holder = holder
	t.guardHolder = holder
	t.guardUntil = max64(t.guardUntil, now+remain)
	t.ownValid = false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
