package chaos

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/linear"
	"repro/internal/smr"
	"repro/internal/transport"
)

// TestLeaseChaosLinearizable is the lease chaos scenario: a sharded cluster
// with auto-granted leader leases on every group, fronted by real TCP
// servers. Pinned writers and PreferLeader readers run while the nemesis
// partitions the initial leaseholder away and then crash-restarts it
// mid-lease (the restart must forget serving rights; the survivors' guard
// windows must lapse before anyone else serves). The merged history must
// check linearizable, and the run must actually exercise the lease fast
// path (local hits > 0) for the check to mean anything.
func TestLeaseChaosLinearizable(t *testing.T) {
	const (
		n, f, e      = 3, 1, 1
		groups       = 2
		opsPerClient = 40
		keys         = 8
	)
	lo := &smr.LeaseOptions{
		Duration:  250 * time.Millisecond,
		Epsilon:   25 * time.Millisecond,
		AutoGrant: true,
	}
	c, err := newShardedClusterLeases(t.TempDir(), n, f, e, groups, lo)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := smr.NewBackendServer(&liveBackend{c: c, i: i}, "127.0.0.1:0", 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}

	// Let the auto-grant timer take the first lease before traffic starts
	// (it waits for a stable Ω leader), so the scenario actually runs
	// against live leases rather than finishing before the first grant.
	grantDeadline := time.Now().Add(10 * time.Second)
	for {
		held := false
		for g := 0; g < groups; g++ {
			if c.runtime(0).Group(g).HoldsLease() {
				held = true
			}
		}
		if held {
			break
		}
		if time.Now().After(grantDeadline) {
			t.Fatalf("no auto-granted lease appeared (g0 stats %+v)", c.runtime(0).Group(0).LeaseStats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec := linear.NewRecorder()
	var wg sync.WaitGroup
	// Writers stay pinned to one proxy each (failover re-submission could
	// apply a write twice); a write refused under a foreign lease is a
	// definite rejection and leaves no trace in the history.
	for id := 0; id < n; id++ {
		id := id
		rng := rand.New(rand.NewSource(int64(5000 + id)))
		ops := script(rng, id, opsPerClient, keys)
		sc, err := smr.NewSessionClient([]string{addrs[id]}, smr.SessionOptions{
			Timeout: 20 * time.Second,
			Depth:   16,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, op := range ops {
				if i > 0 {
					time.Sleep(2 * time.Millisecond)
				}
				p := rec.Invoke(id, op.kind, op.key, op.val)
				var err error
				switch op.kind {
				case linear.KindPut:
					err = sc.Put(op.key, op.val)
				case linear.KindDelete:
					err = sc.Delete(op.key)
				default:
					var v string
					if v, err = sc.GetLinearizable(op.key); err == nil {
						p.Observed(v, true)
						continue
					}
					if errors.Is(err, smr.ErrNotFound) {
						p.Observed("", false)
						continue
					}
				}
				switch {
				case err == nil:
					p.OK()
				case errors.Is(err, smr.ErrRejected):
					p.Failed() // definitely not applied (lease refusal, bad key)
				default:
					p.Ambiguous()
				}
			}
		}()
	}
	// Readers follow the lease: multi-address PreferLeader clients whose
	// GETLs are moved to the current holder by the lease-held redirect.
	// Reads are idempotent, so cross-proxy failover is safe for them.
	for id := n; id < 2*n; id++ {
		id := id
		rng := rand.New(rand.NewSource(int64(5000 + id)))
		ops := script(rng, id, opsPerClient, keys)
		sc, err := smr.NewSessionClient(addrs, smr.SessionOptions{
			Timeout:      20 * time.Second,
			Depth:        16,
			PreferLeader: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, op := range ops {
				if i > 0 {
					time.Sleep(2 * time.Millisecond)
				}
				p := rec.Invoke(id, linear.KindGet, op.key, "")
				v, err := sc.GetLinearizable(op.key)
				switch {
				case err == nil:
					p.Observed(v, true)
				case errors.Is(err, smr.ErrNotFound):
					p.Observed("", false)
				case errors.Is(err, smr.ErrRejected):
					p.Failed()
				default:
					p.Ambiguous()
				}
			}
		}()
	}

	// Nemesis: partition process 0 (the initial Ω leader, hence the first
	// auto-granted leaseholder) away mid-lease, heal, then crash-restart it
	// mid-lease — recovery replays its own grant, which must confer no
	// serving rights.
	// Crash-restarting process 0 rebuilds its runtime with fresh counters,
	// so snapshot the lease hits it served before the kill.
	var preKillHits uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(60 * time.Millisecond)
		c.mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
			if (from == 0) != (to == 0) {
				return transport.FaultVerdict{Drop: true}
			}
			return transport.FaultVerdict{}
		})
		time.Sleep(200 * time.Millisecond)
		c.mesh.SetFault(nil)
		time.Sleep(100 * time.Millisecond)
		for g := 0; g < groups; g++ {
			preKillHits += c.runtime(0).Group(g).LeaseStats().Hits
		}
		c.kill(0)
		time.Sleep(150 * time.Millisecond)
		if err := c.restart(0); err != nil {
			t.Errorf("restart process 0: %v", err)
		}
	}()

	wg.Wait()
	<-done
	c.mesh.SetFault(nil)
	if err := c.waitConverged(keyUniverse(keys), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	res := linear.CheckTimeout(rec.History(), 30*time.Second)
	if !res.Ok {
		t.Fatalf("lease chaos history not linearizable (key %q, %d ops recorded)", res.Key, rec.Len())
	}
	// The scenario is vacuous unless the lease fast path actually served
	// reads somewhere (holder moved around, but hits must have happened).
	hits := preKillHits
	for i := 0; i < n; i++ {
		rt := c.runtime(i)
		for g := 0; g < groups; g++ {
			hits += rt.Group(g).LeaseStats().Hits
		}
	}
	if hits == 0 {
		t.Fatal("lease chaos run never served a local lease read")
	}
	if total := 2 * n * opsPerClient; rec.Len() < total/3 {
		t.Fatalf("recorded only %d of %d ops: too much of the run failed to be meaningful", rec.Len(), total)
	}
}

// leaseMeshCluster boots n bare (non-durable) replicas over an in-process
// mesh with the given lease options: the harness for the ε=0 teeth test,
// which needs direct fault control between specific replicas.
func leaseMeshCluster(t *testing.T, n, f, e int, lo smr.LeaseOptions) ([]*smr.Replica, *transport.Mesh, func()) {
	t.Helper()
	mesh := transport.NewMesh(n)
	replicas := make([]*smr.Replica, n)
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.EnableLeases(lo); err != nil {
			t.Fatal(err)
		}
		tr, err := mesh.Endpoint(cfg.ID, r.Handle)
		if err != nil {
			t.Fatal(err)
		}
		r.BindTransport(tr)
		replicas[i] = r
	}
	for _, r := range replicas {
		r.Start()
	}
	return replicas, mesh, func() {
		for _, r := range replicas {
			r.Close()
		}
		mesh.Close()
	}
}

// TestLeaseTeethZeroEpsilon proves the teeth of the ε margin by removing
// it: with UnsafeZeroEpsilon (no margin, no guard, no fencing) an isolated
// leaseholder keeps serving local reads while the survivors commit fresh
// writes — and the linearizability checker must CATCH the stale read. The
// same schedule in safe mode keeps the survivor's write refused under the
// guard, and the history checks clean. One flag separates a correct
// protocol from a broken one, and the checker can tell.
func TestLeaseTeethZeroEpsilon(t *testing.T) {
	run := func(t *testing.T, lo smr.LeaseOptions) (linear.Result, error) {
		replicas, mesh, cleanup := leaseMeshCluster(t, 3, 1, 1, lo)
		defer cleanup()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()

		rec := linear.NewRecorder()
		kv0, kv1 := smr.NewKV(replicas[0]), smr.NewKV(replicas[1])

		p := rec.Invoke(0, linear.KindPut, "k", "v1")
		if err := kv0.Put(ctx, "k", "v1"); err != nil {
			t.Fatalf("put v1: %v", err)
		}
		p.OK()
		if err := replicas[0].AcquireLease(ctx); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if !replicas[0].HoldsLease() {
			t.Fatal("p0 lease not valid")
		}

		// Isolate the leaseholder: nothing in or out of p0. The {p1,p2}
		// majority can still decide commands on its own.
		mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
			if (from == 0) != (to == 0) {
				return transport.FaultVerdict{Drop: true}
			}
			return transport.FaultVerdict{}
		})

		// A survivor writes. Unsafe mode: no guard, the write commits and
		// is acknowledged. Safe mode: refused under p0's guard window.
		p = rec.Invoke(1, linear.KindPut, "k", "v2")
		werr := kv1.Put(ctx, "k", "v2")
		switch {
		case werr == nil:
			p.OK()
		case errors.Is(werr, smr.ErrLeaseHeld):
			p.Failed() // definitely not applied: no trace in the history
		default:
			t.Fatalf("put v2: %v", werr)
		}

		// The isolated holder still believes its lease: a local read.
		p = rec.Invoke(2, linear.KindGet, "k", "")
		v, found, err := kv0.GetLinearizable(ctx, "k")
		if err != nil || !found {
			t.Fatalf("GETL at isolated holder = %q, %t, %v", v, found, err)
		}
		p.Observed(v, true)
		if hits := replicas[0].LeaseStats().Hits; hits == 0 {
			t.Fatal("isolated holder did not serve from its lease")
		}

		mesh.SetFault(nil)
		return linear.CheckTimeout(rec.History(), 30*time.Second), werr
	}

	t.Run("unsafe-zero-epsilon-caught", func(t *testing.T) {
		res, werr := run(t, smr.LeaseOptions{
			Duration:          10 * time.Second,
			UnsafeZeroEpsilon: true,
		})
		if werr != nil {
			t.Fatalf("unsafe mode must not refuse the survivor's write, got %v", werr)
		}
		if res.Ok {
			t.Fatal("ε=0 with no guard served a stale read, but the history checked linearizable — the teeth test has no teeth")
		}
	})
	t.Run("safe-mode-clean", func(t *testing.T) {
		res, werr := run(t, smr.LeaseOptions{
			Duration: 10 * time.Second,
			Epsilon:  50 * time.Millisecond,
		})
		if !errors.Is(werr, smr.ErrLeaseHeld) {
			t.Fatalf("safe mode must refuse the survivor's write under the guard, got %v", werr)
		}
		if !res.Ok {
			t.Fatalf("safe-mode history not linearizable (key %q)", res.Key)
		}
	})
}
