// Package chaos is a deterministic, seed-driven nemesis harness over the
// real internal/smr stack: it runs concurrent clients against a live
// durable cluster while injecting partitions, message loss / duplication /
// delay, fsync stalls, and crash-restarts through the replicas' real
// recovery path — then verifies the merged client history with
// internal/linear and that the cluster reconverges after the faults heal.
//
// Everything the nemesis and the workload will do is derived up front from
// a single seed (the fault plan, every client's op script), so a failing
// run is reproducible from its seed alone: same seed, same schedule, same
// faults, same verdict. Per-message probabilistic sampling (loss under a
// lossy-link step) necessarily depends on the live goroutine interleaving,
// but which faults are active when — the schedule — does not.
package chaos

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/transport"
)

// faults is the live fault state consulted by the mesh on every send. The
// nemesis mutates it step by step; heal() clears everything. One instance
// is installed per cluster via transport.Mesh.SetFault.
type faults struct {
	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[[2]consensus.ProcessID]bool
	loss    float64
	dup     float64
	delayP  float64
	delay   time.Duration
}

func newFaults(seed int64) *faults {
	return &faults{
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[[2]consensus.ProcessID]bool),
	}
}

// verdict is the transport.FaultFunc for this fault set.
func (f *faults) verdict(from, to consensus.ProcessID) transport.FaultVerdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.blocked[[2]consensus.ProcessID{from, to}] {
		return transport.FaultVerdict{Drop: true}
	}
	if f.loss > 0 && f.rng.Float64() < f.loss {
		return transport.FaultVerdict{Drop: true}
	}
	var v transport.FaultVerdict
	if f.dup > 0 && f.rng.Float64() < f.dup {
		v.Duplicate = true
	}
	if f.delayP > 0 && f.rng.Float64() < f.delayP {
		v.Delay = f.delay
	}
	return v
}

// blockPair cuts the directed link a→b.
func (f *faults) blockPair(a, b consensus.ProcessID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked[[2]consensus.ProcessID{a, b}] = true
}

// partition splits the cluster into groups and cuts every link that
// crosses a group boundary, both directions.
func (f *faults) partition(groups ...[]int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	in := make(map[int]int)
	for g, ids := range groups {
		for _, id := range ids {
			in[id] = g
		}
	}
	for a, ga := range in {
		for b, gb := range in {
			if a != b && ga != gb {
				f.blocked[[2]consensus.ProcessID{consensus.ProcessID(a), consensus.ProcessID(b)}] = true
			}
		}
	}
}

// isolate cuts every link to and from replica i in an n-replica cluster.
func (f *faults) isolate(i, n int) {
	for p := 0; p < n; p++ {
		if p != i {
			f.blockPair(consensus.ProcessID(i), consensus.ProcessID(p))
			f.blockPair(consensus.ProcessID(p), consensus.ProcessID(i))
		}
	}
}

// setLoss drops each non-blocked message with probability p.
func (f *faults) setLoss(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loss = p
}

// setDup duplicates each delivered message with probability p.
func (f *faults) setDup(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dup = p
}

// setDelay holds each delivered message for d with probability p.
func (f *faults) setDelay(p float64, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayP, f.delay = p, d
}

// heal clears every active fault (blocked pairs, loss, dup, delay).
func (f *faults) heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked = make(map[[2]consensus.ProcessID]bool)
	f.loss, f.dup, f.delayP, f.delay = 0, 0, 0, 0
}
