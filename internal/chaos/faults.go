// Package chaos is a deterministic, seed-driven nemesis harness over the
// real internal/smr stack: it runs concurrent clients against a live
// durable cluster while injecting partitions, message loss / duplication /
// delay, fsync stalls, and crash-restarts through the replicas' real
// recovery path — then verifies the merged client history with
// internal/linear and that the cluster reconverges after the faults heal.
//
// Everything the nemesis and the workload will do is derived up front from
// a single seed (the fault plan, every client's op script), so a failing
// run is reproducible from its seed alone: same seed, same schedule, same
// faults, same verdict. Per-message probabilistic sampling (loss under a
// lossy-link step) draws from a per-directed-link seeded stream, so the
// k-th send on a link sees the same draws in every run; only the per-link
// send orders remain interleaving-dependent, never the schedule.
package chaos

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/transport"
)

// faults is the live fault state consulted by the mesh on every send. The
// nemesis mutates it step by step; heal() clears everything. One instance
// is installed per cluster via transport.Mesh.SetFault.
//
// Probabilistic sampling draws from a per-directed-link stream (seeded from
// the scenario seed and the link), not a shared rng: the k-th message on
// link a→b always sees the same three draws, no matter how the other
// links' sends interleave with it and no matter which faults happen to be
// active. That shrinks the nondeterminism left in a failing run to the
// per-link send orders themselves.
type faults struct {
	mu      sync.Mutex
	seed    int64
	streams map[[2]consensus.ProcessID]*rand.Rand
	// base, when set, is a standing fault-free verdict applied under the
	// chaos faults — the WAN scenarios install wan.Topology.MeshFault here
	// so geo latency persists through heal() (distance is not a fault).
	base    transport.FaultFunc
	blocked map[[2]consensus.ProcessID]bool
	loss    float64
	dup     float64
	delayP  float64
	delay   time.Duration
}

func newFaults(seed int64) *faults {
	return &faults{
		seed:    seed,
		streams: make(map[[2]consensus.ProcessID]*rand.Rand),
		blocked: make(map[[2]consensus.ProcessID]bool),
	}
}

// stream returns the directed link's private rng, created on first use.
func (f *faults) stream(from, to consensus.ProcessID) *rand.Rand {
	key := [2]consensus.ProcessID{from, to}
	rng, ok := f.streams[key]
	if !ok {
		rng = rand.New(rand.NewSource(f.seed ^ mix64(uint64(from)<<32|uint64(uint32(to)))))
		f.streams[key] = rng
	}
	return rng
}

// mix64 is the splitmix64 finalizer: it spreads the packed (from, to) pair
// over the seed space so adjacent links get unrelated streams.
func mix64(x uint64) int64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// setBase installs the standing (typically geo-latency) injector composed
// under the chaos faults. heal() does not clear it.
func (f *faults) setBase(base transport.FaultFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.base = base
}

// verdict is the transport.FaultFunc for this fault set. Every call
// consumes exactly three draws from the link's stream regardless of which
// faults are active, so the stream position is always 3× the link's send
// ordinal — toggling a fault on does not reshuffle the others' sampling.
func (f *faults) verdict(from, to consensus.ProcessID) transport.FaultVerdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	rng := f.stream(from, to)
	pLoss, pDup, pDelay := rng.Float64(), rng.Float64(), rng.Float64()
	var v transport.FaultVerdict
	if f.base != nil {
		v = f.base(from, to)
	}
	if f.blocked[[2]consensus.ProcessID{from, to}] {
		return transport.FaultVerdict{Drop: true}
	}
	if f.loss > 0 && pLoss < f.loss {
		return transport.FaultVerdict{Drop: true}
	}
	if f.dup > 0 && pDup < f.dup {
		v.Duplicate = true
	}
	if f.delayP > 0 && pDelay < f.delayP {
		v.Delay += f.delay
	}
	return v
}

// blockPair cuts the directed link a→b.
func (f *faults) blockPair(a, b consensus.ProcessID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked[[2]consensus.ProcessID{a, b}] = true
}

// partition splits the cluster into groups and cuts every link that
// crosses a group boundary, both directions.
func (f *faults) partition(groups ...[]int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	in := make(map[int]int)
	for g, ids := range groups {
		for _, id := range ids {
			in[id] = g
		}
	}
	for a, ga := range in {
		for b, gb := range in {
			if a != b && ga != gb {
				f.blocked[[2]consensus.ProcessID{consensus.ProcessID(a), consensus.ProcessID(b)}] = true
			}
		}
	}
}

// isolate cuts every link to and from replica i in an n-replica cluster.
func (f *faults) isolate(i, n int) {
	for p := 0; p < n; p++ {
		if p != i {
			f.blockPair(consensus.ProcessID(i), consensus.ProcessID(p))
			f.blockPair(consensus.ProcessID(p), consensus.ProcessID(i))
		}
	}
}

// setLoss drops each non-blocked message with probability p.
func (f *faults) setLoss(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loss = p
}

// setDup duplicates each delivered message with probability p.
func (f *faults) setDup(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dup = p
}

// setDelay holds each delivered message for d with probability p.
func (f *faults) setDelay(p float64, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayP, f.delay = p, d
}

// heal clears every active fault (blocked pairs, loss, dup, delay).
func (f *faults) heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked = make(map[[2]consensus.ProcessID]bool)
	f.loss, f.dup, f.delayP, f.delay = 0, 0, 0, 0
}
