package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/linear"
	"repro/internal/shard"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// shardedCluster is the multi-group analogue of cluster: every process
// hosts a shard.Runtime (several consensus groups over one mesh endpoint,
// one shared WAL, one fsync scheduler) and can be crash-killed and
// rebooted in place through the shared-WAL recovery path.
type shardedCluster struct {
	n, f, e, groups int
	mesh            *transport.Mesh
	dirs            []string
	rebinds         []*rebind
	trs             []transport.Transport

	// leases, when non-nil, enables replicated leader leases on every
	// group of every process (set before boot; survives crash-restart).
	leases *smr.LeaseOptions

	mu       sync.Mutex
	runtimes []*shard.Runtime
	down     map[int]bool
}

func newShardedCluster(dir string, n, f, e, groups int) (*shardedCluster, error) {
	return newShardedClusterLeases(dir, n, f, e, groups, nil)
}

// newShardedClusterLeases is newShardedCluster with leader leases enabled
// on every group (the lease chaos scenario).
func newShardedClusterLeases(dir string, n, f, e, groups int, leases *smr.LeaseOptions) (*shardedCluster, error) {
	c := &shardedCluster{
		n: n, f: f, e: e, groups: groups, leases: leases,
		mesh:     transport.NewMesh(n),
		dirs:     make([]string, n),
		rebinds:  make([]*rebind, n),
		trs:      make([]transport.Transport, n),
		runtimes: make([]*shard.Runtime, n),
		down:     make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		c.dirs[i] = filepath.Join(dir, fmt.Sprintf("p%d", i))
		c.rebinds[i] = &rebind{}
		tr, err := c.mesh.Endpoint(consensus.ProcessID(i), c.rebinds[i].handle)
		if err != nil {
			c.mesh.Close()
			return nil, err
		}
		c.trs[i] = tr
	}
	for i := 0; i < n; i++ {
		if err := c.boot(i); err != nil {
			c.close()
			return nil, err
		}
	}
	return c, nil
}

// boot builds process i's runtime over its data directory (demuxing the
// shared WAL per group when prior state exists) and swaps it into the mesh.
func (c *shardedCluster) boot(i int) error {
	rt, err := shard.New(shard.Options{
		Groups: c.groups,
		Config: consensus.Config{ID: consensus.ProcessID(i), N: c.n, F: c.f, E: c.e, Delta: 10},
		Tick:   time.Millisecond,
		Leases: c.leases,
		Durability: &shard.Durability{
			Dir:           c.dirs[i],
			Policy:        wal.SyncAlways,
			SnapshotEvery: 32,
		},
	})
	if err != nil {
		return err
	}
	rt.BindTransport(c.trs[i])
	c.rebinds[i].set(rt.Handler())
	c.mu.Lock()
	c.runtimes[i] = rt
	delete(c.down, i)
	c.mu.Unlock()
	rt.Start()
	return nil
}

func (c *shardedCluster) runtime(i int) *shard.Runtime {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runtimes[i]
}

// kill crash-stops process i: the shared WAL is aborted first, so every
// group's queued group commits fail and no acknowledgement escapes.
func (c *shardedCluster) kill(i int) {
	c.mu.Lock()
	rt := c.runtimes[i]
	c.down[i] = true
	c.mu.Unlock()
	c.rebinds[i].set(nil)
	if rt != nil {
		_ = rt.Kill()
	}
}

func (c *shardedCluster) restart(i int) error { return c.boot(i) }

// converged reports whether all processes agree per group and per key.
func (c *shardedCluster) converged(keys []string) bool {
	c.mu.Lock()
	runtimes := make([]*shard.Runtime, len(c.runtimes))
	copy(runtimes, c.runtimes)
	c.mu.Unlock()
	for g := 0; g < c.groups; g++ {
		applied := -1
		for _, rt := range runtimes {
			a := rt.Group(g).Applied()
			if applied == -1 {
				applied = a
			} else if a != applied {
				return false
			}
		}
	}
	for _, k := range keys {
		v0, ok0 := runtimes[0].Get(k)
		for _, rt := range runtimes[1:] {
			if v, ok := rt.Get(k); ok != ok0 || v != v0 {
				return false
			}
		}
	}
	return true
}

func (c *shardedCluster) waitConverged(keys []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	stable := 0
	for time.Now().Before(deadline) {
		if c.converged(keys) {
			stable++
			if stable >= 2 {
				return nil
			}
		} else {
			stable = 0
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	states := make([]string, len(c.runtimes))
	for i, rt := range c.runtimes {
		info := rt.Info()
		states[i] = fmt.Sprintf("p%d applied=%d", i, info.Applied)
	}
	return fmt.Errorf("chaos: sharded cluster did not reconverge within %v (%v)", timeout, states)
}

func (c *shardedCluster) close() {
	c.mu.Lock()
	runtimes := make([]*shard.Runtime, len(c.runtimes))
	copy(runtimes, c.runtimes)
	c.mu.Unlock()
	for _, rt := range runtimes {
		if rt != nil {
			_ = rt.Close()
		}
	}
	c.mesh.Close()
}

// liveBackend adapts a shardedCluster process into an smr.Backend that
// always routes to the process's *current* runtime: the TCP server in
// front of it outlives a crash-restart, exactly like a real process whose
// listener comes back on the same port. Operations racing a crash fail at
// the replica layer and surface as errors, which the workload records as
// ambiguous.
type liveBackend struct {
	c *shardedCluster
	i int
}

func (b *liveBackend) Route(key string) *smr.Replica { return b.c.runtime(b.i).Route(key) }
func (b *liveBackend) Proxy() *smr.Replica           { return b.c.runtime(b.i).Proxy() }
func (b *liveBackend) StatsLine() string             { return b.c.runtime(b.i).StatsLine() }
func (b *liveBackend) InfoLine() string              { return b.c.runtime(b.i).InfoLine() }

// TestShardedChaosLinearizable is the multi-group chaos scenario: three
// processes, each hosting several consensus groups over one transport, one
// shared WAL, and one fsync scheduler, fronted by real TCP servers.
// Pipelined session clients spray hash-routed keys across all groups while
// the nemesis partitions the fabric and crash-restarts processes (whole-WAL
// abort, multi-group recovery demux) — and the merged per-key history must
// check linearizable.
func TestShardedChaosLinearizable(t *testing.T) {
	const (
		n, f, e      = 3, 1, 1
		groups       = 4
		clients      = 6
		opsPerClient = 30
		keys         = 12
	)
	c, err := newShardedCluster(t.TempDir(), n, f, e, groups)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	// Sanity: the key universe actually spans several groups (a router
	// change that collapsed it would turn this into a single-group test).
	router := c.runtime(0).Router()
	touched := map[int]bool{}
	for _, k := range keyUniverse(keys) {
		touched[router.Group(k)] = true
	}
	if len(touched) < 2 {
		t.Fatalf("key universe hits %d group(s), want >= 2", len(touched))
	}

	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := smr.NewBackendServer(&liveBackend{c: c, i: i}, "127.0.0.1:0", 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}

	rec := linear.NewRecorder()
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		id := id
		rng := rand.New(rand.NewSource(int64(4000 + id)))
		ops := script(rng, id, opsPerClient, keys)
		// One logical client per goroutine, pinned to one proxy (failover
		// re-submission could apply a write twice; same rule as runClient).
		sc, err := smr.NewSessionClient([]string{addrs[id%n]}, smr.SessionOptions{
			Timeout: 20 * time.Second,
			Depth:   16,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, op := range ops {
				if i > 0 {
					time.Sleep(2 * time.Millisecond) // spread ops across the fault windows
				}
				p := rec.Invoke(id, op.kind, op.key, op.val)
				switch op.kind {
				case linear.KindPut:
					if err := sc.Put(op.key, op.val); err != nil {
						p.Ambiguous()
					} else {
						p.OK()
					}
				case linear.KindDelete:
					if err := sc.Delete(op.key); err != nil {
						p.Ambiguous()
					} else {
						p.OK()
					}
				default:
					v, err := sc.GetLinearizable(op.key)
					switch {
					case err == nil:
						p.Observed(v, true)
					case errors.Is(err, smr.ErrNotFound):
						p.Observed("", false)
					default:
						p.Ambiguous()
					}
				}
			}
		}()
	}

	// Nemesis, deterministic schedule: partition process 0 away from {1,2},
	// heal, crash-restart process 2 (whole shared WAL aborted, all groups
	// recover from the demuxed log), heal.
	nemesis := func() {
		time.Sleep(40 * time.Millisecond)
		c.mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
			if (from == 0) != (to == 0) {
				return transport.FaultVerdict{Drop: true}
			}
			return transport.FaultVerdict{}
		})
		time.Sleep(150 * time.Millisecond)
		c.mesh.SetFault(nil)
		time.Sleep(60 * time.Millisecond)
		c.kill(2)
		time.Sleep(100 * time.Millisecond)
		if err := c.restart(2); err != nil {
			t.Errorf("restart process 2: %v", err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		nemesis()
	}()

	wg.Wait()
	<-done
	c.mesh.SetFault(nil)
	if err := c.waitConverged(keyUniverse(keys), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	res := linear.CheckTimeout(rec.History(), 30*time.Second)
	if !res.Ok {
		t.Fatalf("sharded chaos history not linearizable (key %q, %d ops recorded)", res.Key, rec.Len())
	}
	// Ambiguous reads leave no trace in the history (see linear.PendingOp),
	// so under real crashes the recorded count dips below the op count; a
	// large gap would mean the cluster was mostly unavailable and the check
	// mostly vacuous.
	if total := clients * opsPerClient; rec.Len() < total*3/4 {
		t.Fatalf("recorded only %d of %d ops: too much of the run failed to be meaningful", rec.Len(), total)
	}

	// The restarted process rebuilt multi-group state from one interleaved
	// WAL: its recovery info must show the demux actually happened.
	recov, _ := c.runtime(2).Recovery()
	recovered := 0
	for _, ri := range recov {
		if ri.Recovered {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("restarted process recovered no group state from the shared WAL")
	}
}
