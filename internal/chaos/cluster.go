package chaos

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

func pid(i int) consensus.ProcessID { return consensus.ProcessID(i) }

// rebind is a swappable transport handler: mesh endpoints attach exactly
// once, so a restarted replica is swapped in behind the same endpoint
// (the pattern the durability tests established).
type rebind struct {
	mu sync.Mutex
	h  transport.Handler
}

func (rb *rebind) handle(from consensus.ProcessID, msg consensus.Message) {
	rb.mu.Lock()
	h := rb.h
	rb.mu.Unlock()
	if h != nil {
		h(from, msg)
	}
}

func (rb *rebind) set(h transport.Handler) {
	rb.mu.Lock()
	rb.h = h
	rb.mu.Unlock()
}

// cluster is a live durable SMR cluster on an in-process mesh, built for
// being abused: replicas can be crash-killed and rebooted in place from
// their data directories, fsyncs can be stalled, and the mesh carries a
// fault injector.
type cluster struct {
	n, f, e int
	mesh    *transport.Mesh
	dirs    []string
	rebinds []*rebind
	trs     []transport.Transport

	// fsyncStall, in nanoseconds, is added to every WAL fsync on every
	// replica while non-zero — the heal-able fsync failpoint.
	fsyncStall atomic.Int64

	mu       sync.Mutex
	replicas []*smr.Replica
	down     map[int]bool
}

func newCluster(dir string, n, f, e int) (*cluster, error) {
	c := &cluster{
		n: n, f: f, e: e,
		mesh:     transport.NewMesh(n),
		dirs:     make([]string, n),
		rebinds:  make([]*rebind, n),
		trs:      make([]transport.Transport, n),
		replicas: make([]*smr.Replica, n),
		down:     make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		c.dirs[i] = filepath.Join(dir, fmt.Sprintf("r%d", i))
		c.rebinds[i] = &rebind{}
		tr, err := c.mesh.Endpoint(consensus.ProcessID(i), c.rebinds[i].handle)
		if err != nil {
			c.mesh.Close()
			return nil, err
		}
		c.trs[i] = tr
	}
	for i := 0; i < n; i++ {
		if err := c.boot(i); err != nil {
			c.close()
			return nil, err
		}
	}
	return c, nil
}

// boot builds replica i over its data directory (running recovery when
// prior state exists) and swaps it into the mesh.
func (c *cluster) boot(i int) error {
	cfg := consensus.Config{ID: consensus.ProcessID(i), N: c.n, F: c.f, E: c.e, Delta: 10}
	r, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		return err
	}
	if _, err := r.EnableDurability(smr.DurabilityOptions{
		Dir:           c.dirs[i],
		Policy:        wal.SyncAlways,
		SnapshotEvery: 64,
		SyncHook: func() {
			if d := c.fsyncStall.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		},
	}); err != nil {
		return err
	}
	r.BindTransport(c.trs[i])
	c.rebinds[i].set(r.Handle)
	c.mu.Lock()
	c.replicas[i] = r
	delete(c.down, i)
	c.mu.Unlock()
	r.Start()
	return nil
}

// replica returns the live replica currently serving index i. Clients
// fetch it per operation, so a crash-restart swaps under them like a
// reconnect would.
func (c *cluster) replica(i int) *smr.Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas[i]
}

// kill crash-stops replica i: WAL aborted without the final sync, no
// further message or acknowledgement escapes (see smr.Replica.Kill).
func (c *cluster) kill(i int) {
	c.mu.Lock()
	r := c.replicas[i]
	c.down[i] = true
	c.mu.Unlock()
	c.rebinds[i].set(nil)
	if r != nil {
		_ = r.Kill()
	}
}

// restart reboots a killed replica from its data directory through the
// real recovery path.
func (c *cluster) restart(i int) error { return c.boot(i) }

// ensureUp restarts every replica currently down.
func (c *cluster) ensureUp() error {
	c.mu.Lock()
	var downs []int
	for i := range c.down {
		downs = append(downs, i)
	}
	// Restart in replica order, not map order: the recovery interleaving is
	// part of the schedule a seed promises to reproduce.
	sort.Ints(downs)
	c.mu.Unlock()
	for _, i := range downs {
		if err := c.restart(i); err != nil {
			return fmt.Errorf("chaos: restart replica %d: %w", i, err)
		}
	}
	return nil
}

// converged reports whether all replicas agree: equal applied indexes and
// identical values for every key in keys.
func (c *cluster) converged(keys []string) bool {
	c.mu.Lock()
	replicas := make([]*smr.Replica, len(c.replicas))
	copy(replicas, c.replicas)
	c.mu.Unlock()
	applied := -1
	for _, r := range replicas {
		a := r.Applied()
		if applied == -1 {
			applied = a
		} else if a != applied {
			return false
		}
	}
	for _, k := range keys {
		v0, ok0 := replicas[0].Get(k)
		for _, r := range replicas[1:] {
			if v, ok := r.Get(k); ok != ok0 || v != v0 {
				return false
			}
		}
	}
	return true
}

// waitConverged polls until converged holds twice in a row (agreement
// that is also stable) or the deadline passes.
func (c *cluster) waitConverged(keys []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	stable := 0
	for time.Now().Before(deadline) {
		if c.converged(keys) {
			stable++
			if stable >= 2 {
				return nil
			}
		} else {
			stable = 0
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	states := make([]string, len(c.replicas))
	for i, r := range c.replicas {
		states[i] = fmt.Sprintf("r%d applied=%d", i, r.Applied())
	}
	return fmt.Errorf("chaos: cluster did not reconverge within %v (%v)", timeout, states)
}

// close shuts everything down (gracefully — chaos is over).
func (c *cluster) close() {
	c.mu.Lock()
	replicas := make([]*smr.Replica, len(c.replicas))
	copy(replicas, c.replicas)
	c.mu.Unlock()
	for _, r := range replicas {
		if r != nil {
			_ = r.Close()
		}
	}
	c.mesh.Close()
}
