package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/linear"
	"repro/internal/smr"
)

// scriptOp is one scripted client operation: everything but its timing is
// fixed before the scenario starts, so the workload is a pure function of
// the seed.
type scriptOp struct {
	kind linear.Kind
	key  string
	val  string
}

// script derives client id's operation sequence from rng. Writes carry
// globally unique values (client id + op index), which keeps histories
// maximally informative for the checker: a read pins down exactly which
// write it observed.
func script(rng *rand.Rand, client, ops, keys int) []scriptOp {
	out := make([]scriptOp, ops)
	for i := range out {
		op := scriptOp{key: fmt.Sprintf("k%d", rng.Intn(keys))}
		switch rng.Intn(10) {
		case 0: // deletes are rarer: a mostly-present key exercises more
			op.kind = linear.KindDelete
		case 1, 2, 3, 4:
			op.kind = linear.KindGet
		default:
			op.kind = linear.KindPut
			op.val = fmt.Sprintf("c%d-%d", client, i)
		}
		out[i] = op
	}
	return out
}

// runClient executes a script sequentially against the cluster, recording
// every operation. The client is pinned to one proxy index (fetched live
// per op, so a crash-restart swaps the replica under it like a reconnect);
// pinning sidesteps the failover re-submit hazard — a retried write would
// be a second proposal and could apply twice, which the recorder could not
// express. Reads go through GetLinearizable: plain Get is stale by design,
// and the checker would (correctly!) flag that staleness.
//
// Outcome mapping: success records OK/Observed; any error records
// Ambiguous — with the replica crashing and the network partitioned we
// can rarely prove a request did NOT slip into consensus, and ambiguous
// is always sound (a definitely-failed op misrecorded as ambiguous only
// weakens the check, never breaks it).
func runClient(ctx context.Context, c *cluster, rec *linear.Recorder, id, proxy int, ops []scriptOp, opTimeout, opGap time.Duration) {
	for i, op := range ops {
		if i > 0 && opGap > 0 {
			time.Sleep(opGap)
		}
		if ctx.Err() != nil {
			return
		}
		r := c.replica(proxy)
		if r == nil {
			continue
		}
		kv := smr.NewKV(r)
		opCtx, cancel := context.WithTimeout(ctx, opTimeout)
		p := rec.Invoke(id, op.kind, op.key, op.val)
		switch op.kind {
		case linear.KindPut:
			if err := kv.Put(opCtx, op.key, op.val); err != nil {
				p.Ambiguous()
			} else {
				p.OK()
			}
		case linear.KindDelete:
			if err := kv.Delete(opCtx, op.key); err != nil {
				p.Ambiguous()
			} else {
				p.OK()
			}
		default:
			v, ok, err := kv.GetLinearizable(opCtx, op.key)
			if err != nil {
				p.Ambiguous() // ambiguous reads drop from the history
			} else {
				p.Observed(v, ok)
			}
		}
		cancel()
	}
}

// keyUniverse lists every key any script touches (for convergence checks).
func keyUniverse(keys int) []string {
	out := make([]string, keys)
	for i := range out {
		out[i] = fmt.Sprintf("k%d", i)
	}
	return out
}
