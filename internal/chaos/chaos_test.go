package chaos

import (
	"reflect"
	"testing"
	"time"
)

// smokeOptions is a deliberately small scenario so the untagged suite
// stays fast: 2 clients × 12 ops, 2 nemesis steps at a short scale. The
// tagged full suite (full_test.go) runs the real DefaultOptions.
func smokeOptions() Options {
	o := DefaultOptions()
	o.Clients = 2
	o.OpsPerClient = 12
	o.Keys = 2
	o.Steps = 2
	o.Scale = 60 * time.Millisecond
	return o
}

// TestChaosSmoke runs one small seeded scenario end to end: faults fire,
// the cluster reconverges, and the history checks linearizable.
func TestChaosSmoke(t *testing.T) {
	res, err := RunScenario(t.TempDir(), 1, smokeOptions())
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if !res.Check.Ok {
		t.Fatalf("history not linearizable (key %q); repro: %s", res.Check.Key, ReproLine(res.Seed))
	}
	if res.Check.TimedOut {
		t.Fatalf("checker timed out; repro: %s", ReproLine(res.Seed))
	}
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if len(res.Plan) != 2 {
		t.Fatalf("plan has %d steps, want 2", len(res.Plan))
	}
	t.Logf("seed=%d ops=%d ambiguous=%d faultDrops=%d converge=%v check=%v",
		res.Seed, res.Ops, res.Ambiguous, res.FaultDrops, res.Converge, res.CheckDuration)
}

// TestChaosDeterminism pins the reproducibility contract: the nemesis plan
// and every client script are pure functions of the seed — same seed, same
// schedule, same workload; a different seed differs.
func TestChaosDeterminism(t *testing.T) {
	o := DefaultOptions()
	p1, p2 := Plan(42, o), Plan(42, o)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", p1, p2)
	}
	s1, s2 := Scripts(42, o), Scripts(42, o)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different client scripts")
	}
	if reflect.DeepEqual(p1, Plan(43, o)) {
		t.Fatal("different seeds produced identical plans")
	}
	if reflect.DeepEqual(s1, Scripts(43, o)) {
		t.Fatal("different seeds produced identical scripts")
	}
	// The acceptance triad leads every plan: partition, crash, loss.
	if p1[0].Kind != StepPartitionHalves || p1[1].Kind != StepCrashRestart || p1[2].Kind != StepLoss {
		t.Fatalf("plan does not open with partition/crash/loss: %v", p1[:3])
	}
}

// TestChaosTeeth proves the harness can fail: with the deliberate
// stale-read fault injected on replica 0, the checker must reject the
// history. A green run here would mean the whole suite is vacuous.
func TestChaosTeeth(t *testing.T) {
	o := DefaultOptions()
	o.Clients = 1
	o.OpsPerClient = 25
	o.Keys = 1
	o.Steps = 0 // no nemesis: the injected fault alone must be caught
	o.OpGap = 0 // nothing to pace against
	o.StaleReads = true
	res, err := RunScenario(t.TempDir(), 7, o)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if res.Check.Ok {
		t.Fatal("checker accepted a history produced by a stale-read-faulted replica")
	}
	if res.Check.Key != "k0" {
		t.Fatalf("violation attributed to key %q, want k0", res.Check.Key)
	}
	t.Logf("teeth ok: checker rejected key %q after %v", res.Check.Key, res.CheckDuration)
}
