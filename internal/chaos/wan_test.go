package chaos

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/linear"
	"repro/internal/transport"
	"repro/internal/wan"
)

// TestWANPartitionLinearizable is the geo chaos scenario: a durable
// 5-replica cluster deployed one replica per region (wan preset geo5x5,
// delays compressed 50× so they sit under the protocol's Δ), scripted
// clients in every region, and a region cut — the two western regions are
// partitioned from the other three mid-workload, then healed. The merged
// history must check linearizable (Wing & Gong via internal/linear) and the
// cluster must reconverge with the geo latency still in place.
//
// The run is seed-reproducible: client scripts derive from wanChaosSeed,
// the partition schedule is fixed, the geo delays are deterministic per
// link (wan.Topology.MeshFault), and probabilistic fault sampling (unused
// here, but installed) draws from per-link seeded streams.
func TestWANPartitionLinearizable(t *testing.T) {
	const (
		seed  = int64(20250809)
		scale = 0.02 // max RTT 275ms → one-way ≤ 2.75ms, under Δ = 10ms
	)
	topo, err := wan.Preset("geo5x5")
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 5 {
		t.Fatalf("geo5x5 has %d slots, want 5", topo.N())
	}
	o := Options{
		N: 5, F: 2, E: 2,
		Clients: 5, OpsPerClient: 30, Keys: 3,
		OpTimeout:       5 * time.Second,
		OpGap:           10 * time.Millisecond,
		ConvergeTimeout: 30 * time.Second,
		CheckTimeout:    30 * time.Second,
	}

	c, err := newCluster(t.TempDir(), o.N, o.F, o.E)
	if err != nil {
		t.Fatalf("boot cluster: %v", err)
	}
	defer c.close()
	flt := newFaults(seed ^ saltFaults)
	flt.setBase(topo.MeshFault(scale))
	c.mesh.SetFault(flt.verdict)

	scripts := Scripts(seed, o)
	rec := linear.NewRecorder()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := range scripts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// One client per region: proxy i lives in topo region i.
			runClient(ctx, c, rec, i, i%o.N, scripts[i], o.OpTimeout, o.OpGap)
		}(i)
	}

	// The nemesis: let the workload spread across regions, cut the two
	// western regions (including the initial leader) off from the eastern
	// majority, hold, heal. Geo latency survives the heal — distance is
	// not a fault.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(150 * time.Millisecond)
		flt.partition([]int{0, 1}, []int{2, 3, 4})
		time.Sleep(500 * time.Millisecond)
		flt.heal()
	}()
	wg.Wait()

	if err := c.waitConverged(keyUniverse(o.Keys), o.ConvergeTimeout); err != nil {
		t.Fatalf("post-heal reconvergence (seed=%d): %v", seed, err)
	}

	h := rec.History()
	if len(h) == 0 {
		t.Fatal("no operations recorded")
	}
	ambiguous := 0
	for _, op := range h {
		if op.Outcome == linear.OutcomeAmbiguous {
			ambiguous++
		}
	}
	res := linear.CheckTimeout(h, o.CheckTimeout)
	if res.TimedOut {
		t.Fatalf("checker timed out (seed=%d)", seed)
	}
	if !res.Ok {
		t.Fatalf("history not linearizable at key %q (seed=%d)", res.Key, seed)
	}
	t.Logf("seed=%d ops=%d ambiguous=%d faultDrops=%d",
		seed, len(h), ambiguous, c.mesh.Stats().DropsByCause[transport.DropFault])
}

// TestFaultStreamsPerLink pins the per-link sampling contract: the same
// seed replays the identical draw sequence on a link, distinct links get
// unrelated streams, and interleaving sends on other links does not
// perturb a link's stream.
func TestFaultStreamsPerLink(t *testing.T) {
	sample := func(f *faults, from, to int, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = f.verdict(pid(from), pid(to)).Drop
		}
		return out
	}
	f1 := newFaults(7)
	f1.setLoss(0.5)
	a := sample(f1, 0, 1, 64)

	// Same seed, but interleave heavy traffic on other links between each
	// 0→1 send: the 0→1 stream must be unchanged.
	f2 := newFaults(7)
	f2.setLoss(0.5)
	b := make([]bool, 64)
	for i := range b {
		for j := 0; j < 5; j++ {
			f2.verdict(pid(1), pid(2))
			f2.verdict(pid(2), pid(0))
		}
		b[i] = f2.verdict(pid(0), pid(1)).Drop
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link 0→1 stream perturbed by other links at send %d", i)
		}
	}

	// Different seeds differ; different links differ.
	f3 := newFaults(8)
	f3.setLoss(0.5)
	c := sample(f3, 0, 1, 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
	f4 := newFaults(7)
	f4.setLoss(0.5)
	d := sample(f4, 1, 0, 64)
	same = 0
	for i := range a {
		if a[i] == d[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("links 0→1 and 1→0 share a stream")
	}
}
