package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/linear"
	"repro/internal/transport"
)

// Seed salts: the plan, the per-message fault sampling, and each client
// script draw from independent streams of the one scenario seed, so
// changing e.g. the client count does not silently reshuffle the nemesis.
const (
	saltPlan   int64 = 0x1e3779b97f4a7c15
	saltFaults int64 = 0x3f58476d1ce4e5b9
	saltScript int64 = 0x14d049bb133111eb
)

// Options sizes a chaos scenario. The zero value is not runnable; start
// from DefaultOptions.
type Options struct {
	// Cluster shape (consensus.Config N/F/E).
	N, F, E int
	// Workload: Clients concurrent clients, each running OpsPerClient
	// scripted operations over Keys keys.
	Clients, OpsPerClient, Keys int
	// Steps is the number of nemesis steps; 0 disables the nemesis.
	Steps int
	// Scale is the nemesis base hold duration (holds and rests jitter
	// around it, deterministically per seed).
	Scale time.Duration
	// OpTimeout bounds each client operation.
	OpTimeout time.Duration
	// OpGap paces clients between operations so the workload stays live
	// across the whole nemesis schedule instead of finishing inside the
	// first fault window.
	OpGap time.Duration
	// ConvergeTimeout bounds the post-heal reconvergence wait.
	ConvergeTimeout time.Duration
	// CheckTimeout bounds the linearizability search.
	CheckTimeout time.Duration
	// StaleReads enables the deliberate stale-read fault on replica 0 —
	// the harness-has-teeth scenario. The checker MUST fail such a run.
	StaleReads bool
}

// DefaultOptions is the standard full-stack scenario: a 3-replica durable
// cluster (fsync=always), 4 clients × 50 ops, 6 nemesis steps.
func DefaultOptions() Options {
	return Options{
		N: 3, F: 1, E: 1,
		Clients: 4, OpsPerClient: 50, Keys: 4,
		Steps:           6,
		Scale:           150 * time.Millisecond,
		OpTimeout:       2 * time.Second,
		OpGap:           15 * time.Millisecond,
		ConvergeTimeout: 30 * time.Second,
		CheckTimeout:    30 * time.Second,
	}
}

// Result is one scenario's outcome. The harness-level error channel
// (RunScenario's second return) is separate: a Result is meaningful only
// when the scenario itself ran to completion.
type Result struct {
	Seed int64
	// Plan is the nemesis schedule that ran (derived from Seed).
	Plan []Step
	// Ops counts recorded operations; Ambiguous counts the maybe-applied
	// subset (kept in the history with open intervals).
	Ops, Ambiguous int
	// FaultDrops counts messages the nemesis discarded.
	FaultDrops uint64
	// Converge is how long post-heal reconvergence took.
	Converge time.Duration
	// Check is the linearizability verdict; CheckDuration the search time.
	Check         linear.Result
	CheckDuration time.Duration
}

// Plan returns the nemesis schedule RunScenario will execute for a seed —
// a pure function of (seed, o); the determinism tests pin exactly that.
func Plan(seed int64, o Options) []Step {
	return plan(rand.New(rand.NewSource(seed^saltPlan)), o.N, o.Steps, o.Scale, o.F >= 1)
}

// Scripts returns every client's scripted operations for a seed (pure,
// like Plan).
func Scripts(seed int64, o Options) [][]scriptOp {
	out := make([][]scriptOp, o.Clients)
	for i := range out {
		rng := rand.New(rand.NewSource(seed ^ saltScript ^ int64(i)<<32))
		out[i] = script(rng, i, o.OpsPerClient, o.Keys)
	}
	return out
}

// ReproLine renders the copy-pasteable command that reruns one seed.
func ReproLine(seed int64) string {
	return fmt.Sprintf("go test -tags chaos ./internal/chaos -run TestChaosFull -v -chaos.seed=%d -chaos.seeds=1", seed)
}

// RunScenario runs one seeded scenario in dir (which must be empty or
// fresh): boot a durable cluster, unleash the scripted clients and the
// nemesis, heal, restart whatever is down, wait for reconvergence, and
// check the merged history. Harness failures (boot errors, a replica that
// cannot recover, no reconvergence) come back as the error; a
// non-linearizable history comes back in Result.Check.
func RunScenario(dir string, seed int64, o Options) (Result, error) {
	res := Result{Seed: seed, Plan: Plan(seed, o)}
	scripts := Scripts(seed, o)

	c, err := newCluster(dir, o.N, o.F, o.E)
	if err != nil {
		return res, fmt.Errorf("chaos: boot cluster: %w", err)
	}
	defer c.close()
	if o.StaleReads {
		c.replica(0).FaultInjectStaleReads()
	}
	flt := newFaults(seed ^ saltFaults)
	c.mesh.SetFault(flt.verdict)

	rec := linear.NewRecorder()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := range scripts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runClient(ctx, c, rec, i, i%o.N, scripts[i], o.OpTimeout, o.OpGap)
		}(i)
	}
	nemErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, s := range res.Plan {
			if err := runStep(c, flt, s); err != nil {
				nemErr <- err
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-nemErr:
		return res, err
	default:
	}

	// Chaos over: heal the fabric, bring every replica back, and require
	// the cluster to reconverge.
	c.mesh.SetFault(nil)
	c.fsyncStall.Store(0)
	if err := c.ensureUp(); err != nil {
		return res, err
	}
	keys := keyUniverse(o.Keys)
	if o.StaleReads {
		// The deliberate stale-read fault breaks read agreement by design;
		// require only applied-index agreement so the scenario reaches the
		// checker (whose job is to catch exactly this fault).
		keys = nil
	}
	start := time.Now()
	if err := c.waitConverged(keys, o.ConvergeTimeout); err != nil {
		return res, err
	}
	res.Converge = time.Since(start)

	h := rec.History()
	res.Ops = len(h)
	for _, op := range h {
		if op.Outcome == linear.OutcomeAmbiguous {
			res.Ambiguous++
		}
	}
	res.FaultDrops = c.mesh.Stats().DropsByCause[transport.DropFault]
	start = time.Now()
	res.Check = linear.CheckTimeout(h, o.CheckTimeout)
	res.CheckDuration = time.Since(start)
	return res, nil
}
