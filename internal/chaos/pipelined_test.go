package chaos

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/linear"
	"repro/internal/smr"
	"repro/internal/transport"
)

// TestPipelinedSessionsLinearizable is the chaos-short companion for the
// multiplexed client: pipelined session clients (shared connections, many
// tagged ops in flight, out-of-order completion) drive a live durable
// cluster over real TCP while the mesh drops, duplicates, and delays
// consensus traffic — and the recorded history must still check
// linearizable. This is the property the one-op-per-connection client got
// for free and the demux layer has to re-earn.
func TestPipelinedSessionsLinearizable(t *testing.T) {
	const (
		n, f, e      = 3, 1, 1
		clients      = 6
		opsPerClient = 25
		keys         = 4
	)
	c, err := newCluster(t.TempDir(), n, f, e)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	// One client-facing TCP server per replica — the real wire, so frames,
	// the executor pool, and batched reply flushes are all in the loop.
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := smr.NewServer(c.replica(i), "127.0.0.1:0", 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = srv.Addr()
	}

	rec := linear.NewRecorder()
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		id := id
		rng := rand.New(rand.NewSource(int64(1000 + id)))
		ops := script(rng, id, opsPerClient, keys)
		// Each workload goroutine is one logical linear client, pinned to
		// one proxy (failover re-submission could apply a write twice,
		// which the recorder cannot express — same rule as runClient).
		sc, err := smr.NewSessionClient([]string{addrs[id%n]}, smr.SessionOptions{
			Timeout: 20 * time.Second,
			Depth:   32,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, op := range ops {
				p := rec.Invoke(id, op.kind, op.key, op.val)
				switch op.kind {
				case linear.KindPut:
					if err := sc.Put(op.key, op.val); err != nil {
						p.Ambiguous()
					} else {
						p.OK()
					}
				case linear.KindDelete:
					if err := sc.Delete(op.key); err != nil {
						p.Ambiguous()
					} else {
						p.OK()
					}
				default:
					v, err := sc.GetLinearizable(op.key)
					switch {
					case err == nil:
						p.Observed(v, true)
					case errors.Is(err, smr.ErrNotFound):
						p.Observed("", false)
					default:
						p.Ambiguous()
					}
				}
			}
		}()
	}

	// Fault window: a flaky consensus fabric for the middle of the run
	// (seeded per-message drop / duplicate / delay — delays deliberately
	// reorder), then heal. No crash-restarts here: the servers above hold
	// direct replica pointers, and replica replacement is the tagged
	// campaign's job — this test isolates the new client layer.
	var fmu sync.Mutex
	frng := rand.New(rand.NewSource(7))
	time.Sleep(50 * time.Millisecond)
	c.mesh.SetFault(func(from, to consensus.ProcessID) transport.FaultVerdict {
		fmu.Lock()
		defer fmu.Unlock()
		switch frng.Intn(20) {
		case 0:
			return transport.FaultVerdict{Drop: true}
		case 1:
			return transport.FaultVerdict{Duplicate: true}
		case 2, 3:
			return transport.FaultVerdict{Delay: time.Duration(frng.Intn(15)) * time.Millisecond}
		default:
			return transport.FaultVerdict{}
		}
	})
	healed := time.AfterFunc(600*time.Millisecond, func() { c.mesh.SetFault(nil) })
	defer healed.Stop()

	wg.Wait()
	c.mesh.SetFault(nil)
	if err := c.waitConverged(keyUniverse(keys), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	res := linear.CheckTimeout(rec.History(), 30*time.Second)
	if !res.Ok {
		t.Fatalf("pipelined history not linearizable (key %q, %d ops recorded)", res.Key, rec.Len())
	}
	if rec.Len() != clients*opsPerClient {
		t.Fatalf("recorded %d ops, want %d", rec.Len(), clients*opsPerClient)
	}
}
