//go:build chaos

package chaos

import (
	"flag"
	"fmt"
	"testing"
)

// The full suite is opt-in (go test -tags chaos, or `make chaos`): it runs
// many multi-second scenarios and belongs in scheduled CI, not every push.
//
// Reproducing a failure: every failing seed is reported with a
// copy-pasteable command line; -chaos.seed reruns exactly that scenario.
var (
	flagSeeds = flag.Int64("chaos.seeds", 20, "number of consecutive seeds to run, starting at -chaos.seed")
	flagSeed  = flag.Int64("chaos.seed", 1, "first seed (with -chaos.seeds=1, reruns a single scenario)")
	flagShort = flag.Bool("chaos.short", false, "shrink each scenario (fewer ops/steps) for quick CI runs")
)

// TestChaosFull runs -chaos.seeds seeded scenarios at full size, each as a
// subtest named by its seed so -run 'TestChaosFull/seed=N' also works.
func TestChaosFull(t *testing.T) {
	o := DefaultOptions()
	if *flagShort {
		o.Clients = 2
		o.OpsPerClient = 20
		o.Steps = 3
	}
	for seed := *flagSeed; seed < *flagSeed+*flagSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res, err := RunScenario(t.TempDir(), seed, o)
			if err != nil {
				t.Fatalf("scenario failed: %v\nrepro: %s", err, ReproLine(seed))
			}
			if res.Check.TimedOut {
				t.Fatalf("checker timed out after %v (%d ops)\nrepro: %s",
					res.CheckDuration, res.Ops, ReproLine(seed))
			}
			if !res.Check.Ok {
				t.Fatalf("history NOT linearizable (key %q, %d ops visited %d states)\nrepro: %s",
					res.Check.Key, res.Check.Ops, res.Check.Visited, ReproLine(seed))
			}
			t.Logf("ops=%d ambiguous=%d faultDrops=%d converge=%v check=%v plan=%v",
				res.Ops, res.Ambiguous, res.FaultDrops, res.Converge, res.CheckDuration, res.Plan)
		})
	}
}
