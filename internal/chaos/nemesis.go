package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// StepKind names one nemesis fault.
type StepKind string

// Nemesis step kinds.
const (
	// StepPartitionHalves splits the cluster into two halves, the minority
	// containing Target.
	StepPartitionHalves StepKind = "partition-halves"
	// StepIsolate cuts Target off from everyone, both directions.
	StepIsolate StepKind = "isolate"
	// StepOneWay cuts only the Target→To direction (asymmetric partition).
	StepOneWay StepKind = "one-way"
	// StepLoss drops each message with probability P.
	StepLoss StepKind = "loss"
	// StepDup duplicates each message with probability P.
	StepDup StepKind = "dup"
	// StepDelay holds each message for Delay with probability P.
	StepDelay StepKind = "delay"
	// StepFsyncStall adds Delay to every WAL fsync on every replica.
	StepFsyncStall StepKind = "fsync-stall"
	// StepCrashRestart kills Target (WAL aborted, no sync), waits Hold,
	// then reboots it from its data directory.
	StepCrashRestart StepKind = "crash-restart"
)

// Step is one nemesis action: inject the fault, hold it, heal, rest.
type Step struct {
	Kind   StepKind
	Target int
	To     int
	P      float64
	Delay  time.Duration
	Hold   time.Duration
	Rest   time.Duration
}

func (s Step) String() string {
	switch s.Kind {
	case StepOneWay:
		return fmt.Sprintf("%s(%d→%d hold=%v)", s.Kind, s.Target, s.To, s.Hold)
	case StepLoss, StepDup:
		return fmt.Sprintf("%s(p=%.2f hold=%v)", s.Kind, s.P, s.Hold)
	case StepDelay, StepFsyncStall:
		return fmt.Sprintf("%s(p=%.2f d=%v hold=%v)", s.Kind, s.P, s.Delay, s.Hold)
	default:
		return fmt.Sprintf("%s(%d hold=%v)", s.Kind, s.Target, s.Hold)
	}
}

// plan derives a nemesis schedule from rng — a pure function of the rng's
// seed. The first three steps always cover the acceptance triad
// (partition, crash-restart, message loss) when crashes are allowed;
// later steps draw from the full fault menu. scale is the base hold
// duration; holds and rests jitter around it deterministically.
func plan(rng *rand.Rand, n, steps int, scale time.Duration, canCrash bool) []Step {
	if steps <= 0 {
		return nil
	}
	menu := []StepKind{
		StepPartitionHalves, StepIsolate, StepOneWay,
		StepLoss, StepDup, StepDelay, StepFsyncStall,
	}
	if canCrash {
		menu = append(menu, StepCrashRestart)
	}
	out := make([]Step, 0, steps)
	for i := 0; i < steps; i++ {
		var kind StepKind
		switch {
		case i == 0:
			kind = StepPartitionHalves
		case i == 1 && canCrash:
			kind = StepCrashRestart
		case i == 2:
			kind = StepLoss
		default:
			kind = menu[rng.Intn(len(menu))]
		}
		s := Step{
			Kind:   kind,
			Target: rng.Intn(n),
			Hold:   scale + time.Duration(rng.Int63n(int64(scale))),
			Rest:   scale/2 + time.Duration(rng.Int63n(int64(scale))),
		}
		switch kind {
		case StepOneWay:
			s.To = (s.Target + 1 + rng.Intn(n-1)) % n
		case StepLoss:
			s.P = 0.1 + 0.3*rng.Float64()
		case StepDup:
			s.P = 0.2 + 0.4*rng.Float64()
		case StepDelay:
			s.P = 0.2 + 0.4*rng.Float64()
			s.Delay = time.Duration(1+rng.Intn(10)) * time.Millisecond
		case StepFsyncStall:
			s.Delay = time.Duration(1+rng.Intn(5)) * time.Millisecond
		}
		out = append(out, s)
	}
	return out
}

// runStep injects one step against the cluster, holds it for s.Hold,
// heals, and rests for s.Rest. Crash-restart is the one step whose heal
// can fail (recovery error); everything else heals unconditionally.
func runStep(c *cluster, f *faults, s Step) error {
	switch s.Kind {
	case StepPartitionHalves:
		minority := []int{s.Target}
		var majority []int
		for i := 0; i < c.n; i++ {
			if i != s.Target {
				majority = append(majority, i)
			}
		}
		// Keep the minority side below quorum size: with n=3 that is the
		// single Target; larger clusters peel off ⌊(n-1)/2⌋ extra members.
		for len(minority) < (c.n-1)/2 {
			minority = append(minority, majority[len(majority)-1])
			majority = majority[:len(majority)-1]
		}
		f.partition(minority, majority)
	case StepIsolate:
		f.isolate(s.Target, c.n)
	case StepOneWay:
		f.blockPair(pid(s.Target), pid(s.To))
	case StepLoss:
		f.setLoss(s.P)
	case StepDup:
		f.setDup(s.P)
	case StepDelay:
		f.setDelay(s.P, s.Delay)
	case StepFsyncStall:
		c.fsyncStall.Store(int64(s.Delay))
	case StepCrashRestart:
		c.kill(s.Target)
	}
	time.Sleep(s.Hold)
	// Heal.
	f.heal()
	c.fsyncStall.Store(0)
	if s.Kind == StepCrashRestart {
		if err := c.restart(s.Target); err != nil {
			return err
		}
	}
	time.Sleep(s.Rest)
	return nil
}
