package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is ever
	// lost, at the cost of one fsync per protocol step.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to the host, which calls Sync on a timer.
	// A crash loses at most one interval of records — all of them records
	// whose effects a peer may already have seen, so the host must size
	// the interval against its durability contract. The WAL itself owns no
	// clock (see the package comment).
	SyncInterval
	// SyncNever never fsyncs on the append path; the OS flushes at its
	// leisure. Rotation and Close still sync, so a graceful shutdown is
	// durable while a crash may lose the entire active segment.
	SyncNever
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values always/interval/never.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// ErrFailpoint is the injected crash: a write failed (possibly mid-record)
// because Options.FailpointLimit was reached. The WAL is poisoned from then
// on, exactly as if the process had died in the write.
var ErrFailpoint = errors.New("wal: injected write failure (failpoint)")

// Options configure a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Policy selects the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// FailpointLimit injects a crash for the fault-injection tests and the
	// recovery bench: when > 0, file writes fail with ErrFailpoint once the
	// WAL has written this many bytes in total, and the write that crosses
	// the limit is cut short mid-record — a torn write, as left by a real
	// crash or power loss.
	FailpointLimit int64
	// SyncHook, when set, runs outside the WAL lock immediately before each
	// group-commit fsync. Tests use it to stall or count syncs; production
	// code leaves it nil.
	SyncHook func()
}

// OpenInfo reports what Open found on disk.
type OpenInfo struct {
	// TornTail is true when the tail of the log held a short or corrupt
	// record (crash mid-write); the tail was truncated at the last valid
	// record and appends continue from there.
	TornTail bool
	// NextIndex is the index the next appended record will get.
	NextIndex uint64
}

// ReplayInfo reports what a Replay pass delivered.
type ReplayInfo struct {
	// Records is the number of valid records delivered to the callback.
	Records int
	// TornTail is true when the replay stopped at a short or corrupt
	// record at the tail of the last segment.
	TornTail bool
}

// Stats is the WAL's size surface, exposed through the replicas' INFO
// command.
type Stats struct {
	Segments  int
	Bytes     int64
	NextIndex uint64
	// Syncs counts group-commit fsyncs of the active segment. With many
	// concurrent committers it grows slower than the record count — that
	// ratio (fsyncs/op) is the F4b group-commit metric.
	Syncs uint64
}

// WAL is a segmented append-only log. The first record has index 1; indexes
// are assigned by Append and are contiguous. All methods are safe for
// concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // active segment
	size    int64    // active segment size in bytes
	next    uint64   // index of the next record to append
	segs    []segmentInfo
	written int64 // total bytes written, for the failpoint
	failed  error // sticky write error; the WAL is poisoned once set
	closed  bool

	// Group commit: one committer at a time becomes the sync leader, drops
	// the lock, fsyncs, and publishes the result; everyone else waits on
	// sc. durable is the highest index known to be on stable storage.
	durable uint64
	syncing bool
	sc      *sync.Cond
	syncs   uint64 // successful fsyncs of the active segment
}

// Open opens (or creates) the log in dir. A torn tail left by a crash
// mid-write is truncated away so appends continue after the last valid
// record; OpenInfo reports that it happened.
func Open(dir string, opts Options) (*WAL, OpenInfo, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, OpenInfo{}, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, next: 1}
	w.sc = sync.NewCond(&w.mu)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, OpenInfo{}, err
	}
	w.segs = segs

	var info OpenInfo
	// Walk the segments from the back: the last one holding a valid header
	// becomes the active segment; a segment too torn to even parse its
	// header can hold no records and is removed.
	for len(w.segs) > 0 {
		last := w.segs[len(w.segs)-1]
		torn, err := w.adoptSegment(last)
		if err == nil {
			info.TornTail = info.TornTail || torn
			break
		}
		if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			return nil, OpenInfo{}, err
		}
		if rmErr := os.Remove(last.path); rmErr != nil {
			return nil, OpenInfo{}, fmt.Errorf("wal: drop torn segment: %w", rmErr)
		}
		w.segs = w.segs[:len(w.segs)-1]
		info.TornTail = true
	}
	if len(w.segs) == 0 {
		if err := w.newSegmentLocked(w.next); err != nil {
			return nil, OpenInfo{}, err
		}
	}
	info.NextIndex = w.next
	// Everything recovered from disk predates this process; treat it as
	// durable so the first Commit only pays for records appended since.
	w.durable = w.next - 1
	return w, info, nil
}

// adoptSegment scans seg, truncates any torn tail, and makes it the active
// segment. It reports whether a torn tail was truncated. An unreadable
// header returns ErrTorn/ErrCorrupt so Open can discard the segment.
func (w *WAL) adoptSegment(seg segmentInfo) (torn bool, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	first, err := parseSegmentHeader(data)
	if err != nil {
		return false, err
	}
	if first != seg.first {
		return false, ErrCorrupt
	}
	valid := int64(segmentHeaderSize)
	next := first
	rest := data[segmentHeaderSize:]
	for len(rest) > 0 {
		idx, _, n, err := DecodeRecord(rest)
		if err != nil {
			torn = true
			break
		}
		next = idx + 1
		valid += int64(n)
		rest = rest[n:]
	}
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	if torn {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return false, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return false, fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.size = valid
	if next > w.next {
		w.next = next
	}
	return torn, nil
}

// Append adds one record and returns its index. Under SyncAlways the record
// is on stable storage when Append returns — via the group-commit path, so
// concurrent Append callers share one fsync; the other policies defer
// durability to Sync (host-driven) or the OS.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	idx, err := w.appendLocked(payload)
	if err != nil {
		return 0, err
	}
	if w.opts.Policy == SyncAlways {
		if err := w.commitLocked(idx); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// AppendBuffered adds one record without waiting for durability, under any
// policy. The caller must pass the returned index to Commit before acting
// on the record's durability (the persist-before-flush invariant); hosts
// that batch — the replica outbox — commit once for many buffered appends.
func (w *WAL) AppendBuffered(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(payload)
}

// appendLocked writes one record to the active segment without syncing.
func (w *WAL) appendLocked(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	if err := w.usableLocked(); err != nil {
		return 0, err
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	idx := w.next
	if err := w.writeLocked(EncodeRecord(idx, payload)); err != nil {
		return 0, err
	}
	w.next = idx + 1
	return idx, nil
}

// Commit blocks until every record with index ≤ index is on stable storage.
// Concurrent committers elect a leader: the first one in fsyncs once for
// everything written so far while the rest wait on the result — one
// fdatasync amortized over the whole group. Returns immediately when the
// range is already durable.
func (w *WAL) Commit(index uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.usableLocked(); err != nil {
		return err
	}
	return w.commitLocked(index)
}

// commitLocked is the group-commit core. It may drop and retake w.mu (the
// leader fsyncs outside the lock); callers must re-validate any cached
// state afterwards.
func (w *WAL) commitLocked(index uint64) error {
	for {
		if w.failed != nil {
			return w.failed
		}
		if w.closed {
			return fmt.Errorf("wal: closed")
		}
		if w.durable >= index {
			return nil
		}
		if w.syncing {
			// A leader is in flight; its sync may or may not cover index
			// (records appended after it captured its target miss the
			// window). The loop re-checks after the broadcast.
			w.sc.Wait()
			continue
		}
		// Become the sync leader: everything written so far rides along.
		w.syncing = true
		target := w.next - 1
		f := w.f
		hook := w.opts.SyncHook
		w.mu.Unlock()
		if hook != nil {
			hook()
		}
		err := f.Sync()
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.failed = err
		} else {
			w.syncs++
			if target > w.durable {
				w.durable = target
			}
		}
		w.sc.Broadcast()
	}
}

// Sync flushes the active segment to stable storage. Hosts using
// SyncInterval call this from their timer. It rides the group-commit path,
// so a Sync that races appenders' commits costs no extra fsync.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.usableLocked(); err != nil {
		return err
	}
	return w.commitLocked(w.next - 1)
}

// NextIndex returns the index the next appended record will get. Snapshots
// record it as their replay cut-off.
func (w *WAL) NextIndex() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.next
}

// Stats reports segment count and on-disk bytes.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Stats{Segments: len(w.segs), NextIndex: w.next, Syncs: w.syncs}
	for _, seg := range w.segs {
		if fi, err := os.Stat(seg.path); err == nil {
			s.Bytes += fi.Size()
		}
	}
	return s
}

// TruncateBefore removes segments every record of which has index < index
// (obsolete once a snapshot covers them). The active segment is never
// removed. It returns the number of segments removed.
func (w *WAL) TruncateBefore(index uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	removed := 0
	for len(w.segs) > 1 && w.segs[1].first <= index {
		if err := os.Remove(w.segs[0].path); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return removed, nil
}

// Replay streams every record with index ≥ from, in index order, to fn. A
// short or corrupt record at the tail of the LAST segment stops the replay
// cleanly (ReplayInfo.TornTail); the same damage in a sealed segment is
// data loss beyond the tail and returns an error. A non-nil error from fn
// aborts the replay.
func (w *WAL) Replay(from uint64, fn func(index uint64, payload []byte) error) (ReplayInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var info ReplayInfo
	for i, seg := range w.segs {
		last := i == len(w.segs)-1
		if !last && w.segs[i+1].first <= from {
			continue // the whole segment is below the replay floor
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return info, fmt.Errorf("wal: replay: %w", err)
		}
		if _, err := parseSegmentHeader(data); err != nil {
			if last {
				info.TornTail = true
				return info, nil
			}
			return info, fmt.Errorf("wal: replay: segment %s: %w", seg.path, err)
		}
		rest := data[segmentHeaderSize:]
		for len(rest) > 0 {
			idx, payload, n, err := DecodeRecord(rest)
			if err != nil {
				if last {
					info.TornTail = true
					return info, nil
				}
				return info, fmt.Errorf("wal: replay: segment %s: %w", seg.path, err)
			}
			if idx >= from {
				if err := fn(idx, payload); err != nil {
					return info, err
				}
				info.Records++
			}
			rest = rest[n:]
		}
	}
	return info, nil
}

// Close syncs and closes the active segment. Close always syncs — graceful
// shutdown must be durable under every policy — so a SIGTERM'd replica
// recovers without relying on the torn-tail path.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.awaitSyncLocked()
	w.closed = true
	w.sc.Broadcast() // release committers queued behind the closed flag
	if w.f == nil {
		return nil
	}
	var err error
	if w.failed == nil {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Abort closes the WAL without the final sync — the crash-simulation twin
// of Close, for harnesses that restart a replica in-process through its
// real recovery path. Buffered records that were never committed are
// abandoned exactly as a power cut would abandon them (modulo OS page
// cache: an in-process abort cannot unwrite bytes the kernel already has;
// torn-write injection is FailpointLimit's job). In-flight group commits
// finish first — their records were durable before the "crash".
func (w *WAL) Abort() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.awaitSyncLocked()
	w.closed = true
	w.sc.Broadcast() // release committers queued behind the closed flag
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// usableLocked rejects operations on a closed or poisoned WAL.
func (w *WAL) usableLocked() error {
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	if w.failed != nil {
		return w.failed
	}
	return nil
}

// rotateLocked seals the active segment (sync + close) and starts a new one
// at the current next index. It first waits out any in-flight group-commit
// leader, which fsyncs the captured file handle outside the lock.
func (w *WAL) rotateLocked() error {
	w.awaitSyncLocked()
	if err := w.usableLocked(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.failed = err
		return err
	}
	w.syncs++
	w.durable = w.next - 1 // the sealed segment holds everything written
	if err := w.f.Close(); err != nil {
		w.failed = err
		return err
	}
	w.f = nil
	return w.newSegmentLocked(w.next)
}

// awaitSyncLocked blocks until no group-commit leader is mid-fsync. Callers
// that close or replace the active file handle (rotation, Close) must wait
// it out first.
func (w *WAL) awaitSyncLocked() {
	for w.syncing {
		w.sc.Wait()
	}
}

// newSegmentLocked creates and adopts a fresh segment starting at first.
func (w *WAL) newSegmentLocked(first uint64) error {
	path := filepath.Join(w.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	w.f = f
	w.size = 0
	w.segs = append(w.segs, segmentInfo{path: path, first: first})
	if err := w.writeLocked(encodeSegmentHeader(first)); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		w.failed = err
		return err
	}
	return nil
}

// writeLocked writes b to the active segment, honouring the injected
// failpoint: when the limit is crossed the write is cut short mid-buffer —
// a torn write — and the WAL is poisoned.
func (w *WAL) writeLocked(b []byte) error {
	if w.opts.FailpointLimit > 0 {
		remain := w.opts.FailpointLimit - w.written
		if remain <= 0 {
			w.failed = ErrFailpoint
			return w.failed
		}
		if int64(len(b)) > remain {
			n, _ := w.f.Write(b[:remain])
			w.written += int64(n)
			w.size += int64(n)
			w.f.Sync() // make the torn bytes visible, as a crash would
			w.failed = ErrFailpoint
			return w.failed
		}
	}
	n, err := w.f.Write(b)
	w.written += int64(n)
	w.size += int64(n)
	if err != nil {
		w.failed = err
		return err
	}
	return nil
}
