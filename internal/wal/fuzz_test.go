package wal_test

import (
	"bytes"
	"testing"

	"repro/internal/wal"
)

// FuzzRecordCodec drives the record codec from both directions: arbitrary
// bytes must never panic or yield a record that fails re-encoding, and
// every (index, payload) pair must round-trip exactly.
func FuzzRecordCodec(f *testing.F) {
	f.Add(uint64(1), []byte("hello"))
	f.Add(uint64(0), []byte{})
	f.Add(^uint64(0), []byte{0xFF, 0x00, 0xFF})
	f.Add(uint64(42), bytes.Repeat([]byte{0xAA}, 300))
	f.Fuzz(func(t *testing.T, index uint64, payload []byte) {
		// Encode → decode must round-trip.
		frame := wal.EncodeRecord(index, payload)
		gotIdx, gotPayload, n, err := wal.DecodeRecord(frame)
		if err != nil {
			t.Fatalf("decode of valid frame: %v", err)
		}
		if n != len(frame) || gotIdx != index || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip mismatch: n=%d idx=%d", n, gotIdx)
		}
		// Decoding the payload as if it were a frame must not panic, and
		// any successful decode must itself re-encode consistently.
		if idx2, p2, n2, err := wal.DecodeRecord(payload); err == nil {
			if n2 <= 0 || n2 > len(payload) {
				t.Fatalf("decode consumed %d of %d bytes", n2, len(payload))
			}
			reframed := wal.EncodeRecord(idx2, p2)
			if !bytes.Equal(reframed, payload[:n2]) {
				t.Fatal("accepted frame does not re-encode to itself")
			}
		}
		// A single flipped bit anywhere in the frame must be rejected.
		if len(frame) > 0 {
			pos := int(index % uint64(len(frame)))
			corrupted := append([]byte(nil), frame...)
			corrupted[pos] ^= 1 << (uint(index) % 8)
			if i3, p3, _, err := wal.DecodeRecord(corrupted); err == nil {
				if i3 == index && bytes.Equal(p3, payload) {
					t.Fatal("bit flip not detected")
				}
			}
		}
	})
}
