package wal_test

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/wal"
)

// segmentFiles lists the on-disk segment files in name (= index) order.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		t.Fatal("no segment files")
	}
	return matches
}

// fillRecords appends n records of the given payload size and returns the
// payload used.
func fillRecords(t *testing.T, w *wal.WAL, n, size int) []byte {
	t.Helper()
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	return payload
}

func TestCrashFailpointMidRecordLeavesTornTail(t *testing.T) {
	dir := t.TempDir()
	// Segment header is 16 bytes; each 10-byte payload frames to 26 bytes.
	// A limit of 160 admits the header and 5 whole records (146 bytes) and
	// cuts the 6th record mid-frame.
	w, _, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways, FailpointLimit: 160})
	if err != nil {
		t.Fatal(err)
	}
	appended := 0
	for i := 0; i < 10; i++ {
		if _, err := w.Append(make([]byte, 10)); err != nil {
			if !errors.Is(err, wal.ErrFailpoint) {
				t.Fatalf("append %d: %v", i, err)
			}
			break
		}
		appended++
	}
	if appended != 5 {
		t.Fatalf("failpoint admitted %d records, want 5", appended)
	}
	// The WAL is poisoned: no further appends.
	if _, err := w.Append([]byte("x")); !errors.Is(err, wal.ErrFailpoint) {
		t.Fatalf("poisoned append err = %v", err)
	}
	w.Close()

	// Reopen: the torn 6th record is truncated away, the 5 acknowledged
	// records survive, and the log accepts appends again.
	w2, info, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if info.NextIndex != uint64(appended+1) {
		t.Fatalf("next index = %d, want %d", info.NextIndex, appended+1)
	}
	if _, _, rinfo := collect(t, w2, 0); rinfo.Records != appended {
		t.Fatalf("recovered %d records, want %d", rinfo.Records, appended)
	}
	if idx, err := w2.Append([]byte("resumed")); err != nil || idx != uint64(appended+1) {
		t.Fatalf("append after recovery: idx=%d err=%v", idx, err)
	}
}

func TestCrashTruncatedTailBytes(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillRecords(t, w, 5, 32)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Shear a few bytes off the tail, as a crash mid-write would.
	seg := segmentFiles(t, dir)[0]
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	w2, info, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if _, _, rinfo := collect(t, w2, 0); rinfo.Records != 4 {
		t.Fatalf("recovered %d records, want 4", rinfo.Records)
	}
}

func TestCrashBitFlippedCRCRejectsTailRecord(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillRecords(t, w, 5, 32)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit inside the last record.
	seg := segmentFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, info, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !info.TornTail {
		t.Fatal("corrupt tail record not reported")
	}
	if _, _, rinfo := collect(t, w2, 0); rinfo.Records != 4 {
		t.Fatalf("recovered %d records, want 4 (corrupt one rejected)", rinfo.Records)
	}
}

func TestCrashCorruptionInSealedSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	fillRecords(t, w, 10, 16)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	// Damage the FIRST (sealed) segment: this is not a torn tail, it is
	// data loss in the middle of the log, and replay must say so.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Replay(0, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("corruption in a sealed segment replayed silently")
	}
}

func TestCrashRecoveredLogStaysUsableAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{FailpointLimit: 200})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := w.Append(make([]byte, 24)); err != nil {
			break
		}
	}
	w.Close()

	// First restart: torn tail truncated.
	w2, info, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail {
		t.Fatal("torn tail not reported on first restart")
	}
	survivors := int(info.NextIndex) - 1
	fillRecords(t, w2, 3, 24)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: clean, all records (old survivors + new) replay.
	w3, info, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if info.TornTail {
		t.Fatal("second restart reported a torn tail after clean close")
	}
	if _, _, rinfo := collect(t, w3, 0); rinfo.Records != survivors+3 {
		t.Fatalf("replayed %d records, want %d", rinfo.Records, survivors+3)
	}
}
