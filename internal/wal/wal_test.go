package wal_test

import (
	"fmt"
	"testing"

	"repro/internal/wal"
)

// collect replays the log from `from` into a map and a flat index list.
func collect(t *testing.T, w *wal.WAL, from uint64) (map[uint64]string, []uint64, wal.ReplayInfo) {
	t.Helper()
	got := make(map[uint64]string)
	var order []uint64
	info, err := w.Replay(from, func(idx uint64, payload []byte) error {
		got[idx] = string(payload)
		order = append(order, idx)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, order, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, info, err := wal.Open(dir, wal.Options{Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if info.TornTail || info.NextIndex != 1 {
		t.Fatalf("fresh open info = %+v", info)
	}
	const records = 20
	for i := 0; i < records; i++ {
		idx, err := w.Append([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i+1) {
			t.Fatalf("append %d got index %d", i, idx)
		}
	}
	got, order, rinfo := collect(t, w, 0)
	if rinfo.TornTail || rinfo.Records != records {
		t.Fatalf("replay info = %+v", rinfo)
	}
	for i := 0; i < records; i++ {
		if got[uint64(i+1)] != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d = %q", i+1, got[uint64(i+1)])
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("replay out of order: %v", order)
		}
	}
	// Replay from the middle.
	_, order, _ = collect(t, w, 11)
	if len(order) != 10 || order[0] != 11 {
		t.Fatalf("partial replay = %v", order)
	}
}

func TestReopenContinuesIndices(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, info, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.TornTail {
		t.Fatal("clean close reported a torn tail")
	}
	if info.NextIndex != 6 {
		t.Fatalf("next index after reopen = %d, want 6", info.NextIndex)
	}
	if idx, err := w2.Append([]byte("y")); err != nil || idx != 6 {
		t.Fatalf("append after reopen: idx=%d err=%v", idx, err)
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates after roughly two appends.
	w, _, err := wal.Open(dir, wal.Options{SegmentBytes: 64, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const records = 30
	for i := 0; i < records; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if _, _, info := collect(t, w, 0); info.Records != records {
		t.Fatalf("replayed %d records, want %d", info.Records, records)
	}

	// Truncating behind index 20 must keep every record ≥ 20 replayable.
	removed, err := w.TruncateBefore(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing truncated")
	}
	got, _, _ := collect(t, w, 20)
	for i := uint64(20); i <= records; i++ {
		if _, ok := got[i]; !ok {
			t.Fatalf("record %d lost by truncation", i)
		}
	}
	// The log still appends and the indices continue.
	if idx, err := w.Append([]byte("after-truncate")); err != nil || idx != records+1 {
		t.Fatalf("append after truncate: idx=%d err=%v", idx, err)
	}
}

func TestReplayIsRepeatable(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 12; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	first, orderA, _ := collect(t, w, 0)
	second, orderB, _ := collect(t, w, 0)
	if len(first) != len(second) || len(orderA) != len(orderB) {
		t.Fatalf("replay not repeatable: %d vs %d records", len(orderA), len(orderB))
	}
	for idx, v := range first {
		if second[idx] != v {
			t.Fatalf("record %d differs across replays", idx)
		}
	}
}

func TestSyncPolicyParse(t *testing.T) {
	for _, s := range []string{"always", "interval", "never"} {
		p, err := wal.ParseSyncPolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Fatalf("round trip %q -> %q", s, p.String())
		}
	}
	if _, err := wal.ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	w, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(make([]byte, wal.MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}
