package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitCoalesces proves the group-commit win: K goroutines
// appending with SyncAlways share fsyncs instead of paying one each. A
// SyncHook that stalls each fsync widens the window so followers pile up
// behind the leader.
func TestGroupCommitCoalesces(t *testing.T) {
	const k = 16
	opts := Options{Policy: SyncAlways, SyncHook: func() { time.Sleep(2 * time.Millisecond) }}
	w, _, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var wg sync.WaitGroup
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := w.Stats()
	if st.NextIndex != k+1 {
		t.Fatalf("NextIndex = %d, want %d", st.NextIndex, k+1)
	}
	if st.Syncs >= k {
		t.Fatalf("Syncs = %d for %d concurrent appends; group commit did not coalesce", st.Syncs, k)
	}
	if st.Syncs == 0 {
		t.Fatal("Syncs = 0; SyncAlways appends must fsync")
	}
	t.Logf("%d appends, %d fsyncs", k, st.Syncs)
}

// TestAppendBufferedCommit checks the two-phase path: AppendBuffered makes
// no durability promise until Commit returns, and one Commit covers every
// record appended before it.
func TestAppendBufferedCommit(t *testing.T) {
	w, _, err := Open(t.TempDir(), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var last uint64
	for i := 0; i < 10; i++ {
		idx, err := w.AppendBuffered([]byte("buffered"))
		if err != nil {
			t.Fatal(err)
		}
		last = idx
	}
	if got := w.Stats().Syncs; got != 0 {
		t.Fatalf("Syncs = %d before Commit, want 0", got)
	}
	if err := w.Commit(last); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Syncs; got != 1 {
		t.Fatalf("Syncs = %d after one Commit over 10 records, want 1", got)
	}
	// Committing an already-durable prefix is free.
	if err := w.Commit(last - 5); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Syncs; got != 1 {
		t.Fatalf("Syncs = %d after re-commit of durable prefix, want 1", got)
	}
}

// TestCommitDuringRotation exercises the leader/rotation interlock: a
// rotation must wait out an in-flight group fsync before closing the file
// handle the leader captured.
func TestCommitDuringRotation(t *testing.T) {
	gate := make(chan struct{})
	var hooked atomic.Bool
	opts := Options{
		Policy:       SyncAlways,
		SegmentBytes: 256, // rotate quickly
		SyncHook: func() {
			if hooked.CompareAndSwap(false, true) {
				<-gate // stall only the first leader
			}
		},
	}
	w, _, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	done := make(chan error, 1)
	go func() {
		_, err := w.Append(make([]byte, 64)) // leader: stalls in the hook
		done <- err
	}()
	for !hooked.Load() {
		time.Sleep(time.Millisecond)
	}
	// Force rotations while the leader is mid-fsync.
	rotated := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 8 && err == nil; i++ {
			_, err = w.AppendBuffered(make([]byte, 128))
		}
		rotated <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("stalled append: %v", err)
	}
	if err := <-rotated; err != nil {
		t.Fatalf("rotating appends: %v", err)
	}
	if got := w.Stats().Segments; got < 2 {
		t.Fatalf("Segments = %d, want rotation to have happened", got)
	}
	// Everything must replay.
	n := 0
	if _, err := w.Replay(1, func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("replayed %d records, want 9", n)
	}
}

// TestCommitAfterClose: committers queued behind Close get a clean error,
// not a hang or a panic.
func TestCommitAfterClose(t *testing.T) {
	w, _, err := Open(t.TempDir(), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBuffered([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(1); err == nil {
		t.Fatal("Commit after Close returned nil, want error")
	}
}

// BenchmarkWALAppendGroup measures appends/fsync amortization: b.N appends
// from parallel goroutines under SyncAlways. Compare ns/op against the
// sequential baseline to see the group-commit effect.
func BenchmarkWALAppendGroup(b *testing.B) {
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			w, _, err := Open(b.TempDir(), Options{Policy: SyncAlways})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			payload := make([]byte, 128)
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := w.Append(payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := w.Stats()
			if b.N > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(b.N), "fsyncs/op")
			}
		})
	}
}
