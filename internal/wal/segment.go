package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout: a 16-byte header followed by a run of records.
//
//	offset 0  8 bytes  magic "WALSEG01"
//	offset 8  u64      index of the first record this segment may hold
//
// Segments are named wal-<first index, 16 hex digits>.seg so that the
// lexicographic order of names is the index order.
const (
	segmentMagic      = "WALSEG01"
	segmentHeaderSize = 16
	segmentSuffix     = ".seg"
	segmentPrefix     = "wal-"
)

// segmentInfo is one on-disk segment.
type segmentInfo struct {
	path  string
	first uint64 // index of the first record the segment may hold
}

// segmentName renders the canonical file name for a segment starting at
// first.
func segmentName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, first, segmentSuffix)
}

// parseSegmentName extracts the first index from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	first, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return first, true
}

// listSegments returns the directory's segments sorted by first index.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	segs := make([]segmentInfo, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{path: filepath.Join(dir, e.Name()), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// encodeSegmentHeader renders a segment header for a segment starting at
// first.
func encodeSegmentHeader(first uint64) []byte {
	buf := make([]byte, segmentHeaderSize)
	copy(buf, segmentMagic)
	binary.LittleEndian.PutUint64(buf[8:], first)
	return buf
}

// parseSegmentHeader validates b's leading segment header and returns its
// first index. A short or mismatched header reports ErrTorn/ErrCorrupt like
// a record would.
func parseSegmentHeader(b []byte) (uint64, error) {
	if len(b) < segmentHeaderSize {
		return 0, ErrTorn
	}
	if string(b[:8]) != segmentMagic {
		return 0, ErrCorrupt
	}
	return binary.LittleEndian.Uint64(b[8:16]), nil
}

// syncDir fsyncs a directory, making renames and creates in it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
