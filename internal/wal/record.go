// Package wal implements the segmented, append-only write-ahead log behind
// the durable SMR replica (internal/smr) and the durable single-shot host
// (cmd/twostep). The paper's recovery procedure (Lemmas 3 and 7) reasons
// about the state a process reports after a failure — its current ballot,
// its last vote, its decision. A crash-RECOVERY deployment of the protocol
// is sound only if that state survives the crash, which is exactly what
// this package provides: every record is framed with a CRC32C checksum,
// records are appended strictly before the messages that reflect them are
// sent, and the reader stops cleanly at the first short or corrupt record
// (a torn tail from a crash mid-write) instead of propagating garbage into
// the protocol.
//
// The package is listed among the protolint determinism packages: it owns
// no clock and spawns no goroutines. Time-based fsync policies (SyncInterval)
// are driven by the host, which calls Sync on its own timer.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Frame layout of one record, little-endian:
//
//	offset 0  u32  length of the body (index + payload) = 8 + len(payload)
//	offset 4  u32  CRC32C (Castagnoli) over the body
//	offset 8  u64  record index (monotonic across segments)
//	offset 16      payload
const (
	frameHeaderSize = 16 // length + crc + index
	frameBodyExtra  = 8  // index bytes counted in the length field
)

// MaxRecordBytes bounds a single record's payload. A corrupt length field
// would otherwise make the reader allocate and skip arbitrarily far.
const MaxRecordBytes = 16 << 20

// castagnoli is the CRC32C table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record codec errors, matchable with errors.Is.
var (
	// ErrTorn marks a record cut short by a crash mid-write: the frame
	// claims more bytes than the file holds. Recovery truncates here.
	ErrTorn = errors.New("wal: torn record")
	// ErrCorrupt marks a record whose checksum or length field is invalid.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// EncodeRecord frames one record. The returned buffer is written to the
// segment with a single Write call, so a crash leaves at most one torn
// record at the tail.
func EncodeRecord(index uint64, payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(frameBodyExtra+len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], index)
	copy(buf[frameHeaderSize:], payload)
	crc := crc32.Checksum(buf[8:], castagnoli)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

// DecodeRecord parses the first record in b. It returns the record's index
// and payload and the number of bytes consumed. Errors distinguish a tail
// cut short (ErrTorn: b ends before the frame does) from data that is
// present but invalid (ErrCorrupt: impossible length or checksum mismatch);
// both stop a replay, but only the former is expected after a crash.
func DecodeRecord(b []byte) (index uint64, payload []byte, n int, err error) {
	if len(b) < frameHeaderSize {
		return 0, nil, 0, ErrTorn
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length < frameBodyExtra || length > MaxRecordBytes+frameBodyExtra {
		return 0, nil, 0, ErrCorrupt
	}
	total := 8 + int(length) // length + crc fields, then the body
	if len(b) < total {
		return 0, nil, 0, ErrTorn
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	body := b[8:total]
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, 0, ErrCorrupt
	}
	index = binary.LittleEndian.Uint64(body[0:8])
	payload = body[8:]
	return index, payload, total, nil
}
