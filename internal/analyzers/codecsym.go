package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// CodecSym cross-checks hand-written encode/decode pairs: the decoder must
// read the same fixed-width fields, the same number of times, with the same
// byte order as the encoder writes — and a hand-spliced JSON encoder must
// emit exactly the keys its struct's json tags declare, so the reflective
// json.Unmarshal on the decode side sees every field. Wire drift between the
// two sides of a codec is the single most likely silent bug when a format
// grows a field (e.g. group-tagged WAL records for the sharded multi-group
// runtime), because each side round-trips cleanly against itself.
//
// Pairing is by name: a function with binary.<Endian>.PutUintN/AppendUintN
// calls is an encoder, one with binary.<Endian>.UintN calls is a decoder,
// and the two are compared when their names agree after stripping a codec
// verb prefix (Encode/Decode, Parse, Read/Write, Save/Load, Marshal/
// Unmarshal, Append). The comparison counts calls per width — not offsets —
// so an encoder that fills the checksum field out of order (wal.EncodeRecord)
// still matches its in-order decoder.
var CodecSym = &Analyzer{
	Name: "codecsym",
	Doc: "decode must read the same fixed-width fields, count and byte order " +
		"as encode writes; JSON splices must emit exactly the struct's json tags",
	Run: runCodecSym,
}

// codecEndpoint is one side of a binary codec: the per-width call counts of
// one function's fixed-width reads or writes.
type codecEndpoint struct {
	decl    *ast.FuncDecl
	writes  map[string]int // width ("16"/"32"/"64") -> PutUintN/AppendUintN calls
	reads   map[string]int // width -> UintN calls
	endians map[string]bool
}

func runCodecSym(pass *Pass) error {
	byKey := map[string][]*codecEndpoint{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkJSONSplice(pass, fd)
			ep := collectBinaryCalls(pass, fd)
			if len(ep.writes) == 0 && len(ep.reads) == 0 {
				continue
			}
			if len(ep.writes) > 0 && len(ep.reads) > 0 {
				continue // round-trip helper: both sides in one body
			}
			key := codecPairKey(fd.Name.Name)
			byKey[key] = append(byKey[key], ep)
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var enc, dec *codecEndpoint
		ambiguous := false
		for _, ep := range byKey[k] {
			if len(ep.writes) > 0 {
				if enc != nil {
					ambiguous = true
				}
				enc = ep
			} else {
				if dec != nil {
					ambiguous = true
				}
				dec = ep
			}
		}
		if ambiguous || enc == nil || dec == nil {
			continue // unpaired or ambiguous names: nothing to cross-check
		}
		comparePair(pass, enc, dec)
	}
	return nil
}

// comparePair reports per-width count mismatches and byte-order disagreement
// between an encoder and its decoder.
func comparePair(pass *Pass, enc, dec *codecEndpoint) {
	encName, decName := enc.decl.Name.Name, dec.decl.Name.Name
	for _, width := range []string{"16", "32", "64"} {
		w, r := enc.writes[width], dec.reads[width]
		if w != r {
			pass.Reportf(dec.decl.Pos(),
				"codec pair %s/%s: encoder writes %d uint%s field(s) but decoder reads %d — the wire formats have drifted",
				encName, decName, w, width, r)
		}
	}
	for e := range enc.endians {
		if !dec.endians[e] && len(dec.endians) > 0 {
			pass.Reportf(dec.decl.Pos(),
				"codec pair %s/%s: encoder uses binary.%s but decoder does not",
				encName, decName, e)
		}
	}
}

// codecVerbs are the name prefixes stripped to pair an encoder with its
// decoder (encodeFoo/decodeFoo, writeFrame/readFrame, Save/read, ...).
var codecVerbs = []string{
	"encode", "decode", "parse", "unmarshal", "marshal",
	"write", "read", "save", "load", "append", "put", "get",
}

// codecPairKey normalizes a function name to its pairing key: lowercase with
// one leading codec verb removed.
func codecPairKey(name string) string {
	n := strings.ToLower(name)
	for _, v := range codecVerbs {
		if strings.HasPrefix(n, v) {
			return strings.TrimPrefix(n, v)
		}
	}
	return n
}

// collectBinaryCalls tallies fd's encoding/binary fixed-width calls.
func collectBinaryCalls(pass *Pass, fd *ast.FuncDecl) *codecEndpoint {
	ep := &codecEndpoint{
		decl:    fd,
		writes:  map[string]int{},
		reads:   map[string]int{},
		endians: map[string]bool{},
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		endian, ok := binaryEndian(pass, sel.X)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch {
		case strings.HasPrefix(name, "PutUint"):
			ep.writes[strings.TrimPrefix(name, "PutUint")]++
			ep.endians[endian] = true
		case strings.HasPrefix(name, "AppendUint"):
			ep.writes[strings.TrimPrefix(name, "AppendUint")]++
			ep.endians[endian] = true
		case strings.HasPrefix(name, "Uint"):
			ep.reads[strings.TrimPrefix(name, "Uint")]++
			ep.endians[endian] = true
		}
		return true
	})
	return ep
}

// binaryEndian reports whether e is encoding/binary's LittleEndian or
// BigEndian byte-order value, and which.
func binaryEndian(pass *Pass, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "LittleEndian" && sel.Sel.Name != "BigEndian" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "encoding/binary" {
		return "", false
	}
	return sel.Sel.Name, true
}

// spliceMethodRE names the methods subject to the JSON-splice check: the
// repository's hand-splice entry points (Command.appendJSON,
// SlotMessage.AppendBody/MarshalJSON and their future siblings).
var spliceMethodRE = regexp.MustCompile(`(?i)^(appendjson|appendbody|marshaljson)$`)

// jsonKeyRE extracts object keys from spliced string literals: `{"id":` and
// `,"subs":[` both yield their key.
var jsonKeyRE = regexp.MustCompile(`"([A-Za-z_][A-Za-z0-9_]*)":`)

// checkJSONSplice verifies a hand-spliced JSON encoder against the json tags
// of its receiver struct: every tag must be emitted by some literal in the
// body, and every key the body emits must be a declared tag. Conditional
// fields (the omitempty pattern) still appear as literals, so the check is
// purely lexical over the method body.
func checkJSONSplice(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || !spliceMethodRE.MatchString(fd.Name.Name) {
		return
	}
	tags := receiverJSONTags(pass, fd)
	if len(tags) == 0 {
		return
	}
	emitted := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		for _, m := range jsonKeyRE.FindAllStringSubmatch(lit.Value, -1) {
			emitted[m[1]] = true
		}
		return true
	})
	if len(emitted) == 0 {
		return // delegating method (e.g. MarshalJSON calling AppendBody)
	}
	for _, key := range sortedKeys(emitted) {
		if !tags[key] {
			pass.Reportf(fd.Pos(),
				"%s splices JSON key %q that is not a json tag of %s — the reflective decoder will drop it",
				fd.Name.Name, key, receiverTypeName(fd))
		}
	}
	for _, tag := range sortedKeys(tags) {
		if !emitted[tag] {
			pass.Reportf(fd.Pos(),
				"%s never splices json tag %q of %s — the field is silently lost on the wire",
				fd.Name.Name, tag, receiverTypeName(fd))
		}
	}
}

// receiverJSONTags returns the json tag names (or field names, for untagged
// exported fields) of fd's receiver struct; nil when the receiver is not a
// struct or carries no json tags at all.
func receiverJSONTags(pass *Pass, fd *ast.FuncDecl) map[string]bool {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := typeOf(pass, fd.Recv.List[0].Type)
	if t == nil {
		if tv := pass.TypesInfo.Defs[receiverIdent(fd)]; tv != nil {
			t = tv.Type()
		}
	}
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	tags := map[string]bool{}
	tagged := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		tag := jsonTagName(st.Tag(i))
		if tag == "-" {
			continue
		}
		if tag != "" {
			tagged = true
			tags[tag] = true
		} else {
			tags[f.Name()] = true
		}
	}
	if !tagged {
		return nil
	}
	return tags
}

// jsonTagName extracts the key name from a struct tag's json section.
func jsonTagName(tag string) string {
	st := reflectStructTag(tag, "json")
	if st == "" {
		return ""
	}
	if i := strings.IndexByte(st, ','); i >= 0 {
		st = st[:i]
	}
	return st
}

// reflectStructTag is reflect.StructTag.Get for the one key we need, without
// importing reflect into the analyzer.
func reflectStructTag(tag, key string) string {
	for tag != "" {
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' {
			i++
		}
		if i == 0 || i+1 >= len(tag) || tag[i] != ':' || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		tag = tag[i+1:]
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			break
		}
		value := tag[1:i]
		tag = tag[i+1:]
		if name == key {
			out := strings.ReplaceAll(value, `\"`, `"`)
			return out
		}
	}
	return ""
}

func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// receiverTypeName renders fd's receiver type for diagnostics.
func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "receiver"
}

// sortedKeys returns m's keys in sorted order (map iteration would make
// diagnostic order nondeterministic — the suite practices what it preaches).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
