package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ErrTaxonomy enforces the error-taxonomy contract around the client outcome
// sentinels (ErrRejected, ErrMaybeApplied, ErrNotFound), the transport
// backpressure sentinels (ErrQueueFull, ErrClosed, ErrOversize) and the WAL
// recovery sentinels (ErrTorn, ErrCorrupt):
//
//   - sentinels are matched with errors.Is, never == or != — every layer
//     wraps (%w) the layer below, so identity comparison silently stops
//     matching the moment a wrap is added;
//   - error text is never string-matched (strings.Contains(err.Error(), ...)
//     or err.Error() == "...") — messages are documentation, not API;
//   - the error of a persist/send hot-path call (transport Send, WAL
//     Append/Sync/Commit, storage Save) is never discarded as a bare
//     statement. A deliberate drop must be written `_ = call(...)` so the
//     decision is visible and greppable.
//
// The one legitimate home for == on a sentinel is an Is method implementing
// the errors.Is protocol itself (smr's outcomeError); those are exempt.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc: "compare sentinel errors with errors.Is (never == or string match) " +
		"and never discard persist/send hot-path errors as bare statements",
	Run: runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inIs := fd.Name.Name == "Is"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkSentinelCompare(pass, n, inIs)
				case *ast.SwitchStmt:
					checkSentinelSwitch(pass, n, inIs)
				case *ast.CallExpr:
					checkErrorTextMatch(pass, n)
				case *ast.ExprStmt:
					checkDiscardedHotPathError(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// sentinelNameRE matches the naming convention for sentinel errors.
var sentinelNameRE = regexp.MustCompile(`^Err[A-Z]`)

// isSentinelError reports whether e resolves to a package-level error
// variable following the ErrXxx naming convention — ours or the standard
// library's (io.EOF is deliberately not matched: its == comparison contract
// predates errors.Is and the Reader interface documents it).
func isSentinelError(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !sentinelNameRE.MatchString(v.Name()) {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false // local variable that happens to be named ErrSomething
	}
	return types.Implements(v.Type(), errorInterface())
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

// checkSentinelCompare flags err == ErrSentinel / err != ErrSentinel.
func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr, inIs bool) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if inIs {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if isSentinelError(pass, side) {
			pass.Reportf(b.Pos(),
				"sentinel compared with %s: wrapped errors (%%w) never match identity — use errors.Is(err, %s)",
				b.Op, exprString(side))
			return
		}
	}
	checkErrorTextCompare(pass, b)
}

// checkSentinelSwitch flags `switch err { case ErrSentinel: ... }`, which is
// identity comparison in disguise.
func checkSentinelSwitch(pass *Pass, s *ast.SwitchStmt, inIs bool) {
	if inIs || s.Tag == nil {
		return
	}
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isSentinelError(pass, e) {
				pass.Reportf(e.Pos(),
					"switch case compares sentinel %s by identity: wrapped errors never match — use a switch on errors.Is results or an if/else chain",
					exprString(e))
			}
		}
	}
}

// stringMatchFuncs are the strings-package predicates that, applied to
// err.Error(), turn an error message into load-bearing API.
var stringMatchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true,
}

// checkErrorTextMatch flags strings.Contains(err.Error(), ...) and friends.
func checkErrorTextMatch(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringMatchFuncs[sel.Sel.Name] {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if errCall := errorTextCall(pass, arg); errCall != nil {
			pass.Reportf(call.Pos(),
				"matching on err.Error() text: messages are not API and change freely — export a sentinel and use errors.Is (or errors.As for typed errors)")
			return
		}
	}
}

// checkErrorTextCompare flags err.Error() == "..." comparisons.
func checkErrorTextCompare(pass *Pass, b *ast.BinaryExpr) {
	if errorTextCall(pass, b.X) != nil || errorTextCall(pass, b.Y) != nil {
		pass.Reportf(b.Pos(),
			"comparing err.Error() text: messages are not API and change freely — export a sentinel and use errors.Is")
	}
}

// errorTextCall returns the err.Error() call inside e, if any.
func errorTextCall(pass *Pass, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return true
		}
		if t := typeOf(pass, sel.X); t != nil && types.Implements(t, errorInterface()) {
			found = call
		}
		return true
	})
	return found
}

// checkDiscardedHotPathError flags a bare statement discarding the error of
// a persist/send hot-path call. `_ = call(...)` stays legal: the explicit
// blank assignment is the repository's marker for a considered drop (the
// outbox consumer does this — Send is allowed to fail, drops are counted by
// the transport).
func checkDiscardedHotPathError(pass *Pass, s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if what := hotPathErrorCall(pass, sel); what != "" {
		pass.Reportf(s.Pos(),
			"%s error discarded: a failed persist/send must be observed (handle it, or write `_ = ...` to mark a considered drop)",
			what)
	}
}

// hotPathErrorCall classifies sel as a watched persist/send operation whose
// error return is load-bearing.
func hotPathErrorCall(pass *Pass, sel *ast.SelectorExpr) string {
	// Package functions: storage.Save is the snapshot persist entry point.
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			if fn.Name() == "Save" && strings.HasSuffix(fn.Pkg().Path(), "internal/storage") {
				return "storage.Save"
			}
		}
	}
	t := typeOf(pass, sel.X)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	switch sel.Sel.Name {
	case "Send":
		if strings.HasSuffix(path, "internal/transport") {
			return "transport " + obj.Name() + ".Send"
		}
	case "Append", "AppendBuffered", "Sync", "Commit":
		if strings.HasSuffix(path, "internal/wal") && obj.Name() == "WAL" {
			return "WAL " + sel.Sel.Name
		}
	}
	return ""
}
