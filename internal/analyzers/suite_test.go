package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
)

// TestSuiteRegistersAllAnalyzers pins the acceptance criterion that the
// protolint multichecker ships both analyzer generations — the syntactic
// checks from PR 1 and the dataflow checks (codecsym, atomicguard,
// golifecycle, errtaxonomy) — each with a unique name and documentation.
func TestSuiteRegistersAllAnalyzers(t *testing.T) {
	suite := analyzers.Suite()
	if len(suite) < 9 {
		t.Fatalf("Suite() registered %d analyzers, want at least 9", len(suite))
	}
	want := map[string]bool{
		"determinism": false, "quorumarith": false, "lockguard": false, "msgswitch": false,
		"iolock": false, "codecsym": false, "atomicguard": false, "golifecycle": false,
		"errtaxonomy": false,
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if _, ok := want[a.Name]; ok {
			want[a.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("required analyzer %q not registered", name)
		}
	}
}

// TestSuiteCleanOnQuorumPackage is an integration test of the loader and the
// full suite against a real module package that must be lint-clean — the
// same green-at-merge property `make lint` enforces over the whole tree.
func TestSuiteCleanOnQuorumPackage(t *testing.T) {
	// internal/analyzers is loaded too: the suite must hold on itself.
	pkgs, err := analyzers.Load("../..", "repro/internal/quorum",
		"repro/internal/lowerbound", "repro/internal/analyzers")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("Load returned %d packages, want 3", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers.Suite() {
			diags, err := analyzers.RunAnalyzer(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s: unexpected finding in clean package: %s (%s)",
					pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			}
		}
	}
}
