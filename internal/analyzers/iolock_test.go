package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

func TestIOLock(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/iolock", "repro/internal/iolockfixture", analyzers.IOLock)
}
