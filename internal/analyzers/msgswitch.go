package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// MsgSwitch enforces exhaustive dispatch over protocol messages: a type
// switch whose subject is the consensus.Message interface must list every
// concrete message type declared in the current package. Handlers receive
// messages through a shared transport, and a `default: return nil` arm makes
// a forgotten case invisible — a newly added message kind would be silently
// dropped by every handler that predates it. A default arm remains legal (it
// handles messages from other packages on shared transports); what is not
// legal is omitting one of this package's own message types from the cases.
var MsgSwitch = &Analyzer{
	Name: "msgswitch",
	Doc: "type switches over consensus.Message must list every message " +
		"type declared in the package",
	Run: runMsgSwitch,
}

func runMsgSwitch(pass *Pass) error {
	iface := messageInterface(pass.Pkg)
	if iface == nil {
		return nil
	}
	impls := packageMessageTypes(pass.Pkg, iface)
	if len(impls) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			subject := typeSwitchSubject(ts)
			if subject == nil {
				return true
			}
			st := pass.TypesInfo.TypeOf(subject)
			if st == nil || !types.Identical(st, iface.Type()) {
				return true
			}
			missing := missingCases(pass, ts, impls)
			if len(missing) > 0 {
				pass.Reportf(ts.Pos(),
					"type switch over consensus.Message does not handle %s: every message type declared in this package must have a case",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// messageInterface finds the consensus Message interface as seen from pkg:
// either pkg is internal/consensus itself or it imports it.
func messageInterface(pkg *types.Package) *types.TypeName {
	candidates := append([]*types.Package{pkg}, pkg.Imports()...)
	for _, p := range candidates {
		if p.Path() != "repro/internal/consensus" && !strings.HasSuffix(p.Path(), "/internal/consensus") {
			continue
		}
		if tn, ok := p.Scope().Lookup("Message").(*types.TypeName); ok {
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				return tn
			}
		}
	}
	return nil
}

// packageMessageTypes lists the concrete (struct) types in pkg whose pointer
// implements the Message interface, keyed by type name.
func packageMessageTypes(pkg *types.Package, iface *types.TypeName) map[string]types.Type {
	ifaceType := iface.Type().Underlying().(*types.Interface)
	out := map[string]types.Type{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(t, ifaceType) || types.Implements(types.NewPointer(t), ifaceType) {
			out[name] = t
		}
	}
	return out
}

// typeSwitchSubject extracts the expression x from `switch v := x.(type)` or
// `switch x.(type)`.
func typeSwitchSubject(ts *ast.TypeSwitchStmt) ast.Expr {
	var assertion ast.Expr
	switch s := ts.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assertion = s.Rhs[0]
		}
	case *ast.ExprStmt:
		assertion = s.X
	}
	ta, ok := assertion.(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}

// missingCases returns the names of impl types not covered by any case
// clause of ts, sorted.
func missingCases(pass *Pass, ts *ast.TypeSwitchStmt, impls map[string]types.Type) []string {
	covered := map[string]bool{}
	for _, clause := range ts.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, typeExpr := range cc.List {
			t := pass.TypesInfo.TypeOf(typeExpr)
			if t == nil {
				continue
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == pass.Pkg {
				covered[named.Obj().Name()] = true
			}
		}
	}
	var missing []string
	for name := range impls {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}
