package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hostPackages are the import paths whose goroutines must be tied to a
// shutdown mechanism. These are the layers that own goroutines on the
// protocols' behalf — per-peer writers, the outbox consumer, accept loops,
// chaos clients — and they multiply per consensus group once the sharded
// multi-group runtime (ROADMAP open item 1) lands, so an unaccounted
// goroutine here becomes a per-group leak.
var hostPackages = map[string]bool{
	"repro/internal/transport": true,
	"repro/internal/smr":       true,
	"repro/internal/node":      true,
	"repro/internal/chaos":     true,
	"repro/internal/shard":     true,
	"repro/internal/lease":     true,
}

// GoLifecycle requires every go statement in the host packages to spawn a
// goroutine that is observably tied to shutdown: its body (or a function it
// directly calls in the same package) must signal completion via
// sync.WaitGroup.Done or close(ch), or terminate on a channel — a receive
// (which covers select on ctx.Done() and done channels) or a range over a
// channel (which ends when the producer closes it). A goroutine with none
// of these runs until the process exits; Close cannot wait for it, tests
// leak it, and under the multi-group runtime it leaks once per group.
var GoLifecycle = &Analyzer{
	Name: "golifecycle",
	Doc: "every go statement in host packages must be tied to a shutdown " +
		"mechanism (WaitGroup.Done, close of a done channel, channel receive/range)",
	Run: runGoLifecycle,
}

func runGoLifecycle(pass *Pass) error {
	if !hostPackages[pass.Pkg.Path()] {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, decls, gs.Call)
			if body == nil {
				pass.Reportf(gs.Pos(),
					"goroutine body is outside this package and cannot be verified against the shutdown contract; wrap it in a local function that signals completion")
				return true
			}
			if !hasShutdownEvidence(pass, decls, body) {
				pass.Reportf(gs.Pos(),
					"goroutine is not tied to any shutdown mechanism (no WaitGroup.Done, channel receive/range, or close of a done channel): Close cannot wait for it and it leaks per instance")
			}
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes the package's function declarations by their
// types object, so a `go r.loop()` statement can be resolved to loop's body.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// spawnedBody resolves the body the go statement runs: a function literal's
// own body, or the declaration of a same-package function or method.
func spawnedBody(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pass.TypesInfo.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.TypesInfo.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasShutdownEvidence scans body — and, one call level deep, the bodies of
// same-package functions it invokes — for a shutdown tie. The search is one
// level deep on purpose: evidence buried further down (a channel receive
// inside a helper's helper) usually belongs to that helper's own blocking
// behaviour, not to this goroutine's lifecycle, and accepting it would let
// a genuinely untied goroutine pass because some leaf function waits on an
// unrelated channel.
func hasShutdownEvidence(pass *Pass, decls map[types.Object]*ast.FuncDecl, body *ast.BlockStmt) bool {
	if bodyHasEvidence(pass, body) {
		return true
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := spawnedBody(pass, decls, call); callee != nil && bodyHasEvidence(pass, callee) {
			found = true
		}
		return true
	})
	return found
}

// bodyHasEvidence reports whether body itself contains a shutdown tie:
// WaitGroup.Done, close(ch), a channel receive, or a range over a channel.
func bodyHasEvidence(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := typeOf(pass, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" && isWaitGroup(typeOf(pass, fun.X)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly behind a
// pointer).
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
