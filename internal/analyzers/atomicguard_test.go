package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestAtomicGuard exercises the all-or-nothing atomic field discipline:
// plain reads and writes of atomically-accessed fields are flagged, fields
// that are consistently plain or consistently atomic are not, and value
// copies of sync/atomic wrapper types are flagged.
func TestAtomicGuard(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/atomicguard",
		"repro/internal/atomicfixture", analyzers.AtomicGuard)
}
