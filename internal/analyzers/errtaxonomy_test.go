package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestErrTaxonomy exercises the error-taxonomy checks: == and switch-case
// identity comparison of ErrXxx sentinels, err.Error() text matching, and
// bare discards of persist/send hot-path errors; errors.Is chains, Is
// methods, io.EOF, message rendering and explicit `_ =` drops pass.
func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/errtaxonomy",
		"repro/internal/errfixture", analyzers.ErrTaxonomy)
}
