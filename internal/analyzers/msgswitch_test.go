package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestMsgSwitch covers exhaustive message dispatch: a type switch over
// consensus.Message missing one of the package's message types is flagged
// (even with a default arm); complete switches, switches over unrelated
// interfaces, and //lint:allow msgswitch are not. The fixture imports the
// real repro/internal/consensus package, so the analyzer is exercised
// against the actual Message interface.
func TestMsgSwitch(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/msgswitch",
		"repro/internal/msgfixture", analyzers.MsgSwitch)
}
