package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestLockGuard covers the lock-discipline heuristic: unlocked access to a
// mutated sibling field is flagged; locked access, immutable configuration
// fields, unexported methods, mutex-free structs, and //lint:allow lockguard
// are not.
func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/lockguard",
		"repro/internal/lockfixture", analyzers.LockGuard)
}
