package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestGoLifecycleHostPackage runs the analyzer over a fixture loaded as a
// host package: WaitGroup accounting, done-channel closes, channel
// receives/ranges (directly or one call level down) pass; fire-and-forget
// spawns and cross-package bodies are flagged.
func TestGoLifecycleHostPackage(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/golifecycle/host",
		"repro/internal/smr", analyzers.GoLifecycle)
}

// TestGoLifecycleNonHostPackage loads an untied goroutine as a non-host
// package, where the shutdown contract does not apply.
func TestGoLifecycleNonHostPackage(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/golifecycle/nonhost",
		"repro/internal/bench", analyzers.GoLifecycle)
}
