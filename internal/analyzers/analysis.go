// Package analyzers implements the protolint static-analysis suite: custom
// analyzers that machine-check the invariants this repository's correctness
// story rests on — protocol determinism (internal/consensus, internal/core and
// the other protocol packages are pure state machines), centralised quorum
// arithmetic (the max{2e+f, 2f+1}-style bounds live only in internal/quorum),
// package-local lock discipline, and exhaustive message dispatch.
//
// The package deliberately mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library alone, so
// the module keeps its zero-dependency property. The cmd/protolint driver runs
// the suite over the module; see docs/ANALYZERS.md for the contract each
// analyzer enforces and how to suppress a finding with a //lint:allow comment.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It is the stdlib-only analogue of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass provides one analyzer with a single type-checked package and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	allow       map[allowKey]bool
	parents     map[ast.Node]ast.Node
}

type allowKey struct {
	file string
	line int
	name string
}

// allowRE matches suppression comments: //lint:allow name1,name2 [reason].
var allowRE = regexp.MustCompile(`^//\s*lint:allow\s+([a-zA-Z0-9_,]+)`)

// buildAllowIndex scans every comment in the pass's files for //lint:allow
// directives. A directive suppresses the named analyzers on its own line and
// on the line directly below it (so it can sit above a declaration).
func (p *Pass) buildAllowIndex() {
	p.allow = make(map[allowKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					p.allow[allowKey{pos.Filename, pos.Line, name}] = true
					p.allow[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
}

// suppressed reports whether a diagnostic at pos is silenced by a
// //lint:allow directive for this pass's analyzer.
func (p *Pass) suppressed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.allow[allowKey{position.Filename, position.Line, p.Analyzer.Name}]
}

// Reportf records a diagnostic unless a //lint:allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Parent returns the syntactic parent of n within the pass's files, or nil.
// The parent map is built lazily on first use.
func (p *Pass) Parent(n ast.Node) ast.Node {
	if p.parents == nil {
		p.parents = make(map[ast.Node]ast.Node)
		for _, f := range p.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					p.parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return p.parents[n]
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	pass.buildAllowIndex()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sort.Slice(pass.diagnostics, func(i, j int) bool {
		return pass.diagnostics[i].Pos < pass.diagnostics[j].Pos
	})
	return pass.diagnostics, nil
}

// Suite returns the full protolint analyzer suite in a stable order: the
// first-generation syntactic checks (determinism, quorumarith, lockguard,
// msgswitch, iolock) followed by the second-generation dataflow checks
// (codecsym, atomicguard, golifecycle, errtaxonomy).
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism, QuorumArith, LockGuard, MsgSwitch, IOLock,
		CodecSym, AtomicGuard, GoLifecycle, ErrTaxonomy,
	}
}
