// Fixture loaded as repro/internal/quorum itself: inside the quorum package
// the raw formulas ARE the single source of truth, so nothing is flagged.
package fixture

func taskMinProcesses(f, e int) int {
	if fast := 2*e + f; fast >= 2*f+1 {
		return fast
	}
	return 2*f + 1
}

func majority(n int) int {
	return n/2 + 1
}
