// Fixture for the quorumarith analyzer, loaded as a package OUTSIDE
// internal/quorum (repro/internal/smr): raw quorum arithmetic must be
// flagged; innocuous arithmetic must not.
package fixture

func majority(n int) int {
	return n/2 + 1 // want "majority of n"
}

func lenQuorum(acks []bool) int {
	return len(acks)/2 + 1 // want "majority of len"
}

func ceilHalf(f int) int {
	return (f + 1) / 2 // want "majority of f"
}

func taskBound(f, e int) int {
	return 2*e + f // want "linear bound in e"
}

func plainBound(f int) int {
	return 2*f + 1 // want "linear bound in f"
}

func byzantineBound(f, e int) int {
	return 3*f + 2*e - 1 // want "linear bound in f"
}

func bareDouble(delta int64) int64 {
	return 2 * delta // doubling a timer is not a bound: fine
}

func otherCoefficient(delta int64) int64 {
	return 5*delta + 1 // coefficient outside {2, 3}: fine
}

func halfOfSomethingElse(width int) int {
	return width / 3 // not a halving: fine
}

func median(xs []float64) float64 {
	return xs[len(xs)/2] //lint:allow quorumarith median of a sample, not a quorum
}
