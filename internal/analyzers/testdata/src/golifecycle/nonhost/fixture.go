// Fixture for the golifecycle analyzer, loaded as a non-host package: the
// shutdown contract applies only to the goroutine-owning host layers, so an
// untied goroutine here is not reported.
package fixture

func spawnUnchecked() {
	go func() {
		for {
		}
	}()
}
