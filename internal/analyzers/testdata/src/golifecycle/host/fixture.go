// Fixture for the golifecycle analyzer, loaded as a host package: every go
// statement must spawn a goroutine tied to a shutdown mechanism.
package fixture

import (
	"fmt"
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	done chan struct{}
	in   chan int
	stop chan struct{}
}

// WaitGroup accounting, directly in the spawned literal.
func (w *worker) startAccounted() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		work()
	}()
}

// A done channel closed by the goroutine: Close waits by receiving from it.
func (w *worker) startSignalled() {
	go w.loop()
}

func (w *worker) loop() {
	defer close(w.done)
	work()
}

// Range over a channel: the goroutine ends when the producer closes it.
func (w *worker) startDraining() {
	go func() {
		for v := range w.in {
			_ = v
		}
	}()
}

// Terminating on a receive (the select-on-done pattern).
func (w *worker) startSelecting() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case v := <-w.in:
				_ = v
			}
		}
	}()
}

// Evidence one call level down: the literal delegates to an accounted
// method.
func (w *worker) startWrapped() {
	w.wg.Add(1)
	go func() {
		w.accountedBody()
	}()
}

func (w *worker) accountedBody() {
	defer w.wg.Done()
	work()
}

// Fire-and-forget: nothing ties the goroutine to shutdown.
func (w *worker) startLeaky() {
	go w.leakyLoop() // want "not tied to any shutdown mechanism"
}

func (w *worker) leakyLoop() {
	for {
		work()
	}
}

func (w *worker) startLeakyLit() {
	go func() { // want "not tied to any shutdown mechanism"
		work()
	}()
}

// A goroutine whose body lives in another package cannot be verified.
func (w *worker) startForeign() {
	go fmt.Println("spawned") // want "outside this package"
}

// Deliberate process-lifetime goroutine, suppressed.
func (w *worker) startForLife() {
	//lint:allow golifecycle lives for the process, reaped at exit
	go w.leakyLoop()
}

func work() {}
