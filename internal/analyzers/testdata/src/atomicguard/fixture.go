// Fixture for the atomicguard analyzer: a field accessed through
// sync/atomic anywhere must be accessed through it everywhere, and the
// sync/atomic wrapper types must not be copied by value.
package fixture

import "sync/atomic"

type stats struct {
	sends   uint64
	drops   uint64
	depth   int64
	plain   uint64 // never touched atomically: plain access stays fine
	gauge   atomic.Uint64
	pending atomic.Int64
}

func (s *stats) recordSend() {
	atomic.AddUint64(&s.sends, 1)
	atomic.AddInt64(&s.depth, 1)
}

func (s *stats) recordDrop() {
	atomic.AddUint64(&s.drops, 1)
}

func (s *stats) snapshot() (uint64, uint64, int64) {
	return atomic.LoadUint64(&s.sends),
		atomic.LoadUint64(&s.drops),
		atomic.LoadInt64(&s.depth)
}

// A mixed access: the same fields the atomics guard, touched plainly.
func (s *stats) reset() {
	s.sends = 0 // want "field sends is accessed via sync/atomic elsewhere"
	s.drops++   // want "field drops is accessed via sync/atomic elsewhere"
}

func (s *stats) observe() uint64 {
	return s.sends // want "field sends is accessed via sync/atomic elsewhere"
}

// plain is only ever accessed plainly; no finding.
func (s *stats) bumpPlain() {
	s.plain++
}

// Wrapper types are safe through their methods and by address.
func (s *stats) useWrappers() {
	s.gauge.Add(1)
	s.pending.Store(int64(s.gauge.Load()))
	p := &s.gauge
	p.Add(1)
}

// Copying a wrapper forks the counter.
func (s *stats) copyWrapper() uint64 {
	g := s.gauge // want "copying a sync/atomic value forks the counter"
	return g.Load()
}

// Suppressed mixed access: initialization before the struct is shared.
func (s *stats) init() {
	//lint:allow atomicguard constructor runs before the struct is shared
	s.sends = 0
}
