// Fixture for the msgswitch analyzer: type switches over consensus.Message
// must list every message type declared in this package (Ping, Pong, Quit).
package fixture

import "repro/internal/consensus"

type Ping struct{}
type Pong struct{}
type Quit struct{}

func (*Ping) Kind() string { return "fixture.ping" }
func (*Pong) Kind() string { return "fixture.pong" }
func (*Quit) Kind() string { return "fixture.quit" }

func full(m consensus.Message) { // all three types listed: fine
	switch m.(type) {
	case *Ping, *Pong:
	case *Quit:
	default:
	}
}

func partial(m consensus.Message) {
	switch m.(type) { // want "does not handle Quit"
	case *Ping:
	case *Pong:
	default:
	}
}

func suppressed(m consensus.Message) {
	//lint:allow msgswitch Quit is consumed by the supervisor upstream
	switch m.(type) {
	case *Ping, *Pong:
	}
}

func notAMessageSwitch(v interface{}) { // subject is not consensus.Message: fine
	switch v.(type) {
	case int:
	default:
	}
}
