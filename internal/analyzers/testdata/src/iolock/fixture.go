// Fixture for the iolock analyzer: no transport Send or WAL fsync while a
// mutex is held, whether the lock is taken in the function or implied by
// the *Locked naming convention.
package fixture

import (
	"sync"

	"repro/internal/consensus"
	"repro/internal/transport"
	"repro/internal/wal"
)

type replica struct {
	mu  sync.Mutex
	tr  transport.Transport
	wal *wal.WAL
	out []consensus.Message
}

func (r *replica) sendUnderLock(m consensus.Message) {
	r.mu.Lock()
	_ = r.tr.Send(1, m) // want "transport Transport.Send while a mutex is held"
	r.mu.Unlock()
}

func (r *replica) sendAfterUnlock(m consensus.Message) {
	r.mu.Lock()
	tr := r.tr
	r.mu.Unlock()
	_ = tr.Send(1, m) // off the lock: fine
}

func (r *replica) sendUnderDeferredUnlock(m consensus.Message) {
	r.mu.Lock()
	defer r.mu.Unlock() // deferred: the lock is held to the end of the body
	_ = r.tr.Send(1, m) // want "transport Transport.Send while a mutex is held"
}

func (r *replica) fsyncUnderLock(payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = r.wal.Append(payload)         // want "WAL fsync \\(Append\\) while a mutex is held"
	_ = r.wal.Sync()                     // want "WAL fsync \\(Sync\\) while a mutex is held"
	_ = r.wal.Commit(1)                  // want "WAL fsync \\(Commit\\) while a mutex is held"
	_, _ = r.wal.AppendBuffered(payload) // stages bytes only, no fsync: fine
}

// appendLocked never touches r.mu itself — by the *Locked convention the
// caller holds it, so the fsync is still in a critical section.
func (r *replica) appendLocked(payload []byte) {
	_, _ = r.wal.Append(payload) // want "WAL fsync \\(Append\\) while a mutex is held"
}

func (r *replica) legacyAppendLocked(payload []byte) {
	//lint:allow iolock deliberate: legacy baseline keeps the in-lock fsync
	_, _ = r.wal.Append(payload)
}

// The closure runs later (timer, goroutine), not under the lock that was
// held when it was built — it gets a fresh unheld context.
func (r *replica) scheduleLocked(m consensus.Message) func() {
	return func() {
		_ = r.tr.Send(1, m) // fine
	}
}

type notTransport struct{}

func (notTransport) Send(int) error { return nil }

func (r *replica) otherSendUnderLock(nt notTransport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = nt.Send(1) // not a transport: fine
}
