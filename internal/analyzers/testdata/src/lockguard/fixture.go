// Fixture for the lockguard analyzer: exported methods of mutex-bearing
// structs must lock before touching mutable sibling fields.
package fixture

import "sync"

type Counter struct {
	mu   sync.Mutex
	n    int
	name string // never assigned in a method: immutable configuration
}

func (c *Counter) Inc() { // locks before touching n: fine
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Get() int { // want "Counter.Get accesses guarded field.* n without acquiring mu"
	return c.n
}

func (c *Counter) Name() string { // name is immutable: fine
	return c.name
}

func (c *Counter) Racy() int { //lint:allow lockguard deliberately racy fast-path read
	return c.n
}

func (c *Counter) reset() { // unexported: out of scope for the heuristic
	c.n = 0
}

type RW struct {
	mu   sync.RWMutex
	data map[string]int
}

func (r *RW) Lookup(k string) int { // RLock counts as acquiring: fine
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k]
}

func (r *RW) Put(k string, v int) { // want "RW.Put accesses guarded field.* data without acquiring mu"
	r.data[k] = v
}

type Plain struct {
	n int
}

func (p *Plain) Bump() { // no mutex field anywhere: out of scope
	p.n++
}
