// Fixture loaded as a NON-protocol package (repro/internal/bench): the
// determinism contract does not apply, so nothing here may be flagged even
// though the same code would be rejected in a protocol package.
package fixture

import (
	"math/rand"
	"time"
)

func hostsMayUseTheClock() time.Time {
	return time.Now()
}

func hostsMayUseGlobalRand() int {
	return rand.Intn(10)
}

func hostsMaySpawnGoroutines(work func()) {
	go work()
}

func hostsMayIterateMaps(m map[int]string, sink func(int)) {
	for k := range m {
		sink(k)
	}
}
