// Fixture for the determinism analyzer's seeded tier (internal/chaos,
// internal/linear): the packages own clocks and goroutines — they drive the
// system under test — but a seed must still fully determine the schedule
// and the verdict, so unseeded global randomness and order-sensitive map
// iteration are flagged.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// Clocks and goroutines are the harness's job: allowed here, banned only in
// protocol packages.
func drive() time.Time {
	go func() {}()
	return time.Now()
}

// The global rand source is unseeded: two runs with the same scenario seed
// would diverge.
func pickUnseeded(n int) int {
	return rand.Intn(n) // want "unseeded global source"
}

// A seeded generator threads the scenario seed through: reproducible.
func pickSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Collecting map keys without sorting leaks map order into the schedule.
func restartOrder(down map[int]bool) []int {
	var ids []int
	for id := range down { // want "never sorted"
		ids = append(ids, id)
	}
	return ids
}

func restartOrderSorted(down map[int]bool) []int {
	var ids []int
	for id := range down {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// A nested range whose effects land only in a map is order-insensitive:
// partition tables are built exactly like this (chaos/faults.go).
func blockPairs(groups map[int]int) map[[2]int]bool {
	blocked := map[[2]int]bool{}
	for a, ga := range groups {
		for b, gb := range groups {
			if a != b && ga != gb {
				blocked[[2]int{a, b}] = true
			}
		}
	}
	return blocked
}
