// Fixture for the determinism analyzer, loaded as a protocol package
// (repro/internal/core). Annotated lines must be flagged; everything else
// demonstrates the allowed deterministic idioms.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

func clocks() {
	_ = time.Now() // want "time.Now in protocol package"
	t0 := time.Unix(0, 0)
	_ = time.Since(t0) // want "time.Since in protocol package"
	_ = t0.Unix()      // pure conversion: fine
}

func randomness() int {
	rng := rand.New(rand.NewSource(42)) // seeded constructor: fine
	_ = rand.Intn(10)                   // want "unseeded global source"
	rand.Shuffle(3, func(i, j int) {})  // want "unseeded global source"
	return rng.Intn(10)                 // method on seeded generator: fine
}

func goroutine() {
	go func() {}() // want "go statement in protocol package"
}

func sortedCollect(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // collected and sorted below: fine
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func unsortedCollect(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // want "collected into \"keys\" but never sorted"
		keys = append(keys, k)
	}
	return keys
}

func countVotes(m map[int]string) map[string]int {
	counts := make(map[string]int)
	for _, v := range m { // counting is commutative: fine
		counts[v]++
	}
	return counts
}

func maxFold(m map[int]int) int {
	best := 0
	for _, v := range m { // max via comparison guard: fine
		if v > best {
			best = v
		}
	}
	return best
}

func maxBuiltin(m map[int]int) int {
	best := 0
	for _, v := range m { // commutative fold: fine
		best = max(best, v)
	}
	return best
}

func sum(m map[int]int) int {
	total := 0
	for _, v := range m { // commutative accumulation: fine
		total += v
	}
	return total
}

func concat(m map[int]string) string {
	s := ""
	for _, v := range m { // want "map iteration order is observable"
		s += v
	}
	return s
}

func sideEffects(m map[int]string, sink func(int)) {
	for k := range m { // want "map iteration order is observable"
		sink(k)
	}
}

func firstKey(m map[int]string) int {
	for k := range m { // want "map iteration order is observable"
		return k
	}
	return -1
}

func hasEmpty(m map[int]string) bool {
	for _, v := range m { // existence check: fine
		if v == "" {
			return true
		}
	}
	return false
}

func suppressed(m map[int]string, sink func(int)) {
	//lint:allow determinism the sink is order-insensitive in this fixture
	for k := range m {
		sink(k)
	}
}

func sliceRange(xs []int, sink func(int)) {
	for _, x := range xs { // slices iterate in index order: fine
		sink(x)
	}
}
