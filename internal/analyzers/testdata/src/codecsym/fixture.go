// Fixture for the codecsym analyzer: encode/decode pairs must agree on the
// fixed-width fields they write and read, and hand-spliced JSON must emit
// exactly the receiver struct's json tags.
package fixture

import (
	"encoding/binary"
)

// A matched pair: same widths, same counts, same byte order. The decoder
// reads the index from a body-relative offset (like wal.DecodeRecord), so
// only counts — not offsets — are compared.
func encodeGood(index uint64, payload []byte) []byte {
	buf := make([]byte, 16+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], index)
	binary.LittleEndian.PutUint32(buf[4:8], 0xdead)
	return buf
}

func decodeGood(b []byte) (uint64, []byte) {
	_ = binary.LittleEndian.Uint32(b[0:4])
	_ = binary.LittleEndian.Uint32(b[4:8])
	index := binary.LittleEndian.Uint64(b[8:16])
	return index, b[16:]
}

// Drifted pair: the encoder grew a uint64 field the decoder never learned
// about.
func encodeDrift(index uint64, epoch uint64) []byte {
	buf := make([]byte, 20)
	binary.LittleEndian.PutUint32(buf[0:4], 16)
	binary.LittleEndian.PutUint64(buf[4:12], index)
	binary.LittleEndian.PutUint64(buf[12:20], epoch)
	return buf
}

func decodeDrift(b []byte) uint64 { // want "encoder writes 2 uint64 field\\(s\\) but decoder reads 1"
	_ = binary.LittleEndian.Uint32(b[0:4])
	return binary.LittleEndian.Uint64(b[4:12])
}

// Byte-order drift: one side little-endian, the other big-endian.
func encodeOrder(v uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, v)
	return buf
}

func decodeOrder(b []byte) uint32 { // want "encoder uses binary.LittleEndian but decoder does not"
	return binary.BigEndian.Uint32(b)
}

// A round-trip helper touches both directions in one body and is no one's
// pairing partner.
func roundTripScratch(v uint64) uint64 {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, v)
	return binary.LittleEndian.Uint64(buf)
}

// An unpaired writer (a header stamp with no reader in this package) is not
// reported.
func writeStamp(buf []byte) {
	binary.LittleEndian.PutUint32(buf, 7)
}

// Suppression: a deliberately asymmetric pair (the decoder skips a reserved
// field) carries //lint:allow codecsym.
func encodeReserved(v uint32) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint32(buf[0:4], v)
	binary.LittleEndian.PutUint32(buf[4:8], 0)
	return buf
}

//lint:allow codecsym reserved trailing field is intentionally unread
func decodeReserved(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b[0:4])
}

// JSON splice checks: the emitted keys must be exactly the json tags.
type wireCmd struct {
	ID  string `json:"id"`
	Op  string `json:"op"`
	Key string `json:"key,omitempty"`
}

// A faithful splice: every tag appears (conditionally is fine), nothing else.
func (c wireCmd) AppendBody(dst []byte) []byte {
	dst = append(dst, `{"id":"`...)
	dst = append(dst, c.ID...)
	dst = append(dst, `","op":"`...)
	dst = append(dst, c.Op...)
	if c.Key != "" {
		dst = append(dst, `","key":"`...)
		dst = append(dst, c.Key...)
	}
	return append(dst, `"}`...)
}

type driftCmd struct {
	ID  string `json:"id"`
	Op  string `json:"op"`
	Val string `json:"val"`
}

func (c driftCmd) appendJSON(dst []byte) []byte { // want "appendJSON splices JSON key \"ops\" that is not a json tag of driftCmd" "appendJSON never splices json tag \"op\" of driftCmd" "appendJSON never splices json tag \"val\" of driftCmd"
	dst = append(dst, `{"id":"`...)
	dst = append(dst, c.ID...)
	dst = append(dst, `","ops":"`...)
	dst = append(dst, c.Op...)
	return append(dst, `"}`...)
}

// A method whose receiver has no json tags is out of scope even when it
// splices key-shaped literals.
type untagged struct {
	Name string
}

func (u untagged) AppendBody(dst []byte) []byte {
	dst = append(dst, `{"name":"`...)
	dst = append(dst, u.Name...)
	return append(dst, `"}`...)
}
