// Fixture for the errtaxonomy analyzer: sentinels are matched with
// errors.Is, error text is never string-matched, and persist/send hot-path
// errors are never discarded as bare statements.
package fixture

import (
	"errors"
	"io"
	"strings"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
	"repro/internal/wal"
)

// ErrLocal is a package-level sentinel of this fixture.
var ErrLocal = errors.New("fixture: local failure")

func classifyRight(err error) string {
	switch {
	case errors.Is(err, smr.ErrRejected):
		return "rejected"
	case errors.Is(err, smr.ErrMaybeApplied):
		return "ambiguous"
	case errors.Is(err, ErrLocal):
		return "local"
	}
	return "other"
}

func classifyWrong(err error) string {
	if err == smr.ErrRejected { // want "use errors.Is\\(err, smr.ErrRejected\\)"
		return "rejected"
	}
	if err != wal.ErrTorn { // want "use errors.Is\\(err, wal.ErrTorn\\)"
		return "not-torn"
	}
	if err == ErrLocal { // want "use errors.Is\\(err, ErrLocal\\)"
		return "local"
	}
	return "other"
}

func classifySwitch(err error) string {
	switch err {
	case smr.ErrMaybeApplied: // want "switch case compares sentinel smr.ErrMaybeApplied by identity"
		return "ambiguous"
	case nil:
		return "ok"
	}
	return "other"
}

// io.EOF predates errors.Is and documents identity comparison; it is not a
// sentinel under the ErrXxx convention.
func drainOK(err error) bool {
	return err == io.EOF
}

// An Is method implements the errors.Is protocol itself: identity
// comparison against sentinels is its job.
type outcome struct{ cause error }

func (o *outcome) Error() string { return o.cause.Error() }

func (o *outcome) Is(target error) bool {
	switch target {
	case smr.ErrRejected:
		return true
	}
	return target == ErrLocal
}

func matchByText(err error) bool {
	return strings.Contains(err.Error(), "not found") // want "matching on err.Error\\(\\) text"
}

func compareByText(err error) bool {
	return err.Error() == "fixture: local failure" // want "comparing err.Error\\(\\) text"
}

// Rendering a message is fine — only matching on it is load-bearing.
func render(err error) string {
	return "ERR " + err.Error()
}

type host struct {
	tr transport.Transport
	w  *wal.WAL
}

func (h *host) forwardDropped(m consensus.Message) {
	h.tr.Send(1, m) // want "transport Transport.Send error discarded"
}

func (h *host) forwardConsidered(m consensus.Message) {
	_ = h.tr.Send(1, m) // explicit considered drop: the transport counts it
}

func (h *host) persistDropped(p []byte) {
	h.w.Append(p) // want "WAL Append error discarded"
	h.w.Sync()    // want "WAL Sync error discarded"
	h.w.Commit(1) // want "WAL Commit error discarded"
}

func (h *host) persistHandled(p []byte) error {
	if _, err := h.w.Append(p); err != nil {
		return err
	}
	return h.w.Sync()
}

// Suppressed: a shutdown path where the transport may already be gone.
func (h *host) closeNotify(m consensus.Message) {
	//lint:allow errtaxonomy best-effort farewell on an already-closing link
	h.tr.Send(1, m)
}
