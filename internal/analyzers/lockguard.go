package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockGuard enforces package-local lock discipline: for a struct that embeds
// a sync.Mutex or sync.RWMutex field, every exported method that touches a
// mutable sibling field must acquire the mutex first. "Mutable" means the
// field is assigned somewhere in a method of the type — fields only set at
// construction time are treated as immutable configuration and exempt. The
// check is a package-local heuristic (it does not track interprocedural
// locking), so a deliberate exception can be recorded with
// //lint:allow lockguard on the method.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "exported methods of mutex-bearing structs must lock before " +
		"touching mutable sibling fields",
	Run: runLockGuard,
}

// lockedStruct describes one struct type with at least one mutex field.
type lockedStruct struct {
	name    *types.TypeName
	mutexes map[string]bool // field names of type sync.Mutex/RWMutex
	mutable map[string]bool // sibling fields assigned in some method
}

func runLockGuard(pass *Pass) error {
	structs := findLockedStructs(pass)
	if len(structs) == 0 {
		return nil
	}
	// First pass: which fields does any method of the type mutate?
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			ls, recv := methodTarget(pass, structs, fd)
			if ls == nil {
				continue
			}
			markMutatedFields(pass, fd.Body, recv, ls)
		}
	}
	// Second pass: exported methods touching mutable fields must lock.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ls, recv := methodTarget(pass, structs, fd)
			if ls == nil {
				continue
			}
			touched := touchedMutableFields(pass, fd.Body, recv, ls)
			if len(touched) == 0 || acquiresLock(pass, fd.Body, recv, ls) {
				continue
			}
			sort.Strings(touched)
			pass.Reportf(fd.Name.Pos(),
				"%s.%s accesses guarded field(s) %s without acquiring %s first",
				ls.name.Name(), fd.Name.Name, strings.Join(touched, ", "), mutexNames(ls))
		}
	}
	return nil
}

// findLockedStructs collects the package's struct types that have a
// sync.Mutex or sync.RWMutex field.
func findLockedStructs(pass *Pass) map[*types.TypeName]*lockedStruct {
	out := map[*types.TypeName]*lockedStruct{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		ls := &lockedStruct{name: tn, mutexes: map[string]bool{}, mutable: map[string]bool{}}
		for i := 0; i < st.NumFields(); i++ {
			if isSyncMutex(st.Field(i).Type()) {
				ls.mutexes[st.Field(i).Name()] = true
			}
		}
		if len(ls.mutexes) > 0 {
			out[tn] = ls
		}
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// methodTarget resolves fd's receiver to one of the locked structs, returning
// the struct record and the receiver's object (nil, nil when the method
// belongs to some other type or has an anonymous receiver).
func methodTarget(pass *Pass, structs map[*types.TypeName]*lockedStruct, fd *ast.FuncDecl) (*lockedStruct, types.Object) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, nil
	}
	recvIdent := fd.Recv.List[0].Names[0]
	recvObj := pass.TypesInfo.Defs[recvIdent]
	if recvObj == nil {
		return nil, nil
	}
	t := recvObj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	ls, ok := structs[named.Obj()]
	if !ok {
		return nil, nil
	}
	return ls, recvObj
}

// markMutatedFields records receiver fields that body assigns, increments, or
// passes by address — the signals that a field is protected state rather than
// immutable configuration.
func markMutatedFields(pass *Pass, body *ast.BlockStmt, recv types.Object, ls *lockedStruct) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := recvFieldName(pass, lhs, recv); f != "" {
					ls.mutable[f] = true
				}
				// Writing through recv.m[k] mutates field m.
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if f := recvFieldName(pass, ix.X, recv); f != "" {
						ls.mutable[f] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if f := recvFieldName(pass, n.X, recv); f != "" {
				ls.mutable[f] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if f := recvFieldName(pass, n.X, recv); f != "" {
					ls.mutable[f] = true
				}
			}
		}
		return true
	})
}

// recvFieldName returns the field name when e is recv.field (for a non-mutex
// sibling field), else "".
func recvFieldName(pass *Pass, e ast.Expr, recv types.Object) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(id) != recv {
		return ""
	}
	if sel2, ok := pass.TypesInfo.Selections[sel]; ok {
		if _, isField := sel2.Obj().(*types.Var); !isField {
			return "" // method value, not a field
		}
	}
	return sel.Sel.Name
}

// touchedMutableFields lists the mutable guarded fields body reads or writes.
func touchedMutableFields(pass *Pass, body *ast.BlockStmt, recv types.Object, ls *lockedStruct) []string {
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if f := recvFieldName(pass, e, recv); f != "" && ls.mutable[f] && !ls.mutexes[f] {
			seen[f] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	return out
}

// acquiresLock reports whether body calls Lock or RLock on one of the
// struct's mutex fields via the receiver.
func acquiresLock(pass *Pass, body *ast.BlockStmt, recv types.Object, ls *lockedStruct) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if f := recvFieldName(pass, sel.X, recv); f != "" && ls.mutexes[f] {
			found = true
		}
		return !found
	})
	return found
}

func mutexNames(ls *lockedStruct) string {
	names := make([]string, 0, len(ls.mutexes))
	for m := range ls.mutexes {
		names = append(names, m)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
