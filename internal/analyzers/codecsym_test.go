package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestCodecSym exercises the encode/decode symmetry checks: per-width count
// drift, byte-order drift, out-of-order-but-matching encoders, round-trip
// helpers, JSON splice tag drift, and the //lint:allow escape hatch.
func TestCodecSym(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/codecsym",
		"repro/internal/codecfixture", analyzers.CodecSym)
}

// TestCodecSymCleanOnRealCodecs runs the analyzer over the real codec
// packages: the wal frame and segment header, the storage snapshot frame,
// the tcp length prefix and the smr command/slot-message JSON splices must
// all be symmetric.
func TestCodecSymCleanOnRealCodecs(t *testing.T) {
	pkgs, err := analyzers.Load("../..",
		"repro/internal/wal", "repro/internal/storage",
		"repro/internal/transport", "repro/internal/smr", "repro/internal/consensus")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := analyzers.RunAnalyzer(analyzers.CodecSym, pkg)
		if err != nil {
			t.Fatalf("codecsym on %s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}
