package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs the go command in dir and decodes its -json package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportIndex resolves the transitive dependencies of patterns and returns a
// map from import path to compiled export-data file, used to type-check
// against precompiled imports without golang.org/x/tools.
func exportIndex(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Export,Standard"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// newExportImporter returns a types.Importer that reads gc export data from
// the files recorded in exports.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists, parses and type-checks the module packages matching patterns,
// resolving imports through compiled export data (`go list -export`), so it
// works offline and without golang.org/x/tools. Non-module (standard library)
// packages named by patterns are resolved as dependencies but not analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,Incomplete,Error"}, patterns...)
	targets, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports, err := exportIndex(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if t.Standard {
			continue
		}
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typeCheckDir(fset, imp, t.Dir, t.GoFiles, t.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files — typically
// an analysistest fixture under testdata, which `go list ./...` ignores — and
// checks it under the package path asPath, so analyzers that condition on the
// import path (e.g. determinism's protocol-package list) can be exercised
// from fixtures. moduleDir anchors import resolution; fixture imports of both
// standard-library and module-internal packages resolve through export data.
func LoadDir(moduleDir, fixtureDir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(fset, filepath.Join(fixtureDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		for _, im := range af.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	patterns := make([]string, 0, len(importSet))
	for p := range importSet {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	exports := map[string]string{}
	if len(patterns) > 0 {
		exports, err = exportIndex(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
	}
	imp := newExportImporter(fset, exports)
	names := make([]string, 0, len(files))
	for _, f := range files {
		names = append(names, fset.Position(f.Pos()).Filename)
	}
	return typeCheck(fset, imp, files, asPath, strings.Join(names, " "))
}

func typeCheckDir(fset *token.FileSet, imp types.Importer, dir string, goFiles []string, importPath string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	pkg, err := typeCheck(fset, imp, files, importPath, dir)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, files []*ast.File, importPath, what string) (*Package, error) {
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", what, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
