package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// exportCache memoizes import path → compiled export-data file across every
// Load/LoadDir in the process, so a test binary that loads the module once
// per analyzer pays for `go list -deps -export` once, not nine times. Export
// files live in the build cache and are content-addressed, so entries stay
// valid for the life of the process even if sources change underneath.
var (
	exportCacheMu sync.Mutex
	exportCache   = map[string]string{}
)

// cacheExports merges the export files of pkgs into the process-wide cache.
func cacheExports(pkgs []listedPackage) {
	exportCacheMu.Lock()
	defer exportCacheMu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			exportCache[p.ImportPath] = p.Export
		}
	}
}

// missingExports returns the subset of paths not yet in the cache.
func missingExports(paths []string) []string {
	exportCacheMu.Lock()
	defer exportCacheMu.Unlock()
	var missing []string
	for _, p := range paths {
		if _, ok := exportCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	return missing
}

// goList runs the go command in dir and decodes its -json package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportIndex resolves the transitive dependencies of patterns into the
// process-wide export cache, used to type-check against precompiled imports
// without golang.org/x/tools.
func exportIndex(dir string, patterns []string) error {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Export,Standard"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return err
	}
	cacheExports(pkgs)
	return nil
}

// newExportImporter returns a types.Importer that reads gc export data from
// the files recorded in the process-wide export cache. Callers must have
// populated the cache (Load's -deps listing, or exportIndex) for every
// import the checked files can reach.
func newExportImporter(fset *token.FileSet) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		exportCacheMu.Lock()
		file, ok := exportCache[path]
		exportCacheMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists, parses and type-checks the module packages matching patterns,
// resolving imports through compiled export data (`go list -export`), so it
// works offline and without golang.org/x/tools. Non-module (standard library)
// packages named by patterns are resolved as dependencies but not analyzed.
//
// One `go list -deps -export` call serves double duty: packages with DepOnly
// unset are the targets to analyze, and the whole listing (targets plus
// transitive dependencies) feeds the export cache the type-checker imports
// through. The loader used to make two go invocations per Load — targets,
// then the dependency index — which doubled the dominant cost of running the
// suite; see docs/ANALYZERS.md.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,Incomplete,DepOnly,Error"}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	cacheExports(listed)
	fset := token.NewFileSet()
	imp := newExportImporter(fset)
	var out []*Package
	for _, t := range listed {
		if t.Standard || t.DepOnly {
			continue
		}
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := typeCheckDir(fset, imp, t.Dir, t.GoFiles, t.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files — typically
// an analysistest fixture under testdata, which `go list ./...` ignores — and
// checks it under the package path asPath, so analyzers that condition on the
// import path (e.g. determinism's protocol-package list) can be exercised
// from fixtures. moduleDir anchors import resolution; fixture imports of both
// standard-library and module-internal packages resolve through export data.
func LoadDir(moduleDir, fixtureDir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(fset, filepath.Join(fixtureDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		for _, im := range af.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	patterns := make([]string, 0, len(importSet))
	for p := range importSet {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	// Only list imports the cache has not seen: exportIndex always records
	// the full -deps closure, so a cached direct import implies its
	// transitive dependencies are cached too.
	if missing := missingExports(patterns); len(missing) > 0 {
		if err := exportIndex(moduleDir, missing); err != nil {
			return nil, err
		}
	}
	imp := newExportImporter(fset)
	names := make([]string, 0, len(files))
	for _, f := range files {
		names = append(names, fset.Position(f.Pos()).Filename)
	}
	return typeCheck(fset, imp, files, asPath, strings.Join(names, " "))
}

func typeCheckDir(fset *token.FileSet, imp types.Importer, dir string, goFiles []string, importPath string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		af, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	pkg, err := typeCheck(fset, imp, files, importPath, dir)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, files []*ast.File, importPath, what string) (*Package, error) {
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", what, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
