package analyzers

import (
	"go/ast"
	"go/types"
)

// AtomicGuard enforces all-or-nothing atomicity on fields: a field that is
// accessed through sync/atomic anywhere in the package (atomic.AddUint64,
// atomic.LoadInt64, ...) must never be read or written plainly elsewhere —
// a single plain access reintroduces the data race the atomic was meant to
// remove, and the race detector only catches it when a test happens to hit
// the interleaving. The analyzer also flags value copies of the sync/atomic
// wrapper types (atomic.Uint64, atomic.Value, ...): a copied wrapper forks
// the counter silently, so wrappers may only be used through their methods
// or by address.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc: "a field accessed via sync/atomic must never be accessed plainly, " +
		"and sync/atomic wrapper values must not be copied",
	Run: runAtomicGuard,
}

func runAtomicGuard(pass *Pass) error {
	atomicFields := map[types.Object]bool{}
	sanctioned := map[ast.Node]bool{}

	// Pass 1: every &expr handed to a sync/atomic function marks its field as
	// atomic and its own selector as a sanctioned access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if obj := fieldObject(pass, un.X); obj != nil {
					atomicFields[obj] = true
					sanctioned[un.X] = true
				}
			}
			return true
		})
	}

	// Pass 2: any other mention of an atomic field is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return true
				}
				obj := fieldObject(pass, n)
				if obj != nil && atomicFields[obj] {
					pass.Reportf(n.Pos(),
						"field %s is accessed via sync/atomic elsewhere in this package; this plain access races with it — use the atomic API here too",
						obj.Name())
				}
			case *ast.AssignStmt:
				checkWrapperCopy(pass, n)
			}
			return true
		})
	}
	return nil
}

// isAtomicFuncCall reports whether call invokes a package-level function of
// sync/atomic (Add*, Load*, Store*, Swap*, CompareAndSwap*).
func isAtomicFuncCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldObject resolves e to the struct field it selects, or nil when e is
// not a field selector. Matching on the field object — not the expression
// text — makes the check see c.enqueued and snapshot-time c.enqueued as the
// same field regardless of receiver name.
func fieldObject(pass *Pass, e ast.Expr) types.Object {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// checkWrapperCopy flags assignments that copy a sync/atomic wrapper value
// (atomic.Uint64 and friends) instead of using it through methods.
func checkWrapperCopy(pass *Pass, a *ast.AssignStmt) {
	for _, rhs := range a.Rhs {
		if isAtomicWrapperValue(pass, rhs) {
			pass.Reportf(rhs.Pos(),
				"copying a sync/atomic value forks the counter; keep a single instance and use its methods")
		}
	}
}

// isAtomicWrapperValue reports whether e is a non-pointer value of one of
// sync/atomic's wrapper types.
func isAtomicWrapperValue(pass *Pass, e ast.Expr) bool {
	if _, ok := e.(*ast.CompositeLit); ok {
		return false // zero-value initialization is fine
	}
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op.String() == "&" {
		return false
	}
	t := typeOf(pass, e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
