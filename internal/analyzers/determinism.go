package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// protocolPackages are the import paths whose code must be a pure
// deterministic state machine: the Figure-1 core, the comparison protocols,
// the replay/model-checking layers that re-execute them, and the quorum
// arithmetic they share. The WAL is listed too: recovery replays it to
// rebuild protocol state, so a hidden clock or goroutine there would unsound
// crash-recovery the same way it unsounds replay — which is why the WAL owns
// no fsync timer (SyncInterval is host-driven). The simulator and the live
// host are deliberately NOT listed — they own the clock and the network on
// the protocols' behalf.
var protocolPackages = map[string]bool{
	"repro/internal/consensus":  true,
	"repro/internal/core":       true,
	"repro/internal/paxos":      true,
	"repro/internal/fastpaxos":  true,
	"repro/internal/epaxos":     true,
	"repro/internal/lowerbound": true,
	"repro/internal/mc":         true,
	"repro/internal/quorum":     true,
	"repro/internal/wal":        true,
	"repro/internal/shard":      true,
	// The lease table is replayed from the log on recovery, so it must be
	// as deterministic as the protocols: all time flows in as arguments.
	"repro/internal/lease": true,
	// Geo topologies are pure arithmetic over the RTT matrix; a hidden
	// clock or random jitter there would make WAN delay schedules
	// unreproducible across runs of the same topology and scale.
	"repro/internal/wan": true,
}

// IsProtocolPackage reports whether path is subject to the determinism
// contract.
func IsProtocolPackage(path string) bool { return protocolPackages[path] }

// seededPackages are subject to the weaker seed-reproducibility contract:
// the chaos harness and the linearizability checker promise that a seed
// fully determines the schedule and the verdict (scenario.go derives every
// rng from the seed; CHAOS.md documents replayability). They legitimately
// own clocks, timeouts and goroutines — they drive the system under test —
// so only the two checks that break seed→outcome reproducibility apply:
// unseeded global randomness and order-sensitive map iteration.
var seededPackages = map[string]bool{
	"repro/internal/chaos":  true,
	"repro/internal/linear": true,
}

// IsSeededPackage reports whether path is subject to the
// seed-reproducibility subset of the determinism contract.
func IsSeededPackage(path string) bool { return seededPackages[path] }

// bannedTimeFuncs are the time package functions that read or depend on the
// wall clock or a runtime timer. Pure conversions (time.Duration arithmetic,
// time.Unix) are fine.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"Sleep": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// allowedRandFuncs are the math/rand constructors that are fine to call:
// building an explicitly seeded generator is the approved pattern. Everything
// else at package level draws from the shared, unseeded global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// Determinism enforces the protocol determinism contract on the packages in
// protocolPackages: no wall-clock reads, no unseeded global randomness, no
// goroutines, and no order-sensitive iteration over maps. Protocols are
// replayed byte-for-byte by internal/consensus/replay, internal/sim and
// internal/mc, and the paper's Appendix-B adversarial schedules are spliced
// from such replays — any hidden source of nondeterminism silently unsounds
// all three.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/Since, unseeded math/rand, go statements, and " +
		"order-sensitive map iteration in protocol packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	full := IsProtocolPackage(pass.Pkg.Path())
	seeded := IsSeededPackage(pass.Pkg.Path())
	if !full && !seeded {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if full {
					pass.Reportf(n.Pos(), "go statement in protocol package %s: protocols must be single-threaded deterministic state machines", pass.Pkg.Path())
				}
			case *ast.CallExpr:
				checkDeterministicCall(pass, n, full)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDeterministicCall flags calls to wall-clock and global-randomness
// functions. Clock reads are only banned under the full protocol contract;
// seeded packages own timeouts and may read the clock, but a draw from the
// unseeded global rand breaks their seed→schedule reproducibility the same
// way it breaks a protocol replay.
func checkDeterministicCall(pass *Pass, call *ast.CallExpr, full bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if full && bannedTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s in protocol package: protocols must not read the clock — take time as input (consensus.Time) or emit a timer effect", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "rand.%s uses the unseeded global source: construct an explicitly seeded rand.New(rand.NewSource(seed)) and thread it through", fn.Name())
		}
	}
}

// checkMapRange flags `range` over a map whose body is order-sensitive.
// Allowed bodies are (a) pure key/value collection into a slice that is
// sorted after the loop, and (b) order-insensitive accumulation: map writes,
// delete, numeric/boolean commutative updates, max/min folds, and early
// returns of values independent of the iteration variables.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	c := &mapRangeChecker{
		pass:      pass,
		loopVars:  map[types.Object]bool{},
		bodyStart: rs.Body.Pos(),
		bodyEnd:   rs.Body.End(),
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.loopVars[obj] = true
			}
		}
	}
	if reason := c.checkBlock(rs.Body); reason != "" {
		pass.Reportf(rs.Pos(), "map iteration order is observable here (%s): collect the keys, sort them, and iterate the sorted slice", reason)
		return
	}
	// Collection loops are only deterministic if the collected slice is
	// sorted before anything observes it.
	for obj := range c.collected {
		if !sortedAfter(pass, rs, obj) {
			pass.Reportf(rs.Pos(), "map keys are collected into %q but never sorted in this block: sort the slice before iterating or returning it", obj.Name())
		}
	}
}

// mapRangeChecker walks a map-range body and decides whether it is
// order-insensitive. collected records slices that receive appends and must
// therefore be sorted after the loop.
type mapRangeChecker struct {
	pass               *Pass
	loopVars           map[types.Object]bool
	collected          map[types.Object]bool
	bodyStart, bodyEnd token.Pos
}

// checkBlock returns "" if every statement is order-insensitive, else a short
// human-readable reason naming the first offending construct.
func (c *mapRangeChecker) checkBlock(b *ast.BlockStmt) string {
	for _, s := range b.List {
		if reason := c.checkStmt(s, nil); reason != "" {
			return reason
		}
	}
	return ""
}

func (c *mapRangeChecker) checkStmt(s ast.Stmt, cond ast.Expr) string {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.checkAssign(s, cond)
	case *ast.IncDecStmt:
		// Counting (m[k]++, total++) is commutative.
		return ""
	case *ast.IfStmt:
		if s.Init != nil {
			if reason := c.checkStmt(s.Init, nil); reason != "" {
				return reason
			}
		}
		for _, inner := range s.Body.List {
			if reason := c.checkStmt(inner, s.Cond); reason != "" {
				return reason
			}
		}
		if s.Else != nil {
			if reason := c.checkStmt(s.Else, s.Cond); reason != "" {
				return reason
			}
		}
		return ""
	case *ast.BlockStmt:
		return c.checkBlock(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return ""
			}
		}
		return "statement with side effects runs once per key, in map order"
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return "break exits after an order-dependent prefix of the keys"
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.mentionsLoopVar(r) {
				return "returns a value derived from an arbitrary map element"
			}
		}
		return "" // existence checks (return true/false/constant) are fine
	case *ast.DeclStmt:
		return ""
	case *ast.RangeStmt:
		// A nested loop: its body is held to the same order-insensitivity
		// rules, with the inner loop variables treated like the outer ones.
		// (A nested range over a map is additionally checked on its own by
		// the top-level walk.)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					c.loopVars[obj] = true
				}
			}
		}
		return c.checkBlock(s.Body)
	case *ast.ForStmt:
		if s.Init != nil {
			if reason := c.checkStmt(s.Init, nil); reason != "" {
				return reason
			}
		}
		return c.checkBlock(s.Body)
	default:
		return "unrecognised statement form inside map iteration"
	}
}

func (c *mapRangeChecker) checkAssign(a *ast.AssignStmt, cond ast.Expr) string {
	// x op= y: commutative operators over numeric/boolean types fold the
	// same regardless of order. String += concatenation does not.
	switch a.Tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		if len(a.Lhs) == 1 && !isStringExpr(c.pass, a.Lhs[0]) {
			return ""
		}
		return "string concatenation accumulates in map order"
	case token.ASSIGN, token.DEFINE:
	default:
		return "order-dependent compound assignment inside map iteration"
	}
	for i, lhs := range a.Lhs {
		var rhs ast.Expr
		if len(a.Rhs) == len(a.Lhs) {
			rhs = a.Rhs[i]
		} else if len(a.Rhs) == 1 {
			rhs = a.Rhs[0]
		}
		if reason := c.checkSingleAssign(lhs, rhs, cond); reason != "" {
			return reason
		}
	}
	return ""
}

func (c *mapRangeChecker) checkSingleAssign(lhs, rhs ast.Expr, cond ast.Expr) string {
	// Writes into a map build a set/index; insertion order is invisible.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := c.pass.TypesInfo.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return ""
			}
		}
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return "assignment to a non-local target inside map iteration"
	}
	// x = append(x, ...): collection — must be sorted after the loop.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				if c.collected == nil {
					c.collected = map[types.Object]bool{}
				}
				c.collected[obj] = true
			}
			return ""
		}
		// x = f(x, v) for a commutative fold such as consensus.MaxValue,
		// or the builtin max/min.
		if isCommutativeFold(call, id) {
			return ""
		}
	}
	// Max/min via comparison: `if v > best { best = v }` — the condition
	// guards the assignment with a comparison over the same operands.
	if cond != nil && isExtremumGuard(cond, lhs, rhs) {
		return ""
	}
	// Re-assignment of the loop variables or of a variable declared inside
	// the loop body is local to one iteration and harmless.
	if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
		if c.loopVars[obj] || c.definedInLoop(obj) {
			return ""
		}
	}
	return "assignment overwrites an outer variable with an order-dependent value"
}

// definedInLoop reports whether obj's declaration lies inside the range body
// being checked. Scope nesting is a reliable proxy: loop-body objects live in
// scopes strictly inside the function scope that also contains the loop.
func (c *mapRangeChecker) definedInLoop(obj types.Object) bool {
	// The checker only ever asks about objects it encountered while walking
	// the body, so a position inside the body's extent is sufficient.
	return c.bodyContains(obj.Pos())
}

func (c *mapRangeChecker) bodyContains(pos token.Pos) bool {
	return c.bodyStart <= pos && pos <= c.bodyEnd
}

func (c *mapRangeChecker) mentionsLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && c.loopVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCommutativeFold recognises x = f(x, ...) where f is a known commutative
// combiner (MaxValue, MinValue, max, min).
func isCommutativeFold(call *ast.CallExpr, target *ast.Ident) bool {
	name := ""
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	}
	switch name {
	case "MaxValue", "MinValue", "max", "min", "Max", "Min":
	default:
		return false
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && id.Name == target.Name {
			return true
		}
	}
	return false
}

// isExtremumGuard reports whether cond is a comparison whose operands are
// (syntactically) the assignment's source and destination — the
// `if v > best { best = v }` max/min idiom.
func isExtremumGuard(cond ast.Expr, lhs, rhs ast.Expr) bool {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.GTR, token.LSS, token.GEQ, token.LEQ:
	default:
		return false
	}
	l, r := exprString(lhs), exprString(rhs)
	x, y := exprString(b.X), exprString(b.Y)
	return (x == r && y == l) || (x == l && y == r)
}

// exprString renders a simple expression for syntactic comparison.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = exprString(a)
		}
		return exprString(e.Fun) + "(" + strings.Join(parts, ",") + ")"
	case *ast.BasicLit:
		return e.Value
	default:
		return ""
	}
}

// sortFuncs are the sort/slices functions accepted as establishing a
// deterministic order for a collected slice.
var sortFuncs = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Strings": true, "Ints": true, "Float64s": true,
}

// sortedAfter reports whether, in the statements following rs in its
// enclosing block, the collected slice obj is passed to a sort function.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, obj types.Object) bool {
	block, ok := pass.Parent(rs).(*ast.BlockStmt)
	if !ok {
		return false
	}
	after := false
	for _, s := range block.List {
		if s == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !sortFuncs[sel.Sel.Name] {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
