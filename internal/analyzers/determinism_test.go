package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestDeterminismProtocolPackage runs the determinism analyzer over a fixture
// loaded as a protocol package: clock reads, unseeded randomness, goroutines
// and order-sensitive map iteration are flagged; sorted collection,
// commutative folds and the //lint:allow escape hatch are not.
func TestDeterminismProtocolPackage(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/determinism/proto",
		"repro/internal/core", analyzers.Determinism)
}

// TestDeterminismNonProtocolPackage loads the same kinds of constructs as a
// non-protocol package, where the determinism contract does not apply.
func TestDeterminismNonProtocolPackage(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/determinism/nonproto",
		"repro/internal/bench", analyzers.Determinism)
}

// TestDeterminismSeededPackage runs the analyzer over a fixture loaded as a
// seeded package (the chaos/linear tier): clocks and goroutines are the
// harness's to own, but unseeded global randomness and order-sensitive map
// iteration still break seed→schedule reproducibility and are flagged.
func TestDeterminismSeededPackage(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/determinism/seeded",
		"repro/internal/chaos", analyzers.Determinism)
}

func TestIsSeededPackage(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/chaos":  true,
		"repro/internal/linear": true,
		"repro/internal/core":   false, // full protocol contract, not the seeded subset
		"repro/internal/bench":  false,
	} {
		if got := analyzers.IsSeededPackage(path); got != want {
			t.Errorf("IsSeededPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestIsProtocolPackage(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/core":      true,
		"repro/internal/consensus": true,
		"repro/internal/mc":        true,
		"repro/internal/quorum":    true,
		"repro/internal/lease":     true, // replayed on recovery: clock values arrive as arguments
		"repro/internal/sim":       false, // the simulator owns the clock
		"repro/internal/node":      false, // the live host owns the network
		"repro/internal/bench":     false,
	} {
		if got := analyzers.IsProtocolPackage(path); got != want {
			t.Errorf("IsProtocolPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
