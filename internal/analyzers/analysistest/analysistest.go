// Package analysistest runs one analyzer over a fixture directory and checks
// its diagnostics against // want "regexp" comments in the fixture sources —
// the same contract as golang.org/x/tools/go/analysis/analysistest, rebuilt
// on the standard library so the module stays dependency-free.
//
// A fixture line may carry one or more expectations:
//
//	x := time.Now() // want "protocols must not read the clock"
//
// Each quoted string is a regular expression that must match the message of
// exactly one diagnostic reported on that line. Diagnostics without a
// matching expectation, and expectations without a matching diagnostic, fail
// the test. Fixtures live under testdata/, which `go build ./...` ignores, so
// deliberately non-conforming code never reaches the real build.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// wantRE matches the comment tail of an expectation line. The quoted strings
// are extracted separately by parseWants.
var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// Run loads the fixture directory as package path asPath (so analyzers that
// condition on the import path can be exercised), applies the analyzer, and
// compares diagnostics against the fixture's // want expectations.
// moduleDir anchors import resolution and is almost always "../.." from the
// test's working directory — use RunFixture for the repository layout.
func Run(t *testing.T, moduleDir, fixtureDir, asPath string, a *analyzers.Analyzer) {
	t.Helper()
	pkg, err := analyzers.LoadDir(moduleDir, fixtureDir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	diags, err := analyzers.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixtureDir, err)
	}
	wants := collectWants(t, pkg.Fset, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		if i := matchWant(wants[key], d.Message); i >= 0 {
			wants[key][i].matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every comment of the fixture for // want expectations.
func collectWants(t *testing.T, fset *token.FileSet, pkg *analyzers.Package) map[lineKey][]*want {
	t.Helper()
	out := map[lineKey][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWants(m[1])
				if err != nil {
					t.Fatalf("%s: bad // want comment: %v", pos, err)
				}
				key := lineKey{pos.Filename, pos.Line}
				for _, re := range res {
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// parseWants extracts the sequence of Go-quoted regular expressions from the
// text after "want".
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		q, rest, err := scanQuoted(s)
		if err != nil {
			return nil, err
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", q, err)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("compiling %q: %v", pat, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(rest)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no expectations")
	}
	return out, nil
}

// scanQuoted splits off one double-quoted Go string literal from the front of
// s, honouring backslash escapes.
func scanQuoted(s string) (lit, rest string, err error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}

func matchWant(ws []*want, message string) int {
	for i, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			return i
		}
	}
	return -1
}
