package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

// QuorumArith flags hand-rolled quorum arithmetic outside internal/quorum:
// majority expressions like n/2, len(x)/2+1, (f+1)/2, and linear bound
// expressions like 2*e+f or 3*f+1. The paper's whole contribution is that
// these formulas differ between consensus formulations (max{2e+f, 2f+1} for
// tasks vs max{2e+f−1, 2f+1} for objects vs Lamport's max{2e+f+1, 2f+1}), so
// a bound hard-coded at a call site is a bound that silently diverges when
// the definition changes. Callers must go through the helpers in
// internal/quorum (or consensus.Config.FastQuorum/ClassicQuorum, which are
// derived from them).
var QuorumArith = &Analyzer{
	Name: "quorumarith",
	Doc: "flag raw quorum arithmetic (n/2, len(x)/2+1, 2*e+f, …) outside " +
		"internal/quorum; use the quorum helpers instead",
	Run: runQuorumArith,
}

// quorumishName matches identifiers and field names that plausibly denote a
// process count or failure threshold. Case-insensitive exact match.
var quorumishName = regexp.MustCompile(`(?i)^(n|f|e|total|size|count|votes?|acks?|oks?|oneBs?|twoBs?|replies|reports|members|replicas|peers|nodes|procs|processes|cluster|quorum\w*|majority|faults?|crashes|fast\w*|classic\w*)$`)

func runQuorumArith(pass *Pass) error {
	if pass.Pkg.Path() == "repro/internal/quorum" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			// Only report the outermost expression of an arithmetic chain,
			// so n/2+1 yields one diagnostic, not two.
			if parent, ok := pass.Parent(be).(*ast.BinaryExpr); ok && isArithOp(parent.Op) {
				return true
			}
			if why := quorumArithPattern(pass, be); why != "" {
				pass.Reportf(be.Pos(), "raw quorum arithmetic (%s): use the helpers in internal/quorum (or consensus.Config.FastQuorum/ClassicQuorum) so the paper's bounds stay in one place", why)
				return false
			}
			return true
		})
	}
	return nil
}

func isArithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

// quorumArithPattern reports a short description of the quorum-arithmetic
// shape found in e, or "" if e is innocuous. Two shapes are recognised over
// integer operands:
//
//	majority: q/2, q/2+1, (q+1)/2 — where q is quorum-ish (len(...) or a
//	          suggestively named identifier/field)
//	linear:   c*q ± r chains with c ∈ {2, 3} and q quorum-ish (2*e+f,
//	          2*f+1, 3*f+2*e−1, …)
func quorumArithPattern(pass *Pass, e *ast.BinaryExpr) string {
	if !isIntExpr(pass, e) {
		return ""
	}
	if q, ok := halvedOperand(pass, e); ok {
		return "majority of " + q
	}
	// Linear bounds (2*e+f, 3*f+1, …) are only suspicious as additive
	// chains: a bare 2*x is more often a capacity or a timer multiple.
	if e.Op == token.ADD || e.Op == token.SUB {
		if q, ok := linearBoundTerm(pass, e); ok {
			return "linear bound in " + q
		}
	}
	return ""
}

// halvedOperand recognises q/2 (possibly inside q/2+1 or (q+1)/2) and
// returns a rendering of q.
func halvedOperand(pass *Pass, e *ast.BinaryExpr) (string, bool) {
	// Peel an outer ±1: q/2+1, q/2-1.
	if (e.Op == token.ADD || e.Op == token.SUB) && isIntLiteral(e.Y, 1) {
		if div, ok := unparen(e.X).(*ast.BinaryExpr); ok {
			e = div
		}
	}
	if e.Op != token.QUO || !isIntLiteral(e.Y, 2) {
		return "", false
	}
	x := unparen(e.X)
	// (q+1)/2 ceiling form.
	if inner, ok := x.(*ast.BinaryExpr); ok && inner.Op == token.ADD && isIntLiteral(inner.Y, 1) {
		x = unparen(inner.X)
	}
	if q, ok := quorumishExpr(pass, x); ok {
		return q, true
	}
	return "", false
}

// linearBoundTerm recognises additive chains containing c*q with c ∈ {2,3}
// and quorum-ish q, e.g. 2*e+f, 2*f+1, 3*f+2*e-1.
func linearBoundTerm(pass *Pass, e ast.Expr) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			if q, ok := linearBoundTerm(pass, e.X); ok {
				return q, true
			}
			return linearBoundTerm(pass, e.Y)
		case token.MUL:
			coeff, operand := e.X, unparen(e.Y)
			if _, isLit := unparen(coeff).(*ast.BasicLit); !isLit {
				coeff, operand = e.Y, unparen(e.X)
			}
			if !isIntLiteral(coeff, 2) && !isIntLiteral(coeff, 3) {
				return "", false
			}
			return quorumishExpr(pass, operand)
		}
	}
	return "", false
}

// quorumishExpr reports whether e looks like a process count or threshold:
// len(...) of something, or an identifier/selector whose (final) name matches
// quorumishName.
func quorumishExpr(pass *Pass, e ast.Expr) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "len" {
			return "len(…)", true
		}
		// Conversions like int64(n) wrap the interesting operand.
		if len(e.Args) == 1 {
			if _, isConv := pass.TypesInfo.Types[e.Fun]; isConv && pass.TypesInfo.Types[e.Fun].IsType() {
				return quorumishExpr(pass, e.Args[0])
			}
		}
	case *ast.Ident:
		if quorumishName.MatchString(e.Name) {
			return e.Name, true
		}
	case *ast.SelectorExpr:
		if quorumishName.MatchString(e.Sel.Name) {
			return exprString(e), true
		}
	}
	return "", false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isIntLiteral(e ast.Expr, value int64) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return false
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	return err == nil && v == value
}

func isIntExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
