package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analysistest"
)

// TestQuorumArithOutsideQuorumPackage flags raw majority and linear-bound
// expressions in an ordinary package; innocuous arithmetic and //lint:allow
// lines pass.
func TestQuorumArithOutsideQuorumPackage(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/quorumarith/caller",
		"repro/internal/smr", analyzers.QuorumArith)
}

// TestQuorumArithInsideQuorumPackage loads the same formulas as
// repro/internal/quorum itself, where they are the single source of truth
// and must not be flagged.
func TestQuorumArithInsideQuorumPackage(t *testing.T) {
	analysistest.Run(t, "../..", "testdata/src/quorumarith/quorum",
		"repro/internal/quorum", analyzers.QuorumArith)
}
