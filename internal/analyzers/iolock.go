package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// IOLock flags blocking I/O — transport sends and WAL fsyncs — performed
// while a mutex is held. The hot-path contract (internal/smr/outbox.go) is
// that protocol steps compute under Replica.mu and defer their I/O to the
// outbox consumer; an fsync or network write inside the critical section
// serializes every other step in the process behind it, which is exactly
// the regression the out-of-lock overhaul removed. "Held" is a lexical,
// package-local heuristic: either the call sits between a sync.Mutex
// Lock() and its Unlock() in the same function body, or the enclosing
// function's name ends in "Locked" (the repository convention for "caller
// holds the lock"). Deliberate exceptions — the legacy baseline path, the
// snapshot cut — carry //lint:allow iolock.
var IOLock = &Analyzer{
	Name: "iolock",
	Doc: "no transport Send or WAL fsync (Append/Sync/Commit) while a " +
		"mutex is held or inside a *Locked method",
	Run: runIOLock,
}

func runIOLock(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanIOLock(pass, fd.Body, strings.HasSuffix(fd.Name.Name, "Locked"))
		}
	}
	return nil
}

// scanIOLock walks body in source order tracking a lock depth: +1 on a
// sync.Mutex/RWMutex Lock or RLock, -1 (floored at zero) on Unlock or
// RUnlock. held seeds the depth for *Locked functions, whose caller holds
// the lock by convention. Function literals get a fresh unheld context —
// they run later (timer callbacks, goroutines), not under the lock that
// was held when they were built. Defer subtrees are skipped entirely: a
// deferred Unlock keeps the lock held to the end of the body, which is
// exactly what not decrementing models.
//
// The scan is lexical, not flow-sensitive: an Unlock inside an early-return
// branch lowers the depth for the code after it. That trades false
// negatives in branchy functions for zero false positives on the dominant
// lock/compute/unlock/flush shape; the analyzer is a tripwire, not a proof.
func scanIOLock(pass *Pass, body *ast.BlockStmt, held bool) {
	depth := 0
	if held {
		depth = 1
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			scanIOLock(pass, n.Body, false)
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if isSyncMutex(typeOf(pass, sel.X)) {
					depth++
				}
			case "Unlock", "RUnlock":
				if isSyncMutex(typeOf(pass, sel.X)) && depth > 0 {
					depth--
				}
			default:
				if depth == 0 {
					return true
				}
				if what := blockingIOCall(pass, sel); what != "" {
					pass.Reportf(n.Pos(),
						"%s while a mutex is held; queue it and perform the I/O after Unlock (see internal/smr/outbox.go)",
						what)
				}
			}
		}
		return true
	})
}

// typeOf returns the type of e, or nil when the type checker recorded none.
func typeOf(pass *Pass, e ast.Expr) types.Type {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// blockingIOCall classifies sel as one of the watched blocking operations:
// a Send on any type from internal/transport (the Transport interface or a
// concrete implementation), or a WAL method that fsyncs — Append (inline
// fsync under SyncAlways), Sync, Commit. AppendBuffered is deliberately
// absent: it only stages bytes, durability is the group commit's job.
func blockingIOCall(pass *Pass, sel *ast.SelectorExpr) string {
	t := typeOf(pass, sel.X)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch sel.Sel.Name {
	case "Send":
		if strings.HasSuffix(obj.Pkg().Path(), "internal/transport") {
			return "transport " + obj.Name() + ".Send"
		}
	case "Append", "Sync", "Commit":
		if strings.HasSuffix(obj.Pkg().Path(), "internal/wal") && obj.Name() == "WAL" {
			return "WAL fsync (" + sel.Sel.Name + ")"
		}
	}
	return ""
}
