package smr

import "repro/internal/consensus"

// Fault-injection surface for the chaos harness (internal/chaos): a
// crash-simulating shutdown that takes the real recovery path on restart,
// and a deliberately broken read path that proves the harness's
// linearizability checker has teeth.

// Kill simulates a process crash: the WAL is closed WITHOUT the final sync
// (uncommitted buffered records are abandoned, as a power cut would
// abandon them), no further messages or client acks leave the replica, and
// every outstanding client call fails. Kill blocks until the I/O consumer
// has exited, so when it returns the replica is externally silent — the
// deterministic shutdown barrier the chaos nemesis schedules around. A new
// replica opened on the same data directory then runs the real
// crash-recovery path.
//
// Contrast with Close, which syncs the WAL on the way down (graceful
// shutdown must be durable).
func (r *Replica) Kill() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for _, t := range r.timers {
		t.Stop()
	}
	for _, chs := range r.waiters {
		for _, ch := range chs {
			close(ch)
		}
	}
	r.waiters = make(map[int][]chan consensus.Value)
	for _, chs := range r.appliedW {
		for _, ch := range chs {
			close(ch)
		}
	}
	r.appliedW = make(map[int][]chan struct{})
	tr := r.tr
	// Detach the transport under the lock: the outbox consumer reloads it
	// per entry owner, so entries still queued send nothing after this
	// point.
	r.tr = nil
	b := r.batch
	d := r.dur
	r.mu.Unlock()
	if b != nil {
		b.close()
	}
	var firstErr error
	if d != nil && d.ownsWAL {
		// Abort the WAL BEFORE draining the outbox: queued group commits
		// must fail — and fail their client wakeups — rather than make the
		// "crashed" state durable. With a shared journal the abort is the
		// runtime's job, before it kills the groups (shard.Runtime.Kill).
		if err := d.wal.Abort(); err != nil {
			firstErr = err
		}
	}
	if r.ioShared {
		// The scheduler serves the process's other groups; a barrier makes
		// this replica externally silent without stopping the stream.
		r.io.barrier()
	} else {
		r.io.Close()
	}
	if tr != nil {
		if err := tr.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FaultInjectStaleReads deliberately breaks the replica's read path: once
// enabled, Get (and therefore GetLinearizable through this replica)
// returns the previously overwritten value of any key that has been
// overwritten. The chaos suite's "teeth" test flips this on and asserts
// the linearizability checker rejects the resulting history — proving a
// passing verdict means something. Never enable outside tests.
func (r *Replica) FaultInjectStaleReads() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faultStale = true
	if r.faultPrev == nil {
		r.faultPrev = make(map[string]string)
	}
}
