// Package smr builds state-machine replication on top of the paper's
// consensus protocol: an unbounded log of consensus instances (one per
// slot), each running the object-mode protocol of internal/core, plus a
// replicated key-value store applied from the log. This is the practical
// setting the paper's introduction appeals to: a client submits its command
// to one replica — the proxy — and the proxy answers as soon as it decides,
// which is why the proxy's two-step latency is what matters (and why the
// paper relaxes Lamport's definition the way it does).
package smr

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/consensus"
)

// Op enumerates the commands the replicated store understands.
type Op string

// Store operations.
const (
	OpPut    Op = "put"
	OpDelete Op = "delete"
	OpNoop   Op = "noop"
	// OpBatch groups several commands decided in one consensus instance;
	// Subs carries them, applied in order.
	OpBatch Op = "batch"
)

// Command is one state-machine command.
type Command struct {
	// ID uniquely identifies the command (proxy id + sequence).
	ID string `json:"id"`
	// Op is the operation.
	Op Op `json:"op"`
	// Key and Val are the operands (Val unused for delete/noop/batch).
	Key string `json:"key,omitempty"`
	Val string `json:"val,omitempty"`
	// Subs are the batched commands when Op is OpBatch.
	Subs []Command `json:"subs,omitempty"`
}

// Encode packs the command into a consensus value: the ordering key is a
// hash of the command ID (ties broken by the serialized payload, keeping
// the order total), the payload is the JSON encoding.
func (c Command) Encode() (consensus.Value, error) {
	body, err := json.Marshal(c)
	if err != nil {
		return consensus.None, fmt.Errorf("smr: encode command: %w", err)
	}
	h := fnv.New64a()
	h.Write([]byte(c.ID))
	// Clear the top bit so the key stays well above consensus.None.
	key := int64(h.Sum64() >> 1)
	return consensus.Value{Key: key, Data: string(body)}, nil
}

// DecodeCommand unpacks a consensus value produced by Encode.
func DecodeCommand(v consensus.Value) (Command, error) {
	var c Command
	if err := json.Unmarshal([]byte(v.Data), &c); err != nil {
		return Command{}, fmt.Errorf("smr: decode command: %w", err)
	}
	return c, nil
}

// Equal compares commands structurally (Subs included).
func (c Command) Equal(o Command) bool {
	if c.ID != o.ID || c.Op != o.Op || c.Key != o.Key || c.Val != o.Val || len(c.Subs) != len(o.Subs) {
		return false
	}
	for i := range c.Subs {
		if !c.Subs[i].Equal(o.Subs[i]) {
			return false
		}
	}
	return true
}
