// Package smr builds state-machine replication on top of the paper's
// consensus protocol: an unbounded log of consensus instances (one per
// slot), each running the object-mode protocol of internal/core, plus a
// replicated key-value store applied from the log. This is the practical
// setting the paper's introduction appeals to: a client submits its command
// to one replica — the proxy — and the proxy answers as soon as it decides,
// which is why the proxy's two-step latency is what matters (and why the
// paper relaxes Lamport's definition the way it does).
package smr

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/consensus"
)

// Op enumerates the commands the replicated store understands.
type Op string

// Store operations.
const (
	OpPut    Op = "put"
	OpDelete Op = "delete"
	OpNoop   Op = "noop"
	// OpBatch groups several commands decided in one consensus instance;
	// Subs carries them, applied in order.
	OpBatch Op = "batch"
	// OpLeaseGrant replicates a leader-lease grant (see internal/lease):
	// Key holds the holder's process ID in decimal, Val the grant length
	// in nanoseconds. Reusing Key/Val keeps the hand-spliced encoder and
	// the on-disk WAL format unchanged.
	OpLeaseGrant Op = "lease"
)

// Command is one state-machine command.
type Command struct {
	// ID uniquely identifies the command (proxy id + sequence).
	ID string `json:"id"`
	// Op is the operation.
	Op Op `json:"op"`
	// Key and Val are the operands (Val unused for delete/noop/batch).
	Key string `json:"key,omitempty"`
	Val string `json:"val,omitempty"`
	// Subs are the batched commands when Op is OpBatch.
	Subs []Command `json:"subs,omitempty"`
}

// FNV-1a parameters, inlined so hashing a command ID allocates nothing
// (hash/fnv.New64a escapes to the heap). Must match hash/fnv bit for bit:
// the key orders commands across replicas of mixed builds.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// cmdBufPool recycles Command encode scratch buffers.
var cmdBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// appendJSON splices the command's JSON encoding into dst by hand, matching
// the struct tags above (omitempty included) so DecodeCommand stays
// reflective. Commands are the single hottest marshal in the system — one
// per client operation — and the spliced form needs no encoder state and no
// intermediate copy.
func (c Command) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"id":`...)
	dst = consensus.AppendJSONString(dst, c.ID)
	dst = append(dst, `,"op":`...)
	dst = consensus.AppendJSONString(dst, string(c.Op))
	if c.Key != "" {
		dst = append(dst, `,"key":`...)
		dst = consensus.AppendJSONString(dst, c.Key)
	}
	if c.Val != "" {
		dst = append(dst, `,"val":`...)
		dst = consensus.AppendJSONString(dst, c.Val)
	}
	if len(c.Subs) > 0 {
		dst = append(dst, `,"subs":[`...)
		for i, s := range c.Subs {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = s.appendJSON(dst)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// Encode packs the command into a consensus value: the ordering key is a
// hash of the command ID (ties broken by the serialized payload, keeping
// the order total), the payload is the JSON encoding. The payload is built
// in a pooled scratch buffer; the only per-call allocation is the payload
// string itself. The error return is kept for call-site compatibility and
// is always nil.
func (c Command) Encode() (consensus.Value, error) {
	bp := cmdBufPool.Get().(*[]byte)
	b := c.appendJSON((*bp)[:0])
	var h uint64 = fnvOffset64
	for i := 0; i < len(c.ID); i++ {
		h ^= uint64(c.ID[i])
		h *= fnvPrime64
	}
	// Clear the top bit so the key stays well above consensus.None.
	key := int64(h >> 1)
	v := consensus.Value{Key: key, Data: string(b)}
	*bp = b
	cmdBufPool.Put(bp)
	return v, nil
}

// DecodeCommand unpacks a consensus value produced by Encode.
func DecodeCommand(v consensus.Value) (Command, error) {
	var c Command
	if err := json.Unmarshal([]byte(v.Data), &c); err != nil {
		return Command{}, fmt.Errorf("smr: decode command: %w", err)
	}
	return c, nil
}

// Equal compares commands structurally (Subs included).
func (c Command) Equal(o Command) bool {
	if c.ID != o.ID || c.Op != o.Op || c.Key != o.Key || c.Val != o.Val || len(c.Subs) != len(o.Subs) {
		return false
	}
	for i := range c.Subs {
		if !c.Subs[i].Equal(o.Subs[i]) {
			return false
		}
	}
	return true
}
