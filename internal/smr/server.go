package smr

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Server exposes a replica to clients over a line-oriented TCP protocol:
//
//	PUT <key> <value...>  →  OK
//	GET <key>             →  VAL <value>  |  NONE
//	DEL <key>             →  OK
//	PING                  →  PONG
//	STATS                 →  STATS <transport counters>
//	INFO                  →  INFO <replica/durability summary>
//
// Errors answer "ERR <reason>". One command per line; responses are single
// lines. GET is served from the replica's applied state (see KV.Get for the
// consistency discussion); writes return after the command is decided AND
// applied at this replica.
type Server struct {
	replica *Replica
	ln      net.Listener
	timeout time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer starts serving clients of replica on addr.
func NewServer(replica *Replica, addr string, opTimeout time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("smr server: %w", err)
	}
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	s := &Server{replica: replica, ln: ln, timeout: opTimeout, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	scanner := bufio.NewScanner(conn)
	for scanner.Scan() {
		reply := s.handleLine(scanner.Text())
		if _, err := fmt.Fprintln(conn, reply); err != nil {
			return
		}
	}
}

// handleLine executes one command line and returns the response line.
func (s *Server) handleLine(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command"
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	kv := NewKV(s.replica)
	switch strings.ToUpper(fields[0]) {
	case "PING":
		return "PONG"
	case "STATS":
		st, ok := s.replica.TransportStats()
		if !ok {
			return "ERR no transport bound"
		}
		return "STATS " + st.String()
	case "INFO":
		return "INFO " + s.replica.Info().String()
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>"
		}
		if v, ok := kv.Get(fields[1]); ok {
			return "VAL " + v
		}
		return "NONE"
	case "GETL":
		// Linearizable read: replicates a no-op through consensus before
		// reading, so the reply observes every write that completed before
		// the request (plain GET serves possibly-stale local state).
		if len(fields) != 2 {
			return "ERR usage: GETL <key>"
		}
		v, ok, err := kv.GetLinearizable(ctx, fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		if ok {
			return "VAL " + v
		}
		return "NONE"
	case "PUT":
		if len(fields) < 3 {
			return "ERR usage: PUT <key> <value>"
		}
		if err := kv.Put(ctx, fields[1], strings.Join(fields[2:], " ")); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "DEL":
		if len(fields) != 2 {
			return "ERR usage: DEL <key>"
		}
		if err := kv.Delete(ctx, fields[1]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	default:
		return "ERR unknown command " + fields[0]
	}
}
