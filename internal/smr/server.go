package smr

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Server exposes a replica to clients over a line-oriented TCP protocol:
//
//	PUT <key> <value>     →  OK
//	GET <key>             →  VAL <value>  |  NONE
//	GETL <key>            →  VAL <value>  |  NONE   (linearizable)
//	DEL <key>             →  OK
//	PING                  →  PONG
//	STATS                 →  STATS <transport counters>
//	INFO                  →  INFO <replica/durability summary>
//
// Errors answer "ERR <reason>". Values run verbatim from the second space
// to the end of the line: embedded spaces and tabs round-trip exactly.
// Lines are capped at MaxLineBytes; longer ones get "ERR line too long"
// without losing the connection.
//
// A connection whose first line is "HELLO 2" is upgraded to the
// multiplexed session protocol (docs/SESSIONS.md): the server answers
// "OHAI 2 <replica> <leader>" and thereafter each line is a frame
// "<tag> <command>", answered by "<tag> <reply>" in whatever order
// commands complete. Consensus commands (PUT/DEL/GETL) run on a bounded
// per-connection executor pool so they never stall PING/GET/STATS/INFO;
// replies are flushed in batches by one writer goroutine per connection.
// Anything else on the first line is served as legacy protocol v1, one
// command per line, replies in order.
type Server struct {
	backend Backend
	ln      net.Listener
	timeout time.Duration

	ctr serverCounters

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Executor pool bounds for one session connection: sessionExecutors
// consensus commands run concurrently, sessionBacklog more may queue, and
// past that PUT/DEL/GETL frames are refused with "ERR busy" (a definite
// rejection — the command never entered consensus).
const (
	sessionExecutors = 16
	sessionBacklog   = 256
	sessionReplyQ    = 256
)

// serverCounters is the server's internal atomic counter block.
type serverCounters struct {
	legacyConns atomic.Uint64
	sessions    atomic.Uint64
	frames      atomic.Uint64
	tooLong     atomic.Uint64
	readErrors  atomic.Uint64
	busy        atomic.Uint64
	badFrames   atomic.Uint64
}

// ServerCounters is a snapshot of the server's protocol counters.
type ServerCounters struct {
	LegacyConns uint64 // connections served with protocol v1
	Sessions    uint64 // connections upgraded via HELLO
	Frames      uint64 // session frames handled
	TooLong     uint64 // lines over MaxLineBytes answered with ERR
	ReadErrors  uint64 // connections dropped on a read error
	Busy        uint64 // frames refused by a full executor queue
	BadFrames   uint64 // session lines with an unparsable tag
}

// Counters returns a snapshot of the server's protocol counters.
func (s *Server) Counters() ServerCounters {
	return ServerCounters{
		LegacyConns: s.ctr.legacyConns.Load(),
		Sessions:    s.ctr.sessions.Load(),
		Frames:      s.ctr.frames.Load(),
		TooLong:     s.ctr.tooLong.Load(),
		ReadErrors:  s.ctr.readErrors.Load(),
		Busy:        s.ctr.busy.Load(),
		BadFrames:   s.ctr.badFrames.Load(),
	}
}

// Backend routes server commands to replicas. A single replica is the
// trivial backend (NewServer); the sharded runtime (internal/shard)
// implements Backend so one server fronts every consensus group in the
// process, routing each key to its group's replica.
type Backend interface {
	// Route returns the replica hosting key's consensus group. Every key
	// must route somewhere: the server calls it only with non-empty keys.
	Route(key string) *Replica
	// Proxy returns the replica whose identity the session handshake
	// advertises (the OHAI line) and whose Ω estimate seeds the client's
	// leader-locality hint.
	Proxy() *Replica
	// StatsLine and InfoLine serve the STATS and INFO commands — the full
	// reply line including the verb (or "ERR ...").
	StatsLine() string
	InfoLine() string
}

// singleBackend is the trivial Backend: every command targets one replica.
type singleBackend struct{ r *Replica }

func (b singleBackend) Route(string) *Replica { return b.r }
func (b singleBackend) Proxy() *Replica       { return b.r }

func (b singleBackend) StatsLine() string {
	st, ok := b.r.TransportStats()
	if !ok {
		return "ERR no transport bound"
	}
	line := "STATS " + st.String()
	// Lease/read-path counters ride as a suffix so pre-lease consumers
	// parsing the transport fields keep working unchanged.
	if ls := b.r.LeaseStats(); ls.Enabled {
		line += " " + ls.String()
	}
	return line
}

func (b singleBackend) InfoLine() string { return "INFO " + b.r.Info().String() }

// NewServer starts serving clients of replica on addr.
func NewServer(replica *Replica, addr string, opTimeout time.Duration) (*Server, error) {
	return NewBackendServer(singleBackend{r: replica}, addr, opTimeout)
}

// NewBackendServer starts a server whose commands route through b — the
// seam the sharded runtime plugs N consensus groups into. The wire
// protocol is unchanged either way: clients cannot tell a sharded server
// from a single-replica one.
func NewBackendServer(b Backend, addr string, opTimeout time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("smr server: %w", err)
	}
	if opTimeout <= 0 {
		opTimeout = 30 * time.Second
	}
	s := &Server{backend: b, ln: ln, timeout: opTimeout, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

// countReadError records a failed connection read; expected teardowns
// (EOF, our own Close) stay quiet, anything else is logged once.
func (s *Server) countReadError(conn net.Conn, err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return
	}
	s.ctr.readErrors.Add(1)
	log.Printf("smr server: read %s: %v", conn.RemoteAddr(), err)
}

func (s *Server) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 16<<10)
	first, err := readLine(br, MaxLineBytes)
	switch {
	case err == errLineTooLong:
		s.ctr.tooLong.Add(1)
		fmt.Fprintln(conn, "ERR line too long")
		s.serveLegacy(conn, br, "")
		return
	case err != nil:
		s.countReadError(conn, err)
		return
	}
	if verb, _, _ := strings.Cut(first, " "); strings.EqualFold(verb, "HELLO") {
		s.serveSession(conn, br, first)
		return
	}
	s.serveLegacy(conn, br, first)
}

// serveLegacy speaks protocol v1: one command per line, replies in order.
// first, when non-empty, is a command already read by the negotiation
// peek.
func (s *Server) serveLegacy(conn net.Conn, br *bufio.Reader, first string) {
	s.ctr.legacyConns.Add(1)
	if first != "" {
		if _, err := fmt.Fprintln(conn, s.handleLine(first)); err != nil {
			return
		}
	}
	for {
		line, err := readLine(br, MaxLineBytes)
		if err == errLineTooLong {
			s.ctr.tooLong.Add(1)
			if _, werr := fmt.Fprintln(conn, "ERR line too long"); werr != nil {
				return
			}
			continue
		}
		if err != nil {
			s.countReadError(conn, err)
			return
		}
		if _, err := fmt.Fprintln(conn, s.handleLine(line)); err != nil {
			return
		}
	}
}

// taggedCmd is one session frame queued for a pool executor.
type taggedCmd struct {
	tag uint64
	cmd string
}

// serveSession negotiates and runs one protocol-v2 session: a reader
// (this goroutine) demultiplexes frames, consensus commands run on a
// bounded executor pool, and every reply funnels through one writer
// goroutine that flushes in batches.
func (s *Server) serveSession(conn net.Conn, br *bufio.Reader, hello string) {
	replies := make(chan string, sessionReplyQ)
	writerDone := make(chan struct{})
	go s.sessionWriter(conn, replies, writerDone)

	fields := strings.Fields(hello)
	if len(fields) != 2 || fields[1] != "2" {
		// An unknown HELLO variant: refuse the upgrade but keep the
		// connection on the legacy protocol, mirroring what a v1 server
		// would have answered.
		replies <- "ERR unknown command HELLO"
		close(replies)
		<-writerDone
		s.serveLegacy(conn, br, "")
		return
	}
	s.ctr.sessions.Add(1)
	proxy := s.backend.Proxy()
	replies <- fmt.Sprintf("OHAI %d %d %d", ProtocolVersion, int(proxy.ID()), int(proxy.OmegaLeader()))

	slow := make(chan taggedCmd, sessionBacklog)
	var execs sync.WaitGroup
	for i := 0; i < sessionExecutors; i++ {
		execs.Add(1)
		go func() {
			defer execs.Done()
			for c := range slow {
				replies <- fmt.Sprintf("%d %s", c.tag, s.handleLine(c.cmd))
			}
		}()
	}

	for {
		line, err := readLine(br, MaxLineBytes)
		if err == errLineTooLong {
			s.ctr.tooLong.Add(1)
			// The tag sits at the front of the line, so the truncated
			// prefix still addresses the reply.
			if tag, _, perr := parseFrame(line); perr == nil {
				replies <- fmt.Sprintf("%d ERR line too long", tag)
				continue
			}
			replies <- "ERR line too long"
			break // no tag to answer under: the stream is unrecoverable
		}
		if err != nil {
			s.countReadError(conn, err)
			break
		}
		tag, cmd, perr := parseFrame(line)
		if perr != nil {
			s.ctr.badFrames.Add(1)
			replies <- "ERR bad " + perr.Error()
			break // a session peer that loses framing cannot be resynced
		}
		s.ctr.frames.Add(1)
		verb, _, _ := strings.Cut(cmd, " ")
		switch strings.ToUpper(verb) {
		case "PUT", "DEL", "GETL":
			// Consensus-bound: hand to the pool so a slow decide never
			// blocks the cheap commands behind it.
			select {
			case slow <- taggedCmd{tag, cmd}:
			default:
				s.ctr.busy.Add(1)
				replies <- fmt.Sprintf("%d ERR busy: session executor queue full", tag)
			}
		default:
			// PING/GET/STATS/INFO only take the replica lock briefly;
			// answer from the reader.
			replies <- fmt.Sprintf("%d %s", tag, s.handleLine(cmd))
		}
	}
	close(slow)
	execs.Wait()
	close(replies)
	<-writerDone
}

// sessionWriter drains replies to the connection, writing every reply
// already queued before paying one flush — the same batched-flush shape as
// the per-peer transport writers. On a write error it keeps draining so
// producers never block on a dead connection.
func (s *Server) sessionWriter(conn net.Conn, replies <-chan string, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(conn, 32<<10)
	for line := range replies {
		dead := false
	batch:
		for {
			bw.WriteString(line)
			bw.WriteByte('\n')
			select {
			case next, ok := <-replies:
				if !ok {
					break batch
				}
				line = next
			default:
				break batch
			}
		}
		if bw.Flush() != nil {
			dead = true
		}
		if dead {
			for range replies {
			}
			return
		}
	}
	bw.Flush()
}

// handleLine executes one command line and returns the response line.
// Parsing is positional, not field-collapsing: the verb ends at the first
// space, a key at the next, and a PUT value is everything after the
// second space, verbatim — "PUT k a  b" stores "a  b" with both spaces
// (the old strings.Fields parser silently rewrote it to "a b").
func (s *Server) handleLine(line string) string {
	verb, rest, hasArgs := strings.Cut(line, " ")
	if verb == "" {
		return "ERR empty command"
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	// Key-bearing commands route through the backend once the key is
	// parsed: each key lands on the replica of its consensus group, which
	// for the trivial backend is always the same one.
	switch strings.ToUpper(verb) {
	case "PING":
		return "PONG"
	case "STATS":
		return s.backend.StatsLine()
	case "INFO":
		return s.backend.InfoLine()
	case "GET":
		if !hasArgs || rest == "" || strings.Contains(rest, " ") {
			return "ERR usage: GET <key>"
		}
		if v, ok := NewKV(s.backend.Route(rest)).Get(rest); ok {
			return "VAL " + v
		}
		return "NONE"
	case "GETL":
		// Linearizable read: replicates a no-op through consensus before
		// reading, so the reply observes every write that completed before
		// the request (plain GET serves possibly-stale local state).
		if !hasArgs || rest == "" || strings.Contains(rest, " ") {
			return "ERR usage: GETL <key>"
		}
		v, ok, err := NewKV(s.backend.Route(rest)).GetLinearizable(ctx, rest)
		if err != nil {
			return "ERR " + err.Error()
		}
		if ok {
			return "VAL " + v
		}
		return "NONE"
	case "PUT":
		key, val, ok := strings.Cut(rest, " ")
		if !hasArgs || key == "" || !ok {
			return "ERR usage: PUT <key> <value>"
		}
		if err := NewKV(s.backend.Route(key)).Put(ctx, key, val); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "DEL":
		if !hasArgs || rest == "" || strings.Contains(rest, " ") {
			return "ERR usage: DEL <key>"
		}
		if err := NewKV(s.backend.Route(rest)).Delete(ctx, rest); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	default:
		return "ERR unknown command " + verb
	}
}
