package smr

import (
	"bufio"
	"strings"
	"testing"
)

func TestReadLineBasics(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("one\ntwo\r\n\nlast\n"))
	for i, want := range []string{"one", "two", "", "last"} {
		got, err := readLine(br, 64)
		if err != nil || got != want {
			t.Fatalf("line %d = %q, %v; want %q", i, got, err, want)
		}
	}
	if _, err := readLine(br, 64); err == nil {
		t.Fatal("EOF not reported")
	}
}

func TestReadLinePartialLineAtEOFIsError(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("cut-mid-line"))
	if got, err := readLine(br, 64); err == nil {
		t.Fatalf("partial line at EOF returned %q, want error", got)
	}
}

// TestReadLineOversize pins the fix for the 64 KB scanner bug: an
// oversize line must be consumed in full (so the connection stays in
// sync), reported as errLineTooLong, and hand back its prefix (so a
// session server can still recover the frame tag); the next line must
// parse normally.
func TestReadLineOversize(t *testing.T) {
	big := strings.Repeat("x", 300)
	br := bufio.NewReaderSize(strings.NewReader("17 "+big+"\nnext\n"), 16)
	line, err := readLine(br, 64)
	if err != errLineTooLong {
		t.Fatalf("err = %v, want errLineTooLong", err)
	}
	if !strings.HasPrefix(line, "17 ") || len(line) != 64 {
		t.Fatalf("prefix = %q (len %d), want 64 bytes starting with tag", line, len(line))
	}
	if got, err := readLine(br, 64); err != nil || got != "next" {
		t.Fatalf("line after oversize = %q, %v; want %q", got, err, "next")
	}
}

func TestReadLineExactLimit(t *testing.T) {
	br := bufio.NewReader(strings.NewReader(strings.Repeat("a", 64) + "\n"))
	if got, err := readLine(br, 64); err != nil || len(got) != 64 {
		t.Fatalf("64-byte line under 64-byte limit = len %d, %v; want ok", len(got), err)
	}
	br = bufio.NewReader(strings.NewReader(strings.Repeat("a", 65) + "\n"))
	if _, err := readLine(br, 64); err != errLineTooLong {
		t.Fatalf("65-byte line under 64-byte limit: err = %v", err)
	}
}

func TestParseFrame(t *testing.T) {
	for _, bad := range []string{"", "notag", "x PUT k v", "-1 PUT k v", "99999999999999999999999 X"} {
		if _, _, err := parseFrame(bad); err == nil {
			t.Errorf("parseFrame(%q) accepted", bad)
		}
	}
	tag, payload, err := parseFrame("42 PUT k a  b")
	if err != nil || tag != 42 || payload != "PUT k a  b" {
		t.Fatalf("parseFrame = %d, %q, %v", tag, payload, err)
	}
	// Payload may be empty: "7 " is a frame with an empty command.
	if _, payload, err = parseFrame("7 "); err != nil || payload != "" {
		t.Fatalf("empty payload frame: %q, %v", payload, err)
	}
}

func TestCheckKeyValue(t *testing.T) {
	for _, bad := range []string{"", "a b", "a\tb", "a\nb", "a\rb", "a\x00b", "\x7f"} {
		if err := checkKey(bad); err == nil {
			t.Errorf("checkKey(%q) accepted", bad)
		}
	}
	for _, ok := range []string{"k", "user:42", "π", "a-b_c.d"} {
		if err := checkKey(ok); err != nil {
			t.Errorf("checkKey(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"v\nDEL k", "v\r", "a\x01b"} {
		if err := checkValue(bad); err == nil {
			t.Errorf("checkValue(%q) accepted", bad)
		}
	}
	for _, ok := range []string{"", "plain", "a  b", "tab\tseparated", "trailing  "} {
		if err := checkValue(ok); err != nil {
			t.Errorf("checkValue(%q) = %v", ok, err)
		}
	}
}

// FuzzSessionFrameRoundTrip checks encode/parse symmetry of the session
// framing: any tag and any payload the validators admit must round-trip
// byte-exact through appendFrame → readLine → parseFrame.
func FuzzSessionFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), "PUT k v")
	f.Add(uint64(0), "")
	f.Add(uint64(1<<63), "GETL key")
	f.Add(uint64(7), "PUT k a  b\twith tabs  ")
	f.Fuzz(func(t *testing.T, tag uint64, payload string) {
		if strings.ContainsAny(payload, "\r\n") {
			t.Skip() // the validators keep line terminators off the wire
		}
		frame := appendFrame(nil, tag, payload)
		if len(frame) > MaxLineBytes {
			t.Skip()
		}
		br := bufio.NewReader(strings.NewReader(string(frame)))
		line, err := readLine(br, MaxLineBytes)
		if err != nil {
			t.Fatalf("readLine(%q): %v", frame, err)
		}
		gotTag, gotPayload, err := parseFrame(line)
		if err != nil {
			t.Fatalf("parseFrame(%q): %v", line, err)
		}
		if gotTag != tag || gotPayload != payload {
			t.Fatalf("round trip (%d, %q) → (%d, %q)", tag, payload, gotTag, gotPayload)
		}
	})
}
