package smr

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/lease"
)

// ErrLeaseHeld is the definite pre-propose refusal a replica gives while a
// foreign lease is conservatively live: the command was never proposed, so
// retrying it elsewhere (at the leaseholder) is always safe. Match with
// errors.Is; the concrete *LeaseHeldError carries the holder hint.
var ErrLeaseHeld = errors.New("smr: lease held")

// ErrLeaseFenced reports that a command was decided and applied while a
// foreign lease was still conservatively live at its proposer: the holder
// may have served linearizable reads that missed it, so the caller must
// treat the outcome as ambiguous (the command IS applied, but it must not
// be advertised as a definite, ordered success).
var ErrLeaseFenced = errors.New("lease fenced: command applied but a concurrent leaseholder may not have observed it")

// LeaseHeldError is the refusal returned for commands proposed at a
// non-leaseholder while the lease is live. Its text is what the server
// renders on the wire ("ERR lease held by replica N"): SessionClient's
// PreferLeader redial parses the holder back out and moves the session.
type LeaseHeldError struct {
	// Holder is the replica believed to hold the lease.
	Holder int
}

func (e *LeaseHeldError) Error() string {
	return fmt.Sprintf("lease held by replica %d", e.Holder)
}

// Is matches ErrLeaseHeld so callers use errors.Is without knowing the
// concrete type, and ErrRejected because the refusal happens before the
// command is proposed: it definitely did not execute, so it sits on the
// definite side of the client error taxonomy.
func (e *LeaseHeldError) Is(target error) bool {
	return target == ErrLeaseHeld || target == ErrRejected
}

// leaseHeldPrefix is the wire form of LeaseHeldError behind "ERR ".
const leaseHeldPrefix = "ERR lease held by replica "

// LeaseOptions configures replicated leader leases (EnableLeases).
type LeaseOptions struct {
	// Duration is the grant length. Default 2s.
	Duration time.Duration
	// Epsilon is the clock-skew safety margin ε: the holder stops serving
	// ε before nominal expiry, everyone else keeps blocking ε after it.
	// Default 50ms. Must satisfy 2ε < Duration.
	Epsilon time.Duration
	// Renew is the renew-ahead window: the auto-grant timer proposes a
	// fresh grant when less than this much of the lease remains. Default
	// Duration/3.
	Renew time.Duration
	// AutoGrant arms a timer that acquires and renews the lease whenever
	// this replica is the stable Ω leader. Off, leases are only taken by
	// explicit AcquireLease calls (tests, benches).
	AutoGrant bool
	// UnsafeZeroEpsilon forces ε=0 AND disables the guard window and
	// fencing — the deliberately broken mode that the ε=0 teeth test uses
	// to prove the linearizability checker catches stale lease reads.
	// Never enable outside tests.
	UnsafeZeroEpsilon bool
	// Now, when set, replaces the replica's monotonic lease clock: it must
	// return nondecreasing elapsed time since EnableLeases. Tests advance a
	// fake clock past expiry with it instead of sleeping out real lease
	// windows. Nil uses the runtime's monotonic clock.
	Now func() time.Duration
}

// leaseState is the replica-side lease machinery around the deterministic
// lease.Table. All fields are guarded by Replica.mu except opts/start,
// which are immutable after EnableLeases.
type leaseState struct {
	tab   *lease.Table
	opts  LeaseOptions
	start time.Time // monotonic origin for now()

	inFlight bool // a grant proposal is in flight (auto-renew dedup)

	// fenced marks applied slots whose command was proposed by this
	// replica inside a foreign guard window; Submit downgrades their acks
	// to ErrLeaseFenced. Bounded: purged below applied-fencedRetain.
	fenced map[int]bool

	hits, misses, expired, revoked uint64
	refused, fencedN, grants       uint64
}

// now reads this replica's monotonic clock (nanoseconds since
// EnableLeases); time.Since uses the runtime's monotonic reading, so wall
// clock jumps cannot move lease windows. A LeaseOptions.Now hook replaces
// the clock wholesale (fake-clock tests).
func (ls *leaseState) now() int64 {
	if ls.opts.Now != nil {
		return ls.opts.Now().Nanoseconds()
	}
	return time.Since(ls.start).Nanoseconds()
}

const (
	fencedRetain    = 4096
	fencedPurgeSize = 256
)

// EnableLeases switches on replicated leader leases for this replica. Must
// be called before EnableDurability (recovery replays grant commands into
// the lease table — a replayed own grant deliberately confers no serving
// rights, while a replayed foreign grant must raise the conservative guard)
// and before Start (which arms the auto-grant timer).
func (r *Replica) EnableLeases(opts LeaseOptions) error {
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if opts.UnsafeZeroEpsilon {
		opts.Epsilon = 0
	} else if opts.Epsilon <= 0 {
		opts.Epsilon = 50 * time.Millisecond
	}
	if !opts.UnsafeZeroEpsilon && 2*opts.Epsilon >= opts.Duration {
		return fmt.Errorf("smr leases: 2ε (%v) must be smaller than the lease duration (%v)", 2*opts.Epsilon, opts.Duration)
	}
	if opts.Renew <= 0 {
		opts.Renew = opts.Duration / 3
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.dur != nil {
		return errors.New("smr leases: EnableLeases must precede EnableDurability (recovery replays grants)")
	}
	if r.ls != nil {
		return errors.New("smr leases: already enabled")
	}
	r.ls = &leaseState{
		tab: lease.New(lease.Config{
			Self:     int(r.cfg.ID),
			Duration: opts.Duration.Nanoseconds(),
			Epsilon:  opts.Epsilon.Nanoseconds(),
			Unsafe:   opts.UnsafeZeroEpsilon,
		}),
		opts:   opts,
		start:  time.Now(),
		fenced: make(map[int]bool),
	}
	return nil
}

// proposerOf extracts the proposing replica from a command ID ("p3-17",
// "p3-batch-4" → 3). Unknown shapes (sub-commands, external IDs) map to -1:
// the lease table treats them as foreign, which revokes conservatively and
// never fences. A forged "pN-" prefix cannot break safety — refusal and
// fencing key on the *proposing replica's own* guard state, not on the ID;
// proposer identity only decides whether a command renews or revokes.
func proposerOf(id string) int {
	i := strings.IndexByte(id, '-')
	if i < 2 || id[0] != 'p' {
		return -1
	}
	n, err := strconv.Atoi(id[1:i])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// applyLeaseLocked runs the lease state machine for one applied command.
// Called from applyCommandLocked with r.applied still naming the slot being
// applied.
func (r *Replica) applyLeaseLocked(cmd Command, proposer int) {
	now := r.ls.now()
	if cmd.Op == OpLeaseGrant {
		h, errH := strconv.Atoi(cmd.Key)
		dur, errD := strconv.ParseInt(cmd.Val, 10, 64)
		if errH != nil || errD != nil || h < 0 || h >= r.cfg.N || dur <= 0 {
			return // malformed grant: ignore rather than poison the table
		}
		if ev := r.ls.tab.ApplyGrant(h, cmd.ID, dur, now); ev.Granted {
			r.ls.grants++
			if ev.Revoked {
				r.ls.revoked++
			}
		}
		return
	}
	ev := r.ls.tab.ApplyCommand(proposer, now)
	if ev.Revoked {
		r.ls.revoked++
	}
	if ev.Fenced {
		r.ls.fencedN++
		r.ls.fenced[r.applied] = true
		if len(r.ls.fenced) > fencedPurgeSize {
			for s := range r.ls.fenced {
				if s < r.applied-fencedRetain {
					delete(r.ls.fenced, s)
				}
			}
		}
	}
}

// takeFenced consumes the fenced mark for a slot (set while applying it).
func (r *Replica) takeFenced(slot int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ls == nil || !r.ls.fenced[slot] {
		return false
	}
	delete(r.ls.fenced, slot)
	return true
}

// leaseRefuseLocked implements the pre-propose gate: while a foreign lease
// is conservatively live this replica must not acknowledge commands it
// proposes (the holder could serve reads that miss them), so it refuses
// them outright — a definite rejection carrying the holder hint, safe to
// retry at the leaseholder.
func (r *Replica) leaseRefuseLocked() error {
	if r.ls == nil {
		return nil
	}
	now := r.ls.now()
	if r.ls.tab.ExpireCheck(now) {
		r.ls.expired++
	}
	if !r.ls.tab.Guarded(now) {
		return nil
	}
	r.ls.refused++
	return &LeaseHeldError{Holder: r.ls.tab.GuardHolder()}
}

// LeaseRead serves a linearizable read from local applied state when this
// replica holds a valid lease. served=false means the caller must fall
// back to a read barrier (or a leader hint).
func (r *Replica) LeaseRead(key string) (val string, ok, served bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ls == nil || r.closed {
		return "", false, false
	}
	now := r.ls.now()
	if r.ls.tab.ExpireCheck(now) {
		r.ls.expired++
	}
	if !r.ls.tab.HolderValid(now) {
		r.ls.misses++
		return "", false, false
	}
	r.ls.hits++
	val, ok = r.getLocked(key)
	return val, ok, true
}

// AcquireLease replicates a lease grant naming this replica as holder. It
// returns once the grant is decided and applied here; the serving window
// anchors at propose time and may open slightly later if a previous
// holder's guard is still running (HoldsLease reports the live state).
// Grants bypass the write batcher deliberately: a grant folded into an
// OpBatch would lose its identity as a grant command.
func (r *Replica) AcquireLease(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if r.ls == nil {
		r.mu.Unlock()
		return errors.New("smr leases: not enabled")
	}
	r.seq++
	id := fmt.Sprintf("%s-%d", r.cfg.ID, r.seq)
	durNs := r.ls.opts.Duration.Nanoseconds()
	// Propose-time anchor, recorded before the command can possibly apply
	// anywhere: every replica's guard window starts at or after it.
	r.ls.tab.NoteProposed(id, r.ls.now())
	r.mu.Unlock()

	cmd := Command{
		ID:  id,
		Op:  OpLeaseGrant,
		Key: strconv.Itoa(int(r.cfg.ID)),
		Val: strconv.FormatInt(durNs, 10),
	}
	slot, err := r.Execute(ctx, cmd)
	if err == nil {
		err = r.WaitApplied(ctx, slot)
	}
	if err != nil {
		r.mu.Lock()
		if r.ls != nil {
			// If the grant decides anyway it applies without a pending
			// entry and confers no serving rights — conservative.
			r.ls.tab.DropProposed(id)
		}
		r.mu.Unlock()
	}
	return err
}

// HoldsLease reports whether this replica can serve lease reads right now.
func (r *Replica) HoldsLease() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ls != nil && r.ls.tab.HolderValid(r.ls.now())
}

// scheduleLeaseLocked (re)arms the auto-grant/renew timer. Period is a
// fraction of the renew window so expiry is noticed promptly.
func (r *Replica) scheduleLeaseLocked() {
	const key = "smr/lease"
	period := r.ls.opts.Renew / 2
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	r.gens[key]++
	gen := r.gens[key]
	if t, ok := r.timers[key]; ok {
		t.Stop()
	}
	r.timers[key] = time.AfterFunc(period, func() {
		r.mu.Lock()
		if r.closed || r.ls == nil || r.gens[key] != gen {
			r.mu.Unlock()
			return
		}
		r.scheduleLeaseLocked()
		now := r.ls.now()
		if r.ls.tab.ExpireCheck(now) {
			r.ls.expired++
		}
		propose := false
		// Only the stable Ω leader volunteers: one likely grantee per
		// group, so competing grants (each revoking the other) stay a
		// transient of leader churn, not the steady state.
		if !r.ls.inFlight && r.det.Leader() == r.cfg.ID && r.det.LeaderStable(2) {
			if r.ls.tab.HolderValid(now) {
				propose = r.ls.tab.Remaining(now) < r.ls.opts.Renew.Nanoseconds()
			} else {
				propose = !r.ls.tab.Guarded(now)
			}
		}
		if propose {
			r.ls.inFlight = true
		}
		dur := r.ls.opts.Duration
		r.mu.Unlock()
		if !propose {
			return
		}
		// Runs in the AfterFunc goroutine: bounded by the context, and
		// gens-invalidated timers simply never reach here again.
		ctx, cancel := context.WithTimeout(context.Background(), dur)
		_ = r.AcquireLease(ctx)
		cancel()
		r.mu.Lock()
		if r.ls != nil {
			r.ls.inFlight = false
		}
		r.mu.Unlock()
	})
}

// LeaseStats is a point-in-time snapshot of the lease and read-path
// counters, surfaced through STATS and expvar.
type LeaseStats struct {
	// Enabled: EnableLeases was called.
	Enabled bool `json:"enabled"`
	// Valid: this replica holds a live lease right now.
	Valid bool `json:"valid"`
	// Holder is the applied-log leaseholder (-1 none/revoked).
	Holder int `json:"holder"`
	// Hits/Misses count GETLs served from the local lease vs fallen back.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Expired counts own-lease expiries; Revoked counts applied-log
	// revocations (a command from a non-holder); Grants counts applied
	// grants.
	Expired uint64 `json:"expired"`
	Revoked uint64 `json:"revoked"`
	Grants  uint64 `json:"grants"`
	// Refused counts commands rejected pre-propose under a foreign lease;
	// Fenced counts commands applied but downgraded to ambiguous.
	Refused uint64 `json:"refused"`
	Fenced  uint64 `json:"fenced"`
	// ReadRounds / ReadCoalesced count no-op read barriers and the extra
	// GETLs that shared one (tracked even with leases disabled).
	ReadRounds    uint64 `json:"readRounds"`
	ReadCoalesced uint64 `json:"readCoalesced"`
}

// String renders the snapshot in the STATS line's key=value idiom.
func (st LeaseStats) String() string {
	return fmt.Sprintf(
		"lease_valid=%t lease_holder=%d lease_hits=%d lease_misses=%d lease_expired=%d lease_revoked=%d lease_grants=%d lease_refused=%d lease_fenced=%d read_rounds=%d read_coalesced=%d",
		st.Valid, st.Holder, st.Hits, st.Misses, st.Expired, st.Revoked,
		st.Grants, st.Refused, st.Fenced, st.ReadRounds, st.ReadCoalesced)
}

// LeaseStats snapshots the lease/read counters.
func (r *Replica) LeaseStats() LeaseStats {
	r.rgate.mu.Lock()
	st := LeaseStats{
		Holder:        -1,
		ReadRounds:    r.rgate.rounds,
		ReadCoalesced: r.rgate.coalesced,
	}
	r.rgate.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ls == nil {
		return st
	}
	st.Enabled = true
	st.Valid = r.ls.tab.HolderValid(r.ls.now())
	st.Holder = r.ls.tab.Holder()
	st.Hits, st.Misses = r.ls.hits, r.ls.misses
	st.Expired, st.Revoked, st.Grants = r.ls.expired, r.ls.revoked, r.ls.grants
	st.Refused, st.Fenced = r.ls.refused, r.ls.fencedN
	return st
}

// isNoopValue reports whether an encoded command is a bare read no-op.
// Sound by construction: AppendJSONString escapes every '"', so no key or
// value a client controls can make a different command's encoding end in
// an unescaped `,"op":"noop"}` — only a Subs-free, Key/Val-free OpNoop
// does (a no-op with operands set encodes trailing fields and is treated,
// conservatively, as a write).
func isNoopValue(data string) bool {
	return strings.HasSuffix(data, `,"op":"noop"}`)
}
