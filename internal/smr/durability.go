package smr

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/wal"
)

// The durability layer turns the replica from the paper's crash-stop model
// into crash-recovery: every per-slot durable fact (current ballot, last
// vote, decided value) is journaled to a WAL before any message or client
// acknowledgement that depends on it leaves the process, and the applied
// store state is checkpointed into atomic snapshots so the WAL can be
// truncated. On restart the replica replays snapshot + WAL tail and
// resumes with its promises intact — the property the paper's recovery
// rule (set R, Lemmas 3 and 7) assumes of a recovering acceptor.

// Journal is the append-log surface the durability layer writes through.
// *wal.WAL satisfies it; the sharded runtime (internal/shard) substitutes
// per-group views of one process-wide WAL, so N groups share a single
// group-commit stream and a single on-disk log.
type Journal interface {
	Append(payload []byte) (uint64, error)
	AppendBuffered(payload []byte) (uint64, error)
	Commit(index uint64) error
	Sync() error
	NextIndex() uint64
	Stats() wal.Stats
	TruncateBefore(index uint64) (int, error)
	Replay(from uint64, fn func(index uint64, payload []byte) error) (wal.ReplayInfo, error)
	Close() error
	Abort() error
}

// DurabilityOptions configures EnableDurability.
type DurabilityOptions struct {
	// Dir is the data directory; the WAL lives in Dir/wal and snapshots in
	// Dir/snap.
	Dir string
	// Journal, when non-nil, substitutes an externally owned journal for
	// the WAL this call would otherwise open under Dir/wal — the sharded
	// runtime passes per-group views of one process-wide WAL here (Dir
	// then only hosts the snapshots). Ownership stays with the caller:
	// Close leaves the journal open (the owner syncs and closes it once,
	// after every sharer) and Kill does not abort it (the owner aborts
	// before killing the sharers, see shard.Runtime.Kill).
	Journal Journal
	// Group tags every record this replica appends to the journal and
	// filters replay: records carrying another group's id are skipped.
	// Untagged records — every WAL written before sharding existed — belong
	// to group 0, which is what makes the single-group layout read old
	// logs unchanged.
	Group int
	// Policy is the WAL fsync policy. With SyncInterval the replica drives
	// the sync from its own timer every SyncEvery.
	Policy wal.SyncPolicy
	// SyncEvery is the fsync period under SyncInterval (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes caps WAL segment size (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// SnapshotEvery is how many applied commands elapse between automatic
	// snapshots (default 64; <0 disables automatic snapshots).
	SnapshotEvery int
	// FailpointLimit, when >0, injects a crash after that many WAL bytes
	// (tests only; see wal.Options.FailpointLimit).
	FailpointLimit int64
	// SyncHook, when set, runs immediately before each WAL fsync (tests
	// only; see wal.Options.SyncHook). Stalling it stalls durability, which
	// must stall every dependent message and completion.
	SyncHook func()
}

const defaultSnapshotEvery = 64

// RecoveryInfo reports what EnableDurability reconstructed.
type RecoveryInfo struct {
	Recovered       bool // any prior on-disk state was found
	SnapshotApplied int  // applied index of the snapshot used (0 if none)
	WalRecords      int  // WAL records replayed on top of the snapshot
	TornTail        bool // the WAL tail was torn and truncated
	Applied         int  // applied index after recovery
	OpenSlots       int  // live slot instances restored
}

// durable is the replica's persistence state (guarded by Replica.mu).
type durable struct {
	wal       Journal
	ownsWAL   bool // false: shared journal, lifecycle belongs to the sharer
	group     int  // id tagged into records / matched on replay
	snapDir   string
	snapEvery int
	policy    wal.SyncPolicy
	syncEvery time.Duration
	// persisted caches the last journaled state per slot so unchanged
	// steps append nothing.
	persisted map[int]core.State
	// buffered is the WAL index of the last record appended without an
	// inline fsync; critical is the newest record that guards safety — a
	// promise or vote change a peer may act on. Outbox entries that only
	// carry messages depend on critical: a decide record is derivable from
	// the quorum of already-durable accept records that produced it, so a
	// decide broadcast need not wait for the local bookkeeping to hit disk.
	// Entries that complete client calls (wakes) depend on buffered — an
	// acknowledgement promises everything the step journaled is durable.
	buffered uint64
	critical uint64
	// sinceSnap counts commands applied since the last snapshot.
	sinceSnap int
	snapIndex int // applied index of the newest snapshot
	err       error
}

// WAL record kinds.
const (
	walKindState  = "s" // per-slot durable core state
	walKindDecide = "d" // a decision learned for a slot
)

// walEntry is the JSON payload of one WAL record. G is the consensus group
// that wrote it: groups interleave records in one shared WAL and recovery
// demuxes on it. omitempty keeps group 0's records byte-identical to the
// pre-sharding format, so old WALs replay as group 0 with no version bump.
type walEntry struct {
	Kind  string           `json:"k"`
	G     int              `json:"g,omitempty"`
	Slot  int              `json:"slot"`
	State *core.State      `json:"st,omitempty"`
	Val   *consensus.Value `json:"v,omitempty"`
}

// durableSnapshot is the JSON blob handed to internal/storage. WalNext is
// the WAL index the snapshot is consistent up to: replay resumes there and
// everything before it may be truncated.
type durableSnapshot struct {
	Applied      int                     `json:"applied"`
	Store        map[string]string       `json:"store"`
	CompactFloor int                     `json:"compactFloor"`
	Seq          int64                   `json:"seq"`
	WalNext      uint64                  `json:"walNext"`
	Slots        map[int]core.State      `json:"slots,omitempty"`
	Log          map[int]consensus.Value `json:"log,omitempty"`
	// LeaseHolder/LeaseRemain persist the lease view as (holder, residual
	// guard ns) — a duration, so recovery (at any later real time) imports
	// a window no shorter than the true one. Own serving rights are never
	// exported to the snapshot's own replica: Import drops self-grants, so
	// a crash-restart always forgets its lease. omitempty keeps lease-free
	// snapshots byte-identical to the old format.
	LeaseHolder *int  `json:"leaseHolder,omitempty"`
	LeaseRemain int64 `json:"leaseRemain,omitempty"`
}

// EnableDurability opens (or creates) the durability state under opts.Dir
// and recovers the replica from it. Call after NewReplica and before
// BindTransport/Start; the replica must not have processed any input yet.
func (r *Replica) EnableDurability(opts DurabilityOptions) (RecoveryInfo, error) {
	if opts.Dir == "" {
		return RecoveryInfo{}, fmt.Errorf("smr durability: empty dir")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	snapDir := filepath.Join(opts.Dir, "snap")
	snapIdx, blob, haveSnap, err := storage.Load(snapDir)
	if err != nil {
		return RecoveryInfo{}, fmt.Errorf("smr durability: %w", err)
	}
	var snap durableSnapshot
	if haveSnap {
		if err := json.Unmarshal(blob, &snap); err != nil {
			return RecoveryInfo{}, fmt.Errorf("smr durability: snapshot decode: %w", err)
		}
	}
	var (
		w     Journal
		owns  bool
		oinfo wal.OpenInfo
	)
	if opts.Journal != nil {
		w = opts.Journal
	} else {
		ww, oi, err := wal.Open(filepath.Join(opts.Dir, "wal"), wal.Options{
			SegmentBytes:   opts.SegmentBytes,
			Policy:         opts.Policy,
			FailpointLimit: opts.FailpointLimit,
			SyncHook:       opts.SyncHook,
		})
		if err != nil {
			return RecoveryInfo{}, fmt.Errorf("smr durability: %w", err)
		}
		w, owns, oinfo = ww, true, oi
	}
	closeOwned := func() {
		if owns {
			w.Close()
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dur != nil {
		closeOwned()
		return RecoveryInfo{}, fmt.Errorf("smr durability: already enabled")
	}
	if r.closed {
		closeOwned()
		return RecoveryInfo{}, ErrClosed
	}
	r.dur = &durable{
		wal:       w,
		ownsWAL:   owns,
		group:     opts.Group,
		snapDir:   snapDir,
		snapEvery: opts.SnapshotEvery,
		policy:    opts.Policy,
		syncEvery: opts.SyncEvery,
		persisted: make(map[int]core.State),
		snapIndex: int(snapIdx),
	}

	info := RecoveryInfo{
		Recovered:       haveSnap,
		SnapshotApplied: snap.Applied,
		TornTail:        oinfo.TornTail,
	}

	// 1. Snapshot state first: store, applied index, command sequence.
	if haveSnap {
		r.applied = snap.Applied
		r.store = make(map[string]string, len(snap.Store))
		for k, v := range snap.Store {
			r.store[k] = v
		}
		if snap.CompactFloor > r.compactFloor {
			r.compactFloor = snap.CompactFloor
		}
		if snap.Seq > r.seq {
			r.seq = snap.Seq
		}
		for slot, v := range snap.Log {
			if slot >= r.applied {
				r.log[slot] = v
			}
		}
		if r.ls != nil && snap.LeaseHolder != nil {
			r.ls.tab.Import(*snap.LeaseHolder, snap.LeaseRemain, r.ls.now())
		}
	}

	// 2. WAL tail on top: collect the last journaled state per slot and any
	// decisions, ignoring records for slots the snapshot already covers.
	states := make(map[int]core.State)
	for slot, st := range snap.Slots {
		if slot >= snap.Applied {
			states[slot] = st
		}
	}
	rinfo, err := w.Replay(snap.WalNext, func(_ uint64, payload []byte) error {
		var e walEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("smr durability: wal record decode: %w", err)
		}
		if e.G != opts.Group {
			return nil // another group's record in the shared WAL
		}
		if e.Slot < snap.Applied {
			return nil // superseded by the snapshot
		}
		switch e.Kind {
		case walKindState:
			if e.State != nil {
				states[e.Slot] = *e.State
				if !e.State.Decided.IsNone() {
					r.log[e.Slot] = e.State.Decided
				}
			}
		case walKindDecide:
			if e.Val != nil {
				r.log[e.Slot] = *e.Val
			}
		}
		return nil
	})
	if err != nil {
		closeOwned()
		r.dur = nil
		return RecoveryInfo{}, err
	}
	info.WalRecords = rinfo.Records
	info.TornTail = info.TornTail || rinfo.TornTail
	if rinfo.Records > 0 {
		info.Recovered = true
	}

	// 3. Re-apply decided commands in slot order.
	for {
		next, ok := r.log[r.applied]
		if !ok {
			break
		}
		r.applyCommandLocked(next)
		r.applied++
	}

	// 4. A restarted replica must never re-enter a slot below its applied
	// index with a fresh (amnesiac) instance: raise the compaction floor so
	// stragglers there are served snapshots instead.
	if r.applied > r.compactFloor {
		r.compactFloor = r.applied
	}
	if r.applied > r.maxSeenApplied {
		r.maxSeenApplied = r.applied
	}
	if r.applied > r.freeHint {
		r.freeHint = r.applied
	}
	for slot := range r.log {
		if slot < r.compactFloor {
			delete(r.log, slot)
		}
	}

	// 5. Rebuild live instances for open slots with their promises intact.
	for slot, st := range states {
		if slot < r.applied {
			continue
		}
		node := core.NewUnchecked(r.cfg, core.ModeObject, core.DefaultOptions(), r.det)
		if err := node.Restore(st); err != nil {
			closeOwned()
			r.dur = nil
			return RecoveryInfo{}, fmt.Errorf("smr durability: slot %d: %w", slot, err)
		}
		r.slots[slot] = node
		r.dur.persisted[slot] = st
		r.applyTimersOnlyLocked(slot, node, node.Start())
	}
	info.OpenSlots = len(r.slots)
	info.Applied = r.applied

	// 6. Never reuse a command sequence number from a previous life.
	r.recoverSeqLocked()

	if opts.Policy == wal.SyncInterval {
		r.scheduleWalSyncLocked()
	}
	return info, nil
}

// recoverSeqLocked bumps r.seq past any of this replica's own command IDs
// visible in the recovered log, so restarted clients never collide with
// pre-crash commands.
func (r *Replica) recoverSeqLocked() {
	prefix := fmt.Sprintf("%s-", r.cfg.ID)
	var bump func(cmd Command)
	bump = func(cmd Command) {
		if strings.HasPrefix(cmd.ID, prefix) {
			if n, err := strconv.ParseInt(strings.TrimPrefix(cmd.ID, prefix), 10, 64); err == nil && n > r.seq {
				r.seq = n
			}
		}
		for _, sub := range cmd.Subs {
			bump(sub)
		}
	}
	for _, v := range r.log {
		if cmd, err := DecodeCommand(v); err == nil {
			bump(cmd)
		}
	}
}

// scheduleWalSyncLocked (re)arms the periodic WAL fsync under SyncInterval.
func (r *Replica) scheduleWalSyncLocked() {
	const key = "smr/walsync"
	r.gens[key]++
	gen := r.gens[key]
	if t, ok := r.timers[key]; ok {
		t.Stop()
	}
	r.timers[key] = time.AfterFunc(r.dur.syncEvery, func() {
		r.mu.Lock()
		if r.closed || r.dur == nil || r.gens[key] != gen {
			r.mu.Unlock()
			return
		}
		w := r.dur.wal
		r.scheduleWalSyncLocked()
		r.mu.Unlock()
		// The fsync runs off the lock; a failure poisons the replica the
		// same way an in-step persist failure does.
		if err := w.Sync(); err != nil {
			r.ioFail(err)
		}
	})
}

// persistFailLocked poisons the replica after a journaling failure: no
// state transition may become externally visible without its WAL record,
// so the only safe continuation is none. Waiters still registered are
// released (Execute and WaitApplied map the closed channels to ErrClosed);
// channels owned by queued wakeups are the outbox consumer's to fire.
func (r *Replica) persistFailLocked(err error) {
	if r.dur.err == nil {
		r.dur.err = err
	}
	r.closed = true
	for _, chs := range r.waiters {
		for _, ch := range chs {
			close(ch)
		}
	}
	r.waiters = make(map[int][]chan consensus.Value)
	for _, chs := range r.appliedW {
		for _, ch := range chs {
			close(ch)
		}
	}
	r.appliedW = make(map[int][]chan struct{})
}

// appendEntryLocked journals one WAL entry; false poisons the replica. On
// the outbox path the append is buffered — durability is the consumer's
// job, via Commit, before any dependent message or wakeup escapes; critical
// marks records whose loss could break safety (see the durable struct). The
// legacy path keeps the inline (group-committed) fsync of the pre-overhaul
// hot path.
func (r *Replica) appendEntryLocked(e walEntry, critical bool) bool {
	e.G = r.dur.group
	payload, err := json.Marshal(e)
	if err != nil {
		r.persistFailLocked(err)
		return false
	}
	if r.legacy {
		//lint:allow iolock legacy baseline path: fsync under the replica lock is the point
		if _, err := r.dur.wal.Append(payload); err != nil {
			r.persistFailLocked(err)
			return false
		}
		return true
	}
	idx, err := r.dur.wal.AppendBuffered(payload)
	if err != nil {
		r.persistFailLocked(err)
		return false
	}
	r.dur.buffered = idx
	if critical {
		r.dur.critical = idx
	}
	return true
}

// persistSlotLocked journals slot's durable state if it changed since the
// last journaled state. Call after applying a slot's effects and before
// any of them escape (flush or waiter wake-up). Returns false (and poisons
// the replica) on failure.
func (r *Replica) persistSlotLocked(slot int) bool {
	if r.dur == nil {
		return true
	}
	if r.dur.err != nil {
		return false
	}
	node, ok := r.slots[slot]
	if !ok {
		return true
	}
	st := node.Snapshot()
	prev, had := r.dur.persisted[slot]
	if had && prev == st {
		return true
	}
	// A record is sync-critical unless the only field that moved is Decided:
	// promises and votes must hit disk before any peer sees a message built
	// on them, while a decision is reconstructible from the quorum of durable
	// accepts that produced it (the recovery path re-decides the same value).
	masked := prev
	masked.Decided = st.Decided
	critical := !had || masked != st
	if !r.appendEntryLocked(walEntry{Kind: walKindState, Slot: slot, State: &st}, critical) {
		return false
	}
	r.dur.persisted[slot] = st
	return true
}

// noteSlotCreatedLocked records a fresh instance's baseline state so that
// untouched slots journal nothing (a brand-new instance is reproducible by
// the absence of records).
func (r *Replica) noteSlotCreatedLocked(slot int, node *core.Node) {
	if r.dur == nil {
		return
	}
	r.dur.persisted[slot] = node.Snapshot()
}

// persistDecideLocked journals a decision before it is applied or any
// waiter observes it. Bare read no-ops skip the decide record entirely:
// they carry no state, and the slot's decision is still recoverable — a
// replica that ran the instance journals it inside the slot's state record
// (persistSlotLocked fires at decide time because State.Decided moved),
// and a replica that merely adopted the decide re-learns it from peers via
// catchup, exactly like a dropped decide message.
func (r *Replica) persistDecideLocked(slot int, v consensus.Value) bool {
	if r.dur == nil {
		return true
	}
	if r.dur.err != nil {
		return false
	}
	if isNoopValue(v.Data) {
		return true
	}
	return r.appendEntryLocked(walEntry{Kind: walKindDecide, Slot: slot, Val: &v}, false)
}

// maybeSnapshotLocked checkpoints the applied state every snapEvery applied
// commands and truncates the WAL behind the checkpoint.
func (r *Replica) maybeSnapshotLocked(appliedNow int) {
	if r.dur == nil || r.dur.err != nil || r.dur.snapEvery < 0 {
		return
	}
	r.dur.sinceSnap += appliedNow
	if r.dur.sinceSnap < r.dur.snapEvery {
		return
	}
	r.writeSnapshotLocked()
}

// writeSnapshotLocked saves a durable snapshot of the applied state and
// truncates obsolete WAL segments. Failures poison the replica.
func (r *Replica) writeSnapshotLocked() {
	if r.dur == nil || r.dur.err != nil {
		return
	}
	snap := durableSnapshot{
		Applied:      r.applied,
		Store:        make(map[string]string, len(r.store)),
		CompactFloor: r.compactFloor,
		Seq:          r.seq,
		WalNext:      r.dur.wal.NextIndex(),
	}
	for k, v := range r.store {
		snap.Store[k] = v
	}
	for slot, node := range r.slots {
		if slot >= r.applied {
			if snap.Slots == nil {
				snap.Slots = make(map[int]core.State)
			}
			snap.Slots[slot] = node.Snapshot()
		}
	}
	for slot, v := range r.log {
		if slot >= r.applied {
			if snap.Log == nil {
				snap.Log = make(map[int]consensus.Value)
			}
			snap.Log[slot] = v
		}
	}
	if r.ls != nil {
		if h, remain := r.ls.tab.Export(r.ls.now()); h >= 0 && remain > 0 {
			snap.LeaseHolder = &h
			snap.LeaseRemain = remain
		}
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		r.persistFailLocked(err)
		return
	}
	// The WAL must be on disk before the snapshot that references WalNext.
	// Cold path (runs every snapEvery applied commands), so the in-lock
	// fsync is tolerable; the hot path never comes through here.
	//lint:allow iolock snapshot cut must be atomic with the state it captures
	if err := r.dur.wal.Sync(); err != nil {
		r.persistFailLocked(err)
		return
	}
	if err := storage.Save(r.dur.snapDir, uint64(r.applied), blob); err != nil {
		r.persistFailLocked(err)
		return
	}
	r.dur.snapIndex = r.applied
	r.dur.sinceSnap = 0
	if _, err := r.dur.wal.TruncateBefore(snap.WalNext); err != nil {
		r.persistFailLocked(err)
	}
}

// Snapshot forces a durable checkpoint now (no-op without durability).
func (r *Replica) Snapshot() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dur == nil {
		return nil
	}
	r.writeSnapshotLocked()
	return r.dur.err
}

// SyncWAL forces an fsync of the WAL (no-op without durability). The
// SyncInterval policy calls this from a timer; hosts with their own clock
// discipline may drive it directly. The fsync itself runs off the replica
// lock.
func (r *Replica) SyncWAL() error {
	r.mu.Lock()
	if r.dur == nil {
		r.mu.Unlock()
		return nil
	}
	if err := r.dur.err; err != nil {
		r.mu.Unlock()
		return err
	}
	w := r.dur.wal
	r.mu.Unlock()
	if err := w.Sync(); err != nil {
		r.ioFail(err)
		return err
	}
	return nil
}

// ReplicaInfo is the operational summary served by the INFO command.
type ReplicaInfo struct {
	Applied       int    `json:"applied"`
	OpenSlots     int    `json:"openSlots"`
	CompactFloor  int    `json:"compactFloor"`
	Durable       bool   `json:"durable"`
	WalSegments   int    `json:"walSegments,omitempty"`
	WalBytes      int64  `json:"walBytes,omitempty"`
	WalNextIndex  uint64 `json:"walNextIndex,omitempty"`
	WalSyncs      uint64 `json:"walSyncs,omitempty"`
	SnapshotIndex int    `json:"snapshotIndex,omitempty"`
	// Lease is present when EnableLeases was called (see LeaseStats).
	Lease *LeaseStats `json:"lease,omitempty"`
}

// Info reports the replica's applied index, open slots, and durability
// state.
func (r *Replica) Info() ReplicaInfo {
	var lst *LeaseStats
	if st := r.LeaseStats(); st.Enabled {
		lst = &st
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	open := 0
	for slot := range r.slots {
		if slot >= r.applied {
			open++
		}
	}
	info := ReplicaInfo{
		Applied:      r.applied,
		OpenSlots:    open,
		CompactFloor: r.compactFloor,
		Lease:        lst,
	}
	if r.dur != nil {
		st := r.dur.wal.Stats()
		info.Durable = true
		info.WalSegments = st.Segments
		info.WalBytes = st.Bytes
		info.WalNextIndex = st.NextIndex
		info.WalSyncs = st.Syncs
		info.SnapshotIndex = r.dur.snapIndex
	}
	return info
}

// String renders the info as the single key=value line the server's INFO
// command serves.
func (i ReplicaInfo) String() string {
	s := fmt.Sprintf("applied=%d open_slots=%d compact_floor=%d durable=%t",
		i.Applied, i.OpenSlots, i.CompactFloor, i.Durable)
	if i.Durable {
		s += fmt.Sprintf(" wal_segments=%d wal_bytes=%d wal_next=%d wal_syncs=%d snapshot_index=%d",
			i.WalSegments, i.WalBytes, i.WalNextIndex, i.WalSyncs, i.SnapshotIndex)
	}
	if i.Lease != nil {
		s += fmt.Sprintf(" lease_holder=%d lease_valid=%t lease_hits=%d lease_misses=%d read_rounds=%d read_coalesced=%d",
			i.Lease.Holder, i.Lease.Valid, i.Lease.Hits, i.Lease.Misses, i.Lease.ReadRounds, i.Lease.ReadCoalesced)
	}
	return s
}

// sortedSlots returns m's keys ascending (catchup installs decisions in
// slot order so the apply loop advances deterministically).
func sortedSlots(m map[int]consensus.Value) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
