package smr_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/smr"
	"repro/internal/transport"
)

// gate drops inbound traffic to a replica while closed, simulating a
// network partition of one member.
type gate struct {
	mu    sync.Mutex
	open  bool
	inner transport.Handler
}

func (g *gate) handle(from consensus.ProcessID, msg consensus.Message) {
	g.mu.Lock()
	open := g.open
	g.mu.Unlock()
	if open {
		g.inner(from, msg)
	}
}

func (g *gate) setOpen(open bool) {
	g.mu.Lock()
	g.open = open
	g.mu.Unlock()
}

func TestLaggingReplicaCatchesUpViaSnapshot(t *testing.T) {
	const n, f, e = 3, 1, 1
	mesh := transport.NewMesh(n)
	defer mesh.Close()

	replicas := make([]*smr.Replica, n)
	var lagGate gate
	for i := 0; i < n; i++ {
		cfg := consensus.Config{ID: consensus.ProcessID(i), N: n, F: f, E: e, Delta: 10}
		r, err := smr.NewReplica(cfg, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		handler := transport.Handler(r.Handle)
		if i == 2 {
			lagGate.inner = r.Handle
			handler = lagGate.handle
		}
		tr, err := mesh.Endpoint(cfg.ID, handler)
		if err != nil {
			t.Fatal(err)
		}
		r.BindTransport(tr)
		replicas[i] = r
	}
	for _, r := range replicas {
		r.Start()
		defer r.Close()
	}

	// Partition replica 2, then commit a batch of writes through p0.
	lagGate.setOpen(false)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	const writes = 12
	for i := 0; i < writes; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if replicas[2].Applied() != 0 {
		t.Fatalf("partitioned replica applied %d slots", replicas[2].Applied())
	}

	// Compact the healthy replicas below their applied index, so replica
	// 2 cannot recover slot by slot — only via snapshot.
	if floor := replicas[0].Compact(0); floor != replicas[0].Applied() {
		t.Fatalf("compact floor = %d, want %d", floor, replicas[0].Applied())
	}
	replicas[1].Compact(0)

	// Heal the partition; the status gossip announces the healthy applied
	// index and replica 2 installs a snapshot.
	lagGate.setOpen(true)
	deadline := time.Now().Add(10 * time.Second)
	for replicas[2].Applied() < writes {
		if time.Now().After(deadline) {
			t.Fatalf("lagging replica stuck at %d/%d applied", replicas[2].Applied(), writes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < writes; i++ {
		if v, ok := replicas[2].Get(fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q ok=%v after catch-up", i, v, ok)
		}
	}

	// And the caught-up replica can serve writes again.
	kv2 := smr.NewKV(replicas[2])
	if err := kv2.Put(ctx, "after", "catchup"); err != nil {
		t.Fatalf("write through caught-up replica: %v", err)
	}
	if v, _ := kv2.Get("after"); v != "catchup" {
		t.Fatalf("after = %q", v)
	}
}

func TestSnapshotExportInstall(t *testing.T) {
	replicas, cleanup := startCluster(t, 3, 1, 1)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	if err := kv.Put(ctx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	data, err := replicas[0].SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	// A detached replica (not started, no transport) installs the export.
	cfg := consensus.Config{ID: 0, N: 3, F: 1, E: 1, Delta: 10}
	fresh, err := smr.NewReplica(cfg, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.InstallSnapshotJSON(data); err != nil {
		t.Fatal(err)
	}
	if v, ok := fresh.Get("a"); !ok || v != "1" {
		t.Fatalf("restored Get(a) = %q ok=%v", v, ok)
	}
	if fresh.Applied() != replicas[0].Applied() {
		t.Fatalf("applied %d != %d", fresh.Applied(), replicas[0].Applied())
	}
	if err := fresh.InstallSnapshotJSON([]byte("{bad")); err == nil {
		t.Fatal("bad snapshot accepted")
	}
}

func TestCompactKeepsRetainedWindow(t *testing.T) {
	replicas, cleanup := startCluster(t, 3, 1, 1)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	kv := smr.NewKV(replicas[0])
	for i := 0; i < 5; i++ {
		if err := kv.Put(ctx, fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	applied := replicas[0].Applied()
	floor := replicas[0].Compact(2)
	if floor != applied-2 {
		t.Fatalf("floor = %d, want %d", floor, applied-2)
	}
	if _, ok := replicas[0].LogValue(floor - 1); ok {
		t.Fatal("compacted slot still in log")
	}
	if _, ok := replicas[0].LogValue(applied - 1); !ok {
		t.Fatal("retained slot missing from log")
	}
	// Compacting backwards is a no-op.
	if got := replicas[0].Compact(100); got != floor {
		t.Fatalf("floor moved backwards: %d", got)
	}
}
