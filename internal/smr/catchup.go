package smr

import (
	"encoding/json"

	"repro/internal/consensus"
)

// Wire kinds for replica-level anti-entropy.
const (
	KindStatus         = "smr.status"
	KindCatchupRequest = "smr.catchup_req"
	KindCatchupReply   = "smr.catchup_reply"
)

// Status is the periodic applied-index gossip: each replica announces how
// many log slots it has applied, so lagging peers discover the gap and ask
// for a snapshot.
type Status struct {
	Applied int `json:"applied"`
}

// CatchupRequest asks a peer for state newer than From applied slots.
type CatchupRequest struct {
	From int `json:"from"`
}

// CatchupReply carries a state snapshot: the full store as of Applied
// applied slots, plus decided values for slots at or above Applied that
// the sender knows about but has not yet applied (gaps). Installing it
// replaces the receiver's store, lets it skip every slot below Applied,
// and closes decide gaps the receiver may have missed to message drops.
type CatchupReply struct {
	Applied int                     `json:"applied"`
	Store   map[string]string       `json:"store"`
	Decided map[int]consensus.Value `json:"decided,omitempty"`
	// LeaseHolder/LeaseRemain export the sender's lease view (holder and
	// remaining guard duration in nanoseconds) when leases are enabled: a
	// snapshot jump skips the grant applies, so the receiver imports the
	// guard window instead (see lease.Table.Export). Pointer so replies
	// from lease-free replicas stay byte-identical to the old encoding.
	LeaseHolder *int  `json:"leaseHolder,omitempty"`
	LeaseRemain int64 `json:"leaseRemain,omitempty"`
}

// Kind implements consensus.Message.
func (Status) Kind() string { return KindStatus }

// Kind implements consensus.Message.
func (CatchupRequest) Kind() string { return KindCatchupRequest }

// Kind implements consensus.Message.
func (CatchupReply) Kind() string { return KindCatchupReply }

// registerCatchupMessages is folded into RegisterMessages (replica.go).
func registerCatchupMessages(codec *consensus.Codec) {
	codec.MustRegister(KindStatus, func() consensus.Message { return &Status{} })
	codec.MustRegister(KindCatchupRequest, func() consensus.Message { return &CatchupRequest{} })
	codec.MustRegister(KindCatchupReply, func() consensus.Message { return &CatchupReply{} })
}

// snapshotJSON serializes a replica state snapshot (exported via
// (*Replica).SnapshotJSON for external persistence).
type replicaSnapshot struct {
	Applied int                     `json:"applied"`
	Store   map[string]string       `json:"store"`
	Decided map[int]consensus.Value `json:"decided,omitempty"`
}

func encodeSnapshot(applied int, store map[string]string, decided map[int]consensus.Value) ([]byte, error) {
	cp := make(map[string]string, len(store))
	for k, v := range store {
		cp[k] = v
	}
	return json.Marshal(replicaSnapshot{Applied: applied, Store: cp, Decided: decided})
}

func decodeSnapshot(data []byte) (int, map[string]string, map[int]consensus.Value, error) {
	var s replicaSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return 0, nil, nil, err
	}
	if s.Store == nil {
		s.Store = make(map[string]string)
	}
	return s.Applied, s.Store, s.Decided, nil
}
