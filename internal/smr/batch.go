package smr

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// batcher accumulates commands and replicates them as a single OpBatch
// command in one consensus instance — the standard throughput amplifier for
// SMR (many client operations per protocol round trip). It sits strictly
// above the replica: the consensus layer sees one value per slot either way.
//
// Two modes:
//
//   - fixed window (EnableBatching): the first command arms a timer; the
//     window's arrivals flush together when it fires. Amortizes well under
//     load but taxes an idle system with the full window of latency.
//   - adaptive (EnableAdaptiveBatching): a command finding the batcher idle
//     flushes immediately; commands arriving while that flush is in flight
//     accumulate and go out together the moment it completes. This is the
//     classic group-commit heuristic — batch-what-arrives-during-commit —
//     and costs an uncontended client nothing.
type batcher struct {
	replica  *Replica
	window   time.Duration
	maxSize  int
	adaptive bool

	mu       sync.Mutex
	pending  []Command
	waiters  []chan error
	flushing bool
	closed   bool
	batches  uint64 // consensus instances submitted
	cmds     uint64 // commands carried by them

	// wg accounts every flusher goroutine. Add happens under mu alongside
	// the closed check, so close() — which sets closed under mu and then
	// waits — either sees the Add or prevents the spawn; flushers that slip
	// in after close would otherwise touch a replica being torn down.
	wg sync.WaitGroup
}

// newBatcher builds a batcher with the given accumulation window and
// maximum batch size (commands).
func newBatcher(r *Replica, window time.Duration, maxSize int) *batcher {
	if maxSize <= 0 {
		maxSize = 64
	}
	return &batcher{replica: r, window: window, maxSize: maxSize}
}

// EnableBatching turns on fixed-window write batching for this replica's
// Execute-based APIs (KV included): commands submitted within `window` of
// each other are replicated together, up to maxSize per batch (0 = default
// 64). Must be called before the replica is shared between goroutines.
func (r *Replica) EnableBatching(window time.Duration, maxSize int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batch = newBatcher(r, window, maxSize)
}

// EnableAdaptiveBatching turns on adaptive write batching (see the batcher
// comment): no added latency when idle, full batching under concurrency.
// maxSize caps one batch (0 = default 64). Must be called before the
// replica is shared between goroutines.
func (r *Replica) EnableAdaptiveBatching(maxSize int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := newBatcher(r, 0, maxSize)
	b.adaptive = true
	r.batch = b
}

// BatchStats is the batcher's counter surface (expvar, F4b).
type BatchStats struct {
	Mode    string `json:"mode"` // off, fixed, adaptive
	Batches uint64 `json:"batches"`
	Cmds    uint64 `json:"cmds"`
}

// BatchStats reports batching mode and counters.
func (r *Replica) BatchStats() BatchStats {
	r.mu.Lock()
	b := r.batch
	r.mu.Unlock()
	if b == nil {
		return BatchStats{Mode: "off"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	mode := "fixed"
	if b.adaptive {
		mode = "adaptive"
	}
	return BatchStats{Mode: mode, Batches: b.batches, Cmds: b.cmds}
}

// executeBatched enqueues cmd and blocks until its batch is decided and
// applied (or ctx is done — note the batch may still commit afterwards).
func (b *batcher) executeBatched(ctx context.Context, cmd Command) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.pending = append(b.pending, cmd)
	ch := make(chan error, 1)
	b.waiters = append(b.waiters, ch)
	full := len(b.pending) >= b.maxSize
	inline := false
	if !b.flushing {
		b.flushing = true
		if b.adaptive {
			// First arrival of a burst: flush on this goroutine. An idle
			// batcher therefore adds no handoff — the uncontended client
			// pays exactly an unbatched Execute — and only if commands
			// accumulate during the flush is the drain loop spawned.
			inline = true
		} else {
			b.wg.Add(1)
			go b.flushAfter(b.window)
		}
	} else if full && !b.adaptive {
		// Flush immediately by signalling with a zero-delay flusher; the
		// in-flight timer flush will find nothing left. (The adaptive loop
		// splits oversize queues by itself.)
		b.wg.Add(1)
		go b.flushAfter(0)
	}
	b.mu.Unlock()
	if inline {
		b.flushFirst()
	}

	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return fmt.Errorf("smr batch execute: %w", ctx.Err())
	}
}

// flushLoop drains the queue in maxSize chunks until it is empty, then
// parks (flushing=false). While one chunk is in consensus, new arrivals
// accumulate behind it and form the next chunk — the adaptive window is
// exactly the in-flight commit's duration.
func (b *batcher) flushLoop() {
	defer b.wg.Done()
	var woke int
	var lastFlush time.Duration
	for {
		if woke > 2 && lastFlush > 0 {
			// The waiters just released are this batcher's own future load:
			// give them one beat to resubmit so the next chunk carries them
			// all. Without it the loop re-collects before they reach the
			// queue and the population splits into two half-size batches
			// alternating forever. The beat is a fraction of the commit just
			// paid, so it never dominates the cycle, and small populations
			// (woke <= 2) skip it: for them the delay costs more latency
			// than the one fsync it could merge.
			gather := lastFlush / 4
			if gather > time.Millisecond {
				gather = time.Millisecond
			}
			time.Sleep(gather)
		}
		cmds, waiters, ok := b.takeChunk()
		if !ok {
			return
		}
		start := time.Now()
		b.flushOne(cmds, waiters)
		lastFlush = time.Since(start)
		woke = len(cmds)
	}
}

// takeChunk detaches up to maxSize pending commands for flushing; when the
// queue is empty (or the batcher closed) it parks the batcher instead
// (flushing = false) and reports false.
func (b *batcher) takeChunk() ([]Command, []chan error, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.pending)
	if n == 0 || b.closed {
		b.flushing = false
		return nil, nil, false
	}
	if n > b.maxSize {
		n = b.maxSize
	}
	cmds := b.pending[:n:n]
	waiters := b.waiters[:n:n]
	b.pending = b.pending[n:]
	b.waiters = b.waiters[n:]
	return cmds, waiters, true
}

// flushFirst runs the opening flush of an adaptive burst on the submitting
// goroutine, then hands any backlog that built up behind it to flushLoop.
func (b *batcher) flushFirst() {
	cmds, waiters, ok := b.takeChunk()
	if !ok {
		return
	}
	b.flushOne(cmds, waiters)
	b.mu.Lock()
	more := len(b.pending) > 0 && !b.closed
	if !more {
		b.flushing = false
	} else {
		b.wg.Add(1)
	}
	b.mu.Unlock()
	if more {
		go b.flushLoop()
	}
}

// flushAfter waits for the window and replicates everything pending, split
// into maxSize chunks.
func (b *batcher) flushAfter(window time.Duration) {
	defer b.wg.Done()
	if window > 0 {
		time.Sleep(window)
	}
	b.mu.Lock()
	cmds := b.pending
	waiters := b.waiters
	b.pending = nil
	b.waiters = nil
	b.flushing = false
	b.mu.Unlock()
	for len(cmds) > 0 {
		n := len(cmds)
		if n > b.maxSize {
			n = b.maxSize
		}
		b.flushOne(cmds[:n:n], waiters[:n:n])
		cmds, waiters = cmds[n:], waiters[n:]
	}
}

// flushOne replicates one chunk and distributes the outcome to its
// waiters. A single command skips the OpBatch wrapper entirely, so an
// uncontended adaptive submit costs exactly one unbatched Submit.
func (b *batcher) flushOne(cmds []Command, waiters []chan error) {
	var batch Command
	if len(cmds) == 1 {
		batch = cmds[0]
	} else {
		batch = Command{Op: OpBatch, Subs: cmds}
		// The batch needs its own unique ID (sub-IDs are already unique,
		// but the batch value must be distinguishable as a whole).
		b.replica.mu.Lock()
		b.replica.seq++
		batch.ID = fmt.Sprintf("%s-batch-%d", b.replica.cfg.ID, b.replica.seq)
		b.replica.mu.Unlock()
	}
	b.mu.Lock()
	b.batches++
	b.cmds += uint64(len(cmds))
	b.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	slot, err := b.replica.Execute(ctx, batch)
	if err == nil {
		err = b.replica.WaitApplied(ctx, slot)
	}
	if err == nil && b.replica.takeFenced(slot) {
		// Same downgrade as Submit: the chunk applied, but a concurrent
		// leaseholder may not have observed it, so the ack must stay
		// ambiguous rather than definite.
		err = ErrLeaseFenced
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// close fails the queued waiters and waits for every flusher goroutine to
// exit; chunks already detached by an in-flight flush report their own
// outcome (the replica is marked closed before close is called, so those
// flushes fail fast in Execute). Waiting outside b.mu is essential: an
// in-flight flusher takes the lock to detach its chunk or park, and must
// not deadlock against its own reaper.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	for _, ch := range b.waiters {
		ch <- ErrClosed
	}
	b.pending, b.waiters = nil, nil
	b.mu.Unlock()
	b.wg.Wait()
}
