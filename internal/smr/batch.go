package smr

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// batcher accumulates commands for a short window and replicates them as a
// single OpBatch command in one consensus instance — the standard
// throughput amplifier for SMR (many client operations per protocol round
// trip). It sits strictly above the replica: the consensus layer sees one
// value per slot either way.
type batcher struct {
	replica *Replica
	window  time.Duration
	maxSize int

	mu       sync.Mutex
	pending  []Command
	waiters  []chan error
	flushing bool
	closed   bool
}

// newBatcher builds a batcher with the given accumulation window and
// maximum batch size (commands).
func newBatcher(r *Replica, window time.Duration, maxSize int) *batcher {
	if maxSize <= 0 {
		maxSize = 64
	}
	return &batcher{replica: r, window: window, maxSize: maxSize}
}

// EnableBatching turns on write batching for this replica's Execute-based
// APIs (KV included): commands submitted within `window` of each other are
// replicated together, up to maxSize per batch (0 = default 64). Must be
// called before the replica is shared between goroutines.
func (r *Replica) EnableBatching(window time.Duration, maxSize int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batch = newBatcher(r, window, maxSize)
}

// executeBatched enqueues cmd and blocks until its batch is decided and
// applied (or ctx is done — note the batch may still commit afterwards).
func (b *batcher) executeBatched(ctx context.Context, cmd Command) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.pending = append(b.pending, cmd)
	ch := make(chan error, 1)
	b.waiters = append(b.waiters, ch)
	full := len(b.pending) >= b.maxSize
	if !b.flushing {
		b.flushing = true
		go b.flushAfter(b.window)
	} else if full {
		// Flush immediately by signalling with a zero-delay flusher;
		// the in-flight timer flush will find nothing left.
		go b.flushAfter(0)
	}
	b.mu.Unlock()

	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return fmt.Errorf("smr batch execute: %w", ctx.Err())
	}
}

// flushAfter waits for the window and replicates everything pending.
func (b *batcher) flushAfter(window time.Duration) {
	if window > 0 {
		time.Sleep(window)
	}
	b.mu.Lock()
	cmds := b.pending
	waiters := b.waiters
	b.pending = nil
	b.waiters = nil
	b.flushing = false
	b.mu.Unlock()
	if len(cmds) == 0 {
		return
	}

	batch := Command{Op: OpBatch, Subs: cmds}
	// The batch needs its own unique ID (sub-IDs are already unique, but
	// the batch value must be distinguishable as a whole).
	b.replica.mu.Lock()
	b.replica.seq++
	batch.ID = fmt.Sprintf("%s-batch-%d", b.replica.cfg.ID, b.replica.seq)
	b.replica.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	slot, err := b.replica.Execute(ctx, batch)
	if err == nil {
		err = b.replica.WaitApplied(ctx, slot)
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// close fails the current queue.
func (b *batcher) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	for _, ch := range b.waiters {
		ch <- ErrClosed
	}
	b.pending, b.waiters = nil, nil
}
