package smr

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The read gate coalesces concurrent linearizable reads behind shared
// no-op consensus rounds (read-index batching). The first GETL with no
// leader becomes the round leader; reads arriving while its round is in
// flight queue up, and when the round completes the leader hands
// leadership to one of them — whose round then covers every other queued
// read (each queued read joined before that round's no-op was proposed, so
// the round is a valid barrier for it). One consensus round thus retires N
// reads instead of 1, without any spawned goroutine: leadership is always
// carried by a caller already blocked in ReadBarrier.

// readRoundTimeout bounds a shared no-op round. The round deliberately
// does NOT use any single caller's context: a canceled rider must not
// poison the round every other rider is waiting on.
const readRoundTimeout = 30 * time.Second

// readWaiter states (atomic): a waiter is claimed by whoever CASes first —
// the round leader delivering a turn, or the waiter itself abandoning on
// context cancellation. Exactly one side wins, so a turn is never lost and
// an abandoned waiter is never left leading.
const (
	rwWaiting   = 0
	rwAbandoned = 1
	rwClaimed   = 2
)

type readTurn struct {
	lead bool  // you lead the next round (err unset)
	err  error // result of the round that covered you
}

type readWaiter struct {
	ch    chan readTurn // buffered(1): turn delivery never blocks
	state atomic.Int32
}

type readGate struct {
	mu      sync.Mutex
	leading bool
	next    []*readWaiter
	// legacy reverts to one no-op round per read (bench baseline).
	legacy bool

	rounds    uint64 // no-op rounds run
	coalesced uint64 // reads that shared another read's round
}

// SetPerReadNoop reverts GetLinearizable's fallback to one no-op round per
// read — the pre-coalescing baseline, kept for A/B measurement (F9 bench).
//
// The read gate carries its own mutex (always acquired before Replica.mu,
// never while holding it), so Replica.mu is deliberately not taken here.
//
//lint:allow lockguard
func (r *Replica) SetPerReadNoop(on bool) {
	r.rgate.mu.Lock()
	r.rgate.legacy = on
	r.rgate.mu.Unlock()
}

// ReadBarrier ensures every command acknowledged anywhere before this call
// started has been applied to the local store when it returns: the
// linearizable-read barrier behind GetLinearizable's non-lease path.
// Concurrent callers share no-op rounds through the read gate.
//
// Guarded by the gate's own mutex, not Replica.mu (see SetPerReadNoop).
//
//lint:allow lockguard
func (r *Replica) ReadBarrier(ctx context.Context) error {
	g := &r.rgate
	g.mu.Lock()
	if g.legacy {
		g.rounds++
		g.mu.Unlock()
		return r.readRound(ctx)
	}
	if !g.leading {
		g.leading = true
		g.mu.Unlock()
		return r.leadReadRound()
	}
	w := &readWaiter{ch: make(chan readTurn, 1)}
	g.next = append(g.next, w)
	g.mu.Unlock()

	select {
	case turn := <-w.ch:
		if turn.lead {
			return r.leadReadRound()
		}
		return turn.err
	case <-ctx.Done():
		if w.state.CompareAndSwap(rwWaiting, rwAbandoned) {
			return fmt.Errorf("smr read barrier: %w", ctx.Err())
		}
		// A turn was already committed to us; honor it so queued readers
		// behind us are not orphaned, but report our own cancellation.
		if turn := <-w.ch; turn.lead {
			r.abdicateReadLead()
		}
		return fmt.Errorf("smr read barrier: %w", ctx.Err())
	}
}

// leadReadRound runs one shared no-op round: the batch snapshot taken
// before the round is proposed is exactly the set of readers this round is
// a valid barrier for. Afterwards leadership passes to a reader that
// arrived mid-round, or lapses.
func (r *Replica) leadReadRound() error {
	g := &r.rgate
	g.mu.Lock()
	batch := g.next
	g.next = nil
	g.rounds++
	g.coalesced += uint64(len(batch))
	g.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), readRoundTimeout)
	err := r.readRound(ctx)
	cancel()

	for _, w := range batch {
		if w.state.CompareAndSwap(rwWaiting, rwClaimed) {
			w.ch <- readTurn{err: err}
		}
	}
	r.abdicateReadLead()
	return err
}

// abdicateReadLead hands the lead to the first still-waiting queued reader
// or clears it.
func (r *Replica) abdicateReadLead() {
	g := &r.rgate
	g.mu.Lock()
	for len(g.next) > 0 {
		w := g.next[0]
		g.next = g.next[1:]
		if w.state.CompareAndSwap(rwWaiting, rwClaimed) {
			g.mu.Unlock()
			w.ch <- readTurn{lead: true}
			return
		}
	}
	g.leading = false
	g.mu.Unlock()
}

// readRound replicates one bare no-op and waits until it applies locally.
// Direct Execute, never Submit: the no-op must stay a standalone value —
// folded into an OpBatch it would neither skip the decide journal entry
// nor be recognizably read-only to the durability watermark logic.
func (r *Replica) readRound(ctx context.Context) error {
	slot, err := r.Execute(ctx, Command{Op: OpNoop})
	if err != nil {
		return err
	}
	return r.WaitApplied(ctx, slot)
}
